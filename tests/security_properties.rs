//! Security-property tests mirroring the paper's §IV-C analysis:
//! feature security, label security, and identity security under the
//! semi-honest model.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use vfps_data::{prepared_sized, DatasetSpec, VerticalPartition};
use vfps_he::paillier;
use vfps_he::scheme::{AdditiveHe, PaillierHe};
use vfps_he::BigUint;
use vfps_net::wire::Wire;
use vfps_vfl::fed_knn::{FedKnnConfig, KnnMode};
use vfps_vfl::protocol::{run_threaded_knn, ProtoMsg};

/// Feature security: what leaves a participant is ciphertext — the raw
/// plaintext bytes of the partial distances must not appear in any
/// serialized message.
#[test]
fn transmitted_ciphertexts_do_not_leak_plaintext_bytes() {
    let he = PaillierHe::generate(256, 8, 1).unwrap();
    let secret_values = [1234.5f64, -77.25, 0.125];
    let ct = he.encrypt(&secret_values).unwrap();
    let wire_bytes = he.ct_to_bytes(&ct);
    for v in secret_values {
        let plain = v.to_le_bytes();
        let found = wire_bytes.windows(8).any(|w| w == plain);
        assert!(!found, "plaintext IEEE-754 bytes of {v} found in ciphertext");
    }
}

/// Semantic security in the protocol's usage: the same partial-distance
/// vector encrypts to different ciphertexts on every transmission, so the
/// server cannot correlate repeated queries by ciphertext equality.
#[test]
fn repeated_encryptions_are_unlinkable() {
    let he = PaillierHe::generate(256, 8, 2).unwrap();
    let values = [3.0f64, 4.0];
    let c1 = he.ct_to_bytes(&he.encrypt(&values).unwrap());
    let c2 = he.ct_to_bytes(&he.encrypt(&values).unwrap());
    assert_ne!(c1, c2);
}

/// The aggregation server can sum ciphertexts without the secret key, and
/// the sum decrypts correctly only for the leader — the exact trust split
/// of the protocol.
#[test]
fn server_computes_blind_aggregation() {
    let mut rng = StdRng::seed_from_u64(3);
    let kp = paillier::generate_keypair(&mut rng, 256).unwrap();
    // "Participants" encrypt with the public key only.
    let a = kp.public.encrypt(&BigUint::from_u64(100), &mut rng).unwrap();
    let b = kp.public.encrypt(&BigUint::from_u64(23), &mut rng).unwrap();
    // "Server" aggregates with the public key only (no decryption ability:
    // the API requires the private key object to decrypt).
    let sum = kp.public.add(&a, &b);
    // Only the "leader" (private key holder) recovers the plaintext.
    assert_eq!(kp.private.decrypt(&sum).to_u64(), Some(123));
}

/// Identity security: the ids streamed to the server during the Fagin
/// phase are pseudo IDs under a seeded shuffle, not raw database positions.
#[test]
fn server_sees_pseudo_ids_not_row_ids() {
    let spec = DatasetSpec::by_name("Rice").unwrap();
    let (ds, split) = prepared_sized(&spec, 80, 4);
    let partition = VerticalPartition::random(ds.n_features(), 2, 4);
    let he = Arc::new(PaillierHe::generate(128, 32, 4).unwrap());
    let cfg = FedKnnConfig { k: 3, mode: KnnMode::Fagin, batch: 8, cost_scale: 1.0 };
    let queries = vec![split.train[0]];
    // Two runs with different shuffle seeds must produce identical
    // neighbor sets (correctness) even though the pseudo-ID space differs.
    let r1 = run_threaded_knn(&he, &ds.x, &partition, &[0, 1], &split.train, &queries, cfg, 111);
    let r2 = run_threaded_knn(&he, &ds.x, &partition, &[0, 1], &split.train, &queries, cfg, 999);
    let mut a = r1.outcomes[0].topk_rows.clone();
    let mut b = r2.outcomes[0].topk_rows.clone();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "shuffle must not change the result");
}

/// Label security: the protocol message vocabulary has no variant that
/// carries labels; only the leader ever holds them. This is a structural
/// guarantee — exercised here by decoding every message tag.
#[test]
fn protocol_messages_never_carry_labels() {
    // Exhaustive over the message vocabulary: every variant round-trips
    // and none has a label field (enforced by the type; this test
    // documents it and pins the wire tags).
    let msgs: Vec<(u8, ProtoMsg)> = vec![
        (0, ProtoMsg::NeedBatch),
        (1, ProtoMsg::RankBatch(vec![1])),
        (2, ProtoMsg::Candidates(vec![2])),
        (3, ProtoMsg::EncPartials(vec![vec![9]])),
        (4, ProtoMsg::Aggregated(vec![vec![9]])),
        (5, ProtoMsg::TopkIds(vec![3])),
        (6, ProtoMsg::DtSum(1.0)),
        (7, ProtoMsg::QueryDone),
    ];
    for (tag, m) in msgs {
        let bytes = m.to_bytes();
        assert_eq!(bytes[0], tag, "wire tag pinned for audit");
        assert_eq!(ProtoMsg::from_bytes(&bytes).unwrap(), m);
    }
}

/// A ciphertext tampered with in transit fails decoding or decrypts to
/// garbage rather than silently passing — the server cannot forge
/// plaintext-controlled aggregates without detection at the length level.
#[test]
fn truncated_ciphertexts_are_rejected() {
    let he = PaillierHe::generate(128, 4, 5).unwrap();
    let ct = he.encrypt(&[42.0]).unwrap();
    let bytes = he.ct_to_bytes(&ct);
    assert!(he.ct_from_bytes(&bytes[..bytes.len() / 2]).is_err());
    assert!(he.ct_from_bytes(&[]).is_err());
}
