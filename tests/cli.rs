//! End-user CLI tests: drive the `vfps` binary the way a downstream user
//! would.

use std::process::Command;

fn vfps() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vfps"))
}

#[test]
fn synthetic_run_prints_selection() {
    let out = vfps()
        .args([
            "--synthetic",
            "Rice",
            "--parties",
            "4",
            "--select",
            "2",
            "--method",
            "vfps-sm",
            "--model",
            "knn",
            "--queries",
            "8",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("VFPS-SM"), "{stdout}");
    assert!(stdout.contains("accuracy"), "{stdout}");
    assert!(stdout.contains("4 parties, selecting 2"), "{stdout}");
}

#[test]
fn csv_input_round_trips() {
    let dir = std::env::temp_dir().join("vfps_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("toy.csv");
    let mut csv = String::from("a,b,c,d,y\n");
    for i in 0..80 {
        let y = i % 2;
        let mu = if y == 0 { -2.0 } else { 2.0 };
        let wobble = (i as f64 * 0.618).fract();
        csv.push_str(&format!(
            "{},{},{},{},{y}\n",
            mu + wobble,
            mu - wobble,
            wobble,
            mu * 0.5 + wobble,
        ));
    }
    std::fs::write(&path, csv).unwrap();
    let out = vfps()
        .args([
            "--data",
            path.to_str().unwrap(),
            "--parties",
            "2",
            "--select",
            "1",
            "--method",
            "random",
            "--queries",
            "4",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("80 rows, 4 features"), "{stdout}");
    assert!(stdout.contains("RANDOM"), "{stdout}");
}

#[test]
fn trace_out_writes_span_tree_json() {
    let dir = std::env::temp_dir().join("vfps_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.json");
    let out = vfps()
        .args([
            "--synthetic",
            "Rice",
            "--parties",
            "4",
            "--select",
            "2",
            "--method",
            "vfps-sm",
            "--queries",
            "8",
            "--trace-out",
            path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("trace:"), "{stdout}");
    let json = std::fs::read_to_string(&path).expect("trace file exists");
    for needle in [
        "\"wall_us\"",
        "\"spans\"",
        "\"select.vfps_sm\"",
        "\"fed_knn.query\"",
        "\"counters\"",
        "fed_knn.fagin.enc_instances",
    ] {
        assert!(json.contains(needle), "trace JSON missing {needle}");
    }
}

#[test]
fn cache_dir_serves_the_second_run_warm() {
    let dir = std::env::temp_dir().join(format!("vfps_cli_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let run = || {
        let out = vfps()
            .args([
                "--synthetic",
                "Rice",
                "--parties",
                "4",
                "--select",
                "2",
                "--method",
                "vfps-sm",
                "--queries",
                "8",
                "--cache-dir",
                dir.to_str().unwrap(),
            ])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let cold = run();
    assert!(cold.contains("cache: cold"), "{cold}");
    let warm = run();
    assert!(warm.contains("cache: warm"), "{warm}");
    // Warm serving must reproduce the cold selection: the printed chosen
    // set (the trailing `[..]` on the VFPS-SM row) is identical.
    let chosen = |s: &str| -> String {
        let row = s.lines().find(|l| l.starts_with("VFPS-SM")).expect("result row").to_owned();
        row[row.find('[').expect("chosen set")..].to_owned()
    };
    assert_eq!(chosen(&cold), chosen(&warm));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_arguments_fail_cleanly() {
    // Unknown method.
    let out =
        vfps().args(["--synthetic", "Rice", "--method", "magic"]).output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown method"));

    // Missing input entirely.
    let out = vfps().output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--data or --synthetic"));

    // Selecting more than the consortium holds.
    let out = vfps()
        .args(["--synthetic", "Rice", "--parties", "2", "--select", "5"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of range"));
}

#[test]
fn help_lists_every_method() {
    let out = vfps().arg("--help").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in ["vfps-sm", "shapley", "vfmine", "random", "libsvm"] {
        assert!(stdout.contains(needle), "help missing {needle}");
    }
}
