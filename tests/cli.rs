//! End-user CLI tests: drive the `vfps` binary the way a downstream user
//! would.

use std::io::{BufRead, BufReader, Read};
use std::process::{Child, Command, Stdio};

fn vfps() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vfps"))
}

/// Spawns `vfps serve` with piped stdout, parses the `listening on` line
/// for the bound address, and arms a kill-after-timeout watchdog so a
/// wedged daemon can never hang the suite.
fn spawn_serve(extra: &[&str]) -> (Child, BufReader<std::process::ChildStdout>, String) {
    let mut args = vec![
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--synthetic",
        "Rice",
        "--parties",
        "4",
        "--seed",
        "42",
    ];
    args.extend_from_slice(extra);
    let mut child = vfps()
        .args(&args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("serve spawns");
    let pid = child.id();
    std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_secs(120));
        let _ = Command::new("kill").arg("-9").arg(pid.to_string()).status();
    });
    let mut reader = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("listening line");
    let addr = line
        .trim()
        .strip_prefix("vfps-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected serve banner: {line:?}"))
        .to_owned();
    (child, reader, addr)
}

/// The trailing `[..]` chosen set on a direct run's VFPS-SM result row.
fn direct_chosen(stdout: &str) -> String {
    let row = stdout.lines().find(|l| l.starts_with("VFPS-SM")).expect("result row").to_owned();
    row[row.find('[').expect("chosen set")..].to_owned()
}

#[test]
fn synthetic_run_prints_selection() {
    let out = vfps()
        .args([
            "--synthetic",
            "Rice",
            "--parties",
            "4",
            "--select",
            "2",
            "--method",
            "vfps-sm",
            "--model",
            "knn",
            "--queries",
            "8",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("VFPS-SM"), "{stdout}");
    assert!(stdout.contains("accuracy"), "{stdout}");
    assert!(stdout.contains("4 parties, selecting 2"), "{stdout}");
}

#[test]
fn csv_input_round_trips() {
    let dir = std::env::temp_dir().join("vfps_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("toy.csv");
    let mut csv = String::from("a,b,c,d,y\n");
    for i in 0..80 {
        let y = i % 2;
        let mu = if y == 0 { -2.0 } else { 2.0 };
        let wobble = (i as f64 * 0.618).fract();
        csv.push_str(&format!(
            "{},{},{},{},{y}\n",
            mu + wobble,
            mu - wobble,
            wobble,
            mu * 0.5 + wobble,
        ));
    }
    std::fs::write(&path, csv).unwrap();
    let out = vfps()
        .args([
            "--data",
            path.to_str().unwrap(),
            "--parties",
            "2",
            "--select",
            "1",
            "--method",
            "random",
            "--queries",
            "4",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("80 rows, 4 features"), "{stdout}");
    assert!(stdout.contains("RANDOM"), "{stdout}");
}

#[test]
fn trace_out_writes_span_tree_json() {
    let dir = std::env::temp_dir().join("vfps_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.json");
    let out = vfps()
        .args([
            "--synthetic",
            "Rice",
            "--parties",
            "4",
            "--select",
            "2",
            "--method",
            "vfps-sm",
            "--queries",
            "8",
            "--trace-out",
            path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("trace:"), "{stdout}");
    let json = std::fs::read_to_string(&path).expect("trace file exists");
    for needle in [
        "\"wall_us\"",
        "\"spans\"",
        "\"select.vfps_sm\"",
        "\"fed_knn.query\"",
        "\"counters\"",
        "fed_knn.fagin.enc_instances",
    ] {
        assert!(json.contains(needle), "trace JSON missing {needle}");
    }
}

#[test]
fn cache_dir_serves_the_second_run_warm() {
    let dir = std::env::temp_dir().join(format!("vfps_cli_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let run = || {
        let out = vfps()
            .args([
                "--synthetic",
                "Rice",
                "--parties",
                "4",
                "--select",
                "2",
                "--method",
                "vfps-sm",
                "--queries",
                "8",
                "--cache-dir",
                dir.to_str().unwrap(),
            ])
            .output()
            .expect("binary runs");
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let cold = run();
    assert!(cold.contains("cache: cold"), "{cold}");
    let warm = run();
    assert!(warm.contains("cache: warm"), "{warm}");
    // Warm serving must reproduce the cold selection: the printed chosen
    // set (the trailing `[..]` on the VFPS-SM row) is identical.
    let chosen = |s: &str| -> String {
        let row = s.lines().find(|l| l.starts_with("VFPS-SM")).expect("result row").to_owned();
        row[row.find('[').expect("chosen set")..].to_owned()
    };
    assert_eq!(chosen(&cold), chosen(&warm));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_once_answers_a_submit_with_the_direct_runs_selection_then_drains() {
    // `--once`: serve exactly one selection, then drain and exit. The
    // server's dataset sizing matches the plain CLI's (`spec
    // sim_instances`, seed 42), so the reply must carry the same chosen
    // set a direct run prints.
    let (mut child, mut reader, addr) = spawn_serve(&["--once"]);

    let out = vfps()
        .args([
            "submit",
            "--addr",
            &addr,
            "--parties",
            "4",
            "--select",
            "2",
            "--queries",
            "8",
            "--seed",
            "42",
        ])
        .output()
        .expect("submit runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let reply = String::from_utf8_lossy(&out.stdout).into_owned();
    // The wire roundtrip surfaced a full typed reply.
    assert!(reply.contains("reply 1: cache=cold"), "{reply}");
    assert!(reply.contains("chosen: ["), "{reply}");
    assert!(reply.contains("scores: ["), "{reply}");
    let served_chosen =
        reply.lines().find_map(|l| l.strip_prefix("chosen: ")).expect("chosen line").to_owned();

    // The daemon drained itself after the single request.
    let status = child.wait().expect("serve exits after --once");
    assert!(status.success(), "serve exit: {status:?}");
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("drain summary");
    assert!(rest.contains("drain clean:"), "{rest}");
    assert!(rest.contains("in-flight 0"), "{rest}");
    assert!(rest.contains("completed 1"), "{rest}");

    // Bit-identity pin: the same inputs through the plain CLI (no
    // service) choose the same participants.
    let direct = vfps()
        .args([
            "--synthetic",
            "Rice",
            "--parties",
            "4",
            "--select",
            "2",
            "--method",
            "vfps-sm",
            "--queries",
            "8",
            "--seed",
            "42",
        ])
        .output()
        .expect("direct run");
    assert!(direct.status.success());
    assert_eq!(
        served_chosen,
        direct_chosen(&String::from_utf8_lossy(&direct.stdout)),
        "served selection must match the direct pipeline run"
    );
}

#[test]
fn submit_ping_and_shutdown_drain_a_persistent_server() {
    let (mut child, mut reader, addr) =
        spawn_serve(&["--queue-capacity", "2", "--max-tenants", "2"]);

    let ping = vfps().args(["submit", "--addr", &addr, "--ping"]).output().expect("ping runs");
    assert!(ping.status.success(), "stderr: {}", String::from_utf8_lossy(&ping.stderr));
    assert!(
        String::from_utf8_lossy(&ping.stdout).contains("pong: protocol version 2"),
        "{}",
        String::from_utf8_lossy(&ping.stdout)
    );

    // A second tenant on the same daemon: the server's default world is
    // Rice; submit against Bank by tag.
    let bank = vfps()
        .args([
            "submit",
            "--addr",
            &addr,
            "--dataset",
            "Bank",
            "--parties",
            "4",
            "--select",
            "2",
            "--queries",
            "8",
            "--seed",
            "42",
        ])
        .output()
        .expect("submit runs");
    assert!(bank.status.success(), "stderr: {}", String::from_utf8_lossy(&bank.stderr));
    let reply = String::from_utf8_lossy(&bank.stdout);
    assert!(reply.contains("reply 1: cache=cold"), "{reply}");

    // Per-tenant accounting is visible over the wire.
    let list =
        vfps().args(["submit", "--addr", &addr, "--list-datasets"]).output().expect("list runs");
    assert!(list.status.success(), "stderr: {}", String::from_utf8_lossy(&list.stderr));
    let listing = String::from_utf8_lossy(&list.stdout);
    assert!(listing.contains("default Rice"), "{listing}");
    assert!(listing.contains("Rice [resident]"), "{listing}");
    assert!(listing.contains("Bank [resident]"), "{listing}");
    let bank_row = listing.lines().find(|l| l.trim_start().starts_with("Bank ")).unwrap();
    assert!(bank_row.contains("completed 1"), "{bank_row}");

    let down =
        vfps().args(["submit", "--addr", &addr, "--shutdown"]).output().expect("shutdown runs");
    assert!(down.status.success(), "stderr: {}", String::from_utf8_lossy(&down.stderr));
    let summary = String::from_utf8_lossy(&down.stdout).into_owned();
    assert!(summary.contains("draining:"), "{summary}");
    assert!(summary.contains("in-flight 0"), "{summary}");

    let status = child.wait().expect("serve exits after shutdown");
    assert!(status.success(), "serve exit: {status:?}");
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("drain summary");
    assert!(rest.contains("drain clean:"), "{rest}");
}

#[test]
fn submit_against_a_dead_server_fails_cleanly() {
    // Port 1 is never listening; the client must error, not hang.
    let out =
        vfps().args(["submit", "--addr", "127.0.0.1:1", "--ping"]).output().expect("submit runs");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("error:"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn bad_arguments_fail_cleanly() {
    // Unknown method.
    let out =
        vfps().args(["--synthetic", "Rice", "--method", "magic"]).output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown method"));

    // Missing input entirely.
    let out = vfps().output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--data or --synthetic"));

    // Selecting more than the consortium holds.
    let out = vfps()
        .args(["--synthetic", "Rice", "--parties", "2", "--select", "5"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of range"));
}

#[test]
fn help_lists_every_method() {
    let out = vfps().arg("--help").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in ["vfps-sm", "shapley", "vfmine", "random", "libsvm"] {
        assert!(stdout.contains(needle), "help missing {needle}");
    }
}
