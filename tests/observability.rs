//! Observability-plane guarantees: instrumentation observes the pipeline
//! without perturbing it, and the exported metrics reproduce the ledger's
//! cost accounting.
//!
//! The two load-bearing properties:
//!
//! 1. **Bit-identity**: a selection run under an active capture produces
//!    byte-exact the same chosen set, scores, and `OpLedger` as the same
//!    run with the recorder off. Spans read clocks and bump counters; they
//!    never feed back into the computation.
//! 2. **Ledger-mirroring**: the `fed_knn.*.enc_instances` counters equal
//!    the corresponding ledger `enc.work` totals, so the Fagin-vs-Base
//!    encryption comparison in an exported trace is the corrected Fagin
//!    accounting, not an approximation of it.
//!
//! The obs recorder is process-global, so every test here serializes on
//! one mutex.

use std::sync::Mutex;

use vfps_core::pipeline::{run_pipeline, Method, PipelineConfig};
use vfps_core::selectors::{SelectionContext, Selector, VfpsSmSelector};
use vfps_data::{prepared_sized, DatasetSpec, VerticalPartition};
use vfps_vfl::fed_knn::KnnMode;
use vfps_vfl::split_train::Downstream;

static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct Fixture {
    ds: vfps_data::Dataset,
    split: vfps_data::Split,
    partition: VerticalPartition,
}

fn fixture(seed: u64) -> Fixture {
    let spec = DatasetSpec::by_name("Rice").unwrap();
    let (ds, split) = prepared_sized(&spec, 220, seed);
    let partition = VerticalPartition::random(ds.n_features(), 4, seed);
    Fixture { ds, split, partition }
}

fn select_with(f: &Fixture, mode: KnnMode, seed: u64) -> vfps_core::selectors::Selection {
    let ctx = SelectionContext {
        ds: &f.ds,
        split: &f.split,
        partition: &f.partition,
        cost_scale: 1.0,
        seed,
    };
    VfpsSmSelector { query_count: 12, mode, ..Default::default() }.select(&ctx, 2)
}

#[test]
fn instrumented_selection_is_bit_identical_to_uninstrumented() {
    let _g = lock();
    let f = fixture(11);

    assert!(!vfps_obs::is_enabled(), "no capture active at test start");
    let plain = select_with(&f, KnnMode::Fagin, 11);

    vfps_obs::start_capture();
    let traced = select_with(&f, KnnMode::Fagin, 11);
    let trace = vfps_obs::finish_capture().expect("capture was started");

    assert_eq!(traced.chosen, plain.chosen, "chosen set must not move");
    assert_eq!(traced.ledger, plain.ledger, "billing must not move");
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&traced.scores), bits(&plain.scores), "scores must be bit-identical");
    assert_eq!(
        traced.candidates_per_query.to_bits(),
        plain.candidates_per_query.to_bits(),
        "Fig. 9 metric must be bit-identical"
    );

    // The capture actually observed the run.
    assert!(trace.span_count("select.vfps_sm") >= 1, "names: {:?}", trace.span_names());
    assert!(trace.span_count("select.vfps_sm.greedy") >= 1);
    assert_eq!(trace.span_count("fed_knn.query") as usize, 12, "one span per query");
    assert!(trace.metrics.counter("fed_knn.fagin.candidates") > 0);
}

#[test]
fn enc_counters_mirror_the_ledger_and_fagin_undercuts_base() {
    let _g = lock();
    let f = fixture(12);

    vfps_obs::start_capture();
    let base = select_with(&f, KnnMode::Base, 12);
    let base_trace = vfps_obs::finish_capture().expect("capture was started");

    vfps_obs::start_capture();
    let fagin = select_with(&f, KnnMode::Fagin, 12);
    let fagin_trace = vfps_obs::finish_capture().expect("capture was started");

    // Exported counters equal the ledger's `enc.work` — same accounting,
    // two sinks.
    assert_eq!(
        base_trace.metrics.counter("fed_knn.base.enc_instances"),
        base.ledger.enc.work,
        "base counter must mirror the ledger"
    );
    assert_eq!(
        fagin_trace.metrics.counter("fed_knn.fagin.enc_instances"),
        fagin.ledger.enc.work,
        "fagin counter must mirror the ledger"
    );
    // The paper's claim, measured through the obs plane: Fagin encrypts
    // strictly fewer instances than the no-Fagin baseline.
    assert!(
        fagin_trace.metrics.counter("fed_knn.fagin.enc_instances")
            < base_trace.metrics.counter("fed_knn.base.enc_instances"),
        "fagin {} must undercut base {}",
        fagin_trace.metrics.counter("fed_knn.fagin.enc_instances"),
        base_trace.metrics.counter("fed_knn.base.enc_instances")
    );
    // Modes never cross-contaminate counters.
    assert_eq!(base_trace.metrics.counter("fed_knn.fagin.enc_instances"), 0);
    assert_eq!(fagin_trace.metrics.counter("fed_knn.base.enc_instances"), 0);
}

#[test]
fn pipeline_reports_phase_breakdown_and_emits_spans() {
    let _g = lock();
    let spec = DatasetSpec::by_name("Rice").unwrap();
    let cfg = PipelineConfig { sim_instances: Some(200), query_count: 8, ..Default::default() };

    vfps_obs::start_capture();
    let report = run_pipeline(&spec, Method::VfpsSm, Downstream::Knn { k: 3 }, &cfg, 5);
    let trace = vfps_obs::finish_capture().expect("capture was started");

    let names: Vec<&str> = report.phase_ms.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, vec!["prepare", "select", "train"], "fixed phase order");
    assert!(report.phase_ms.iter().all(|&(_, ms)| ms >= 0.0));
    let total: f64 = report.phase_ms.iter().map(|&(_, ms)| ms).sum();
    assert!(
        total <= report.real_ms + 1.0,
        "phases partition the run: {total} vs {}",
        report.real_ms
    );

    assert_eq!(trace.span_count("pipeline.run"), 1);
    assert_eq!(trace.span_count("pipeline.prepare"), 1);
    assert_eq!(trace.span_count("pipeline.select"), 1);
    assert_eq!(trace.span_count("pipeline.train"), 1);
    // The selector's spans nest under (or beside, on worker threads) the
    // pipeline's; the JSON export carries all of them.
    let json = trace.to_json();
    assert!(json.contains("\"pipeline.select\""), "exported JSON names phases");
    assert!(json.contains("fed_knn."), "hot-layer spans or counters are exported");
}

#[test]
fn uninstrumented_runs_leave_no_recorder_behind() {
    let _g = lock();
    let f = fixture(13);
    let _ = select_with(&f, KnnMode::Fagin, 13);
    assert!(!vfps_obs::is_enabled(), "selection must not start captures on its own");
    assert!(vfps_obs::finish_capture().is_none(), "and leaves nothing to collect");
}
