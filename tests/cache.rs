//! Selection-artifact cache guarantees, end to end:
//!
//! 1. **Warm bit-identity**: a repeated request served from the cache
//!    produces byte-exact the chosen set, scores, and Fig. 9 metric of the
//!    cold run that populated it — with zero new encryptions (checked on
//!    both the ledger and the obs counters).
//! 2. **Churn locality**: a request whose consortium differs by one party
//!    from a cached entry is served through `IncrementalConsortium` —
//!    `|Q|·k` plaintext distance evaluations for a join, zero work for a
//!    leave — and agrees with the incremental oracle built by hand.
//! 3. **Degradation**: a corrupted cache file downgrades the request to a
//!    cold run with a typed error surfaced; the cold run repairs the entry.
//! 4. **Pipeline plumbing**: `PipelineConfig::cache_dir` threads the whole
//!    path through `run_pipeline`, surfacing the serving status on the
//!    report.
//!
//! Every test runs the real selection over `vfps_par::global()`, so the CI
//! determinism matrix (`VFPS_THREADS` ∈ {1, 2, 4, 8}) exercises the warm
//! and churn paths at every thread count. The obs recorder is
//! process-global, so tests that capture serialize on one mutex.

use std::path::PathBuf;
use std::sync::Mutex;

use vfps_cache::{ArtifactCache, CacheError};
use vfps_core::cached::{select_with_cache, CacheStatus, TenantContext};
use vfps_core::pipeline::{run_pipeline, Method, PipelineConfig};
use vfps_core::selectors::{SelectionContext, VfpsSmSelector};
use vfps_core::IncrementalConsortium;
use vfps_data::{prepared_sized, DatasetSpec, VerticalPartition};
use vfps_net::cost::CostModel;
use vfps_vfl::split_train::Downstream;

static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct Fixture {
    ds: vfps_data::Dataset,
    split: vfps_data::Split,
    partition: VerticalPartition,
}

fn fixture(seed: u64) -> Fixture {
    let spec = DatasetSpec::by_name("Rice").unwrap();
    let (ds, split) = prepared_sized(&spec, 220, seed);
    let partition = VerticalPartition::random(ds.n_features(), 5, seed);
    Fixture { ds, split, partition }
}

fn ctx(f: &Fixture, seed: u64) -> SelectionContext<'_> {
    SelectionContext { ds: &f.ds, split: &f.split, partition: &f.partition, cost_scale: 1.0, seed }
}

fn selector() -> VfpsSmSelector {
    VfpsSmSelector { query_count: 10, ..Default::default() }
}

/// A fresh per-test cache directory (removed up front so reruns start
/// cold).
fn cache_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vfps_cache_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// The single-tenant context every pre-multi-tenant test serves under.
fn tc(dataset_tag: &[u8]) -> TenantContext<'_> {
    TenantContext::single(dataset_tag)
}

#[test]
fn warm_request_is_bit_identical_and_encrypts_nothing() {
    let _g = lock();
    let f = fixture(21);
    let c = ctx(&f, 21);
    let sel = selector();
    let cache = ArtifactCache::open(cache_dir("warm")).unwrap();
    let parties: Vec<usize> = (0..c.parties()).collect();
    let model = CostModel::default();

    let cold = select_with_cache(&cache, &sel, &c, &parties, 2, &model, &tc(b"it-warm"));
    assert_eq!(cold.status, CacheStatus::Cold);
    assert!(cold.degraded.is_none(), "{:?}", cold.degraded);
    assert!(cold.selection.ledger.enc.work > 0, "cold run does federated work");
    assert_eq!(cold.selection.ledger.cache_misses, 1);
    assert_eq!(cache.len().unwrap(), 1, "cold run stored its artifacts");

    vfps_obs::start_capture();
    let warm = select_with_cache(&cache, &sel, &c, &parties, 2, &model, &tc(b"it-warm"));
    let trace = vfps_obs::finish_capture().expect("capture was started");

    assert_eq!(warm.status, CacheStatus::Warm);
    assert_eq!(warm.fingerprint, cold.fingerprint);
    assert_eq!(warm.selection.chosen, cold.selection.chosen, "chosen set must not move");
    assert_eq!(bits(&warm.selection.scores), bits(&cold.selection.scores));
    assert_eq!(
        warm.selection.candidates_per_query.to_bits(),
        cold.selection.candidates_per_query.to_bits()
    );

    // Zero new federated work, on both accounting planes.
    assert_eq!(warm.selection.ledger.enc.work, 0, "warm run must encrypt nothing");
    assert_eq!(warm.selection.ledger.messages, 0);
    assert_eq!(warm.selection.ledger.cache_hits, 1);
    for counter in
        ["fed_knn.base.enc_instances", "fed_knn.fagin.enc_instances", "fed_knn.ta.enc_instances"]
    {
        assert_eq!(trace.metrics.counter(counter), 0, "{counter} must stay zero on a warm run");
    }
    assert_eq!(trace.metrics.counter("fed_knn.memo.served"), 10, "every query from cache");
    assert_eq!(trace.metrics.counter("cache.hit"), 1);
}

#[test]
fn churn_join_touches_only_the_new_party() {
    let _g = lock();
    let f = fixture(22);
    let c = ctx(&f, 22);
    let sel = selector();
    let cache = ArtifactCache::open(cache_dir("join")).unwrap();
    let model = CostModel::default();

    let base: Vec<usize> = vec![0, 1, 2, 3];
    let cold = select_with_cache(&cache, &sel, &c, &base, 2, &model, &tc(b"it-join"));
    assert_eq!(cold.status, CacheStatus::Cold);

    let grown: Vec<usize> = vec![0, 1, 2, 3, 4];
    let churn = select_with_cache(&cache, &sel, &c, &grown, 2, &model, &tc(b"it-join"));
    assert_eq!(churn.status, CacheStatus::ChurnJoin(4));
    assert_eq!(churn.selection.ledger.enc.work, 0, "a join never re-encrypts");
    assert_eq!(
        churn.selection.ledger.dist.work,
        (10 * sel.k) as u64,
        "join cost is exactly |Q|·k local distance evaluations"
    );
    assert_eq!(churn.selection.ledger.cache_hits, 1);
    assert_eq!(cache.len().unwrap(), 1, "churn results are not stored back");

    // Oracle: the same incremental extension built by hand from the cold
    // run's artifacts.
    let art = sel.run_over(&c, &base, 2, None);
    let mut inc =
        IncrementalConsortium::from_outcomes(&base, c.partition, &art.queries, &art.outcomes);
    inc.join(4, &c.ds.x, c.partition);
    let scored = inc.select_scored(2);
    assert_eq!(
        churn.selection.chosen,
        scored.iter().map(|&(p, _)| p).collect::<Vec<_>>(),
        "churn serving must equal the incremental oracle"
    );
    for (p, gain) in scored {
        assert_eq!(churn.selection.scores[p].to_bits(), gain.to_bits());
    }
}

#[test]
fn churn_leave_is_free_and_matches_the_oracle() {
    let _g = lock();
    let f = fixture(23);
    let c = ctx(&f, 23);
    let sel = selector();
    let cache = ArtifactCache::open(cache_dir("leave")).unwrap();
    let model = CostModel::default();

    let full: Vec<usize> = vec![0, 1, 2, 3];
    let cold = select_with_cache(&cache, &sel, &c, &full, 2, &model, &tc(b"it-leave"));
    assert_eq!(cold.status, CacheStatus::Cold);

    let shrunk: Vec<usize> = vec![0, 1, 3];
    let churn = select_with_cache(&cache, &sel, &c, &shrunk, 2, &model, &tc(b"it-leave"));
    assert_eq!(churn.status, CacheStatus::ChurnLeave(2));
    assert_eq!(churn.selection.ledger.enc.work, 0);
    assert_eq!(churn.selection.ledger.dist.work, 0, "a leave is pure matrix surgery");
    assert!(!churn.selection.chosen.contains(&2), "the departed party is never chosen");

    let art = sel.run_over(&c, &full, 2, None);
    let mut inc =
        IncrementalConsortium::from_outcomes(&full, c.partition, &art.queries, &art.outcomes);
    inc.leave(2);
    let scored = inc.select_scored(2);
    assert_eq!(churn.selection.chosen, scored.iter().map(|&(p, _)| p).collect::<Vec<_>>());
}

#[test]
fn two_membership_changes_fall_back_to_cold() {
    let _g = lock();
    let f = fixture(24);
    let c = ctx(&f, 24);
    let sel = selector();
    let cache = ArtifactCache::open(cache_dir("farchurn")).unwrap();
    let model = CostModel::default();

    let a: Vec<usize> = vec![0, 1, 2];
    select_with_cache(&cache, &sel, &c, &a, 2, &model, &tc(b"it-far"));
    // Two changes away (one out, one in): not a churn neighbor.
    let b: Vec<usize> = vec![0, 1, 3];
    let second = select_with_cache(&cache, &sel, &c, &b, 2, &model, &tc(b"it-far"));
    assert_eq!(second.status, CacheStatus::Cold);
    assert_eq!(cache.len().unwrap(), 2, "the second consortium gets its own entry");
}

#[test]
fn corrupted_entry_degrades_to_cold_and_is_repaired() {
    let _g = lock();
    let f = fixture(25);
    let c = ctx(&f, 25);
    let sel = selector();
    let dir = cache_dir("corrupt");
    let cache = ArtifactCache::open(&dir).unwrap();
    let parties: Vec<usize> = (0..c.parties()).collect();
    let model = CostModel::default();

    let cold = select_with_cache(&cache, &sel, &c, &parties, 2, &model, &tc(b"it-corrupt"));
    assert_eq!(cold.status, CacheStatus::Cold);

    // Flip one payload byte in the stored entry.
    let entry = std::fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
    let mut bytes = std::fs::read(&entry).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&entry, bytes).unwrap();

    let repaired = select_with_cache(&cache, &sel, &c, &parties, 2, &model, &tc(b"it-corrupt"));
    assert_eq!(repaired.status, CacheStatus::Cold, "corruption must not serve warm");
    assert!(
        matches!(repaired.degraded, Some(CacheError::Checksum)),
        "typed error surfaced: {:?}",
        repaired.degraded
    );
    assert_eq!(repaired.selection.chosen, cold.selection.chosen);

    // The degraded cold run overwrote the damaged file: third time warm.
    let warm = select_with_cache(&cache, &sel, &c, &parties, 2, &model, &tc(b"it-corrupt"));
    assert_eq!(warm.status, CacheStatus::Warm);
    assert!(warm.degraded.is_none());
    assert_eq!(warm.selection.chosen, cold.selection.chosen);
}

#[test]
fn dp_and_dropout_requests_bypass_the_cache() {
    let _g = lock();
    let f = fixture(26);
    let c = ctx(&f, 26);
    let cache = ArtifactCache::open(cache_dir("bypass")).unwrap();
    let parties: Vec<usize> = (0..c.parties()).collect();
    let model = CostModel::default();

    let dp = VfpsSmSelector { dp_epsilon: Some(1.0), ..selector() };
    let served = select_with_cache(&cache, &dp, &c, &parties, 2, &model, &tc(b"it-bypass"));
    assert_eq!(served.status, CacheStatus::Bypass);
    assert!(served.fingerprint.is_none());

    let faulty = VfpsSmSelector {
        dropouts: vec![vfps_vfl::fed_knn::Dropout { at_query: 2, slot: 1 }],
        ..selector()
    };
    let served = select_with_cache(&cache, &faulty, &c, &parties, 2, &model, &tc(b"it-bypass"));
    assert_eq!(served.status, CacheStatus::Bypass);
    assert!(cache.is_empty().unwrap(), "bypassed runs never touch the store");
}

#[test]
fn tenants_get_disjoint_entries_warm_paths_and_identical_results() {
    let _g = lock();
    let f = fixture(27);
    let c = ctx(&f, 27);
    let sel = selector();
    let root = cache_dir("tenants");
    let bank = ArtifactCache::open_tenant(&root, "Bank").unwrap();
    let rice = ArtifactCache::open_tenant(&root, "Rice").unwrap();
    let parties: Vec<usize> = (0..c.parties()).collect();
    let model = CostModel::default();
    let tc_bank = TenantContext { tenant: "Bank", dataset_tag: b"it-tenants" };
    let tc_rice = TenantContext { tenant: "Rice", dataset_tag: b"it-tenants" };

    // Same (party_set, k, seed, dataset content) under two tenant tags:
    // two cold runs, two disjoint cache entries.
    let cold_bank = select_with_cache(&bank, &sel, &c, &parties, 2, &model, &tc_bank);
    let cold_rice = select_with_cache(&rice, &sel, &c, &parties, 2, &model, &tc_rice);
    assert_eq!(cold_bank.status, CacheStatus::Cold);
    assert_eq!(cold_rice.status, CacheStatus::Cold);
    assert_ne!(cold_bank.fingerprint, cold_rice.fingerprint, "tenants must not alias");
    assert_eq!(bank.len().unwrap(), 1);
    assert_eq!(rice.len().unwrap(), 1);

    // Each tenant warms independently, bit-identical to its own cold run
    // and to the direct single-tenant pipeline over the same world.
    let direct = sel.run_over(&c, &parties, 2, None).selection;
    for (cache, tcx, cold) in [(&bank, &tc_bank, &cold_bank), (&rice, &tc_rice, &cold_rice)] {
        let warm = select_with_cache(cache, &sel, &c, &parties, 2, &model, tcx);
        assert_eq!(warm.status, CacheStatus::Warm, "tenant {}", tcx.tenant);
        assert_eq!(warm.selection.ledger.enc.work, 0, "warm tenant encrypts nothing");
        assert_eq!(warm.selection.chosen, cold.selection.chosen);
        assert_eq!(bits(&warm.selection.scores), bits(&cold.selection.scores));
        assert_eq!(warm.selection.chosen, direct.chosen, "tenant {} vs direct", tcx.tenant);
        assert_eq!(bits(&warm.selection.scores), bits(&direct.scores));
    }

    // Cross-tenant lookups stay cold even though every other input is
    // bit-identical: tenant A's entry can never warm-serve tenant B.
    let crossed = select_with_cache(&bank, &sel, &c, &parties, 2, &model, &tc_rice);
    assert_eq!(crossed.status, CacheStatus::Cold, "no cross-tenant warm serving");
}

#[test]
fn pipeline_serves_repeat_runs_warm() {
    let _g = lock();
    let spec = DatasetSpec::by_name("Rice").unwrap();
    let dir = cache_dir("pipeline");
    let cfg = PipelineConfig {
        sim_instances: Some(200),
        query_count: 8,
        cache_dir: Some(dir),
        ..Default::default()
    };

    let cold = run_pipeline(&spec, Method::VfpsSm, Downstream::Knn { k: 3 }, &cfg, 5);
    assert_eq!(cold.cache.as_deref(), Some("cold"));
    let warm = run_pipeline(&spec, Method::VfpsSm, Downstream::Knn { k: 3 }, &cfg, 5);
    assert_eq!(warm.cache.as_deref(), Some("warm"));
    assert_eq!(warm.chosen, cold.chosen, "cached pipeline picks the same consortium");
    assert_eq!(warm.accuracy.to_bits(), cold.accuracy.to_bits());
    assert!(
        warm.selection_seconds < cold.selection_seconds,
        "warm selection bills less simulated time: {} vs {}",
        warm.selection_seconds,
        cold.selection_seconds
    );

    // A different seed is a different fingerprint: cold again, not churn.
    let other = run_pipeline(&spec, Method::VfpsSm, Downstream::Knn { k: 3 }, &cfg, 6);
    assert_eq!(other.cache.as_deref(), Some("cold"));

    // Uncacheable methods report no cache involvement.
    let random = run_pipeline(&spec, Method::Random, Downstream::Knn { k: 3 }, &cfg, 5);
    assert_eq!(random.cache, None);
}
