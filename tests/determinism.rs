//! Determinism across thread counts — the hard requirement on `vfps-par`.
//!
//! The parallel selection engine must be a pure function of its inputs:
//! the selected participant set, the similarity matrix `w(p, s)`, and the
//! operation ledger have to be *bit-identical* whether the pool runs 1
//! worker, 2, or one per core. These properties drive the full
//! fed-KNN → accumulate → greedy pipeline on explicit pools over random
//! datasets, seeds, and query sets, and compare every artifact against
//! the single-threaded reference.

use proptest::prelude::*;
use vfps_core::{KnnSubmodular, SimilarityAccumulator};
use vfps_data::{prepared_sized, DatasetSpec, VerticalPartition};
use vfps_net::cost::OpLedger;
use vfps_par::Pool;
use vfps_vfl::fed_knn::{FedKnn, FedKnnConfig, KnnMode};

/// The thread counts under test: sequential, minimal parallelism, and one
/// worker per core on the host running the suite.
fn thread_counts() -> Vec<usize> {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut counts = vec![1, 2, cores];
    counts.dedup();
    counts
}

/// Runs the selection pipeline on `pool` and returns every artifact that
/// must be invariant: the chosen set, the similarity matrix as raw bits,
/// and the ledger.
fn run_selection(
    seed: u64,
    query_count: usize,
    mode: KnnMode,
    pool: &Pool,
) -> (Vec<usize>, Vec<Vec<u64>>, OpLedger) {
    let spec = DatasetSpec::by_name("Rice").expect("catalog");
    let (ds, split) = prepared_sized(&spec, 160, seed);
    let parties = [0usize, 1, 2, 3];
    let partition = VerticalPartition::random(ds.n_features(), parties.len(), seed);
    let cfg = FedKnnConfig { k: 5, mode, batch: 40, cost_scale: 1.0 };
    let engine = FedKnn::new(&ds.x, &partition, &parties, &split.train, cfg);

    let queries: Vec<usize> = split.train.iter().copied().take(query_count).collect();
    let counts: Vec<usize> = parties.iter().map(|&p| partition.columns(p).len()).collect();
    let mut acc = SimilarityAccumulator::new(parties.len()).with_feature_counts(counts);
    let mut ledger = OpLedger::default();
    for outcome in engine.query_batch(&queries, pool, &mut ledger) {
        acc.add_query(&outcome).unwrap();
    }
    let w = acc.finish();
    let w_bits: Vec<Vec<u64>> =
        w.iter().map(|row| row.iter().map(|v| v.to_bits()).collect()).collect();
    let chosen = KnnSubmodular::new(w).greedy_on(2, pool);
    (chosen, w_bits, ledger)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    fn selection_is_bit_identical_across_thread_counts(
        seed in 0u64..1_000,
        query_count in 4usize..12,
    ) {
        let reference = run_selection(seed, query_count, KnnMode::Fagin, &Pool::with_threads(1));
        for threads in thread_counts() {
            let pool = Pool::with_threads(threads);
            let run = run_selection(seed, query_count, KnnMode::Fagin, &pool);
            prop_assert_eq!(&run.0, &reference.0, "chosen set at {} threads", threads);
            prop_assert_eq!(&run.1, &reference.1, "w(p,s) bits at {} threads", threads);
            prop_assert_eq!(&run.2, &reference.2, "ledger at {} threads", threads);
        }
    }

    fn base_mode_is_bit_identical_across_thread_counts(seed in 0u64..1_000) {
        let reference = run_selection(seed, 6, KnnMode::Base, &Pool::with_threads(1));
        for threads in thread_counts() {
            let run = run_selection(seed, 6, KnnMode::Base, &Pool::with_threads(threads));
            prop_assert_eq!(&run.0, &reference.0, "chosen set at {} threads", threads);
            prop_assert_eq!(&run.1, &reference.1, "w(p,s) bits at {} threads", threads);
            prop_assert_eq!(&run.2, &reference.2, "ledger at {} threads", threads);
        }
    }
}

/// A dense random facility-location instance for the maximizer-level
/// determinism checks (unit diagonal, symmetric uniform off-diagonal).
fn random_instance(n: usize, seed: u64) -> KnnSubmodular {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        w[i][i] = 1.0;
        for j in 0..i {
            let v: f64 = rng.gen_range(0.0..1.0);
            w[i][j] = v;
            w[j][i] = v;
        }
    }
    KnnSubmodular::new(w)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Seeded stochastic greedy samples sequentially and only maps the
    /// gain evaluations over the pool, so the chosen set (and the exact
    /// evaluation count) must be a pure function of the seed — identical
    /// at 1, 2, and cores threads.
    fn parallel_stochastic_greedy_is_bit_identical_across_thread_counts(
        seed in 0u64..1_000,
        n in 40usize..90,
    ) {
        let f = random_instance(n, seed);
        let reference = f.stochastic_greedy_seeded(10, 0.1, seed, &Pool::with_threads(1));
        for threads in thread_counts() {
            let run = f.stochastic_greedy_seeded(10, 0.1, seed, &Pool::with_threads(threads));
            prop_assert_eq!(&run.0, &reference.0, "chosen set at {} threads", threads);
            prop_assert_eq!(run.1, reference.1, "eval count at {} threads", threads);
        }
    }

    /// Sieve-streaming maps each arrival's per-sieve gains in input order,
    /// so ladder admissions — and thus the final set — cannot depend on
    /// the worker count.
    fn sieve_streaming_is_bit_identical_across_thread_counts(
        seed in 0u64..1_000,
        n in 40usize..90,
    ) {
        let f = random_instance(n, seed);
        let reference = f.sieve_streaming_on(10, 0.15, &Pool::with_threads(1));
        for threads in thread_counts() {
            let run = f.sieve_streaming_on(10, 0.15, &Pool::with_threads(threads));
            prop_assert_eq!(&run.0, &reference.0, "chosen set at {} threads", threads);
            prop_assert_eq!(run.1, reference.1, "eval count at {} threads", threads);
        }
    }
}

/// Repeated runs on the *same* pool must also agree with each other — the
/// pool may not leak state between scopes.
#[test]
fn repeated_runs_on_one_pool_are_stable() {
    let pool = Pool::with_threads(4);
    let first = run_selection(7, 8, KnnMode::Fagin, &pool);
    for _ in 0..3 {
        let again = run_selection(7, 8, KnnMode::Fagin, &pool);
        assert_eq!(again.0, first.0);
        assert_eq!(again.1, first.1);
        assert_eq!(again.2, first.2);
    }
}
