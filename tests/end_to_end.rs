//! End-to-end pipeline tests: the full select → train → evaluate flow for
//! every method and downstream model, checking the paper's qualitative
//! claims at simulation scale.

use vfps_core::pipeline::{run_pipeline, Method, PipelineConfig};
use vfps_data::DatasetSpec;
use vfps_vfl::split_train::Downstream;

fn cfg(sim: usize) -> PipelineConfig {
    PipelineConfig { sim_instances: Some(sim), query_count: 16, ..Default::default() }
}

#[test]
fn every_method_runs_on_knn_downstream() {
    let spec = DatasetSpec::by_name("Rice").unwrap();
    for method in Method::TABLE_ORDER {
        let report = run_pipeline(&spec, method, Downstream::Knn { k: 5 }, &cfg(300), 1);
        // RANDOM may legitimately draw a poor pair at this tiny scale; the
        // bar checks the pipeline runs and is not totally broken.
        let floor = if method == Method::Random { 0.5 } else { 0.65 };
        assert!(report.accuracy >= floor, "{}: accuracy {}", method.name(), report.accuracy);
        let expected = if method == Method::All { 4 } else { 2 };
        assert_eq!(report.chosen.len(), expected, "{}", method.name());
    }
}

#[test]
fn every_downstream_model_runs_with_vfps_sm() {
    let spec = DatasetSpec::by_name("Rice").unwrap();
    for model in [Downstream::Knn { k: 5 }, Downstream::Lr, Downstream::Mlp] {
        let report = run_pipeline(&spec, Method::VfpsSm, model, &cfg(220), 2);
        assert!(report.accuracy > 0.6, "{}: accuracy {}", model.name(), report.accuracy);
        assert!(report.training_seconds > 0.0);
    }
}

/// Table I's qualitative shape: selection ordering
/// SHAPLEY ≫ VFPS-SM-BASE ≫ VFMINE > VFPS-SM ≥ RANDOM(=0), and VFPS-SM's
/// end-to-end time beats ALL.
#[test]
fn selection_time_ordering_matches_table1() {
    let spec = DatasetSpec::by_name("SUSY").unwrap();
    let c = cfg(400);
    let reports: Vec<_> = [
        Method::Shapley,
        Method::VfpsSmBase,
        Method::VfMine,
        Method::VfpsSm,
        Method::Random,
        Method::All,
    ]
    .iter()
    .map(|&m| (m, run_pipeline(&spec, m, Downstream::Lr, &c, 3)))
    .collect();
    let by = |m: Method| {
        reports.iter().find(|(mm, _)| *mm == m).map(|(_, r)| r).expect("method present")
    };
    assert!(by(Method::Shapley).selection_seconds > by(Method::VfpsSmBase).selection_seconds);
    assert!(by(Method::VfpsSmBase).selection_seconds > by(Method::VfMine).selection_seconds);
    assert!(by(Method::VfMine).selection_seconds > by(Method::VfpsSm).selection_seconds);
    assert_eq!(by(Method::Random).selection_seconds, 0.0);
    assert!(
        by(Method::VfpsSm).total_seconds() < by(Method::All).total_seconds(),
        "selection should pay for itself: {} vs {}",
        by(Method::VfpsSm).total_seconds(),
        by(Method::All).total_seconds()
    );
}

/// Fig. 6's claim: with duplicate participants injected, VFPS-SM holds its
/// accuracy while at least one score-based baseline degrades below it.
#[test]
fn duplicates_hurt_baselines_not_vfps_sm() {
    let spec = DatasetSpec::by_name("Phishing").unwrap();
    let mut c = cfg(300);
    c.duplicates = 3;
    let vfps = run_pipeline(&spec, Method::VfpsSm, Downstream::Knn { k: 5 }, &c, 5);
    let shapley = run_pipeline(&spec, Method::Shapley, Downstream::Knn { k: 5 }, &c, 5);
    let vfmine = run_pipeline(&spec, Method::VfMine, Downstream::Knn { k: 5 }, &c, 5);
    // VFPS-SM never picks two copies of the same partition. Parties 4..7
    // are clones of the strongest base party.
    let src = vfps.duplicated_party.expect("duplicates were injected");
    let dup_ids: Vec<usize> = (4..7).collect();
    let picks_copy = |chosen: &[usize]| {
        chosen.contains(&src) && chosen.iter().any(|c| dup_ids.contains(c))
            || chosen.iter().filter(|c| dup_ids.contains(c)).count() >= 2
    };
    assert!(!picks_copy(&vfps.chosen), "VFPS-SM picked duplicates: {:?}", vfps.chosen);
    assert!(
        vfps.accuracy + 1e-9 >= shapley.accuracy.min(vfmine.accuracy),
        "vfps {} vs shapley {} / vfmine {}",
        vfps.accuracy,
        shapley.accuracy,
        vfmine.accuracy
    );
}

/// Cost billing at paper scale: SUSY (5M rows) must dwarf Bank (10k rows)
/// in simulated selection time for the same method.
#[test]
fn paper_scale_billing_tracks_dataset_size() {
    let susy = run_pipeline(
        &DatasetSpec::by_name("SUSY").unwrap(),
        Method::VfpsSmBase,
        Downstream::Knn { k: 5 },
        &cfg(250),
        5,
    );
    let bank = run_pipeline(
        &DatasetSpec::by_name("Bank").unwrap(),
        Method::VfpsSmBase,
        Downstream::Knn { k: 5 },
        &cfg(250),
        5,
    );
    assert!(
        susy.selection_seconds > 20.0 * bank.selection_seconds,
        "susy {} vs bank {}",
        susy.selection_seconds,
        bank.selection_seconds
    );
}

/// Determinism: same seed, same report.
#[test]
fn pipeline_is_deterministic() {
    let spec = DatasetSpec::by_name("Rice").unwrap();
    let a = run_pipeline(&spec, Method::VfpsSm, Downstream::Knn { k: 5 }, &cfg(200), 9);
    let b = run_pipeline(&spec, Method::VfpsSm, Downstream::Knn { k: 5 }, &cfg(200), 9);
    assert_eq!(a.chosen, b.chosen);
    assert_eq!(a.accuracy, b.accuracy);
    assert_eq!(a.selection_seconds, b.selection_seconds);
}
