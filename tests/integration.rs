//! Cross-crate integration tests: the substrates composed exactly the way
//! the VFPS-SM pipeline composes them.

use std::sync::Arc;

use vfps_core::selectors::{SelectionContext, Selector, VfpsSmSelector};
use vfps_core::similarity::SimilarityAccumulator;
use vfps_core::submodular::KnnSubmodular;
use vfps_data::{prepared_sized, DatasetSpec, VerticalPartition};
use vfps_he::ckks::CkksParams;
use vfps_he::scheme::{AdditiveHe, CkksHe, PaillierHe, PlainHe};
use vfps_net::cost::OpLedger;
use vfps_vfl::fed_knn::{FedKnn, FedKnnConfig, KnnMode};
use vfps_vfl::protocol::run_threaded_knn;

fn rice(n: usize, seed: u64) -> (vfps_data::Dataset, vfps_data::Split) {
    prepared_sized(&DatasetSpec::by_name("Rice").unwrap(), n, seed)
}

/// The logical engine and the threaded protocol (with three different HE
/// schemes) must agree on every query's neighbor set.
#[test]
fn logical_and_threaded_knn_agree_across_schemes() {
    let (ds, split) = rice(120, 3);
    let partition = VerticalPartition::random(ds.n_features(), 4, 3);
    let parties = [0usize, 1, 2, 3];
    let cfg = FedKnnConfig { k: 5, mode: KnnMode::Fagin, batch: 16, cost_scale: 1.0 };
    let queries: Vec<usize> = split.train.iter().copied().take(3).collect();

    let engine = FedKnn::new(&ds.x, &partition, &parties, &split.train, cfg);
    let mut ledger = OpLedger::default();
    let expected: Vec<Vec<usize>> = queries
        .iter()
        .map(|&q| {
            let mut t = engine.query(q, &mut ledger).topk_rows;
            t.sort_unstable();
            t
        })
        .collect();

    // Plain scheme.
    let plain = Arc::new(PlainHe::new(64));
    check_threaded(&plain, &ds, &partition, &parties, &split.train, &queries, cfg, &expected);

    // Paillier (exact fixed-point).
    let paillier = Arc::new(PaillierHe::generate(128, 64, 9).unwrap());
    check_threaded(&paillier, &ds, &partition, &parties, &split.train, &queries, cfg, &expected);

    // CKKS (approximate — noise far below inter-point distance gaps).
    let ckks = Arc::new(CkksHe::generate(&CkksParams::insecure_test(), 10).unwrap());
    check_threaded(&ckks, &ds, &partition, &parties, &split.train, &queries, cfg, &expected);
}

#[allow(clippy::too_many_arguments)]
fn check_threaded<H: AdditiveHe + 'static>(
    he: &Arc<H>,
    ds: &vfps_data::Dataset,
    partition: &VerticalPartition,
    parties: &[usize],
    db: &[usize],
    queries: &[usize],
    cfg: FedKnnConfig,
    expected: &[Vec<usize>],
) {
    let run = run_threaded_knn(he, &ds.x, partition, parties, db, queries, cfg, 42);
    for (qi, expect) in expected.iter().enumerate() {
        let mut got = run.outcomes[qi].topk_rows.clone();
        got.sort_unstable();
        assert_eq!(&got, expect, "{} scheme, query {qi}", he.name());
    }
}

/// Similarity matrices built from federated outcomes feed directly into the
/// submodular maximizer, and duplicate participants collapse to similarity
/// ≈ 1 so greedy avoids picking both.
#[test]
fn duplicate_participants_get_unit_similarity_and_are_avoided() {
    let (ds, split) = rice(200, 5);
    let base = VerticalPartition::random(ds.n_features(), 3, 5);
    let partition = base.with_duplicates(0, 1); // party 3 duplicates party 0
    let parties: Vec<usize> = (0..partition.parties()).collect();
    let engine = FedKnn::new(
        &ds.x,
        &partition,
        &parties,
        &split.train,
        FedKnnConfig { k: 8, mode: KnnMode::Fagin, batch: 32, cost_scale: 1.0 },
    );
    let mut acc = SimilarityAccumulator::new(parties.len());
    let mut ledger = OpLedger::default();
    for &q in split.train.iter().take(12) {
        acc.add_query(&engine.query(q, &mut ledger)).unwrap();
    }
    let w = acc.finish();
    assert!(
        (w[0][3] - 1.0).abs() < 1e-9,
        "duplicates have identical d_T contributions, w={}",
        w[0][3]
    );

    let f = KnnSubmodular::new(w);
    let chosen = f.greedy(2);
    assert!(
        !(chosen.contains(&0) && chosen.contains(&3)),
        "greedy must not pick both copies: {chosen:?}"
    );
}

/// The VFPS-SM selector prefers informative partitions on a dataset whose
/// partitions differ sharply in informativeness.
#[test]
fn vfps_sm_selects_informative_partitions() {
    let spec = DatasetSpec::by_name("Phishing").unwrap();
    let (ds, split) = prepared_sized(&spec, 400, 17);
    // Partition so parties 0/1 are informative-heavy, 2/3 noise-heavy.
    let mut informative = Vec::new();
    let mut rest = Vec::new();
    for (i, k) in ds.feature_kinds.iter().enumerate() {
        if *k == vfps_data::FeatureKind::Informative {
            informative.push(i);
        } else {
            rest.push(i);
        }
    }
    let h = informative.len() / 2;
    let r = rest.len() / 2;
    let partition = VerticalPartition::from_groups(
        ds.n_features(),
        vec![
            informative[..h].to_vec(),
            informative[h..].to_vec(),
            rest[..r].to_vec(),
            rest[r..].to_vec(),
        ],
    );
    let ctx = SelectionContext {
        ds: &ds,
        split: &split,
        partition: &partition,
        cost_scale: 1.0,
        seed: 17,
    };
    let sel = VfpsSmSelector { k: 8, query_count: 24, ..VfpsSmSelector::default() }.select(&ctx, 2);
    // The selected pair should include at least one informative-heavy party.
    assert!(
        sel.chosen.iter().any(|&p| p < 2),
        "selection {:?} ignored informative partitions",
        sel.chosen
    );
    assert!(sel.ledger.enc.work > 0, "selection must have paid encryption costs");
}

/// Fagin's optimization must reduce encrypted work relative to base while
/// producing the same selection.
#[test]
fn fagin_selection_cheaper_same_result() {
    let (ds, split) = rice(300, 23);
    let partition = VerticalPartition::random(ds.n_features(), 4, 23);
    let ctx = SelectionContext {
        ds: &ds,
        split: &split,
        partition: &partition,
        cost_scale: 1.0,
        seed: 23,
    };
    let fagin = VfpsSmSelector { k: 10, query_count: 16, ..Default::default() };
    let base = fagin.clone().base();
    let sf = fagin.select(&ctx, 2);
    let sb = base.select(&ctx, 2);
    assert_eq!(sf.chosen, sb.chosen, "optimization must not change the selection");
    assert!(
        sf.ledger.enc.work < sb.ledger.enc.work,
        "fagin {} vs base {}",
        sf.ledger.enc.work,
        sb.ledger.enc.work
    );
    assert!(sf.candidates_per_query < sb.candidates_per_query);
}
