# Local entry points mirroring what CI runs, so the artifact-key gate
# and the bench drivers can be exercised before pushing. Uses `just`
# (https://just.systems); every recipe body is plain bash, so each
# command also works copy-pasted into a shell.

# Build + test, the tier-1 gate.
test:
    cargo build --release
    cargo test -q

# Clippy + rustfmt + rustdoc, exactly as the lint job runs them.
lint:
    cargo clippy --workspace --all-targets -- -D warnings
    cargo fmt --check
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

# Assert BENCH_selection.json carries a group's keys (selection, serve,
# router or cluster) — the same script the CI jobs call.
bench-keys group="selection" artifact="BENCH_selection.json":
    bash ci/check_bench_keys.sh {{group}} {{artifact}}

# Regenerate the selection bench artifact and gate it.
bench-selection:
    cargo run --release -p vfps-bench --bin experiments -- bench-selection --quick --cached
    bash ci/check_bench_keys.sh selection
    cargo run --release -p vfps-bench --bin experiments -- bench-check

# In-process service load test (two tenants, drain at the end).
bench-serve:
    cargo run --release -p vfps-bench --bin experiments -- bench-serve --quick
    bash ci/check_bench_keys.sh serve

# Routing-tier load test: two in-process daemons behind vfps-router,
# with a mid-load drain and bit-identity probes against a direct daemon.
bench-router:
    cargo run --release -p vfps-bench --bin experiments -- bench-serve --quick --router
    bash ci/check_bench_keys.sh router

# Real-socket cluster benchmark: three party daemons over TCP vs the
# simulated cluster (bit-identity asserted) plus a mid-batch kill run.
bench-cluster:
    cargo run --release -p vfps-bench --bin experiments -- bench-cluster --quick
    bash ci/check_bench_keys.sh cluster

# End-to-end cluster smoke: spawn three real `vfps party` processes,
# run the protocol + kill matrix against them, then the bench gate.
cluster-smoke:
    cargo test --release -q -p vfps-serve --test cluster_process
    cargo run --release -p vfps-bench --bin experiments -- bench-cluster --quick
    bash ci/check_bench_keys.sh cluster
