//! Deterministic work-stealing thread pool for the VFPS-SM hot paths.
//!
//! The pool parallelizes the selection pipeline's embarrassingly parallel
//! loops — fed-KNN query batches, Paillier/CKKS batch encryption, and
//! marginal-gain evaluation in the submodular maximizer — while guaranteeing
//! **bit-identical results at any thread count**. Three rules make that
//! hold, and every primitive here is built around them:
//!
//! 1. **Order-preserving results.** [`Pool::par_map_indexed`] returns
//!    outputs in input-index order no matter which worker computed them, so
//!    a caller that folds the returned `Vec` sequentially reproduces the
//!    exact floating-point accumulation order of a single-threaded run.
//! 2. **Length-dependent chunking.** Work is split into chunks whose
//!    boundaries depend only on the input length — never on the thread
//!    count — so [`Pool::par_fold`]'s chunk accumulators and the order they
//!    are merged in are the same at 1 thread and at N.
//! 3. **Per-item seed derivation.** Randomized work must not draw from a
//!    shared RNG (arrival order would change the stream). Instead, derive
//!    an independent seed per item with [`split_seed`]`(master, index)` and
//!    build a fresh RNG from it; the stream consumed by item `i` is then a
//!    pure function of `(master, i)`.
//!
//! Worker count comes from [`PoolBuilder::threads`], else the
//! `VFPS_THREADS` environment variable, else the number of available cores.
//! The process-wide pool is [`global()`]. The scheduler is a classic
//! work-stealing design on `crossbeam::deque`: spawns land in a global
//! injector, each worker drains its local deque first, then the injector,
//! then steals from siblings. Blocked scope callers help execute tasks, so
//! nested scopes cannot deadlock and a 1-thread pool runs everything inline
//! on the caller.

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// Derives an independent RNG seed for item `index` from a master seed.
///
/// This is a SplitMix64-style finalizer over the master seed advanced by
/// the index, giving well-distributed, decorrelated per-item seeds. It is a
/// pure function, so parallel workers can derive item seeds without any
/// shared state, and the seed for item `i` is independent of the thread
/// that processes it.
#[must_use]
#[inline]
pub fn split_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add(index.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Chunk length for `len` items: depends only on `len`, never on the
/// thread count, so chunk boundaries (and therefore merge order and
/// per-chunk floating-point accumulation) are identical at any parallelism.
#[must_use]
fn chunk_len(len: usize) -> usize {
    // Target enough chunks to load-balance a large pool while keeping
    // per-task overhead negligible for small inputs.
    const TARGET_CHUNKS: usize = 64;
    len.div_ceil(TARGET_CHUNKS).max(1)
}

/// Inputs shorter than this run inline on the caller even on a
/// multi-thread pool. Below this size the spawn/steal/merge overhead of
/// dispatch exceeds the work for the cheap per-item closures on the
/// selection hot paths (the `greedy_maximizer` stage regressed to 0.13x
/// of sequential before this fallback existed). Safe for determinism:
/// every parallel primitive here is order-preserving with
/// length-only chunk seams, so the sequential path produces bit-identical
/// output to the dispatched one.
const SEQUENTIAL_BELOW: usize = 64;

struct State {
    shutdown: bool,
}

struct Shared {
    injector: Injector<Task>,
    stealers: Vec<Stealer<Task>>,
    state: Mutex<State>,
    work_cv: Condvar,
}

impl Shared {
    /// Wakes sleeping workers after new tasks were injected.
    fn signal(&self) {
        self.work_cv.notify_all();
    }

    /// Next task: local deque first, then the injector, then steal.
    fn find_task(&self, local: Option<&Worker<Task>>) -> Option<Task> {
        if let Some(w) = local {
            if let Some(t) = w.pop() {
                return Some(t);
            }
        }
        if let Steal::Success(t) = self.injector.steal() {
            return Some(t);
        }
        for s in &self.stealers {
            if let Steal::Success(t) = s.steal() {
                return Some(t);
            }
        }
        None
    }
}

fn worker_loop(shared: &Shared, local: &Worker<Task>) {
    loop {
        if let Some(task) = shared.find_task(Some(local)) {
            task();
            continue;
        }
        let mut guard = shared.state.lock();
        if guard.shutdown {
            return;
        }
        // Timed wait closes the push/sleep race without an epoch protocol:
        // a missed notify costs at most one timeout period.
        shared.work_cv.wait_for(&mut guard, Duration::from_millis(2));
    }
}

/// Reads the configured default worker count: `VFPS_THREADS` if set and
/// positive, otherwise the number of available cores.
#[must_use]
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("VFPS_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Configures and builds a [`Pool`].
#[derive(Default)]
pub struct PoolBuilder {
    threads: Option<usize>,
}

impl PoolBuilder {
    /// Starts a builder with defaults.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count explicitly (overrides `VFPS_THREADS`).
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        assert!(n > 0, "a pool needs at least one thread");
        self.threads = Some(n);
        self
    }

    /// Builds the pool.
    #[must_use]
    pub fn build(self) -> Pool {
        Pool::with_threads(self.threads.unwrap_or_else(default_threads))
    }
}

/// A work-stealing thread pool with deterministic parallel primitives.
///
/// `threads` counts the caller too: a pool of `n` spawns `n - 1` background
/// workers and the thread driving a [`Pool::scope`] executes tasks while it
/// waits, so a 1-thread pool is a plain sequential executor.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl Pool {
    /// Builds a pool with exactly `threads` threads of parallelism.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "a pool needs at least one thread");
        let workers: Vec<Worker<Task>> = (0..threads - 1).map(|_| Worker::new_lifo()).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers: workers.iter().map(Worker::stealer).collect(),
            state: Mutex::new(State { shutdown: false }),
            work_cv: Condvar::new(),
        });
        let handles = workers
            .into_iter()
            .enumerate()
            .map(|(i, local)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("vfps-par-{i}"))
                    .spawn(move || worker_loop(&shared, &local))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { shared, handles, threads }
    }

    /// The pool's total parallelism (background workers + caller).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `op` with a [`Scope`] on which borrowed tasks can be spawned;
    /// returns only after every spawned task has finished. Panics from
    /// tasks are propagated to the caller after the scope drains.
    pub fn scope<'scope, OP, R>(&'scope self, op: OP) -> R
    where
        OP: FnOnce(&Scope<'scope>) -> R,
    {
        let scope = Scope {
            pool: self,
            pending: Arc::new((Mutex::new(0usize), Condvar::new())),
            panic: Arc::new(Mutex::new(None)),
            _marker: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| op(&scope)));

        // Help drain until every spawned task completed; this is what makes
        // the lifetime erasure in `Scope::spawn` sound.
        loop {
            if let Some(task) = self.shared.find_task(None) {
                task();
                continue;
            }
            let (pending, done_cv) = &*scope.pending;
            let mut guard = pending.lock();
            if *guard == 0 {
                break;
            }
            done_cv.wait_for(&mut guard, Duration::from_millis(1));
            if *guard == 0 {
                break;
            }
        }

        if let Some(payload) = scope.panic.lock().take() {
            resume_unwind(payload);
        }
        match result {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Maps `f` over `items` in parallel, returning results in input order.
    ///
    /// Because the output order is the input order, any sequential fold the
    /// caller performs over the result reproduces the single-threaded
    /// accumulation exactly, regardless of worker scheduling.
    pub fn par_map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if self.threads <= 1 || items.len() < SEQUENTIAL_BELOW {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let chunk = chunk_len(items.len());
        let parts: Mutex<Vec<(usize, Vec<R>)>> =
            Mutex::new(Vec::with_capacity(items.len().div_ceil(chunk)));
        self.scope(|s| {
            for (ci, chunk_items) in items.chunks(chunk).enumerate() {
                let start = ci * chunk;
                let f = &f;
                let parts = &parts;
                s.spawn(move || {
                    let vals: Vec<R> =
                        chunk_items.iter().enumerate().map(|(j, t)| f(start + j, t)).collect();
                    parts.lock().push((start, vals));
                });
            }
        });
        let mut parts = parts.into_inner();
        parts.sort_unstable_by_key(|(start, _)| *start);
        let mut out = Vec::with_capacity(items.len());
        for (_, vals) in parts {
            out.extend(vals);
        }
        out
    }

    /// Like [`Pool::par_map_indexed`], but hands `f` a reusable scratch
    /// value built once per chunk (once total on the sequential path), so
    /// per-item buffer allocations amortize across the chunk instead of
    /// repeating for every item.
    ///
    /// Determinism contract: `f`'s *output* must not depend on the scratch
    /// contents it inherits — scratch is for buffers whose prior contents
    /// are overwritten, not for state threaded between items. Under that
    /// contract the result is bit-identical at any thread count, exactly
    /// like the plain map.
    pub fn par_map_indexed_scratch<T, R, S, MS, F>(
        &self,
        items: &[T],
        make_scratch: MS,
        f: F,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
        MS: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        if self.threads <= 1 || items.len() < SEQUENTIAL_BELOW {
            let mut scratch = make_scratch();
            return items.iter().enumerate().map(|(i, t)| f(&mut scratch, i, t)).collect();
        }
        let chunk = chunk_len(items.len());
        let parts: Mutex<Vec<(usize, Vec<R>)>> =
            Mutex::new(Vec::with_capacity(items.len().div_ceil(chunk)));
        self.scope(|s| {
            for (ci, chunk_items) in items.chunks(chunk).enumerate() {
                let start = ci * chunk;
                let f = &f;
                let make_scratch = &make_scratch;
                let parts = &parts;
                s.spawn(move || {
                    let mut scratch = make_scratch();
                    let vals: Vec<R> = chunk_items
                        .iter()
                        .enumerate()
                        .map(|(j, t)| f(&mut scratch, start + j, t))
                        .collect();
                    parts.lock().push((start, vals));
                });
            }
        });
        let mut parts = parts.into_inner();
        parts.sort_unstable_by_key(|(start, _)| *start);
        let mut out = Vec::with_capacity(items.len());
        for (_, vals) in parts {
            out.extend(vals);
        }
        out
    }

    /// Folds `items` in parallel with deterministic chunking.
    ///
    /// Each chunk is folded left-to-right from a fresh `identity()`, and
    /// the chunk accumulators are merged **in chunk order** on the calling
    /// thread. Chunk boundaries depend only on `items.len()`, so the result
    /// — including floating-point rounding — is identical at every thread
    /// count, and differs from a plain sequential fold only by where the
    /// fixed chunk seams lie.
    pub fn par_fold<T, A, ID, F, M>(&self, items: &[T], identity: ID, fold: F, mut merge: M) -> A
    where
        T: Sync,
        A: Send,
        ID: Fn() -> A + Sync,
        F: Fn(A, usize, &T) -> A + Sync,
        M: FnMut(A, A) -> A,
    {
        let chunk = chunk_len(items.len());
        let fold_chunk = |ci: usize, chunk_items: &[T]| {
            let start = ci * chunk;
            let mut acc = identity();
            for (j, t) in chunk_items.iter().enumerate() {
                acc = fold(acc, start + j, t);
            }
            acc
        };
        let accs: Vec<A> = if self.threads <= 1 || items.len() < SEQUENTIAL_BELOW {
            items.chunks(chunk).enumerate().map(|(ci, c)| fold_chunk(ci, c)).collect()
        } else {
            let parts: Mutex<Vec<(usize, A)>> =
                Mutex::new(Vec::with_capacity(items.len().div_ceil(chunk)));
            self.scope(|s| {
                for (ci, chunk_items) in items.chunks(chunk).enumerate() {
                    let fold_chunk = &fold_chunk;
                    let parts = &parts;
                    s.spawn(move || {
                        let acc = fold_chunk(ci, chunk_items);
                        parts.lock().push((ci, acc));
                    });
                }
            });
            let mut parts = parts.into_inner();
            parts.sort_unstable_by_key(|(ci, _)| *ci);
            parts.into_iter().map(|(_, a)| a).collect()
        };
        let mut acc = identity();
        for a in accs {
            acc = merge(acc, a);
        }
        acc
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.state.lock().shutdown = true;
        self.shared.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Spawn surface handed to [`Pool::scope`] callbacks.
pub struct Scope<'scope> {
    pool: &'scope Pool,
    pending: Arc<(Mutex<usize>, Condvar)>,
    panic: Arc<Mutex<Option<Box<dyn Any + Send>>>>,
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawns a task that may borrow from the enclosing scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        *self.pending.0.lock() += 1;
        let pending = Arc::clone(&self.pending);
        let panic = Arc::clone(&self.panic);
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                panic.lock().get_or_insert(payload);
            }
            let (count, done_cv) = &*pending;
            let mut guard = count.lock();
            *guard -= 1;
            if *guard == 0 {
                done_cv.notify_all();
            }
        });
        // SAFETY: `Pool::scope` does not return until `pending` reaches
        // zero, i.e. until this task (and its borrows of 'scope data) has
        // finished running, so extending the closure's lifetime to 'static
        // never lets it observe freed stack data.
        let task: Task =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(task) };
        self.pool.shared.injector.push(task);
        self.pool.shared.signal();
    }
}

/// The process-wide pool, sized by `VFPS_THREADS` / available cores on
/// first use.
pub fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(|| PoolBuilder::new().build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn map_preserves_input_order() {
        for threads in [1, 2, 4] {
            let pool = Pool::with_threads(threads);
            let items: Vec<u64> = (0..500).collect();
            let out = pool.par_map_indexed(&items, |i, &x| (i as u64, x * 2));
            assert_eq!(out.len(), 500);
            for (i, (idx, v)) in out.iter().enumerate() {
                assert_eq!(*idx, i as u64);
                assert_eq!(*v, items[i] * 2);
            }
        }
    }

    #[test]
    fn fold_is_bit_identical_across_thread_counts() {
        let items: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 1e3).collect();
        let run = |threads: usize| {
            let pool = Pool::with_threads(threads);
            pool.par_fold(&items, || 0.0f64, |acc, _i, &x| acc + x * 1.000_000_1, |a, b| a + b)
        };
        let base = run(1);
        for threads in [2, 3, 4, 8] {
            let got = run(threads);
            assert_eq!(got.to_bits(), base.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn map_results_are_bit_identical_across_thread_counts() {
        let items: Vec<u64> = (0..300).collect();
        let run = |threads: usize| {
            let pool = Pool::with_threads(threads);
            pool.par_map_indexed(&items, |i, &x| {
                let mut rng = StdRng::seed_from_u64(split_seed(42, i as u64));
                rng.gen::<f64>() * x as f64
            })
        };
        let base = run(1);
        for threads in [2, 4] {
            assert_eq!(run(threads), base, "threads={threads}");
        }
    }

    #[test]
    fn scope_runs_borrowed_tasks() {
        let pool = Pool::with_threads(4);
        let data: Vec<u64> = (0..64).collect();
        let sums = Mutex::new(Vec::new());
        pool.scope(|s| {
            for chunk in data.chunks(8) {
                let sums = &sums;
                s.spawn(move || {
                    sums.lock().push(chunk.iter().sum::<u64>());
                });
            }
        });
        let total: u64 = sums.into_inner().iter().sum();
        assert_eq!(total, data.iter().sum::<u64>());
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = Pool::with_threads(2);
        let outer = pool.par_map_indexed(&[10usize, 20, 30], |_, &n| {
            pool.par_map_indexed(&(0..n).collect::<Vec<_>>(), |_, &x| x).iter().sum::<usize>()
        });
        assert_eq!(outer, vec![45, 190, 435]);
    }

    #[test]
    fn task_panics_propagate() {
        let pool = Pool::with_threads(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("boom"));
            });
        }));
        assert!(result.is_err());
        // The pool stays usable after a propagated panic.
        assert_eq!(pool.par_map_indexed(&[1, 2, 3], |_, &x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn split_seed_is_pure_and_spread_out() {
        assert_eq!(split_seed(7, 3), split_seed(7, 3));
        let seeds: std::collections::HashSet<u64> =
            (0..1000).map(|i| split_seed(12345, i)).collect();
        assert_eq!(seeds.len(), 1000, "per-item seeds must not collide");
        assert_ne!(split_seed(1, 0), split_seed(2, 0));
    }

    #[test]
    fn empty_and_single_inputs() {
        let pool = Pool::with_threads(4);
        let empty: Vec<u32> = Vec::new();
        assert!(pool.par_map_indexed(&empty, |_, &x| x).is_empty());
        let folded = pool.par_fold(&empty, || 5u64, |a, _, _: &u32| a, |a, b| a + b);
        assert_eq!(folded, 5);
        assert_eq!(pool.par_map_indexed(&[9u32], |i, &x| (i, x)), vec![(0, 9)]);
    }

    #[test]
    fn builder_respects_explicit_threads() {
        let pool = PoolBuilder::new().threads(3).build();
        assert_eq!(pool.threads(), 3);
    }

    #[test]
    fn scratch_map_matches_plain_map_across_thread_counts() {
        // Both above and below the sequential-fallback threshold.
        for len in [SEQUENTIAL_BELOW - 1, 10 * SEQUENTIAL_BELOW] {
            let items: Vec<u64> = (0..len as u64).collect();
            let reference: Vec<f64> = {
                let pool = Pool::with_threads(1);
                pool.par_map_indexed(&items, |i, &x| {
                    let mut rng = StdRng::seed_from_u64(split_seed(9, i as u64));
                    rng.gen::<f64>() + x as f64
                })
            };
            for threads in [1usize, 2, 4, 8] {
                let pool = Pool::with_threads(threads);
                let got = pool.par_map_indexed_scratch(&items, Vec::<u8>::new, |scratch, i, &x| {
                    // Scratch is reused as a buffer; contents from prior
                    // items are overwritten, never read.
                    scratch.clear();
                    scratch.extend_from_slice(&x.to_le_bytes());
                    let roundtrip = u64::from_le_bytes(scratch[..8].try_into().expect("8 bytes"));
                    let mut rng = StdRng::seed_from_u64(split_seed(9, i as u64));
                    rng.gen::<f64>() + roundtrip as f64
                });
                assert_eq!(got, reference, "len={len} threads={threads}");
            }
        }
    }

    #[test]
    fn small_inputs_fall_back_to_sequential_with_identical_output() {
        let items: Vec<u64> = (0..SEQUENTIAL_BELOW as u64 - 1).collect();
        let seq = Pool::with_threads(1).par_map_indexed(&items, |i, &x| i as u64 * 31 + x);
        let par = Pool::with_threads(8).par_map_indexed(&items, |i, &x| i as u64 * 31 + x);
        assert_eq!(seq, par);
        let folded = |threads| {
            Pool::with_threads(threads).par_fold(
                &items,
                || 0.0f64,
                |acc, _i, &x| acc + (x as f64).sqrt(),
                |a, b| a + b,
            )
        };
        assert_eq!(folded(1).to_bits(), folded(8).to_bits());
    }
}
