//! Backend-generic protocol driving: run the fed-KNN session over the
//! simulated cluster or over real daemons, with the same typed
//! [`FaultedRun`] outcome either way.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use vfps_data::VerticalPartition;
use vfps_he::scheme::AdditiveHe;
use vfps_ml::linalg::Matrix;
use vfps_net::{Error, FaultPlan, NodeId};
use vfps_vfl::fed_knn::{FedKnnConfig, QueryOutcome};
use vfps_vfl::{knn_server_node, run_threaded_knn_faulted, FaultedRun, KnnSession, ThreadedKnnRun};

use crate::hub::{ClusterStats, Hub, HubOptions, StatsProbe};
use crate::msg::SchemeSpec;

/// A finished real-socket run: the protocol outcome plus the transport
/// accounting the simulated backend reports through its traffic ledger.
#[derive(Debug)]
pub struct ClusterKnnReport {
    /// The typed protocol outcome (complete / degraded / aborted).
    pub run: FaultedRun,
    /// Per-link frame and byte counters, connect/reconnect/kill totals.
    pub stats: ClusterStats,
}

/// Runs one fed-KNN session against real party daemons: the coordinator
/// hosts node 0 in-process (the exact [`knn_server_node`] body the
/// simulated backend runs) and `addrs[slot]` hosts node `1 + slot`.
///
/// Fault-free, the outcomes — and the logical byte/message totals — are
/// bit-identical to [`run_threaded_knn_faulted`] with the same session
/// and an empty plan, provided the scheme's aggregation is
/// arrival-order-exact (Paillier's modular addition is; see the pinned
/// cross-backend test).
///
/// # Errors
/// I/O error only for setup failures (unreachable daemon, refused
/// session). Failures *during* the protocol are never an `Err`: they
/// surface as [`FaultedRun::Degraded`] / [`FaultedRun::Aborted`].
pub fn run_cluster_knn<H: AdditiveHe>(
    he: &Arc<H>,
    session: &KnnSession,
    shuffle_seed: u64,
    scheme: SchemeSpec,
    addrs: &[String],
    opts: &HubOptions,
) -> std::io::Result<ClusterKnnReport> {
    run_cluster_knn_supervised(he, session, shuffle_seed, scheme, addrs, opts, |_| {})
}

/// [`run_cluster_knn`] with a supervision hook: `supervise` receives a
/// [`StatsProbe`] right after every daemon passed setup, before the first
/// protocol frame. The kill-matrix harness uses it to spawn a watcher
/// thread that `SIGKILL`s a real daemon once the probe shows the protocol
/// mid-flight — progress-gated, not wall-clock-guessed.
///
/// # Errors
/// Same contract as [`run_cluster_knn`].
pub fn run_cluster_knn_supervised<H: AdditiveHe>(
    he: &Arc<H>,
    session: &KnnSession,
    shuffle_seed: u64,
    scheme: SchemeSpec,
    addrs: &[String],
    opts: &HubOptions,
    supervise: impl FnOnce(StatsProbe),
) -> std::io::Result<ClusterKnnReport> {
    let p = session.parties.len();
    let mut hub = Hub::connect(addrs, session, shuffle_seed, scheme, opts)?;
    supervise(hub.probe());

    let server = {
        vfps_obs::span!("cluster.run");
        knn_server_node(&hub, he, session)
    };

    // Collect terminal frames. The leader decides the run's fate; the
    // other daemons finish at essentially the same moment, so a short
    // grace per slot suffices.
    let leader = hub.wait_result(0, opts.result_timeout);
    let grace = Duration::from_secs(5);
    let others: Vec<Option<_>> = (1..p).map(|slot| hub.wait_result(slot, grace)).collect();

    let mut dropped = vec![false; p + 1];
    match &server {
        Err(_) => dropped[0] = true,
        Ok(dead_slots) => {
            for &slot in dead_slots {
                dropped[1 + slot] = true;
            }
        }
    }
    let mark_slot = |dropped: &mut Vec<bool>, slot: usize, r: &Option<Result<_, Error>>| match r {
        None | Some(Err(_)) => dropped[1 + slot] = true,
        Some(Ok((_, dead_slots))) => {
            for &s in dead_slots {
                dropped[1 + s] = true;
            }
        }
    };
    mark_slot(&mut dropped, 0, &leader);
    for (i, r) in others.iter().enumerate() {
        mark_slot(&mut dropped, 1 + i, r);
    }

    hub.shutdown();
    let stats = hub.stats();
    vfps_obs::gauge_set("cluster.run.total_bytes", stats.logical_bytes() as f64);
    vfps_obs::gauge_set("cluster.run.total_messages", stats.logical_messages() as f64);

    let dropouts: Vec<NodeId> = (0..=p).filter(|&n| dropped[n]).collect();
    let run = match leader {
        Some(Ok((outcomes, _))) => {
            let run = ThreadedKnnRun {
                outcomes,
                total_bytes: stats.logical_bytes(),
                total_messages: stats.logical_messages(),
                dropouts: dropouts.clone(),
            };
            if dropouts.is_empty() {
                FaultedRun::Complete(run)
            } else {
                FaultedRun::Degraded(run)
            }
        }
        Some(Err(error)) => FaultedRun::Aborted { error, dropouts },
        None => FaultedRun::Aborted {
            error: server
                .err()
                .unwrap_or(Error::Timeout { peer: Some(1), waited: opts.result_timeout }),
            dropouts,
        },
    };
    Ok(ClusterKnnReport { run, stats })
}

/// Which transport carries a protocol run. The protocol bodies are
/// identical either way; only the [`Channel`](vfps_net::Channel)
/// implementation differs.
#[derive(Clone, Debug)]
pub enum Backend {
    /// Threads and crossbeam channels in-process, with optional
    /// deterministic fault injection.
    Sim {
        /// Fault plan for the run (empty = fault-free).
        faults: FaultPlan,
    },
    /// Real party daemons over TCP, one address per consortium slot.
    Tcp {
        /// Daemon addresses, in slot order.
        addrs: Vec<String>,
        /// Scheme recipe shipped to the daemons (must describe the same
        /// scheme as the coordinator's handle).
        scheme: SchemeSpec,
        /// Connection-supervision knobs.
        opts: HubOptions,
    },
}

/// Runs the fed-KNN protocol over the chosen backend.
///
/// For [`Backend::Sim`] the caller's `x`/`partition` feed every node; for
/// [`Backend::Tcp`] the daemons hold their own columns and `x`/`partition`
/// are only used by... nothing — they are ignored, which is the point:
/// the coordinator never sees raw features.
///
/// # Errors
/// Setup-level I/O errors from the TCP backend; the sim backend cannot
/// fail setup.
#[allow(clippy::too_many_arguments)]
pub fn run_knn_backend<H: AdditiveHe + 'static>(
    he: &Arc<H>,
    x: &Matrix,
    partition: &VerticalPartition,
    parties: &[usize],
    db_rows: &[usize],
    queries: &[usize],
    cfg: FedKnnConfig,
    shuffle_seed: u64,
    backend: &Backend,
) -> std::io::Result<(FaultedRun, Option<ClusterStats>)> {
    match backend {
        Backend::Sim { faults } => {
            let run = run_threaded_knn_faulted(
                he,
                x,
                partition,
                parties,
                db_rows,
                queries,
                cfg,
                shuffle_seed,
                faults,
            );
            Ok((run, None))
        }
        Backend::Tcp { addrs, scheme, opts } => {
            let session = KnnSession::new(parties, db_rows, queries, cfg, shuffle_seed);
            let report = run_cluster_knn(he, &session, shuffle_seed, *scheme, addrs, opts)?;
            Ok((report.run, Some(report.stats)))
        }
    }
}

/// Indexes a run's outcomes by query row — the memo shape
/// `VfpsSmSelector::run_over` accepts, letting a selection replay a
/// cluster run's fed-KNN artifacts without re-executing the protocol.
#[must_use]
pub fn outcome_memo(queries: &[usize], outcomes: &[QueryOutcome]) -> HashMap<usize, QueryOutcome> {
    queries.iter().copied().zip(outcomes.iter().cloned()).collect()
}
