//! # vfps-cluster — the real-socket party plane
//!
//! Runs the fed-KNN protocol of `vfps-vfl` over actual TCP instead of
//! in-process channels, with the *same* protocol bodies on both backends
//! (they are generic over [`vfps_net::Channel`]):
//!
//! * [`party`] — the party daemon: holds one party's feature columns,
//!   serves protocol sessions over a listener, answers idempotent health
//!   probes, and survives malformed peers. [`party::PartyChannel`] is the
//!   daemon-side [`Channel`](vfps_net::Channel) implementation.
//! * [`hub`] — the coordinator: dials the daemons with a reconnect
//!   budget, hosts node 0 in-process, relays participant ⇄ participant
//!   frames, and maps socket death onto the typed
//!   [`vfps_net::Error`] taxonomy as peer departures.
//! * [`msg`] — the coordinator ⇄ daemon control frames (setup, routing,
//!   departures, terminal results), length-prefixed via `net::wire`.
//! * [`run`] — backend-generic driving: [`run::run_cluster_knn`] over
//!   daemons, [`run::Backend`] to pick sim vs TCP per config, and the
//!   memo bridge into the selection layer.
//!
//! Determinism: both backends derive the pseudo-ID permutation from the
//! same seed through [`vfps_vfl::KnnSession::new`], and with an
//! arrival-order-exact scheme (Paillier) the per-query outcomes — and the
//! logical byte/message totals — are bit-identical across backends. The
//! cross-backend test pins this.

#![warn(missing_docs)]

pub mod hub;
pub mod msg;
pub mod party;
pub mod run;

pub use hub::{ping_party, ClusterStats, Hub, HubOptions, PartyLinkStats, StatsProbe};
pub use msg::{ClusterMsg, ErrorFrame, SchemeKind, SchemeSpec, SetupFrame};
pub use party::{serve_party, PartyChannel, PartyConfig, PartyReport};
pub use run::{
    outcome_memo, run_cluster_knn, run_cluster_knn_supervised, run_knn_backend, Backend,
    ClusterKnnReport,
};
