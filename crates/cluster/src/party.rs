//! The party daemon: one process (or thread) holding one party's feature
//! columns, serving fed-KNN protocol sessions over a TCP socket.
//!
//! A daemon listens, accepts one coordinator connection at a time, and per
//! connection answers [`ClusterMsg::Ping`] probes and at most one
//! [`ClusterMsg::Setup`] — the session runs the *same*
//! [`knn_participant_node`] body the simulated cluster runs, over a
//! [`PartyChannel`] that implements [`Channel<ProtoMsg>`] on the socket.
//! Bad frames from a peer never kill the daemon: the connection is
//! answered with a typed [`ClusterMsg::Failed`] (or dropped) and the
//! accept loop continues.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use vfps_data::VerticalPartition;
use vfps_he::scheme::{AdditiveHe, PaillierHe, PlainHe};
use vfps_ml::linalg::Matrix;
use vfps_net::channel::Channel;
use vfps_net::cluster::Envelope;
use vfps_net::wire::{read_frame, write_frame, Wire};
use vfps_net::{Error, NodeId, TransportFailure};
use vfps_vfl::{knn_participant_node, KnnSession, ProtoMsg};

use crate::msg::{ClusterMsg, ErrorFrame, SchemeKind, SetupFrame};

/// How long a daemon waits for the first frame of a connection (and
/// between control frames) before giving up on the peer.
const SETUP_TIMEOUT: Duration = Duration::from_secs(30);

/// Operational knobs for one party daemon.
#[derive(Clone, Debug)]
pub struct PartyConfig {
    /// The party id this daemon holds columns for. Setups naming another
    /// party at this daemon's slot are refused.
    pub party_id: usize,
    /// Serve this many protocol sessions, then return (`None` = forever).
    pub max_sessions: Option<usize>,
    /// Fault knob: die *abruptly* — socket dropped mid-protocol, no
    /// `Failed` frame — after this many channel operations. The in-process
    /// analogue of `SIGKILL` at a deterministic protocol point; the
    /// process-level kill matrix uses real signals instead.
    pub kill_after_ops: Option<u64>,
}

impl PartyConfig {
    /// A well-behaved daemon for `party_id` serving sessions forever.
    #[must_use]
    pub fn new(party_id: usize) -> Self {
        PartyConfig { party_id, max_sessions: None, kill_after_ops: None }
    }
}

/// What a bounded [`serve_party`] run did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PartyReport {
    /// Protocol sessions entered (including killed ones).
    pub sessions: usize,
    /// Whether the kill knob fired during the last session.
    pub killed: bool,
}

/// Runs the daemon accept loop over `listener`.
///
/// Returns after [`PartyConfig::max_sessions`] protocol sessions, or never
/// (propagating only `accept` failures) when unbounded.
///
/// # Errors
/// Only on listener-level I/O failure; per-connection errors are handled
/// by refusing the connection and continuing.
pub fn serve_party(
    listener: &TcpListener,
    x: &Matrix,
    partition: &VerticalPartition,
    cfg: &PartyConfig,
) -> std::io::Result<PartyReport> {
    let mut report = PartyReport::default();
    loop {
        if let Some(max) = cfg.max_sessions {
            if report.sessions >= max {
                return Ok(report);
            }
        }
        let (stream, _peer) = listener.accept()?;
        vfps_obs::counter_add("cluster.party.connections", 1);
        match handle_conn(&stream, x, partition, cfg) {
            ConnOutcome::Probe => {}
            ConnOutcome::Session { killed } => {
                report.sessions += 1;
                report.killed = killed;
            }
        }
    }
}

enum ConnOutcome {
    /// Pings only (or garbage); no protocol session ran.
    Probe,
    /// A `Setup` was received and a session ran (possibly dying mid-way).
    Session { killed: bool },
}

/// Serves one coordinator connection: answers pings until a `Setup`
/// arrives, then runs the protocol session and closes.
fn handle_conn(
    stream: &TcpStream,
    x: &Matrix,
    partition: &VerticalPartition,
    cfg: &PartyConfig,
) -> ConnOutcome {
    let _ = stream.set_nodelay(true);
    loop {
        if stream.set_read_timeout(Some(SETUP_TIMEOUT)).is_err() {
            return ConnOutcome::Probe;
        }
        match read_frame::<_, ClusterMsg>(&mut &*stream) {
            Ok(Some(ClusterMsg::Ping { nonce })) => {
                if write_frame(&mut &*stream, &ClusterMsg::Pong { nonce }).is_err() {
                    return ConnOutcome::Probe;
                }
            }
            Ok(Some(ClusterMsg::Setup(frame))) => {
                return match run_setup(stream, x, partition, cfg, &frame) {
                    // A refused setup never entered the protocol: the
                    // connection is spent, the session budget is not.
                    SetupOutcome::Refused => ConnOutcome::Probe,
                    SetupOutcome::Ran { killed } => ConnOutcome::Session { killed },
                };
            }
            Ok(Some(other)) => {
                refuse(stream, Error::violation(format!("expected Setup or Ping, got {other:?}")));
                return ConnOutcome::Probe;
            }
            // Peer closed between frames (health probe done), or sent
            // bytes the codec rejects: refuse and survive either way.
            Ok(None) => return ConnOutcome::Probe,
            Err(e) => {
                let failure = TransportFailure::classify_frame(&e, SETUP_TIMEOUT);
                if let TransportFailure::Protocol { detail } = failure {
                    refuse(stream, Error::violation(detail));
                }
                return ConnOutcome::Probe;
            }
        }
    }
}

/// Best-effort typed refusal; the peer may already be gone.
fn refuse(stream: &TcpStream, e: Error) {
    let _ = write_frame(&mut &*stream, &ClusterMsg::Failed(ErrorFrame::from_error(&e)));
}

/// What a `Setup` frame led to.
enum SetupOutcome {
    /// Invalid setup: typed refusal sent, protocol never entered.
    Refused,
    /// The protocol body ran (possibly dying via the kill knob).
    Ran { killed: bool },
}

/// Validates a setup and dispatches to the scheme-monomorphized session
/// runner.
fn run_setup(
    stream: &TcpStream,
    x: &Matrix,
    partition: &VerticalPartition,
    cfg: &PartyConfig,
    frame: &SetupFrame,
) -> SetupOutcome {
    let session = match frame.session() {
        Ok(s) => s,
        Err(e) => {
            refuse(stream, e);
            return SetupOutcome::Refused;
        }
    };
    if session.parties[frame.slot] != cfg.party_id {
        refuse(
            stream,
            Error::violation(format!(
                "slot {} names party {}, daemon holds party {}",
                frame.slot, session.parties[frame.slot], cfg.party_id
            )),
        );
        return SetupOutcome::Refused;
    }
    match frame.scheme.kind {
        SchemeKind::Plain => {
            let he = Arc::new(PlainHe::new(frame.scheme.batch.max(1)));
            SetupOutcome::Ran {
                killed: run_session(stream, &he, &session, frame.slot, x, partition, cfg),
            }
        }
        SchemeKind::Paillier => {
            match PaillierHe::generate(frame.scheme.key_bits, frame.scheme.batch, frame.scheme.seed)
            {
                Ok(he) => {
                    let he = Arc::new(he);
                    SetupOutcome::Ran {
                        killed: run_session(stream, &he, &session, frame.slot, x, partition, cfg),
                    }
                }
                Err(e) => {
                    refuse(stream, Error::violation(format!("scheme generation failed: {e}")));
                    SetupOutcome::Refused
                }
            }
        }
    }
}

/// Runs one protocol session as node `1 + slot` over the socket. Returns
/// whether the kill knob fired (in which case the socket is dropped with
/// no terminal frame — the coordinator observes an abrupt death, exactly
/// as it would a `SIGKILL`ed process).
fn run_session<H: AdditiveHe>(
    stream: &TcpStream,
    he: &Arc<H>,
    session: &KnnSession,
    slot: usize,
    x: &Matrix,
    partition: &VerticalPartition,
    cfg: &PartyConfig,
) -> bool {
    let (view, qfeats) = session.local_inputs(x, partition, slot);
    if write_frame(&mut &*stream, &ClusterMsg::Ready { party_id: cfg.party_id }).is_err() {
        return false;
    }
    let ch = PartyChannel::new(stream, 1 + slot, session.parties.len() + 1, cfg.kill_after_ops);
    vfps_obs::counter_add("cluster.party.sessions", 1);
    match knn_participant_node(&ch, he, session, slot, &view, &qfeats) {
        Ok((outcomes, dead_slots)) => {
            let _ = write_frame(&mut &*stream, &ClusterMsg::Finished { outcomes, dead_slots });
            false
        }
        // The kill knob: drop the socket without a word.
        Err(Error::Killed { .. }) => true,
        Err(e) => {
            refuse(stream, e);
            false
        }
    }
}

/// A daemon's view of the cluster message plane: [`Channel<ProtoMsg>`]
/// over the single socket to the coordinator hub, which routes frames
/// between nodes and broadcasts peer departures.
///
/// Mirrors the simulated [`NodeCtx`](vfps_net::cluster::NodeCtx)
/// semantics the [`Channel`] contract documents: envelopes interleaved by
/// other senders are buffered for later receives, other peers' departures
/// are consumed silently by directed receives, and a receive that can
/// never complete reports the last departed peer. Hub-socket death is a
/// hangup of node 0 — without the coordinator nothing can be routed.
///
/// A deadline that expires mid-frame can leave the stream desynchronized;
/// the protocol treats any timeout as a dead peer, so the session is
/// already lost at that point — matching a real mesh, where a deadline on
/// a stalled stream tears the stream down.
pub struct PartyChannel<'a> {
    stream: &'a TcpStream,
    me: NodeId,
    nodes: usize,
    state: RefCell<PartyChanState>,
}

struct PartyChanState {
    reorder: VecDeque<Envelope<ProtoMsg>>,
    departed: BTreeMap<NodeId, bool>,
    last_departed: Option<NodeId>,
    ops: u64,
    kill_after: Option<u64>,
}

/// One event consumed off the socket.
enum Polled {
    Msg(Envelope<ProtoMsg>),
    Departure { node: NodeId, clean: bool },
}

impl<'a> PartyChannel<'a> {
    /// Wraps `stream` as node `me` of a `nodes`-node session.
    #[must_use]
    pub fn new(
        stream: &'a TcpStream,
        me: NodeId,
        nodes: usize,
        kill_after: Option<u64>,
    ) -> PartyChannel<'a> {
        PartyChannel {
            stream,
            me,
            nodes,
            state: RefCell::new(PartyChanState {
                reorder: VecDeque::new(),
                departed: BTreeMap::new(),
                last_departed: None,
                ops: 0,
                kill_after,
            }),
        }
    }

    /// Counts one channel operation, firing the kill knob at its budget.
    fn tick(&self) -> Result<(), Error> {
        let mut st = self.state.borrow_mut();
        st.ops += 1;
        match st.kill_after {
            Some(limit) if st.ops > limit => Err(Error::Killed { node: self.me, op: st.ops }),
            _ => Ok(()),
        }
    }

    /// True when every peer (every node but `me`) has departed.
    fn starved(&self, st: &PartyChanState) -> bool {
        (0..self.nodes).filter(|&n| n != self.me).all(|n| st.departed.contains_key(&n))
    }

    /// Blocks up to `remaining` for one frame, translating socket failures
    /// onto the typed taxonomy. `total` is the caller's full deadline, for
    /// timeout reporting.
    fn poll(&self, remaining: Duration, total: Duration) -> Result<Polled, Error> {
        // A zero read timeout means "no timeout" to the OS; clamp up.
        let slice = remaining.max(Duration::from_millis(1));
        if self.stream.set_read_timeout(Some(slice)).is_err() {
            return Err(Error::Hangup { peer: 0 });
        }
        match read_frame::<_, ClusterMsg>(&mut &*self.stream) {
            Ok(Some(ClusterMsg::Routed { from, to, payload })) => {
                if to != self.me {
                    return Err(Error::violation(format!(
                        "hub routed a frame for node {to} to node {}",
                        self.me
                    )));
                }
                let msg = ProtoMsg::from_bytes(&payload)
                    .map_err(|e| Error::violation(format!("undecodable routed payload: {e}")))?;
                Ok(Polled::Msg(Envelope { from, msg }))
            }
            Ok(Some(ClusterMsg::Departed { node, clean })) => {
                let mut st = self.state.borrow_mut();
                st.departed.insert(node, clean);
                st.last_departed = Some(node);
                Ok(Polled::Departure { node, clean })
            }
            Ok(Some(other)) => {
                Err(Error::violation(format!("unexpected control frame mid-session: {other:?}")))
            }
            // Hub closed the socket: the coordinator — and with it node 0
            // and every route — is gone.
            Ok(None) => Err(Error::Hangup { peer: 0 }),
            Err(e) => match TransportFailure::classify_frame(&e, total) {
                TransportFailure::Timeout { waited } => Err(Error::Timeout { peer: None, waited }),
                TransportFailure::Hangup => Err(Error::Hangup { peer: 0 }),
                TransportFailure::Protocol { detail } => Err(Error::violation(detail)),
            },
        }
    }
}

impl Channel<ProtoMsg> for PartyChannel<'_> {
    fn send(&self, to: NodeId, msg: ProtoMsg) -> Result<(), Error> {
        self.tick()?;
        if self.state.borrow().departed.contains_key(&to) {
            return Err(Error::Hangup { peer: to });
        }
        let frame = ClusterMsg::Routed { from: self.me, to, payload: msg.to_bytes() };
        write_frame(&mut &*self.stream, &frame).map_err(|_| Error::Hangup { peer: to })
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope<ProtoMsg>, Error> {
        self.tick()?;
        if let Some(env) = self.state.borrow_mut().reorder.pop_front() {
            return Ok(env);
        }
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(Error::Timeout { peer: None, waited: timeout });
            }
            match self.poll(remaining, timeout) {
                Ok(Polled::Msg(env)) => return Ok(env),
                Ok(Polled::Departure { node, clean }) => {
                    let st = self.state.borrow();
                    if !clean {
                        return Err(Error::Hangup { peer: node });
                    }
                    if self.starved(&st) {
                        return Err(Error::Hangup { peer: st.last_departed.unwrap_or(node) });
                    }
                }
                // The read deadline fired early (clock slicing); loop to
                // re-check the caller's deadline.
                Err(Error::Timeout { .. }) => {}
                Err(e) => return Err(e),
            }
        }
    }

    fn recv_from_timeout(&self, from: NodeId, timeout: Duration) -> Result<ProtoMsg, Error> {
        self.tick()?;
        {
            let mut st = self.state.borrow_mut();
            if let Some(pos) = st.reorder.iter().position(|env| env.from == from) {
                let env = st.reorder.remove(pos).expect("position just found");
                return Ok(env.msg);
            }
            if st.departed.contains_key(&from) {
                return Err(Error::Hangup { peer: from });
            }
        }
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(Error::Timeout { peer: Some(from), waited: timeout });
            }
            match self.poll(remaining, timeout) {
                Ok(Polled::Msg(env)) => {
                    if env.from == from {
                        return Ok(env.msg);
                    }
                    self.state.borrow_mut().reorder.push_back(env);
                }
                // Other peers' departures — clean or not — are recorded
                // silently; only the awaited sender's departure fails the
                // directed receive.
                Ok(Polled::Departure { node, .. }) => {
                    if node == from {
                        return Err(Error::Hangup { peer: from });
                    }
                }
                Err(Error::Timeout { peer: None, waited }) => {
                    if deadline.saturating_duration_since(Instant::now()).is_zero() {
                        return Err(Error::Timeout { peer: Some(from), waited });
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn is_departed(&self, node: NodeId) -> bool {
        self.state.borrow().departed.contains_key(&node)
    }
}
