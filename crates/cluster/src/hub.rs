//! The coordinator hub: node 0 of the protocol, plus the router that
//! carries every other node's traffic.
//!
//! The hub dials each party daemon (one socket per party, with a
//! reconnect budget for the idempotent setup/probe phase), ships a
//! [`SetupFrame`], and then becomes the session's message plane: a reader
//! thread per daemon turns inbound [`ClusterMsg::Routed`] frames into
//! either node-0 deliveries or daemon→daemon relays, and socket death is
//! classified onto the [`vfps_net::Error`] taxonomy and broadcast to the
//! survivors as [`ClusterMsg::Departed`] — exactly the departure
//! machinery the simulated cluster implements in-process.
//!
//! The [`Hub`] itself implements [`Channel<ProtoMsg>`], so
//! [`knn_server_node`](vfps_vfl::knn_server_node) runs over it unchanged.
//!
//! Reconnects are *setup-scoped*: a connect or probe may be retried
//! because it is idempotent, but a socket lost mid-protocol is a peer
//! death (the daemon's session state died with the stream), surfaced as a
//! departure so the PR-2 degradation paths take over.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use vfps_net::channel::Channel;
use vfps_net::cluster::Envelope;
use vfps_net::wire::{read_frame, write_frame, FrameError, Wire};
use vfps_net::{Error, NodeId, TransportFailure};
use vfps_vfl::fed_knn::QueryOutcome;
use vfps_vfl::{KnnSession, ProtoMsg};

use crate::msg::{ClusterMsg, SchemeSpec, SetupFrame};

/// Connection-supervision knobs for a coordinator.
#[derive(Clone, Copy, Debug)]
pub struct HubOptions {
    /// Per-attempt TCP connect deadline.
    pub connect_timeout: Duration,
    /// Total connect attempts per daemon (the reconnect budget: up to
    /// `connect_budget - 1` retries).
    pub connect_budget: u32,
    /// Sleep between connect attempts.
    pub connect_backoff: Duration,
    /// Read deadline for setup-phase replies (`Ready`, `Pong`).
    pub io_timeout: Duration,
    /// How long to wait for a daemon's terminal frame after the server
    /// body returns.
    pub result_timeout: Duration,
}

impl Default for HubOptions {
    fn default() -> Self {
        HubOptions {
            connect_timeout: Duration::from_secs(2),
            connect_budget: 40,
            connect_backoff: Duration::from_millis(50),
            io_timeout: Duration::from_secs(10),
            result_timeout: Duration::from_secs(10),
        }
    }
}

/// Payload-level traffic counters for one coordinator⇄daemon link.
#[derive(Clone, Copy, Debug, Default)]
pub struct PartyLinkStats {
    /// Routed protocol frames received from the daemon (whatever their
    /// destination).
    pub frames_in: u64,
    /// Encoded [`ProtoMsg`] bytes received from the daemon.
    pub bytes_in: u64,
    /// Routed protocol frames node 0 sent to the daemon.
    pub frames_out: u64,
    /// Encoded [`ProtoMsg`] bytes node 0 sent to the daemon.
    pub bytes_out: u64,
}

/// One cluster run's transport accounting.
#[derive(Clone, Debug, Default)]
pub struct ClusterStats {
    /// Per-slot link counters.
    pub per_party: Vec<PartyLinkStats>,
    /// Successful daemon connections.
    pub connects: u64,
    /// Connect retries consumed out of the budget.
    pub reconnects: u64,
    /// Abrupt daemon deaths observed (socket died with no terminal frame
    /// — the signature of a `SIGKILL`).
    pub kills_observed: u64,
}

impl ClusterStats {
    /// Total encoded protocol bytes, counted once per logical send — the
    /// quantity the simulated [`TrafficLedger`](vfps_net::TrafficLedger)
    /// reports, so the two backends are comparable (and, fault-free,
    /// equal).
    #[must_use]
    pub fn logical_bytes(&self) -> u64 {
        self.per_party.iter().map(|s| s.bytes_in + s.bytes_out).sum()
    }

    /// Total protocol messages, counted once per logical send.
    #[must_use]
    pub fn logical_messages(&self) -> u64 {
        self.per_party.iter().map(|s| s.frames_in + s.frames_out).sum()
    }
}

/// Per-link atomics behind [`PartyLinkStats`].
#[derive(Default)]
struct LinkCounters {
    frames_in: AtomicU64,
    bytes_in: AtomicU64,
    frames_out: AtomicU64,
    bytes_out: AtomicU64,
}

/// A daemon's terminal result as observed by the hub.
type SlotResult = Result<(Vec<QueryOutcome>, Vec<usize>), Error>;

/// State shared between the hub and its reader threads.
struct HubShared {
    writers: Vec<Mutex<TcpStream>>,
    /// Authoritative departure record (`Some(clean)`), used to fire each
    /// departure's broadcast exactly once.
    departed: Mutex<Vec<Option<bool>>>,
    /// Terminal results, filled by reader threads.
    results: Mutex<Vec<Option<SlotResult>>>,
    tx: Sender<HubEvent>,
    links: Vec<LinkCounters>,
    kills_observed: AtomicU64,
    shutdown: AtomicBool,
}

/// What a reader thread feeds the node-0 channel.
enum HubEvent {
    Msg(Envelope<ProtoMsg>),
    Departed { node: NodeId, clean: bool },
}

impl HubShared {
    fn write_to(&self, slot: usize, frame: &ClusterMsg) -> std::io::Result<()> {
        let mut stream = self.writers[slot].lock();
        write_frame(&mut *stream, frame)
    }

    /// Records a departure exactly once: event to node 0, broadcast to the
    /// surviving daemons. `abrupt` marks a socket that died without a
    /// terminal frame — a killed process.
    fn depart(&self, slot: usize, clean: bool, abrupt: bool) {
        {
            let mut d = self.departed.lock();
            if d[slot].is_some() {
                return;
            }
            d[slot] = Some(clean);
        }
        if abrupt {
            self.kills_observed.fetch_add(1, Ordering::Relaxed);
            vfps_obs::counter_add("cluster.kills_observed", 1);
        }
        let node = 1 + slot;
        let _ = self.tx.send(HubEvent::Departed { node, clean });
        let gone: Vec<usize> = {
            let d = self.departed.lock();
            (0..d.len()).filter(|&s| d[s].is_some()).collect()
        };
        for other in 0..self.writers.len() {
            if other != slot && !gone.contains(&other) {
                let _ = self.write_to(other, &ClusterMsg::Departed { node, clean });
            }
        }
    }

    /// Stores a slot's terminal result (first writer wins).
    fn set_result(&self, slot: usize, r: SlotResult) {
        let mut res = self.results.lock();
        if res[slot].is_none() {
            res[slot] = Some(r);
        }
    }

    fn has_result(&self, slot: usize) -> bool {
        self.results.lock()[slot].is_some()
    }

    fn link_stats(&self) -> Vec<PartyLinkStats> {
        self.links
            .iter()
            .map(|l| PartyLinkStats {
                frames_in: l.frames_in.load(Ordering::Relaxed),
                bytes_in: l.bytes_in.load(Ordering::Relaxed),
                frames_out: l.frames_out.load(Ordering::Relaxed),
                bytes_out: l.bytes_out.load(Ordering::Relaxed),
            })
            .collect()
    }
}

/// A detachable, `Send + Sync` live view of the hub's transport counters.
///
/// The [`Hub`] itself is not `Sync` (its node-0 inbox is single-consumer),
/// so a supervisor thread cannot poll `hub.stats()` while another thread
/// drives the protocol. A probe can: the kill-matrix harness uses one to
/// gate a real `SIGKILL` on observed protocol progress (frames seen from
/// the victim daemon) instead of wall-clock guesswork.
#[derive(Clone)]
pub struct StatsProbe {
    shared: Arc<HubShared>,
    connects: u64,
    reconnects: u64,
}

impl StatsProbe {
    /// Snapshot of the run's transport accounting so far.
    #[must_use]
    pub fn stats(&self) -> ClusterStats {
        ClusterStats {
            per_party: self.shared.link_stats(),
            connects: self.connects,
            reconnects: self.reconnects,
            kills_observed: self.shared.kills_observed.load(Ordering::Relaxed),
        }
    }
}

/// Resolves `addr` and dials it, retrying within the budget. Returns the
/// stream and how many retries were consumed.
fn connect_with_budget(addr: &str, opts: &HubOptions) -> std::io::Result<(TcpStream, u64)> {
    let mut retries = 0u64;
    let mut last_err: Option<std::io::Error> = None;
    for attempt in 0..opts.connect_budget.max(1) {
        if attempt > 0 {
            retries += 1;
            vfps_obs::counter_add("cluster.reconnects", 1);
            std::thread::sleep(opts.connect_backoff);
        }
        let resolved: Vec<SocketAddr> = match addr.to_socket_addrs() {
            Ok(it) => it.collect(),
            Err(e) => {
                last_err = Some(e);
                continue;
            }
        };
        let Some(sa) = resolved.first() else {
            last_err = Some(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("{addr}: no usable address"),
            ));
            continue;
        };
        match TcpStream::connect_timeout(sa, opts.connect_timeout) {
            Ok(stream) => {
                vfps_obs::counter_add("cluster.connects", 1);
                return Ok((stream, retries));
            }
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::TimedOut, format!("{addr}: connect budget spent"))
    }))
}

/// Idempotent health probe: dials `addr` within the reconnect budget,
/// sends [`ClusterMsg::Ping`], and waits for the matching pong. Safe to
/// retry any number of times — the daemon holds no state for it.
///
/// # Errors
/// I/O error when the budget is spent or the daemon answers with anything
/// but the matching pong within the deadline.
pub fn ping_party(addr: &str, opts: &HubOptions) -> std::io::Result<Duration> {
    let (stream, _) = connect_with_budget(addr, opts)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(opts.io_timeout))?;
    let nonce = 0x7666_7073_7069_6e67; // arbitrary, echoed back verbatim
    let started = Instant::now();
    write_frame(&mut &stream, &ClusterMsg::Ping { nonce })?;
    match read_frame::<_, ClusterMsg>(&mut &stream) {
        Ok(Some(ClusterMsg::Pong { nonce: n })) if n == nonce => Ok(started.elapsed()),
        Ok(other) => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{addr}: expected Pong, got {other:?}"),
        )),
        Err(e) => Err(std::io::Error::other(format!("{addr}: {e}"))),
    }
}

/// Node-0 channel bookkeeping (consumed departures, reorder buffer) —
/// the same structure the simulated `NodeCtx` keeps per node.
struct HubChanState {
    reorder: VecDeque<Envelope<ProtoMsg>>,
    departed: BTreeMap<NodeId, bool>,
    last_departed: Option<NodeId>,
}

/// The coordinator: dials the daemons, runs setup, relays traffic, and
/// acts as node 0 of the protocol via its [`Channel`] implementation.
pub struct Hub {
    shared: Arc<HubShared>,
    rx: Receiver<HubEvent>,
    state: RefCell<HubChanState>,
    readers: Vec<JoinHandle<()>>,
    reconnects: u64,
    p: usize,
}

impl Hub {
    /// Dials one daemon per consortium slot, ships each its
    /// [`SetupFrame`], waits for every [`ClusterMsg::Ready`], and starts
    /// the relay plane.
    ///
    /// # Errors
    /// I/O error when a daemon cannot be reached within its connect
    /// budget, refuses the setup, or fails the `Ready` handshake.
    pub fn connect(
        addrs: &[String],
        session: &KnnSession,
        shuffle_seed: u64,
        scheme: SchemeSpec,
        opts: &HubOptions,
    ) -> std::io::Result<Hub> {
        let p = session.parties.len();
        assert_eq!(addrs.len(), p, "one daemon address per consortium slot");
        let mut streams = Vec::with_capacity(p);
        let mut reconnects = 0u64;
        for (slot, addr) in addrs.iter().enumerate() {
            let (stream, retries) = connect_with_budget(addr, opts)?;
            reconnects += retries;
            stream.set_nodelay(true).ok();
            stream.set_read_timeout(Some(opts.io_timeout))?;
            let setup = SetupFrame::for_slot(session, shuffle_seed, slot, scheme);
            write_frame(&mut &stream, &ClusterMsg::Setup(setup))?;
            match read_frame::<_, ClusterMsg>(&mut &stream) {
                Ok(Some(ClusterMsg::Ready { party_id })) if party_id == session.parties[slot] => {}
                Ok(Some(ClusterMsg::Failed(ef))) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("{addr}: daemon refused setup: {}", ef.to_error()),
                    ));
                }
                Ok(other) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!(
                            "{addr}: expected Ready for party {}, got {other:?}",
                            session.parties[slot]
                        ),
                    ));
                }
                Err(e) => {
                    return Err(std::io::Error::other(format!(
                        "{addr}: ready handshake failed: {e}"
                    )));
                }
            }
            streams.push(stream);
        }

        let (tx, rx) = unbounded();
        let shared = Arc::new(HubShared {
            writers: streams
                .iter()
                .map(|s| Mutex::new(s.try_clone().expect("clone hub socket for writing")))
                .collect(),
            departed: Mutex::new(vec![None; p]),
            results: Mutex::new((0..p).map(|_| None).collect()),
            tx,
            links: (0..p).map(|_| LinkCounters::default()).collect(),
            kills_observed: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        let readers = streams
            .into_iter()
            .enumerate()
            .map(|(slot, stream)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hub-reader-{slot}"))
                    .spawn(move || reader_loop(&shared, slot, &stream))
                    .expect("spawn hub reader")
            })
            .collect();
        Ok(Hub {
            shared,
            rx,
            state: RefCell::new(HubChanState {
                reorder: VecDeque::new(),
                departed: BTreeMap::new(),
                last_departed: None,
            }),
            readers,
            reconnects,
            p,
        })
    }

    /// Waits up to `deadline` for `slot`'s terminal result. `None` when
    /// the daemon reported nothing in time (it is then presumed dead).
    pub fn wait_result(&self, slot: usize, deadline: Duration) -> Option<SlotResult> {
        let until = Instant::now() + deadline;
        loop {
            if let Some(r) = self.shared.results.lock()[slot].clone() {
                return Some(r);
            }
            if Instant::now() >= until {
                return None;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Snapshot of the run's transport accounting.
    #[must_use]
    pub fn stats(&self) -> ClusterStats {
        self.probe().stats()
    }

    /// A detachable [`StatsProbe`] over this hub's counters, for
    /// supervisor threads that watch progress while the protocol runs.
    #[must_use]
    pub fn probe(&self) -> StatsProbe {
        StatsProbe {
            shared: Arc::clone(&self.shared),
            connects: self.p as u64,
            reconnects: self.reconnects,
        }
    }

    /// Tears the relay plane down: closes every daemon socket and joins
    /// the reader threads.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        for w in &self.shared.writers {
            let _ = w.lock().shutdown(Shutdown::Both);
        }
        for h in self.readers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Hub {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One daemon socket's read loop: routes protocol frames, records
/// terminal results, classifies socket death onto the taxonomy.
fn reader_loop(shared: &HubShared, slot: usize, stream: &TcpStream) {
    let p = shared.writers.len();
    let me = 1 + slot;
    // Short slices so shutdown is prompt; WouldBlock just re-arms.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let violation = |detail: String| {
        shared.set_result(slot, Err(Error::violation(detail)));
        shared.depart(slot, false, false);
    };
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match read_frame::<_, ClusterMsg>(&mut &*stream) {
            Ok(Some(ClusterMsg::Routed { from, to, payload })) => {
                vfps_obs::counter_add("cluster.frames", 1);
                if from != me {
                    violation(format!("daemon {me} forged sender {from}"));
                    return;
                }
                let link = &shared.links[slot];
                link.frames_in.fetch_add(1, Ordering::Relaxed);
                link.bytes_in.fetch_add(payload.len() as u64, Ordering::Relaxed);
                if to == 0 {
                    match ProtoMsg::from_bytes(&payload) {
                        Ok(msg) => {
                            let _ = shared.tx.send(HubEvent::Msg(Envelope { from, msg }));
                        }
                        Err(e) => {
                            violation(format!("undecodable payload from node {me}: {e}"));
                            return;
                        }
                    }
                } else if to >= 1 && to <= p && to != me {
                    let dest = to - 1;
                    if shared.write_to(dest, &ClusterMsg::Routed { from, to, payload }).is_err() {
                        // The destination's socket is dead; its own reader
                        // will usually notice first, but whoever loses the
                        // race is a no-op.
                        shared.depart(dest, false, true);
                    }
                } else {
                    violation(format!("daemon {me} routed to invalid node {to}"));
                    return;
                }
            }
            Ok(Some(ClusterMsg::Finished { outcomes, dead_slots })) => {
                shared.set_result(slot, Ok((outcomes, dead_slots)));
                shared.depart(slot, true, false);
                return;
            }
            Ok(Some(ClusterMsg::Failed(ef))) => {
                shared.set_result(slot, Err(ef.to_error()));
                shared.depart(slot, false, false);
                return;
            }
            Ok(Some(other)) => {
                violation(format!("unexpected frame from daemon {me}: {other:?}"));
                return;
            }
            // Clean EOF. After a terminal frame this is the normal close;
            // without one the process died silently — the SIGKILL
            // signature.
            Ok(None) => {
                if !shared.has_result(slot) {
                    shared.set_result(slot, Err(Error::Hangup { peer: me }));
                    shared.depart(slot, false, true);
                }
                return;
            }
            Err(FrameError::Io(ref e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) => {
                match TransportFailure::classify_frame(&e, Duration::ZERO) {
                    TransportFailure::Protocol { detail } => {
                        violation(format!("daemon {me}: {detail}"));
                    }
                    // Resets and mid-frame EOFs: abrupt death.
                    _ => {
                        if !shared.has_result(slot) {
                            shared.set_result(slot, Err(Error::Hangup { peer: me }));
                            shared.depart(slot, false, true);
                        }
                    }
                }
                return;
            }
        }
    }
}

impl Channel<ProtoMsg> for Hub {
    fn send(&self, to: NodeId, msg: ProtoMsg) -> Result<(), Error> {
        if self.state.borrow().departed.contains_key(&to) {
            return Err(Error::Hangup { peer: to });
        }
        if to == 0 || to > self.p {
            return Err(Error::violation(format!("node 0 sending to invalid node {to}")));
        }
        let payload = msg.to_bytes();
        let bytes = payload.len() as u64;
        let frame = ClusterMsg::Routed { from: 0, to, payload };
        match self.shared.write_to(to - 1, &frame) {
            Ok(()) => {
                let link = &self.shared.links[to - 1];
                link.frames_out.fetch_add(1, Ordering::Relaxed);
                link.bytes_out.fetch_add(bytes, Ordering::Relaxed);
                vfps_obs::counter_add("cluster.frames", 1);
                Ok(())
            }
            Err(_) => {
                self.shared.depart(to - 1, false, true);
                Err(Error::Hangup { peer: to })
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope<ProtoMsg>, Error> {
        if let Some(env) = self.state.borrow_mut().reorder.pop_front() {
            return Ok(env);
        }
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(remaining) {
                Ok(HubEvent::Msg(env)) => return Ok(env),
                Ok(HubEvent::Departed { node, clean }) => {
                    let mut st = self.state.borrow_mut();
                    st.departed.insert(node, clean);
                    st.last_departed = Some(node);
                    if !clean {
                        return Err(Error::Hangup { peer: node });
                    }
                    if st.departed.len() == self.p {
                        return Err(Error::Hangup { peer: st.last_departed.unwrap_or(node) });
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    return Err(Error::Timeout { peer: None, waited: timeout })
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // All readers gone with the queue drained: every
                    // daemon has departed.
                    let st = self.state.borrow();
                    return Err(Error::Hangup { peer: st.last_departed.unwrap_or(1) });
                }
            }
        }
    }

    fn recv_from_timeout(&self, from: NodeId, timeout: Duration) -> Result<ProtoMsg, Error> {
        {
            let mut st = self.state.borrow_mut();
            if let Some(pos) = st.reorder.iter().position(|env| env.from == from) {
                let env = st.reorder.remove(pos).expect("position just found");
                return Ok(env.msg);
            }
            if st.departed.contains_key(&from) {
                return Err(Error::Hangup { peer: from });
            }
        }
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(remaining) {
                Ok(HubEvent::Msg(env)) => {
                    if env.from == from {
                        return Ok(env.msg);
                    }
                    self.state.borrow_mut().reorder.push_back(env);
                }
                Ok(HubEvent::Departed { node, clean }) => {
                    let mut st = self.state.borrow_mut();
                    st.departed.insert(node, clean);
                    st.last_departed = Some(node);
                    if node == from {
                        return Err(Error::Hangup { peer: from });
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    return Err(Error::Timeout { peer: Some(from), waited: timeout })
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(Error::Hangup { peer: from });
                }
            }
        }
    }

    fn is_departed(&self, node: NodeId) -> bool {
        self.state.borrow().departed.contains_key(&node)
    }
}
