//! The coordinator ⇄ daemon control protocol.
//!
//! One [`ClusterMsg`] frame kind carries everything that crosses a party
//! socket: session setup, readiness, routed [`ProtoMsg`](vfps_vfl::ProtoMsg) payloads, peer
//! departure notices, terminal results, and the idempotent health probe.
//! Frames travel length-prefixed through [`vfps_net::wire::write_frame`] /
//! [`read_frame`](vfps_net::wire::read_frame), so the 16 MiB cap and the
//! typed [`FrameError`](vfps_net::wire::FrameError) taxonomy apply
//! unchanged.
//!
//! Routed payloads are *opaque bytes* at this layer — the encoded
//! [`ProtoMsg`](vfps_vfl::ProtoMsg) — so the hub can relay participant ⇄ participant traffic
//! without decoding it.

use vfps_net::wire::{take, Wire, WireError};
use vfps_net::{Error, NodeId};
use vfps_vfl::fed_knn::{FedKnnConfig, KnnMode, QueryOutcome};
use vfps_vfl::KnnSession;

/// Which additive-HE scheme every node of a session instantiates.
///
/// All nodes derive the scheme from the same spec (same seed), so the
/// leader's decryption key matches the participants' encryption key. A
/// production deployment would replace this with the paper's key server;
/// the testbed trades that ceremony for determinism.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchemeKind {
    /// [`vfps_he::scheme::PlainHe`] — no cryptography, exact arithmetic.
    Plain,
    /// [`vfps_he::scheme::PaillierHe`] — real additively homomorphic
    /// encryption; aggregation is exact modular arithmetic, so results
    /// are independent of message arrival order.
    Paillier,
}

/// A deterministic scheme recipe shipped in [`SetupFrame`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchemeSpec {
    /// Scheme family.
    pub kind: SchemeKind,
    /// Key size in bits (ignored by [`SchemeKind::Plain`]).
    pub key_bits: usize,
    /// Ciphertext batch (packing) size.
    pub batch: usize,
    /// Key-generation seed (ignored by [`SchemeKind::Plain`]).
    pub seed: u64,
}

impl SchemeSpec {
    /// A plaintext "scheme" with the given batch size.
    #[must_use]
    pub fn plain(batch: usize) -> Self {
        SchemeSpec { kind: SchemeKind::Plain, key_bits: 0, batch, seed: 0 }
    }

    /// A seeded Paillier scheme.
    #[must_use]
    pub fn paillier(key_bits: usize, batch: usize, seed: u64) -> Self {
        SchemeSpec { kind: SchemeKind::Paillier, key_bits, batch, seed }
    }
}

impl Wire for SchemeSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        let kind: u8 = match self.kind {
            SchemeKind::Plain => 0,
            SchemeKind::Paillier => 1,
        };
        kind.encode(out);
        self.key_bits.encode(out);
        self.batch.encode(out);
        self.seed.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let kind = match u8::decode(input)? {
            0 => SchemeKind::Plain,
            1 => SchemeKind::Paillier,
            t => return Err(WireError::BadTag(t)),
        };
        Ok(SchemeSpec {
            kind,
            key_bits: usize::decode(input)?,
            batch: usize::decode(input)?,
            seed: u64::decode(input)?,
        })
    }

    fn encoded_len(&self) -> usize {
        1 + 8 + 8 + 8
    }
}

/// The byte for a [`KnnMode`] on the wire (only the modes the threaded
/// protocol implements are routable; Threshold/NRA are logical-engine
/// oracles and never reach a daemon).
#[must_use]
pub fn mode_byte(mode: KnnMode) -> u8 {
    match mode {
        KnnMode::Base => 0,
        KnnMode::Fagin => 1,
        KnnMode::Threshold => 2,
        KnnMode::Nra => 3,
    }
}

/// Inverse of [`mode_byte`], restricted to the protocol-capable modes.
#[must_use]
pub fn protocol_mode_from_byte(b: u8) -> Option<KnnMode> {
    match b {
        0 => Some(KnnMode::Base),
        1 => Some(KnnMode::Fagin),
        _ => None,
    }
}

/// Everything a daemon needs to enter one protocol run: the session
/// description (consortium, rows, queries, config, shuffle seed), its own
/// slot, and the scheme recipe. Shipping the *seed* rather than the
/// permutation keeps the frame small and forces both backends through the
/// identical [`KnnSession::new`] derivation.
#[derive(Clone, Debug, PartialEq)]
pub struct SetupFrame {
    /// This daemon's slot (node `1 + slot`).
    pub slot: usize,
    /// Party ids in slot order.
    pub parties: Vec<usize>,
    /// Database row indices.
    pub db_rows: Vec<usize>,
    /// Query row indices.
    pub queries: Vec<usize>,
    /// `FedKnnConfig::k`.
    pub k: usize,
    /// Protocol mode byte (see [`mode_byte`]).
    pub mode: u8,
    /// `FedKnnConfig::batch`.
    pub batch: usize,
    /// `FedKnnConfig::cost_scale`, as IEEE-754 bits (exactness over text).
    pub cost_scale_bits: u64,
    /// Pseudo-ID permutation seed (paper §IV-B step ①).
    pub shuffle_seed: u64,
    /// Scheme recipe every node instantiates.
    pub scheme: SchemeSpec,
}

impl SetupFrame {
    /// Builds the frame for `slot` from a coordinator-side session.
    #[must_use]
    pub fn for_slot(
        session: &KnnSession,
        shuffle_seed: u64,
        slot: usize,
        scheme: SchemeSpec,
    ) -> Self {
        SetupFrame {
            slot,
            parties: session.parties.clone(),
            db_rows: session.db_rows.clone(),
            queries: session.queries.clone(),
            k: session.cfg.k,
            mode: mode_byte(session.cfg.mode),
            batch: session.cfg.batch,
            cost_scale_bits: session.cfg.cost_scale.to_bits(),
            shuffle_seed,
            scheme,
        }
    }

    /// Reconstructs the session on the daemon side — through the same
    /// [`KnnSession::new`] the simulated backend uses, so the pseudo-ID
    /// permutation is derived identically.
    ///
    /// # Errors
    /// [`Error::ProtocolViolation`] on a mode byte outside the threaded
    /// protocol or a slot outside the consortium.
    pub fn session(&self) -> Result<KnnSession, Error> {
        let mode = protocol_mode_from_byte(self.mode)
            .ok_or_else(|| Error::violation(format!("unroutable knn mode byte {}", self.mode)))?;
        if self.slot >= self.parties.len() {
            return Err(Error::violation(format!(
                "slot {} outside consortium of {}",
                self.slot,
                self.parties.len()
            )));
        }
        if self.parties.is_empty() || self.db_rows.is_empty() {
            return Err(Error::violation("empty consortium or database"));
        }
        let cfg = FedKnnConfig {
            k: self.k,
            mode,
            batch: self.batch,
            cost_scale: f64::from_bits(self.cost_scale_bits),
        };
        Ok(KnnSession::new(&self.parties, &self.db_rows, &self.queries, cfg, self.shuffle_seed))
    }
}

impl Wire for SetupFrame {
    fn encode(&self, out: &mut Vec<u8>) {
        self.slot.encode(out);
        self.parties.encode(out);
        self.db_rows.encode(out);
        self.queries.encode(out);
        self.k.encode(out);
        self.mode.encode(out);
        self.batch.encode(out);
        self.cost_scale_bits.encode(out);
        self.shuffle_seed.encode(out);
        self.scheme.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(SetupFrame {
            slot: usize::decode(input)?,
            parties: Vec::decode(input)?,
            db_rows: Vec::decode(input)?,
            queries: Vec::decode(input)?,
            k: usize::decode(input)?,
            mode: u8::decode(input)?,
            batch: usize::decode(input)?,
            cost_scale_bits: u64::decode(input)?,
            shuffle_seed: u64::decode(input)?,
            scheme: SchemeSpec::decode(input)?,
        })
    }

    fn encoded_len(&self) -> usize {
        8 + self.parties.encoded_len()
            + self.db_rows.encoded_len()
            + self.queries.encoded_len()
            + 8
            + 1
            + 8
            + 8
            + 8
            + self.scheme.encoded_len()
    }
}

/// A [`vfps_net::Error`] flattened for the wire, so a daemon's terminal
/// failure arrives at the coordinator with its type intact and the
/// process-level kill matrix can assert the *same* typed outcomes the
/// in-process fault suite pins.
#[derive(Clone, Debug, PartialEq)]
pub struct ErrorFrame {
    /// 0 = Hangup, 1 = Timeout, 2 = ProtocolViolation, 3 = Killed.
    pub kind: u8,
    /// Peer node (Hangup; Timeout when directed), else absent.
    pub peer: Option<usize>,
    /// Waited duration in nanoseconds (Timeout), else 0.
    pub waited_nanos: u64,
    /// Violation detail (ProtocolViolation), else empty.
    pub detail: String,
    /// Channel-op index (Killed), else 0.
    pub op: u64,
}

impl ErrorFrame {
    /// Flattens a typed error.
    #[must_use]
    pub fn from_error(e: &Error) -> Self {
        match e {
            Error::Hangup { peer } => ErrorFrame {
                kind: 0,
                peer: Some(*peer),
                waited_nanos: 0,
                detail: String::new(),
                op: 0,
            },
            Error::Timeout { peer, waited } => ErrorFrame {
                kind: 1,
                peer: *peer,
                waited_nanos: waited.as_nanos() as u64,
                detail: String::new(),
                op: 0,
            },
            Error::ProtocolViolation { detail } => {
                ErrorFrame { kind: 2, peer: None, waited_nanos: 0, detail: detail.clone(), op: 0 }
            }
            Error::Killed { node, op } => ErrorFrame {
                kind: 3,
                peer: Some(*node),
                waited_nanos: 0,
                detail: String::new(),
                op: *op,
            },
        }
    }

    /// Rebuilds the typed error. Unknown kinds decode as a violation so a
    /// newer daemon can never crash an older coordinator.
    #[must_use]
    pub fn to_error(&self) -> Error {
        match self.kind {
            0 => Error::Hangup { peer: self.peer.unwrap_or(0) },
            1 => Error::Timeout {
                peer: self.peer,
                waited: std::time::Duration::from_nanos(self.waited_nanos),
            },
            2 => Error::ProtocolViolation { detail: self.detail.clone() },
            3 => Error::Killed { node: self.peer.unwrap_or(0), op: self.op },
            k => Error::violation(format!("unknown remote error kind {k}")),
        }
    }
}

impl Wire for ErrorFrame {
    fn encode(&self, out: &mut Vec<u8>) {
        self.kind.encode(out);
        self.peer.encode(out);
        self.waited_nanos.encode(out);
        self.detail.encode(out);
        self.op.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(ErrorFrame {
            kind: u8::decode(input)?,
            peer: Option::decode(input)?,
            waited_nanos: u64::decode(input)?,
            detail: String::decode(input)?,
            op: u64::decode(input)?,
        })
    }

    fn encoded_len(&self) -> usize {
        1 + self.peer.encoded_len() + 8 + self.detail.encoded_len() + 8
    }
}

/// One frame of the coordinator ⇄ daemon control protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum ClusterMsg {
    /// Coordinator → daemon: enter this session.
    Setup(SetupFrame),
    /// Daemon → coordinator: setup validated, protocol body entered.
    Ready {
        /// The daemon's configured party id (coordinator cross-checks it).
        party_id: usize,
    },
    /// Either direction: one [`ProtoMsg`](vfps_vfl::ProtoMsg), encoded,
    /// routed `from` → `to` through the hub.
    Routed {
        /// Originating node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
        /// The encoded protocol message.
        payload: Vec<u8>,
    },
    /// Coordinator → daemon: a peer left the session.
    Departed {
        /// The departed node.
        node: NodeId,
        /// Whether it completed its body (`true`) or died (`false`).
        clean: bool,
    },
    /// Daemon → coordinator: protocol body returned `Ok`.
    Finished {
        /// The leader's per-query outcomes (empty for non-leaders).
        outcomes: Vec<QueryOutcome>,
        /// Participant slots this node observed dropping out.
        dead_slots: Vec<usize>,
    },
    /// Daemon → coordinator: protocol body returned `Err`.
    Failed(ErrorFrame),
    /// Idempotent health probe (either direction; safe to retry across
    /// reconnects).
    Ping {
        /// Echoed back verbatim in [`ClusterMsg::Pong`].
        nonce: u64,
    },
    /// Reply to [`ClusterMsg::Ping`].
    Pong {
        /// The probe's nonce.
        nonce: u64,
    },
}

impl Wire for ClusterMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ClusterMsg::Setup(f) => {
                out.push(0);
                f.encode(out);
            }
            ClusterMsg::Ready { party_id } => {
                out.push(1);
                party_id.encode(out);
            }
            ClusterMsg::Routed { from, to, payload } => {
                out.push(2);
                from.encode(out);
                to.encode(out);
                payload.encode(out);
            }
            ClusterMsg::Departed { node, clean } => {
                out.push(3);
                node.encode(out);
                clean.encode(out);
            }
            ClusterMsg::Finished { outcomes, dead_slots } => {
                out.push(4);
                outcomes.encode(out);
                dead_slots.encode(out);
            }
            ClusterMsg::Failed(e) => {
                out.push(5);
                e.encode(out);
            }
            ClusterMsg::Ping { nonce } => {
                out.push(6);
                nonce.encode(out);
            }
            ClusterMsg::Pong { nonce } => {
                out.push(7);
                nonce.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let tag = take(input, 1)?[0];
        Ok(match tag {
            0 => ClusterMsg::Setup(SetupFrame::decode(input)?),
            1 => ClusterMsg::Ready { party_id: usize::decode(input)? },
            2 => ClusterMsg::Routed {
                from: NodeId::decode(input)?,
                to: NodeId::decode(input)?,
                payload: Vec::decode(input)?,
            },
            3 => ClusterMsg::Departed { node: NodeId::decode(input)?, clean: bool::decode(input)? },
            4 => ClusterMsg::Finished {
                outcomes: Vec::decode(input)?,
                dead_slots: Vec::decode(input)?,
            },
            5 => ClusterMsg::Failed(ErrorFrame::decode(input)?),
            6 => ClusterMsg::Ping { nonce: u64::decode(input)? },
            7 => ClusterMsg::Pong { nonce: u64::decode(input)? },
            t => return Err(WireError::BadTag(t)),
        })
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            ClusterMsg::Setup(f) => f.encoded_len(),
            ClusterMsg::Ready { party_id } => party_id.encoded_len(),
            ClusterMsg::Routed { from, to, payload } => {
                from.encoded_len() + to.encoded_len() + payload.encoded_len()
            }
            ClusterMsg::Departed { node, clean } => node.encoded_len() + clean.encoded_len(),
            ClusterMsg::Finished { outcomes, dead_slots } => {
                outcomes.encoded_len() + dead_slots.encoded_len()
            }
            ClusterMsg::Failed(e) => e.encoded_len(),
            ClusterMsg::Ping { nonce } | ClusterMsg::Pong { nonce } => nonce.encoded_len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn roundtrip(m: ClusterMsg) {
        let bytes = m.to_bytes();
        assert_eq!(bytes.len(), m.encoded_len(), "{m:?}");
        assert_eq!(ClusterMsg::from_bytes(&bytes).unwrap(), m);
    }

    #[test]
    fn cluster_frames_roundtrip() {
        let session = KnnSession::new(
            &[0, 2, 3],
            &[0, 1, 2, 3, 4],
            &[1, 4],
            FedKnnConfig { k: 2, mode: KnnMode::Fagin, batch: 3, cost_scale: 1.5 },
            42,
        );
        roundtrip(ClusterMsg::Setup(SetupFrame::for_slot(
            &session,
            42,
            1,
            SchemeSpec::paillier(128, 8, 5),
        )));
        roundtrip(ClusterMsg::Ready { party_id: 7 });
        roundtrip(ClusterMsg::Routed { from: 0, to: 3, payload: vec![1, 2, 3] });
        roundtrip(ClusterMsg::Departed { node: 2, clean: false });
        roundtrip(ClusterMsg::Finished {
            outcomes: vec![QueryOutcome {
                topk_rows: vec![4, 1],
                d_t: vec![0.5, 0.25],
                d_t_total: 0.75,
                candidates: 3,
            }],
            dead_slots: vec![1],
        });
        roundtrip(ClusterMsg::Failed(ErrorFrame::from_error(&Error::Hangup { peer: 1 })));
        roundtrip(ClusterMsg::Ping { nonce: 0xdead_beef });
        roundtrip(ClusterMsg::Pong { nonce: 0xdead_beef });
    }

    #[test]
    fn error_frames_preserve_the_taxonomy() {
        let cases = vec![
            Error::Hangup { peer: 3 },
            Error::Timeout { peer: Some(1), waited: Duration::from_millis(250) },
            Error::Timeout { peer: None, waited: Duration::from_secs(10) },
            Error::violation("expected RankBatch, got QueryDone"),
            Error::Killed { node: 2, op: 17 },
        ];
        for e in cases {
            let f = ErrorFrame::from_error(&e);
            let bytes = f.to_bytes();
            assert_eq!(ErrorFrame::from_bytes(&bytes).unwrap().to_error(), e);
        }
        let unknown =
            ErrorFrame { kind: 200, peer: None, waited_nanos: 0, detail: String::new(), op: 0 };
        assert!(matches!(unknown.to_error(), Error::ProtocolViolation { .. }));
    }

    #[test]
    fn setup_rebuilds_the_identical_session() {
        let cfg = FedKnnConfig { k: 3, mode: KnnMode::Base, batch: 2, cost_scale: 2.0 };
        let session = KnnSession::new(&[1, 0], &[0, 1, 2, 3], &[2], cfg, 9);
        let frame = SetupFrame::for_slot(&session, 9, 0, SchemeSpec::plain(4));
        let rebuilt = frame.session().unwrap();
        assert_eq!(rebuilt.perm, session.perm);
        assert_eq!(rebuilt.inv, session.inv);
        assert_eq!(rebuilt.parties, session.parties);
        assert_eq!(rebuilt.queries, session.queries);
    }

    #[test]
    fn setup_rejects_unroutable_modes_and_bad_slots() {
        let cfg = FedKnnConfig { k: 1, mode: KnnMode::Base, batch: 1, cost_scale: 1.0 };
        let session = KnnSession::new(&[0], &[0, 1], &[0], cfg, 1);
        let mut f = SetupFrame::for_slot(&session, 1, 0, SchemeSpec::plain(4));
        f.mode = mode_byte(KnnMode::Nra);
        assert!(matches!(f.session(), Err(Error::ProtocolViolation { .. })));
        let mut g = SetupFrame::for_slot(&session, 1, 0, SchemeSpec::plain(4));
        g.slot = 5;
        assert!(matches!(g.session(), Err(Error::ProtocolViolation { .. })));
    }
}
