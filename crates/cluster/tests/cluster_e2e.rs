//! End-to-end tests for the real-socket party plane: daemons on localhost
//! TCP, coordinator hub as node 0, pinned against the simulated backend.

use std::net::TcpListener;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use vfps_cluster::{ping_party, run_cluster_knn, HubOptions, PartyConfig, SchemeSpec};
use vfps_data::VerticalPartition;
use vfps_he::scheme::PaillierHe;
use vfps_ml::linalg::Matrix;
use vfps_net::FaultPlan;
use vfps_vfl::fed_knn::{FedKnnConfig, KnnMode};
use vfps_vfl::{run_threaded_knn_faulted, FaultedRun, KnnSession};

fn toy() -> (Matrix, VerticalPartition) {
    let x = Matrix::from_rows(&[
        vec![0.0, 0.0, 0.0, 0.0, 0.1, 0.0],
        vec![0.1, 0.0, 0.1, 0.0, 0.0, 0.1],
        vec![0.0, 0.2, 0.0, 0.1, 0.0, 0.0],
        vec![5.0, 5.0, 5.0, 5.0, 5.1, 5.0],
        vec![5.1, 5.0, 4.9, 5.0, 5.0, 5.2],
        vec![5.0, 5.2, 5.0, 5.1, 5.0, 4.9],
        vec![2.5, 2.5, 2.5, 2.5, 2.5, 2.5],
        vec![9.0, 9.0, 9.0, 9.0, 9.0, 9.0],
    ]);
    (x, VerticalPartition::even(6, 3))
}

/// Spawns one in-process party daemon on an ephemeral port.
fn spawn_party(
    x: &Matrix,
    partition: &VerticalPartition,
    cfg: PartyConfig,
    sessions: usize,
) -> (String, JoinHandle<vfps_cluster::PartyReport>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind daemon");
    let addr = listener.local_addr().unwrap().to_string();
    let x = x.clone();
    let partition = partition.clone();
    let handle = std::thread::spawn(move || {
        let cfg = PartyConfig { max_sessions: Some(sessions), ..cfg };
        serve(&listener, &x, &partition, &cfg)
    });
    (addr, handle)
}

fn serve(
    listener: &TcpListener,
    x: &Matrix,
    partition: &VerticalPartition,
    cfg: &PartyConfig,
) -> vfps_cluster::PartyReport {
    vfps_cluster::serve_party(listener, x, partition, cfg).expect("daemon accept loop")
}

fn fast_opts() -> HubOptions {
    HubOptions {
        connect_timeout: Duration::from_millis(500),
        connect_budget: 10,
        connect_backoff: Duration::from_millis(20),
        io_timeout: Duration::from_secs(20),
        result_timeout: Duration::from_secs(20),
    }
}

/// The acceptance pin: selection inputs computed over three real daemons
/// on localhost TCP are bit-identical — outcomes *and* logical traffic
/// totals — to the simulated cluster with the same seed, for both
/// protocol modes. Paillier aggregation is exact modular arithmetic, so
/// message arrival order cannot perturb the result.
#[test]
fn three_daemons_over_tcp_match_the_sim_bit_identically() {
    let (x, part) = toy();
    let db: Vec<usize> = (0..8).collect();
    let queries = vec![0usize, 3, 6];
    let parties = vec![0usize, 1, 2];
    let he = Arc::new(PaillierHe::generate(128, 8, 5).unwrap());
    let scheme = SchemeSpec::paillier(128, 8, 5);

    for mode in [KnnMode::Base, KnnMode::Fagin] {
        let cfg = FedKnnConfig { k: 3, mode, batch: 2, cost_scale: 1.0 };
        let sim = run_threaded_knn_faulted(
            &he,
            &x,
            &part,
            &parties,
            &db,
            &queries,
            cfg,
            77,
            &FaultPlan::default(),
        );
        let FaultedRun::Complete(sim) = sim else { panic!("sim run not complete") };

        let mut addrs = Vec::new();
        let mut handles = Vec::new();
        for &p in &parties {
            let (addr, h) = spawn_party(&x, &part, PartyConfig::new(p), 1);
            addrs.push(addr);
            handles.push(h);
        }
        let session = KnnSession::new(&parties, &db, &queries, cfg, 77);
        let report =
            run_cluster_knn(&he, &session, 77, scheme, &addrs, &fast_opts()).expect("tcp setup");
        let FaultedRun::Complete(tcp) = report.run else {
            panic!("{mode:?}: tcp run not complete: {:?}", report.run)
        };

        // Bit-identical per-query outcomes: top-k rows in order, exact
        // f64 d_t entries, candidate counts.
        assert_eq!(tcp.outcomes, sim.outcomes, "{mode:?}: outcomes diverge across backends");
        // Message-for-message the same transcript. (Byte totals are pinned
        // in the PlainHe test below: Paillier ciphertext serialization is
        // noise-dependent in length, so byte equality across independently
        // seeded noise pools is not a protocol property.)
        assert_eq!(tcp.total_messages, sim.total_messages, "{mode:?}: message totals diverge");
        assert!(tcp.dropouts.is_empty());
        assert_eq!(report.stats.kills_observed, 0);
        assert_eq!(report.stats.connects, 3);
        for h in handles {
            let r = h.join().unwrap();
            assert_eq!(r.sessions, 1);
            assert!(!r.killed);
        }
    }
}

/// With PlainHe's fixed-width ciphertext serialization the TCP transcript
/// is *byte*-identical to the simulated ledger. Two parties keep f64
/// aggregation arrival-order-exact.
#[test]
fn plain_two_party_transcript_is_byte_identical_to_the_ledger() {
    let (x, part) = toy();
    let db: Vec<usize> = (0..8).collect();
    let queries = vec![1usize, 4];
    let parties = vec![0usize, 1];
    let he = Arc::new(vfps_he::scheme::PlainHe::new(4));

    for mode in [KnnMode::Base, KnnMode::Fagin] {
        let cfg = FedKnnConfig { k: 2, mode, batch: 3, cost_scale: 1.0 };
        let sim = run_threaded_knn_faulted(
            &he,
            &x,
            &part,
            &parties,
            &db,
            &queries,
            cfg,
            13,
            &FaultPlan::default(),
        );
        let FaultedRun::Complete(sim) = sim else { panic!("sim run not complete") };

        let mut addrs = Vec::new();
        let mut handles = Vec::new();
        for &p in &parties {
            let (addr, h) = spawn_party(&x, &part, PartyConfig::new(p), 1);
            addrs.push(addr);
            handles.push(h);
        }
        let session = KnnSession::new(&parties, &db, &queries, cfg, 13);
        let report = run_cluster_knn(&he, &session, 13, SchemeSpec::plain(4), &addrs, &fast_opts())
            .expect("tcp setup");
        let FaultedRun::Complete(tcp) = report.run else {
            panic!("{mode:?}: tcp run not complete: {:?}", report.run)
        };
        assert_eq!(tcp.outcomes, sim.outcomes, "{mode:?}: outcomes diverge");
        assert_eq!(tcp.total_bytes, sim.total_bytes, "{mode:?}: byte totals diverge");
        assert_eq!(tcp.total_messages, sim.total_messages, "{mode:?}: message totals diverge");
        for h in handles {
            h.join().unwrap();
        }
    }
}

/// A non-leader daemon dying abruptly mid-protocol (socket dropped, no
/// terminal frame — the SIGKILL signature) degrades the run over the
/// survivors, exactly like the in-process fault suite's kill matrix.
#[test]
fn abrupt_nonleader_death_degrades_over_survivors() {
    let (x, part) = toy();
    let db: Vec<usize> = (0..8).collect();
    let queries = vec![0usize, 3];
    let parties = vec![0usize, 1, 2];
    let he = Arc::new(PaillierHe::generate(128, 8, 6).unwrap());
    let cfg = FedKnnConfig { k: 2, mode: KnnMode::Fagin, batch: 2, cost_scale: 1.0 };

    let mut addrs = Vec::new();
    let mut handles = Vec::new();
    for &p in &parties {
        let mut pc = PartyConfig::new(p);
        if p == 2 {
            // Slot 2 (node 3) dies mid-Fagin-stream of the first query.
            pc.kill_after_ops = Some(6);
        }
        let (addr, h) = spawn_party(&x, &part, pc, 1);
        addrs.push(addr);
        handles.push(h);
    }
    let session = KnnSession::new(&parties, &db, &queries, cfg, 9);
    let report =
        run_cluster_knn(&he, &session, 9, SchemeSpec::paillier(128, 8, 6), &addrs, &fast_opts())
            .expect("tcp setup");
    let FaultedRun::Degraded(run) = report.run else {
        panic!("expected degraded run, got {:?}", report.run)
    };
    assert_eq!(run.dropouts, vec![3], "only node 3 died");
    assert_eq!(run.outcomes.len(), queries.len(), "leader finished the batch");
    // The kill fires between the two queries: the first completed with
    // every party contributing, the second ran over the survivors with the
    // dead slot's d_t zero-filled — the same mid-batch semantics the
    // in-process fault suite pins.
    assert!(run.outcomes[0].d_t[2] > 0.0, "query before the death is intact");
    assert_eq!(run.outcomes[1].d_t[2], 0.0, "dead slot's d_t is zero-filled after death");
    assert!(run.outcomes[1].d_t[0] > 0.0 || run.outcomes[1].d_t[1] > 0.0);
    assert_eq!(report.stats.kills_observed, 1);
    let killed_report = handles.remove(2).join().unwrap();
    assert!(killed_report.killed);
    for h in handles {
        h.join().unwrap();
    }
}

/// Killing the leader aborts the run with the same typed error the
/// in-process suite pins: a hangup of node 1 (nothing can be decrypted).
#[test]
fn abrupt_leader_death_aborts_with_typed_hangup() {
    let (x, part) = toy();
    let db: Vec<usize> = (0..8).collect();
    let queries = vec![0usize];
    let parties = vec![0usize, 1, 2];
    let he = Arc::new(PaillierHe::generate(128, 8, 7).unwrap());
    let cfg = FedKnnConfig { k: 2, mode: KnnMode::Base, batch: 2, cost_scale: 1.0 };

    let mut addrs = Vec::new();
    let mut handles = Vec::new();
    for &p in &parties {
        let mut pc = PartyConfig::new(p);
        if p == 0 {
            // Slot 0 = node 1 = the leader: die before doing anything.
            pc.kill_after_ops = Some(0);
        }
        let (addr, h) = spawn_party(&x, &part, pc, 1);
        addrs.push(addr);
        handles.push(h);
    }
    let session = KnnSession::new(&parties, &db, &queries, cfg, 4);
    let report =
        run_cluster_knn(&he, &session, 4, SchemeSpec::paillier(128, 8, 7), &addrs, &fast_opts())
            .expect("tcp setup");
    let FaultedRun::Aborted { error, dropouts } = report.run else {
        panic!("expected aborted run, got {:?}", report.run)
    };
    assert!(error.is_hangup_of(1), "leader death is a hangup of node 1, got {error}");
    assert!(dropouts.contains(&1), "dropouts {dropouts:?} name the leader");
    assert!(report.stats.kills_observed >= 1);
    for h in handles {
        h.join().unwrap();
    }
}

/// The idempotent probe reconnects within its budget against a live
/// daemon and reports a typed I/O failure once the budget is spent
/// against a dead address.
#[test]
fn ping_is_idempotent_and_budget_bounded() {
    let (x, part) = toy();
    let (addr, handle) = spawn_party(&x, &part, PartyConfig::new(0), 1);
    let opts = fast_opts();
    // Repeated probes against the same daemon: idempotent by design.
    for _ in 0..3 {
        let rtt = ping_party(&addr, &opts).expect("live daemon answers ping");
        assert!(rtt < Duration::from_secs(5));
    }

    // A dead address: bind-then-drop guarantees nothing listens there.
    let dead = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let tight = HubOptions {
        connect_budget: 3,
        connect_backoff: Duration::from_millis(5),
        connect_timeout: Duration::from_millis(200),
        ..opts
    };
    assert!(ping_party(&dead, &tight).is_err(), "budget must eventually give up");

    // Unblock the daemon's accept loop (it still owes one session).
    run_one_plain_session(&addr, &x, &part);
    handle.join().unwrap();
}

/// Garbage frames and misdirected setups refuse the *connection*, not the
/// daemon: it keeps serving and completes a real session afterwards.
#[test]
fn daemon_survives_garbage_and_misdirected_setups() {
    use std::io::Write;
    let (x, part) = toy();
    let (addr, handle) = spawn_party(&x, &part, PartyConfig::new(0), 1);

    // 1: a frame with a valid length prefix and an invalid tag.
    {
        let mut s = std::net::TcpStream::connect(&addr).unwrap();
        s.write_all(&5u32.to_le_bytes()).unwrap();
        s.write_all(&[0xEE; 5]).unwrap();
    }
    // 2: a setup naming the wrong party for the slot.
    {
        use vfps_net::wire::{read_frame, write_frame};
        let s = std::net::TcpStream::connect(&addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let cfg = FedKnnConfig { k: 1, mode: KnnMode::Base, batch: 1, cost_scale: 1.0 };
        let session = KnnSession::new(&[9], &[0, 1], &[0], cfg, 1);
        let frame = vfps_cluster::SetupFrame::for_slot(&session, 1, 0, SchemeSpec::plain(4));
        write_frame(&mut &s, &vfps_cluster::ClusterMsg::Setup(frame)).unwrap();
        match read_frame::<_, vfps_cluster::ClusterMsg>(&mut &s) {
            Ok(Some(vfps_cluster::ClusterMsg::Failed(ef))) => {
                let e = ef.to_error();
                assert!(e.to_string().contains("party"), "typed refusal, got {e}");
            }
            other => panic!("expected typed Failed frame, got {other:?}"),
        }
    }
    // 3: a real session still works — the daemon survived both abuses.
    run_one_plain_session(&addr, &x, &part);
    let report = handle.join().unwrap();
    assert_eq!(report.sessions, 1, "abusive connections never count as sessions");
}

/// Drives one single-party PlainHe session against `addr` and asserts it
/// completes.
fn run_one_plain_session(addr: &str, _x: &Matrix, _part: &VerticalPartition) {
    use vfps_he::scheme::PlainHe;
    let he = Arc::new(PlainHe::new(4));
    let cfg = FedKnnConfig { k: 2, mode: KnnMode::Base, batch: 2, cost_scale: 1.0 };
    let db: Vec<usize> = (0..8).collect();
    let session = KnnSession::new(&[0], &db, &[1], cfg, 3);
    let report =
        run_cluster_knn(&he, &session, 3, SchemeSpec::plain(4), &[addr.to_string()], &fast_opts())
            .expect("tcp setup");
    assert!(matches!(report.run, FaultedRun::Complete(_)), "got {:?}", report.run);
}
