//! # vfps-he — homomorphic encryption substrate for VFPS-SM
//!
//! Everything VFPS-SM's privacy layer needs, built from scratch:
//!
//! * [`bigint`] — arbitrary-precision unsigned/signed integers (Knuth-D
//!   division, Karatsuba multiplication, Miller–Rabin primality, modular
//!   exponentiation and inverse).
//! * [`paillier`] — the Paillier cryptosystem: exact additively homomorphic
//!   encryption over `Z_n`.
//! * [`ckks`] — CKKS-lite: RLWE approximate HE with SIMD real slots and
//!   homomorphic addition (the operation set the paper's TenSEAL usage
//!   exercises).
//! * [`fixed`] — fixed-point real↔integer codec for exact schemes.
//! * [`packing`] — shift-and-pack slot layout so one Paillier noise
//!   exponentiation amortizes over a whole group of values.
//! * [`scheme`] — the [`scheme::AdditiveHe`] trait unifying Paillier, CKKS,
//!   and a pass-through [`scheme::PlainHe`] used for cost-accounted
//!   large-scale simulation.
//!
//! ## Example
//!
//! ```
//! use vfps_he::scheme::{AdditiveHe, PaillierHe};
//!
//! let he = PaillierHe::generate(256, 8, 42).unwrap();
//! let a = he.encrypt(&[1.0, 2.0]).unwrap();
//! let b = he.encrypt(&[0.5, 0.25]).unwrap();
//! let sum = he.decrypt(&he.add(&a, &b), 2);
//! assert!((sum[0] - 1.5).abs() < 1e-6);
//! assert!((sum[1] - 2.25).abs() < 1e-6);
//! ```

#![warn(missing_docs)]

pub mod bigint;
pub mod ckks;
pub mod dp;
pub mod error;
pub mod fixed;
pub mod keys;
pub mod packing;
pub mod paillier;
pub mod scheme;

pub use bigint::{BigInt, BigUint};
pub use error::{Error, Result};
pub use fixed::FixedPoint;
