//! Number-theoretic transform over `Z_q` for negacyclic polynomial
//! multiplication in `Z_q[X]/(X^n + 1)`.
//!
//! `q` is an NTT-friendly prime (`q ≡ 1 mod 2n`); `psi` is a 2n-th root of
//! unity with `psi^n ≡ -1`, which is exactly what the negacyclic transform
//! requires.

/// Modular multiplication for `u64` operands under a modulus below `2^63`.
#[inline]
#[must_use]
pub fn mul_mod(a: u64, b: u64, q: u64) -> u64 {
    ((u128::from(a) * u128::from(b)) % u128::from(q)) as u64
}

/// The Shoup precomputation for multiplying by the fixed operand `w`:
/// `⌊w·2^64 / q⌋`. Pair with [`mul_mod_shoup`].
#[inline]
#[must_use]
pub fn shoup_precompute(w: u64, q: u64) -> u64 {
    ((u128::from(w) << 64) / u128::from(q)) as u64
}

/// Shoup modular multiplication `a·w mod q` for a *fixed* `w` whose
/// precomputed `w_shoup = ⌊w·2^64/q⌋` is supplied.
///
/// The quotient estimate `⌊a·w_shoup/2^64⌋` is off by at most one, so a
/// single conditional subtraction corrects the remainder — one `u128`
/// high-half product and two wrapping `u64` products instead of a full
/// 128-bit division. Requires `a, w < q < 2^63`.
#[inline]
#[must_use]
pub fn mul_mod_shoup(a: u64, w: u64, w_shoup: u64, q: u64) -> u64 {
    let quotient = ((u128::from(a) * u128::from(w_shoup)) >> 64) as u64;
    let r = a.wrapping_mul(w).wrapping_sub(quotient.wrapping_mul(q));
    if r >= q {
        r - q
    } else {
        r
    }
}

/// Modular addition.
#[inline]
#[must_use]
pub fn add_mod(a: u64, b: u64, q: u64) -> u64 {
    let s = a + b;
    if s >= q {
        s - q
    } else {
        s
    }
}

/// Modular subtraction.
#[inline]
#[must_use]
pub fn sub_mod(a: u64, b: u64, q: u64) -> u64 {
    if a >= b {
        a - b
    } else {
        a + q - b
    }
}

/// Modular exponentiation.
#[must_use]
pub fn pow_mod(mut base: u64, mut exp: u64, q: u64) -> u64 {
    let mut acc = 1u64;
    base %= q;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, q);
        }
        base = mul_mod(base, base, q);
        exp >>= 1;
    }
    acc
}

/// Modular inverse via Fermat (q prime).
#[must_use]
pub fn inv_mod(a: u64, q: u64) -> u64 {
    pow_mod(a, q - 2, q)
}

/// Deterministic Miller–Rabin for `u64` (full coverage witness set).
#[must_use]
pub fn is_prime_u64(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n.is_multiple_of(p) {
            return n == p;
        }
    }
    let s = (n - 1).trailing_zeros();
    let d = (n - 1) >> s;
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Finds the largest prime `q < 2^bits` with `q ≡ 1 (mod 2n)`.
#[must_use]
pub fn find_ntt_prime(bits: u32, n: usize) -> u64 {
    assert!(bits < 63, "modulus must fit signed arithmetic");
    let two_n = 2 * n as u64;
    let mut k = ((1u64 << bits) - 1) / two_n;
    while k > 0 {
        let q = k * two_n + 1;
        if is_prime_u64(q) {
            return q;
        }
        k -= 1;
    }
    panic!("no NTT prime below 2^{bits} for ring degree {n}");
}

/// Finds `psi`, a 2n-th root of unity mod `q` with `psi^n = -1`.
#[must_use]
pub fn find_psi(q: u64, n: usize) -> u64 {
    let exponent = (q - 1) / (2 * n as u64);
    // Deterministic scan: x^((q-1)/2n) has order dividing 2n; accept when
    // psi^n = -1, which forces the full negacyclic order.
    for x in 2u64.. {
        let psi = pow_mod(x, exponent, q);
        if pow_mod(psi, n as u64, q) == q - 1 {
            return psi;
        }
    }
    unreachable!("a generator always exists for prime q");
}

/// Precomputed tables for forward/inverse negacyclic NTT of size `n`.
#[derive(Clone, Debug)]
pub struct NttTables {
    /// Ring degree (power of two).
    pub n: usize,
    /// Prime modulus.
    pub q: u64,
    /// Powers of `psi` in bit-reversed order (forward butterflies).
    fwd: Vec<u64>,
    /// Powers of `psi^{-1}` in bit-reversed order (inverse butterflies).
    inv: Vec<u64>,
    /// `n^{-1} mod q` for the final inverse scaling.
    n_inv: u64,
    /// Shoup constants `⌊fwd[i]·2^64/q⌋` (one per forward twiddle).
    fwd_shoup: Vec<u64>,
    /// Shoup constants for the inverse twiddles.
    inv_shoup: Vec<u64>,
    /// Shoup constant for `n_inv`.
    n_inv_shoup: u64,
}

impl NttTables {
    /// Builds tables for degree `n` (power of two ≥ 2) and modulus `q`.
    #[must_use]
    pub fn new(n: usize, q: u64) -> Self {
        assert!(n.is_power_of_two() && n >= 2, "ring degree must be a power of two");
        assert!((q - 1).is_multiple_of(2 * n as u64), "q must be 1 mod 2n");
        let psi = find_psi(q, n);
        let psi_inv = inv_mod(psi, q);
        let log_n = n.trailing_zeros();
        let mut fwd = vec![0u64; n];
        let mut inv = vec![0u64; n];
        for i in 0..n {
            let r = (i as u64).reverse_bits() >> (64 - log_n);
            fwd[i] = pow_mod(psi, r, q);
            inv[i] = pow_mod(psi_inv, r, q);
        }
        let fwd_shoup = fwd.iter().map(|&w| shoup_precompute(w, q)).collect();
        let inv_shoup = inv.iter().map(|&w| shoup_precompute(w, q)).collect();
        let n_inv = inv_mod(n as u64, q);
        NttTables {
            n,
            q,
            fwd,
            inv,
            n_inv,
            fwd_shoup,
            inv_shoup,
            n_inv_shoup: shoup_precompute(n_inv, q),
        }
    }

    /// In-place forward negacyclic NTT (Cooley–Tukey, decimation in time on
    /// the psi-twisted sequence). Butterflies multiply via the precomputed
    /// Shoup constants — no `u128` division on the hot path.
    pub fn forward(&self, a: &mut [u64]) {
        debug_assert_eq!(a.len(), self.n);
        let q = self.q;
        let mut t = self.n;
        let mut m = 1;
        while m < self.n {
            t /= 2;
            for i in 0..m {
                let w = self.fwd[m + i];
                let ws = self.fwd_shoup[m + i];
                let j1 = 2 * i * t;
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = mul_mod_shoup(a[j + t], w, ws, q);
                    a[j] = add_mod(u, v, q);
                    a[j + t] = sub_mod(u, v, q);
                }
            }
            m *= 2;
        }
    }

    /// In-place inverse negacyclic NTT (Gentleman–Sande), Shoup-multiplied
    /// like [`NttTables::forward`].
    pub fn inverse(&self, a: &mut [u64]) {
        debug_assert_eq!(a.len(), self.n);
        let q = self.q;
        let mut t = 1;
        let mut m = self.n;
        while m > 1 {
            let h = m / 2;
            let mut j1 = 0;
            for i in 0..h {
                let w = self.inv[h + i];
                let ws = self.inv_shoup[h + i];
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = a[j + t];
                    a[j] = add_mod(u, v, q);
                    a[j + t] = mul_mod_shoup(sub_mod(u, v, q), w, ws, q);
                }
                j1 += 2 * t;
            }
            t *= 2;
            m = h;
        }
        for x in a.iter_mut() {
            *x = mul_mod_shoup(*x, self.n_inv, self.n_inv_shoup, q);
        }
    }

    /// Reference forward transform using plain `u128 %` multiplication —
    /// the oracle the Shoup path is property-tested against.
    pub fn forward_reference(&self, a: &mut [u64]) {
        debug_assert_eq!(a.len(), self.n);
        let q = self.q;
        let mut t = self.n;
        let mut m = 1;
        while m < self.n {
            t /= 2;
            for i in 0..m {
                let w = self.fwd[m + i];
                let j1 = 2 * i * t;
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = mul_mod(a[j + t], w, q);
                    a[j] = add_mod(u, v, q);
                    a[j + t] = sub_mod(u, v, q);
                }
            }
            m *= 2;
        }
    }

    /// Reference inverse transform (plain `u128 %` oracle).
    pub fn inverse_reference(&self, a: &mut [u64]) {
        debug_assert_eq!(a.len(), self.n);
        let q = self.q;
        let mut t = 1;
        let mut m = self.n;
        while m > 1 {
            let h = m / 2;
            let mut j1 = 0;
            for i in 0..h {
                let w = self.inv[h + i];
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = a[j + t];
                    a[j] = add_mod(u, v, q);
                    a[j + t] = mul_mod(sub_mod(u, v, q), w, q);
                }
                j1 += 2 * t;
            }
            t *= 2;
            m = h;
        }
        for x in a.iter_mut() {
            *x = mul_mod(*x, self.n_inv, q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prime_finding() {
        let q = find_ntt_prime(55, 1024);
        assert!(is_prime_u64(q));
        assert_eq!((q - 1) % 2048, 0);
        assert!(q < 1 << 55);
    }

    #[test]
    fn psi_has_negacyclic_order() {
        let n = 256;
        let q = find_ntt_prime(50, n);
        let psi = find_psi(q, n);
        assert_eq!(pow_mod(psi, n as u64, q), q - 1);
        assert_eq!(pow_mod(psi, 2 * n as u64, q), 1);
    }

    #[test]
    fn primality_spot_checks() {
        assert!(is_prime_u64(2));
        assert!(is_prime_u64((1 << 61) - 1));
        assert!(!is_prime_u64(1));
        assert!(!is_prime_u64((1 << 61) - 3));
        assert!(!is_prime_u64(3_215_031_751)); // strong pseudoprime to bases 2,3,5,7
    }

    #[test]
    fn ntt_roundtrip() {
        let n = 64;
        let q = find_ntt_prime(40, n);
        let tables = NttTables::new(n, q);
        let orig: Vec<u64> = (0..n as u64).map(|i| (i * i + 7) % q).collect();
        let mut a = orig.clone();
        tables.forward(&mut a);
        assert_ne!(a, orig);
        tables.inverse(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn ntt_multiplication_is_negacyclic() {
        // (X^(n-1)) * X = X^n = -1 in the negacyclic ring.
        let n = 16;
        let q = find_ntt_prime(30, n);
        let tables = NttTables::new(n, q);
        let mut a = vec![0u64; n];
        a[n - 1] = 1;
        let mut b = vec![0u64; n];
        b[1] = 1;
        tables.forward(&mut a);
        tables.forward(&mut b);
        let mut c: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| mul_mod(x, y, q)).collect();
        tables.inverse(&mut c);
        let mut expect = vec![0u64; n];
        expect[0] = q - 1; // -1
        assert_eq!(c, expect);
    }

    #[test]
    fn shoup_multiplication_matches_plain() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(91);
        for q in [find_ntt_prime(30, 16), find_ntt_prime(55, 1024), find_ntt_prime(62, 2)] {
            for _ in 0..200 {
                let a = rng.gen_range(0..q);
                let w = rng.gen_range(0..q);
                assert_eq!(
                    mul_mod_shoup(a, w, shoup_precompute(w, q), q),
                    mul_mod(a, w, q),
                    "a={a} w={w} q={q}"
                );
            }
            // Boundary operands.
            for (a, w) in [(0, 0), (q - 1, q - 1), (1, q - 1), (q - 1, 1)] {
                assert_eq!(mul_mod_shoup(a, w, shoup_precompute(w, q), q), mul_mod(a, w, q));
            }
        }
    }

    #[test]
    fn shoup_transforms_match_reference() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(92);
        for n in [16usize, 256] {
            let q = find_ntt_prime(55, n);
            let tables = NttTables::new(n, q);
            for _ in 0..10 {
                let orig: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
                let mut fast = orig.clone();
                let mut slow = orig.clone();
                tables.forward(&mut fast);
                tables.forward_reference(&mut slow);
                assert_eq!(fast, slow, "forward n={n}");
                tables.inverse(&mut fast);
                tables.inverse_reference(&mut slow);
                assert_eq!(fast, slow, "inverse n={n}");
                assert_eq!(fast, orig, "roundtrip n={n}");
            }
        }
    }

    #[test]
    fn mod_helpers() {
        let q = 97;
        assert_eq!(add_mod(90, 10, q), 3);
        assert_eq!(sub_mod(3, 10, q), 90);
        assert_eq!(mul_mod(96, 96, q), 1);
        assert_eq!(pow_mod(5, 96, q), 1);
        assert_eq!(mul_mod(inv_mod(31, q), 31, q), 1);
    }
}
