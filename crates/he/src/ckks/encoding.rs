//! CKKS canonical-embedding codec.
//!
//! A real-coefficient polynomial `m(X)` of degree `< n` is identified with
//! its evaluations at the odd powers of the primitive 2n-th complex root of
//! unity `ζ = e^{iπ/n}`. Because the coefficients are real, the evaluations
//! come in conjugate pairs, so `n/2` independent complex *slots* remain.
//!
//! Writing `ζ^{2j+1} = ζ · ω^j` with `ω = e^{2iπ/n}`, evaluation at all slot
//! points is an FFT of the ζ-twisted coefficient sequence — so both encode
//! and decode run in `O(n log n)`.

use super::fft::{fft_in_place, Complex};
use crate::error::{Error, Result};
use std::f64::consts::PI;

/// Encoder/decoder between real vectors and scaled integer coefficient
/// vectors for ring degree `n`.
#[derive(Clone, Debug)]
pub struct CkksEncoder {
    n: usize,
    scale: f64,
    /// `ζ^k` for `k in 0..n`.
    twist: Vec<Complex>,
    /// `ζ^{-k}` for `k in 0..n`.
    untwist: Vec<Complex>,
}

impl CkksEncoder {
    /// Creates an encoder for ring degree `n` (power of two ≥ 4) and the
    /// given scale `Δ`.
    ///
    /// # Errors
    /// Returns [`Error::InvalidParameters`] for a bad degree or scale.
    pub fn new(n: usize, scale: f64) -> Result<Self> {
        if !n.is_power_of_two() || n < 4 {
            return Err(Error::InvalidParameters(format!(
                "ring degree {n} must be a power of two >= 4"
            )));
        }
        if !(scale.is_finite() && scale >= 1.0) {
            return Err(Error::InvalidParameters(format!("scale {scale} must be >= 1")));
        }
        let twist: Vec<Complex> =
            (0..n).map(|k| Complex::from_angle(PI * k as f64 / n as f64)).collect();
        let untwist: Vec<Complex> =
            (0..n).map(|k| Complex::from_angle(-PI * k as f64 / n as f64)).collect();
        Ok(CkksEncoder { n, scale, twist, untwist })
    }

    /// Number of complex slots (`n/2`); real workloads use one real per slot.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.n / 2
    }

    /// The scale `Δ`.
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Encodes up to `slots()` reals into scaled integer coefficients
    /// (length `n`, centered representation).
    ///
    /// # Errors
    /// Returns [`Error::TooManySlots`] if `values` exceeds the slot count.
    pub fn encode(&self, values: &[f64]) -> Result<Vec<i64>> {
        if values.len() > self.slots() {
            return Err(Error::TooManySlots { got: values.len(), max: self.slots() });
        }
        let n = self.n;
        let mut v = vec![Complex::default(); n];
        for (j, &x) in values.iter().enumerate() {
            let z = Complex::new(x, 0.0);
            v[j] = z;
            v[n - 1 - j] = z.conj();
        }
        // Unused slots stay zero (and their conjugate mirrors too).
        //
        // Slot j is the evaluation at ζ^{2j+1}; with the conjugate symmetry
        // v[n-1-j] = conj(v[j]) the inverse transform below yields *real*
        // coefficients (imaginary parts vanish up to rounding).
        fft_in_place(&mut v, false);
        let inv_n = 1.0 / n as f64;
        let mut out = Vec::with_capacity(n);
        for (k, c) in v.into_iter().enumerate() {
            let coeff = c.scale(inv_n).mul(self.untwist[k]);
            out.push((coeff.re * self.scale).round() as i64);
        }
        Ok(out)
    }

    /// Decodes `count` reals from scaled integer coefficients.
    #[must_use]
    pub fn decode(&self, coeffs: &[i64], count: usize) -> Vec<f64> {
        debug_assert_eq!(coeffs.len(), self.n);
        let mut v: Vec<Complex> =
            coeffs.iter().enumerate().map(|(k, &c)| self.twist[k].scale(c as f64)).collect();
        // Inverse of the encode transform: sign +1; `fft_in_place` also
        // divides by n, so undo that to get plain evaluations.
        fft_in_place(&mut v, true);
        let n = self.n as f64;
        v.iter().take(count.min(self.slots())).map(|c| c.re * n / self.scale).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let enc = CkksEncoder::new(64, (1u64 << 30) as f64).unwrap();
        let vals: Vec<f64> = (0..32).map(|i| (i as f64) * 0.37 - 3.0).collect();
        let coeffs = enc.encode(&vals).unwrap();
        let back = enc.decode(&coeffs, vals.len());
        for (a, b) in vals.iter().zip(&back) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn partial_slot_usage() {
        let enc = CkksEncoder::new(32, (1u64 << 20) as f64).unwrap();
        let vals = [1.5, -2.25, 3.0];
        let coeffs = enc.encode(&vals).unwrap();
        let back = enc.decode(&coeffs, 3);
        for (a, b) in vals.iter().zip(&back) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn encoding_is_additive() {
        // encode(a) + encode(b) decodes to a + b: the property VFL sums rely on.
        let enc = CkksEncoder::new(64, (1u64 << 30) as f64).unwrap();
        let a: Vec<f64> = (0..32).map(|i| (i as f64).sin()).collect();
        let b: Vec<f64> = (0..32).map(|i| (i as f64).cos() * 2.0).collect();
        let ca = enc.encode(&a).unwrap();
        let cb = enc.encode(&b).unwrap();
        let sum: Vec<i64> = ca.iter().zip(&cb).map(|(x, y)| x + y).collect();
        let back = enc.decode(&sum, 32);
        for i in 0..32 {
            assert!((back[i] - (a[i] + b[i])).abs() < 1e-6);
        }
    }

    #[test]
    fn too_many_slots_rejected() {
        let enc = CkksEncoder::new(16, 1024.0).unwrap();
        let vals = vec![1.0; 9];
        assert!(matches!(enc.encode(&vals), Err(Error::TooManySlots { got: 9, max: 8 })));
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(CkksEncoder::new(12, 1024.0).is_err());
        assert!(CkksEncoder::new(2, 1024.0).is_err());
        assert!(CkksEncoder::new(16, 0.5).is_err());
        assert!(CkksEncoder::new(16, f64::NAN).is_err());
    }
}
