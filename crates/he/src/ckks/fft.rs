//! Complex FFT used by the CKKS canonical-embedding codec.

use std::f64::consts::PI;

/// A complex number over `f64`.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Constructs from parts.
    #[must_use]
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ}`.
    #[must_use]
    pub fn from_angle(theta: f64) -> Self {
        Complex { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    #[must_use]
    pub fn conj(self) -> Self {
        Complex { re: self.re, im: -self.im }
    }

    /// Addition.
    #[must_use]
    pub fn add(self, o: Self) -> Self {
        Complex { re: self.re + o.re, im: self.im + o.im }
    }

    /// Subtraction.
    #[must_use]
    pub fn sub(self, o: Self) -> Self {
        Complex { re: self.re - o.re, im: self.im - o.im }
    }

    /// Multiplication.
    #[must_use]
    pub fn mul(self, o: Self) -> Self {
        Complex { re: self.re * o.re - self.im * o.im, im: self.re * o.im + self.im * o.re }
    }

    /// Scaling by a real.
    #[must_use]
    pub fn scale(self, s: f64) -> Self {
        Complex { re: self.re * s, im: self.im * s }
    }

    /// Magnitude.
    #[must_use]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }
}

/// In-place iterative radix-2 FFT. `inverse = true` applies the conjugate
/// transform *and* the `1/n` scaling.
pub fn fft_in_place(a: &mut [Complex], inverse: bool) {
    let n = a.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            a.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex::from_angle(ang);
        for chunk in a.chunks_mut(len) {
            let mut w = Complex::new(1.0, 0.0);
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = chunk[i + half].mul(w);
                chunk[i] = u.add(v);
                chunk[i + half] = u.sub(v);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
    if inverse {
        let inv_n = 1.0 / n as f64;
        for x in a.iter_mut() {
            *x = x.scale(inv_n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn fft_roundtrip() {
        let mut a: Vec<Complex> =
            (0..64).map(|i| Complex::new(i as f64, (i * i % 13) as f64)).collect();
        let orig = a.clone();
        fft_in_place(&mut a, false);
        fft_in_place(&mut a, true);
        for (x, y) in a.iter().zip(&orig) {
            assert!(close(x.re, y.re) && close(x.im, y.im));
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut a = vec![Complex::default(); 8];
        a[0] = Complex::new(1.0, 0.0);
        fft_in_place(&mut a, false);
        for x in &a {
            assert!(close(x.re, 1.0) && close(x.im, 0.0));
        }
    }

    #[test]
    fn fft_matches_dft_definition() {
        let vals: Vec<Complex> =
            (0..8).map(|i| Complex::new((i as f64).sin(), (i as f64).cos())).collect();
        let mut fast = vals.clone();
        fft_in_place(&mut fast, false);
        for (k, f) in fast.iter().enumerate() {
            let mut acc = Complex::default();
            for (t, v) in vals.iter().enumerate() {
                let ang = -2.0 * PI * (k * t) as f64 / 8.0;
                acc = acc.add(v.mul(Complex::from_angle(ang)));
            }
            assert!(close(f.re, acc.re) && close(f.im, acc.im), "bin {k}");
        }
    }

    #[test]
    fn complex_ops() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        let p = a.mul(b);
        assert!(close(p.re, 5.0) && close(p.im, 5.0));
        assert!(close(a.conj().im, -2.0));
        assert!(close(Complex::new(3.0, 4.0).abs(), 5.0));
    }
}
