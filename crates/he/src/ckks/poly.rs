//! Polynomials in `Z_q[X]/(X^n + 1)`: the RLWE workhorse.

use super::ntt::{add_mod, mul_mod, sub_mod, NttTables};
use rand::Rng;
use std::cell::RefCell;
use std::sync::Arc;

thread_local! {
    /// Reusable NTT staging buffer for the second operand of [`Poly::mul`],
    /// so repeated multiplications on one thread allocate only the output.
    static MUL_SCRATCH: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// A polynomial with `n` coefficients mod `q`, tied to shared NTT tables.
#[derive(Clone, Debug)]
pub struct Poly {
    coeffs: Vec<u64>,
    tables: Arc<NttTables>,
}

impl PartialEq for Poly {
    fn eq(&self, other: &Self) -> bool {
        self.tables.q == other.tables.q && self.coeffs == other.coeffs
    }
}

impl Poly {
    /// The zero polynomial.
    #[must_use]
    pub fn zero(tables: Arc<NttTables>) -> Self {
        Poly { coeffs: vec![0; tables.n], tables }
    }

    /// From raw coefficients already reduced mod `q`.
    ///
    /// # Panics
    /// Panics if the coefficient count differs from the ring degree.
    #[must_use]
    pub fn from_coeffs(coeffs: Vec<u64>, tables: Arc<NttTables>) -> Self {
        assert_eq!(coeffs.len(), tables.n, "coefficient count must equal ring degree");
        debug_assert!(coeffs.iter().all(|&c| c < tables.q));
        Poly { coeffs, tables }
    }

    /// From signed coefficients (centered representation).
    #[must_use]
    pub fn from_signed(coeffs: &[i64], tables: Arc<NttTables>) -> Self {
        let q = tables.q;
        let v = coeffs
            .iter()
            .map(|&c| if c >= 0 { (c as u64) % q } else { q - ((c.unsigned_abs()) % q) })
            .map(|c| if c == q { 0 } else { c })
            .collect();
        Poly::from_coeffs(v, tables)
    }

    /// Raw coefficients.
    #[must_use]
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Centered lift of each coefficient into `(-q/2, q/2]`.
    #[must_use]
    pub fn centered(&self) -> Vec<i64> {
        let q = self.tables.q;
        let half = q / 2;
        self.coeffs.iter().map(|&c| if c > half { c as i64 - q as i64 } else { c as i64 }).collect()
    }

    /// The modulus.
    #[must_use]
    pub fn modulus(&self) -> u64 {
        self.tables.q
    }

    /// The ring degree.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.tables.n
    }

    /// Component-wise addition.
    #[must_use]
    pub fn add(&self, other: &Self) -> Self {
        let q = self.tables.q;
        let coeffs =
            self.coeffs.iter().zip(&other.coeffs).map(|(&a, &b)| add_mod(a, b, q)).collect();
        Poly { coeffs, tables: Arc::clone(&self.tables) }
    }

    /// Component-wise subtraction.
    #[must_use]
    pub fn sub(&self, other: &Self) -> Self {
        let q = self.tables.q;
        let coeffs =
            self.coeffs.iter().zip(&other.coeffs).map(|(&a, &b)| sub_mod(a, b, q)).collect();
        Poly { coeffs, tables: Arc::clone(&self.tables) }
    }

    /// Negation.
    #[must_use]
    pub fn neg(&self) -> Self {
        let q = self.tables.q;
        let coeffs = self.coeffs.iter().map(|&a| if a == 0 { 0 } else { q - a }).collect();
        Poly { coeffs, tables: Arc::clone(&self.tables) }
    }

    /// Negacyclic polynomial multiplication via NTT. The second operand is
    /// staged in a thread-local scratch buffer, so only the output vector
    /// allocates per call.
    #[must_use]
    pub fn mul(&self, other: &Self) -> Self {
        let q = self.tables.q;
        let mut a = self.coeffs.clone();
        MUL_SCRATCH.with(|scratch| {
            let mut b = scratch.borrow_mut();
            b.clear();
            b.extend_from_slice(&other.coeffs);
            self.tables.forward(&mut a);
            self.tables.forward(&mut b);
            for (x, &y) in a.iter_mut().zip(b.iter()) {
                *x = mul_mod(*x, y, q);
            }
        });
        self.tables.inverse(&mut a);
        Poly { coeffs: a, tables: Arc::clone(&self.tables) }
    }

    /// Uniform random polynomial over `Z_q`.
    pub fn uniform<R: Rng + ?Sized>(rng: &mut R, tables: Arc<NttTables>) -> Self {
        let q = tables.q;
        let coeffs = (0..tables.n).map(|_| rng.gen_range(0..q)).collect();
        Poly { coeffs, tables }
    }

    /// Random ternary polynomial with coefficients in `{-1, 0, 1}`.
    pub fn ternary<R: Rng + ?Sized>(rng: &mut R, tables: Arc<NttTables>) -> Self {
        let q = tables.q;
        let coeffs = (0..tables.n)
            .map(|_| match rng.gen_range(0..3u8) {
                0 => 0u64,
                1 => 1,
                _ => q - 1,
            })
            .collect();
        Poly { coeffs, tables }
    }

    /// Small "gaussian-like" error polynomial: a centered binomial of
    /// parameter 21 approximating σ ≈ 3.2, the standard RLWE error width.
    pub fn error<R: Rng + ?Sized>(rng: &mut R, tables: Arc<NttTables>) -> Self {
        let q = tables.q;
        let coeffs = (0..tables.n)
            .map(|_| {
                let mut s: i32 = 0;
                for _ in 0..21 {
                    s += i32::from(rng.gen::<bool>()) - i32::from(rng.gen::<bool>());
                }
                if s >= 0 {
                    s as u64
                } else {
                    q - s.unsigned_abs() as u64
                }
            })
            .collect();
        Poly { coeffs, tables }
    }
}

#[cfg(test)]
mod tests {
    use super::super::ntt::find_ntt_prime;
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tables(n: usize) -> Arc<NttTables> {
        Arc::new(NttTables::new(n, find_ntt_prime(40, n)))
    }

    #[test]
    fn add_sub_neg() {
        let t = tables(16);
        let mut rng = StdRng::seed_from_u64(1);
        let a = Poly::uniform(&mut rng, Arc::clone(&t));
        let b = Poly::uniform(&mut rng, Arc::clone(&t));
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(a.add(&a.neg()), Poly::zero(t));
    }

    #[test]
    fn mul_matches_schoolbook_negacyclic() {
        let t = tables(8);
        let q = t.q;
        let mut rng = StdRng::seed_from_u64(2);
        let a = Poly::uniform(&mut rng, Arc::clone(&t));
        let b = Poly::uniform(&mut rng, Arc::clone(&t));
        let fast = a.mul(&b);
        // Schoolbook negacyclic reference.
        let n = 8;
        let mut ref_c = vec![0i128; n];
        for i in 0..n {
            for j in 0..n {
                let prod = (a.coeffs()[i] as i128 * b.coeffs()[j] as i128) % q as i128;
                let idx = (i + j) % n;
                if i + j >= n {
                    ref_c[idx] = (ref_c[idx] - prod).rem_euclid(q as i128);
                } else {
                    ref_c[idx] = (ref_c[idx] + prod).rem_euclid(q as i128);
                }
            }
        }
        let expect: Vec<u64> = ref_c.into_iter().map(|c| c as u64).collect();
        assert_eq!(fast.coeffs(), expect.as_slice());
    }

    #[test]
    fn signed_roundtrip_via_centered() {
        let t = tables(8);
        let signed = [0i64, 1, -1, 5, -5, 100, -100, 3];
        let p = Poly::from_signed(&signed, t);
        assert_eq!(p.centered(), signed.to_vec());
    }

    #[test]
    fn ternary_coeffs_are_small() {
        let t = tables(64);
        let mut rng = StdRng::seed_from_u64(3);
        let p = Poly::ternary(&mut rng, t);
        for &c in p.centered().iter() {
            assert!((-1..=1).contains(&c));
        }
    }

    #[test]
    fn error_coeffs_are_bounded() {
        let t = tables(256);
        let mut rng = StdRng::seed_from_u64(4);
        let p = Poly::error(&mut rng, t);
        for &c in p.centered().iter() {
            assert!(c.abs() <= 21, "binomial(21) support bound");
        }
        let mean: f64 = p.centered().iter().map(|&c| c as f64).sum::<f64>() / p.degree() as f64;
        assert!(mean.abs() < 2.0, "error distribution should be centered, mean={mean}");
    }
}
