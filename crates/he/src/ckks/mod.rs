//! CKKS-lite: an RLWE-based approximate homomorphic encryption scheme
//! supporting SIMD-batched encryption of real vectors and homomorphic
//! **addition** — exactly the operation set VFPS-SM's aggregation needs
//! (the paper's stack is TenSEAL CKKS used the same way).
//!
//! Simplifications relative to full CKKS: a single prime modulus (no
//! rescaling chain) and no relinearization keys, because ciphertext ×
//! ciphertext multiplication is never required by the protocols here.

pub mod encoding;
pub mod fft;
pub mod ntt;
pub mod poly;

use self::encoding::CkksEncoder;
use self::ntt::{find_ntt_prime, NttTables};
use self::poly::Poly;
use crate::error::{Error, Result};
use rand::Rng;
use std::sync::Arc;

/// CKKS parameter set.
#[derive(Clone, Debug)]
pub struct CkksParams {
    /// Ring degree `n` (power of two).
    pub degree: usize,
    /// Modulus bit width.
    pub modulus_bits: u32,
    /// Encoding scale `Δ`.
    pub scale: f64,
}

impl CkksParams {
    /// A small parameter set for fast tests (not secure).
    #[must_use]
    pub fn insecure_test() -> Self {
        CkksParams { degree: 256, modulus_bits: 50, scale: (1u64 << 26) as f64 }
    }

    /// A realistic parameter set mirroring the magnitudes the paper's
    /// TenSEAL configuration would use for addition-only workloads.
    #[must_use]
    pub fn default_vfl() -> Self {
        CkksParams { degree: 2048, modulus_bits: 55, scale: (1u64 << 30) as f64 }
    }
}

/// CKKS context: shared NTT tables and codec.
#[derive(Clone, Debug)]
pub struct CkksContext {
    tables: Arc<NttTables>,
    encoder: CkksEncoder,
}

/// Secret key (ternary `s`).
#[derive(Clone, Debug)]
pub struct CkksSecretKey {
    s: Poly,
}

/// Public key `(b, a)` with `b = -a·s + e`.
#[derive(Clone, Debug)]
pub struct CkksPublicKey {
    b: Poly,
    a: Poly,
}

/// A CKKS ciphertext `(c0, c1)` decrypting to `c0 + c1·s`.
#[derive(Clone, Debug, PartialEq)]
pub struct CkksCiphertext {
    c0: Poly,
    c1: Poly,
}

impl CkksCiphertext {
    /// Serialized size in bytes: two polynomials of `n` coefficients, 8
    /// bytes each (used for communication accounting).
    #[must_use]
    pub fn byte_len(&self) -> usize {
        2 * self.c0.degree() * 8
    }

    /// Serializes to `2n` little-endian `u64` coefficients (`c0` then `c1`).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.byte_len());
        for poly in [&self.c0, &self.c1] {
            for &c in poly.coeffs() {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
        out
    }
}

impl CkksContext {
    /// Builds a context from parameters.
    ///
    /// # Errors
    /// Returns [`Error::InvalidParameters`] for invalid degree/scale/modulus.
    pub fn new(params: &CkksParams) -> Result<Self> {
        if !params.degree.is_power_of_two() || params.degree < 4 {
            return Err(Error::InvalidParameters(format!(
                "degree {} must be a power of two >= 4",
                params.degree
            )));
        }
        if params.modulus_bits < 30 || params.modulus_bits > 62 {
            return Err(Error::InvalidParameters(format!(
                "modulus_bits {} outside [30, 62]",
                params.modulus_bits
            )));
        }
        let q = find_ntt_prime(params.modulus_bits, params.degree);
        let tables = Arc::new(NttTables::new(params.degree, q));
        let encoder = CkksEncoder::new(params.degree, params.scale)?;
        Ok(CkksContext { tables, encoder })
    }

    /// Number of real slots per ciphertext.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.encoder.slots()
    }

    /// The prime modulus in use.
    #[must_use]
    pub fn modulus(&self) -> u64 {
        self.tables.q
    }

    /// Generates a key pair.
    pub fn keygen<R: Rng + ?Sized>(&self, rng: &mut R) -> (CkksPublicKey, CkksSecretKey) {
        let s = Poly::ternary(rng, Arc::clone(&self.tables));
        let a = Poly::uniform(rng, Arc::clone(&self.tables));
        let e = Poly::error(rng, Arc::clone(&self.tables));
        let b = a.mul(&s).neg().add(&e);
        (CkksPublicKey { b, a }, CkksSecretKey { s })
    }

    /// Encrypts up to `slots()` real values.
    ///
    /// # Errors
    /// Returns [`Error::TooManySlots`] when `values` exceeds the slot count.
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        pk: &CkksPublicKey,
        values: &[f64],
        rng: &mut R,
    ) -> Result<CkksCiphertext> {
        let m = self.encode(values)?;
        let u = Poly::ternary(rng, Arc::clone(&self.tables));
        let e0 = Poly::error(rng, Arc::clone(&self.tables));
        let e1 = Poly::error(rng, Arc::clone(&self.tables));
        Ok(CkksCiphertext { c0: pk.b.mul(&u).add(&e0).add(&m), c1: pk.a.mul(&u).add(&e1) })
    }

    /// Decrypts to `count` approximate real values.
    #[must_use]
    pub fn decrypt(&self, sk: &CkksSecretKey, ct: &CkksCiphertext, count: usize) -> Vec<f64> {
        let m = ct.c0.add(&ct.c1.mul(&sk.s));
        self.encoder.decode(&m.centered(), count)
    }

    /// Homomorphic addition.
    #[must_use]
    pub fn add(&self, a: &CkksCiphertext, b: &CkksCiphertext) -> CkksCiphertext {
        CkksCiphertext { c0: a.c0.add(&b.c0), c1: a.c1.add(&b.c1) }
    }

    /// Adds a plaintext vector to a ciphertext without encryption.
    ///
    /// # Errors
    /// Returns [`Error::TooManySlots`] when `values` exceeds the slot count.
    pub fn add_plain(&self, a: &CkksCiphertext, values: &[f64]) -> Result<CkksCiphertext> {
        let m = self.encode(values)?;
        Ok(CkksCiphertext { c0: a.c0.add(&m), c1: a.c1.clone() })
    }

    fn encode(&self, values: &[f64]) -> Result<Poly> {
        let coeffs = self.encoder.encode(values)?;
        Ok(Poly::from_signed(&coeffs, Arc::clone(&self.tables)))
    }

    /// Deserializes a ciphertext produced by [`CkksCiphertext::to_bytes`]
    /// under this context's parameters.
    ///
    /// # Errors
    /// Returns [`Error::InvalidParameters`] on a size mismatch or
    /// out-of-range coefficients.
    pub fn ct_from_bytes(&self, bytes: &[u8]) -> Result<CkksCiphertext> {
        let n = self.tables.n;
        if bytes.len() != 2 * n * 8 {
            return Err(Error::InvalidParameters(format!(
                "ciphertext must be {} bytes, got {}",
                2 * n * 8,
                bytes.len()
            )));
        }
        let read_poly = |off: usize| -> Result<Poly> {
            let mut coeffs = Vec::with_capacity(n);
            for i in 0..n {
                let start = off + i * 8;
                let c =
                    u64::from_le_bytes(bytes[start..start + 8].try_into().expect("exact slice"));
                if c >= self.tables.q {
                    return Err(Error::InvalidParameters(format!(
                        "coefficient {c} exceeds modulus"
                    )));
                }
                coeffs.push(c);
            }
            Ok(Poly::from_coeffs(coeffs, Arc::clone(&self.tables)))
        };
        let c0 = read_poly(0)?;
        let c1 = read_poly(n * 8)?;
        Ok(CkksCiphertext { c0, c1 })
    }

    /// Expected absolute decryption error bound for a sum of `terms`
    /// fresh ciphertexts (heuristic, used by tests).
    #[must_use]
    pub fn error_bound(&self, terms: usize) -> f64 {
        // Fresh encryption noise is a few hundred in coefficient space for
        // binomial(21) errors and ternary u; decode divides by Δ. The n-point
        // embedding spreads noise by roughly sqrt(n).
        let n = self.encoder.slots() as f64 * 2.0;
        let per_ct = 21.0 * 8.0 * n.sqrt();
        per_ct * terms as f64 / self.encoder.scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx() -> CkksContext {
        CkksContext::new(&CkksParams::insecure_test()).unwrap()
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(1);
        let (pk, sk) = ctx.keygen(&mut rng);
        let vals: Vec<f64> = (0..ctx.slots()).map(|i| (i as f64) * 0.01 - 0.5).collect();
        let ct = ctx.encrypt(&pk, &vals, &mut rng).unwrap();
        let back = ctx.decrypt(&sk, &ct, vals.len());
        let bound = ctx.error_bound(1);
        for (a, b) in vals.iter().zip(&back) {
            assert!((a - b).abs() < bound, "{a} vs {b} (bound {bound})");
        }
    }

    #[test]
    fn homomorphic_addition() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(2);
        let (pk, sk) = ctx.keygen(&mut rng);
        let a = [1.5, 2.5, -3.25, 0.125];
        let b = [0.5, -1.5, 3.0, 10.0];
        let ca = ctx.encrypt(&pk, &a, &mut rng).unwrap();
        let cb = ctx.encrypt(&pk, &b, &mut rng).unwrap();
        let sum = ctx.add(&ca, &cb);
        let back = ctx.decrypt(&sk, &sum, 4);
        let bound = ctx.error_bound(2);
        for i in 0..4 {
            assert!((back[i] - (a[i] + b[i])).abs() < bound);
        }
    }

    #[test]
    fn many_party_aggregation() {
        // The exact usage pattern of VFPS-SM: P parties each encrypt partial
        // distances; the server sums ciphertexts; the leader decrypts.
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(3);
        let (pk, sk) = ctx.keygen(&mut rng);
        let parties = 8;
        let dims = 16;
        let mut expect = vec![0.0f64; dims];
        let mut acc: Option<CkksCiphertext> = None;
        for p in 0..parties {
            let vals: Vec<f64> = (0..dims).map(|i| ((p * dims + i) as f64).sqrt()).collect();
            for (e, v) in expect.iter_mut().zip(&vals) {
                *e += v;
            }
            let ct = ctx.encrypt(&pk, &vals, &mut rng).unwrap();
            acc = Some(match acc {
                None => ct,
                Some(prev) => ctx.add(&prev, &ct),
            });
        }
        let back = ctx.decrypt(&sk, &acc.unwrap(), dims);
        let bound = ctx.error_bound(parties);
        for i in 0..dims {
            assert!((back[i] - expect[i]).abs() < bound, "slot {i}");
        }
    }

    #[test]
    fn add_plain() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(4);
        let (pk, sk) = ctx.keygen(&mut rng);
        let ct = ctx.encrypt(&pk, &[5.0, -2.0], &mut rng).unwrap();
        let ct2 = ctx.add_plain(&ct, &[1.0, 2.0]).unwrap();
        let back = ctx.decrypt(&sk, &ct2, 2);
        let bound = ctx.error_bound(1);
        assert!((back[0] - 6.0).abs() < bound);
        assert!((back[1]).abs() < bound);
    }

    #[test]
    fn ciphertexts_are_randomized() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(5);
        let (pk, _) = ctx.keygen(&mut rng);
        let c1 = ctx.encrypt(&pk, &[1.0], &mut rng).unwrap();
        let c2 = ctx.encrypt(&pk, &[1.0], &mut rng).unwrap();
        assert_ne!(c1, c2);
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(
            CkksContext::new(&CkksParams { degree: 100, modulus_bits: 50, scale: 1e9 }).is_err()
        );
        assert!(
            CkksContext::new(&CkksParams { degree: 256, modulus_bits: 20, scale: 1e9 }).is_err()
        );
    }

    #[test]
    fn byte_len_counts_two_polys() {
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(6);
        let (pk, _) = ctx.keygen(&mut rng);
        let ct = ctx.encrypt(&pk, &[1.0], &mut rng).unwrap();
        assert_eq!(ct.byte_len(), 2 * 256 * 8);
    }
}
