//! The Paillier cryptosystem: an exact, additively homomorphic public-key
//! scheme.
//!
//! VFPS-SM only needs to *sum* encrypted partial distances, which Paillier
//! supports natively: `Enc(a)·Enc(b) mod n² = Enc(a+b)`. Plaintexts live in
//! `Z_n`; signed values are wrapped modularly and decoded by the `n/2`
//! threshold.
//!
//! Implementation notes: `g = n + 1`, so encryption avoids a full
//! exponentiation (`g^m = 1 + m·n mod n²`) and decryption uses
//! `μ = λ⁻¹ mod n`.
//!
//! Encryption has two paths. [`PaillierPublicKey::encrypt`] is the slow
//! reference: a fresh coprime `r` and a full `r.mod_pow(n, n²)` per call.
//! [`PaillierEncryptor`] is the hot path: it fixes `h = r₀ⁿ mod n²` at
//! setup, precomputes a fixed-base window table for `h` modulo `n²`, and
//! draws each noise factor as `h^x` for a short random `x` — the standard
//! shortened-randomness optimization, cutting an n-bit square-and-multiply
//! down to ~`x_bits / 4` table products. Since `h^x = (r₀^x mod n)^n`, the
//! result is ordinary Paillier randomness and decryption is bit-exact.

use crate::bigint::montgomery::FixedBaseWindow;
use crate::bigint::BigUint;
use crate::error::{Error, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Mutex;

/// Minimum accepted modulus width. Far below any secure size — permitted so
/// tests stay fast — but production callers should use ≥ 2048.
pub const MIN_KEY_BITS: usize = 64;

/// Paillier public key: the modulus `n` and cached `n²`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PaillierPublicKey {
    n: BigUint,
    n_squared: BigUint,
    half_n: BigUint,
}

/// Paillier private key: Carmichael `λ` and `μ = λ⁻¹ mod n`, plus the
/// prime factorization enabling CRT-accelerated decryption.
#[derive(Clone, Debug)]
pub struct PaillierPrivateKey {
    lambda: BigUint,
    mu: BigUint,
    pk: PaillierPublicKey,
    crt: Option<CrtParams>,
}

/// Precomputed Chinese-Remainder-Theorem parameters: decrypting modulo
/// `p²` and `q²` separately and recombining replaces one `n²`-sized
/// exponentiation with two quarter-cost ones — the standard ~4× Paillier
/// decryption speedup.
#[derive(Clone, Debug)]
struct CrtParams {
    p: BigUint,
    q: BigUint,
    p_squared: BigUint,
    q_squared: BigUint,
    /// `λ mod (p−1)` — exponent for the `p²` branch.
    lambda_p: BigUint,
    /// `λ mod (q−1)` — exponent for the `q²` branch.
    lambda_q: BigUint,
    /// `L_p(g^{λ_p} mod p²)^{-1} mod p` (with `g = n+1`).
    h_p: BigUint,
    /// `L_q(g^{λ_q} mod q²)^{-1} mod q`.
    h_q: BigUint,
    /// `p^{-1} mod q` for the final recombination.
    p_inv_q: BigUint,
}

impl CrtParams {
    fn new(p: &BigUint, q: &BigUint, n: &BigUint, lambda: &BigUint) -> Option<CrtParams> {
        let one = BigUint::one();
        let p_squared = p.square();
        let q_squared = q.square();
        let lambda_p = lambda.rem(&p.sub(&one));
        let lambda_q = lambda.rem(&q.sub(&one));
        // g = n + 1; g^λp mod p² = 1 + (n mod p²)·λp· ... — compute directly.
        let g = n.add(&one);
        let l_p = |x: &BigUint| x.sub(&one).divrem(p).0;
        let l_q = |x: &BigUint| x.sub(&one).divrem(q).0;
        let hp_raw = l_p(&g.mod_pow(&lambda_p, &p_squared)).rem(p);
        let hq_raw = l_q(&g.mod_pow(&lambda_q, &q_squared)).rem(q);
        Some(CrtParams {
            h_p: hp_raw.mod_inverse(p)?,
            h_q: hq_raw.mod_inverse(q)?,
            p_inv_q: p.mod_inverse(q)?,
            p: p.clone(),
            q: q.clone(),
            p_squared,
            q_squared,
            lambda_p,
            lambda_q,
        })
    }

    /// CRT decryption of ciphertext `c`.
    fn decrypt(&self, c: &BigUint) -> BigUint {
        let one = BigUint::one();
        // m_p = L_p(c^{λp} mod p²) · h_p mod p
        let mp = c
            .rem(&self.p_squared)
            .mod_pow(&self.lambda_p, &self.p_squared)
            .sub(&one)
            .divrem(&self.p)
            .0
            .mul_mod(&self.h_p, &self.p);
        let mq = c
            .rem(&self.q_squared)
            .mod_pow(&self.lambda_q, &self.q_squared)
            .sub(&one)
            .divrem(&self.q)
            .0
            .mul_mod(&self.h_q, &self.q);
        // Garner recombination: m = m_p + p·((m_q − m_p)·p⁻¹ mod q).
        let diff = mq.sub_mod(&mp, &self.q);
        mp.add(&self.p.mul(&diff.mul_mod(&self.p_inv_q, &self.q)))
    }
}

/// A public/private key pair.
#[derive(Clone, Debug)]
pub struct PaillierKeypair {
    /// Public half, distributed to every party and the aggregation server.
    pub public: PaillierPublicKey,
    /// Private half, held only by the leader participant.
    pub private: PaillierPrivateKey,
}

/// A Paillier ciphertext (an element of `Z_{n²}`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PaillierCiphertext(BigUint);

impl PaillierCiphertext {
    /// Serialized size in bytes (used for byte-accurate communication
    /// accounting).
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.0.byte_len()
    }

    /// Raw ciphertext value (exposed for serialization).
    #[must_use]
    pub fn as_biguint(&self) -> &BigUint {
        &self.0
    }

    /// Rebuilds a ciphertext from its raw value. The value is *not*
    /// validated against a key; use only with trusted serialized data.
    #[must_use]
    pub fn from_biguint(v: BigUint) -> Self {
        PaillierCiphertext(v)
    }
}

/// Generates a fresh keypair with an `n` of exactly `bits` bits.
///
/// # Errors
/// Returns [`Error::KeyTooSmall`] when `bits < MIN_KEY_BITS`.
pub fn generate_keypair<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> Result<PaillierKeypair> {
    if bits < MIN_KEY_BITS {
        return Err(Error::KeyTooSmall { bits, min: MIN_KEY_BITS });
    }
    loop {
        let p = BigUint::random_prime(rng, bits / 2);
        let q = BigUint::random_prime(rng, bits - bits / 2);
        if p == q {
            continue;
        }
        let n = p.mul(&q);
        if n.bits() != bits {
            continue;
        }
        let one = BigUint::one();
        let lambda = p.sub(&one).lcm(&q.sub(&one));
        let Some(mu) = lambda.mod_inverse(&n) else {
            continue;
        };
        let n_squared = n.square();
        let half_n = n.shr(1);
        let crt = CrtParams::new(&p, &q, &n, &lambda);
        let pk = PaillierPublicKey { n, n_squared, half_n };
        return Ok(PaillierKeypair {
            private: PaillierPrivateKey { lambda, mu, pk: pk.clone(), crt },
            public: pk,
        });
    }
}

impl PaillierPublicKey {
    /// The modulus `n`.
    #[must_use]
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Bit width of the modulus.
    #[must_use]
    pub fn key_bits(&self) -> usize {
        self.n.bits()
    }

    /// Encrypts a non-negative plaintext `m < n`.
    ///
    /// # Errors
    /// Returns [`Error::PlaintextOutOfRange`] if `m >= n`.
    pub fn encrypt<R: Rng + ?Sized>(&self, m: &BigUint, rng: &mut R) -> Result<PaillierCiphertext> {
        if m >= &self.n {
            return Err(Error::PlaintextOutOfRange);
        }
        let r = BigUint::random_coprime(rng, &self.n);
        // g^m = (1 + n)^m = 1 + m·n (mod n²)
        let gm = BigUint::one().add(&m.mul(&self.n)).rem(&self.n_squared);
        let rn = r.mod_pow(&self.n, &self.n_squared);
        Ok(PaillierCiphertext(gm.mul_mod(&rn, &self.n_squared)))
    }

    /// Encrypts a signed 64-bit value (wrapped into `Z_n`).
    pub fn encrypt_i64<R: Rng + ?Sized>(&self, v: i64, rng: &mut R) -> Result<PaillierCiphertext> {
        self.encrypt(&self.encode_i64(v), rng)
    }

    /// Wraps a signed value into `Z_n` (negatives map to `n - |v|`).
    #[must_use]
    pub fn encode_i64(&self, v: i64) -> BigUint {
        if v >= 0 {
            BigUint::from_u64(v as u64)
        } else {
            self.n.sub(&BigUint::from_u64(v.unsigned_abs()))
        }
    }

    /// Homomorphic addition: `Enc(a) ⊕ Enc(b) = Enc(a + b mod n)`.
    #[must_use]
    pub fn add(&self, a: &PaillierCiphertext, b: &PaillierCiphertext) -> PaillierCiphertext {
        PaillierCiphertext(a.0.mul_mod(&b.0, &self.n_squared))
    }

    /// Adds a plaintext to a ciphertext without re-encryption.
    #[must_use]
    pub fn add_plain(&self, a: &PaillierCiphertext, m: &BigUint) -> PaillierCiphertext {
        let gm = BigUint::one().add(&m.rem(&self.n).mul(&self.n)).rem(&self.n_squared);
        PaillierCiphertext(a.0.mul_mod(&gm, &self.n_squared))
    }

    /// Multiplies the underlying plaintext by a constant: `Enc(a)^k = Enc(k·a)`.
    #[must_use]
    pub fn mul_plain(&self, a: &PaillierCiphertext, k: &BigUint) -> PaillierCiphertext {
        PaillierCiphertext(a.0.mod_pow(k, &self.n_squared))
    }

    /// Re-randomizes a ciphertext (multiplies by a fresh encryption of zero),
    /// breaking ciphertext linkability.
    pub fn rerandomize<R: Rng + ?Sized>(
        &self,
        a: &PaillierCiphertext,
        rng: &mut R,
    ) -> PaillierCiphertext {
        let r = BigUint::random_coprime(rng, &self.n);
        let rn = r.mod_pow(&self.n, &self.n_squared);
        PaillierCiphertext(a.0.mul_mod(&rn, &self.n_squared))
    }

    /// Decodes a `Z_n` element into a signed value via the `n/2` threshold.
    #[must_use]
    pub fn decode_i128(&self, m: &BigUint) -> i128 {
        if m > &self.half_n {
            let mag = self.n.sub(m);
            -(mag.to_u128().expect("decoded magnitude exceeds i128") as i128)
        } else {
            m.to_u128().expect("decoded value exceeds i128") as i128
        }
    }
}

impl PaillierPrivateKey {
    /// The associated public key.
    #[must_use]
    pub fn public(&self) -> &PaillierPublicKey {
        &self.pk
    }

    /// Decrypts to the plaintext residue in `[0, n)` (CRT fast path when
    /// the factorization is available).
    #[must_use]
    pub fn decrypt(&self, c: &PaillierCiphertext) -> BigUint {
        match &self.crt {
            Some(crt) => crt.decrypt(&c.0),
            None => self.decrypt_plain(c),
        }
    }

    /// Division-based decryption via the full `n²` exponentiation — the
    /// oracle the CRT path is tested against.
    #[must_use]
    pub fn decrypt_plain(&self, c: &PaillierCiphertext) -> BigUint {
        let pk = &self.pk;
        let x = c.0.mod_pow(&self.lambda, &pk.n_squared);
        // L(x) = (x - 1) / n
        let l = x.sub(&BigUint::one()).divrem(&pk.n).0;
        l.mul_mod(&self.mu, &pk.n)
    }

    /// Decrypts to a signed value via the `n/2` threshold.
    #[must_use]
    pub fn decrypt_i128(&self, c: &PaillierCiphertext) -> i128 {
        let m = self.decrypt(c);
        self.pk.decode_i128(&m)
    }
}

// ---------------------------------------------------------------------------
// Precomputed fast-path encryption
// ---------------------------------------------------------------------------

/// Noise exponents are at least this wide even for the smallest keys.
const MIN_NOISE_BITS: usize = 64;

/// Precomputed fast-path encryptor: fixed-base window table over the noise
/// base `h = r₀ⁿ mod n²`, with noise factors `h^x` for short seeded `x`.
///
/// Construction costs a few hundred Montgomery products (one-time, at key
/// setup); each encryption afterwards costs ~`noise_bits / 4` products
/// instead of the ~`1.5 · key_bits` of the slow path, and skips the
/// coprime rejection loop entirely.
#[derive(Clone, Debug)]
pub struct PaillierEncryptor {
    pk: PaillierPublicKey,
    window: FixedBaseWindow,
    noise_bits: usize,
}

impl PaillierEncryptor {
    /// Builds the precomputed table for `pk`, drawing the base seed `r₀`
    /// from `rng`. Two encryptors built from identical RNG states produce
    /// identical ciphertexts for identical (plaintext, noise seed) pairs.
    pub fn new<R: Rng + ?Sized>(pk: &PaillierPublicKey, rng: &mut R) -> Self {
        let r0 = BigUint::random_coprime(rng, &pk.n);
        let h = r0.mod_pow(&pk.n, &pk.n_squared);
        // Half the key width keeps the noise group large (2^(k/2) choices)
        // while quartering the exponent the window walk has to cover.
        let noise_bits = (pk.key_bits() / 2).max(MIN_NOISE_BITS);
        let window = FixedBaseWindow::new(&h, &pk.n_squared, noise_bits)
            .expect("n² is odd, so the Montgomery context always exists");
        PaillierEncryptor { pk: pk.clone(), window, noise_bits }
    }

    /// The public key this encryptor serves.
    #[must_use]
    pub fn public(&self) -> &PaillierPublicKey {
        &self.pk
    }

    /// Bit width of the short noise exponents.
    #[must_use]
    pub fn noise_bits(&self) -> usize {
        self.noise_bits
    }

    /// Derives the noise factor `h^x mod n²` for a seeded short exponent
    /// `x`. Pure function of `seed`, so factors can be precomputed on any
    /// thread (or ahead of time by a [`NoisePool`]) without changing the
    /// ciphertexts.
    #[must_use]
    pub fn noise_for_seed(&self, seed: u64) -> BigUint {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = BigUint::random_bits(&mut rng, self.noise_bits);
        self.window.pow(&x)
    }

    /// Encrypts `m` with an explicit noise factor (from
    /// [`PaillierEncryptor::noise_for_seed`]).
    ///
    /// # Errors
    /// Returns [`Error::PlaintextOutOfRange`] if `m >= n`.
    pub fn encrypt_with_noise(&self, m: &BigUint, noise: &BigUint) -> Result<PaillierCiphertext> {
        if m >= &self.pk.n {
            return Err(Error::PlaintextOutOfRange);
        }
        // g^m = (1 + n)^m = 1 + m·n (mod n²)
        let gm = BigUint::one().add(&m.mul(&self.pk.n)).rem(&self.pk.n_squared);
        Ok(PaillierCiphertext(gm.mul_mod(noise, &self.pk.n_squared)))
    }

    /// Convenience: derive the seeded noise factor and encrypt in one call.
    ///
    /// # Errors
    /// Returns [`Error::PlaintextOutOfRange`] if `m >= n`.
    pub fn encrypt_seeded(&self, m: &BigUint, seed: u64) -> Result<PaillierCiphertext> {
        self.encrypt_with_noise(m, &self.noise_for_seed(seed))
    }
}

/// A seeded, refillable pool of noise-factor *indices*.
///
/// The pool does not own randomness: factor `j` is the pure function
/// `encryptor.noise_for_seed(split_seed(pool_seed, j))`, so a ciphertext
/// depends only on the order in which callers *reserve* indices — never on
/// whether the factor was prefilled, which thread computed it, or how many
/// were prefilled. [`NoisePool::prefill`] computes factors ahead of the
/// critical path and caches them; [`NoisePool::take`] consumes the cache
/// when it can and falls back to computing on demand.
#[derive(Debug)]
pub struct NoisePool {
    seed: u64,
    state: Mutex<NoisePoolState>,
}

#[derive(Debug, Default)]
struct NoisePoolState {
    /// Next unreserved index; reservations are contiguous and ordered by
    /// call sequence, which is what makes pooled output deterministic.
    cursor: u64,
    /// Prefilled factors not yet consumed, keyed by index.
    ready: HashMap<u64, BigUint>,
}

impl NoisePool {
    /// Creates an empty pool over `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        NoisePool { seed, state: Mutex::new(NoisePoolState::default()) }
    }

    /// The seed for factor index `j` (pure).
    #[must_use]
    pub fn seed_for(&self, index: u64) -> u64 {
        vfps_par::split_seed(self.seed, index)
    }

    /// Reserves `count` consecutive factor indices, returning the first.
    pub fn reserve(&self, count: usize) -> u64 {
        let mut state = self.state.lock().expect("noise pool mutex poisoned");
        let start = state.cursor;
        state.cursor += count as u64;
        start
    }

    /// The factor for a reserved index: the prefilled value if available,
    /// otherwise computed on demand (identical either way).
    #[must_use]
    pub fn take(&self, enc: &PaillierEncryptor, index: u64) -> BigUint {
        if let Some(hit) =
            self.state.lock().expect("noise pool mutex poisoned").ready.remove(&index)
        {
            return hit;
        }
        enc.noise_for_seed(self.seed_for(index))
    }

    /// Precomputes the next `count` unreserved factors on `pool`, off the
    /// encryption critical path. Safe to call at any time; already-reserved
    /// indices are never recomputed.
    pub fn prefill(&self, enc: &PaillierEncryptor, count: usize, pool: &vfps_par::Pool) {
        let start = self.state.lock().expect("noise pool mutex poisoned").cursor;
        let indices: Vec<u64> = (start..start + count as u64).collect();
        let factors =
            pool.par_map_indexed(&indices, |_, &j| (j, enc.noise_for_seed(self.seed_for(j))));
        let mut state = self.state.lock().expect("noise pool mutex poisoned");
        for (j, f) in factors {
            // A concurrent reserve/take may have consumed past `j` already;
            // caching it anyway is harmless (take falls back to computing).
            state.ready.insert(j, f);
        }
    }

    /// Number of prefilled factors currently cached.
    #[must_use]
    pub fn ready_len(&self) -> usize {
        self.state.lock().expect("noise pool mutex poisoned").ready.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair(bits: usize) -> PaillierKeypair {
        let mut rng = StdRng::seed_from_u64(42);
        generate_keypair(&mut rng, bits).unwrap()
    }

    #[test]
    fn rejects_tiny_keys() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(generate_keypair(&mut rng, 32), Err(Error::KeyTooSmall { .. })));
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let kp = keypair(256);
        let mut rng = StdRng::seed_from_u64(1);
        for v in [0u64, 1, 42, 1_000_000, u64::MAX] {
            let m = BigUint::from_u64(v);
            let c = kp.public.encrypt(&m, &mut rng).unwrap();
            assert_eq!(kp.private.decrypt(&c), m, "v={v}");
        }
    }

    #[test]
    fn ciphertexts_are_randomized() {
        let kp = keypair(256);
        let mut rng = StdRng::seed_from_u64(2);
        let m = BigUint::from_u64(7);
        let c1 = kp.public.encrypt(&m, &mut rng).unwrap();
        let c2 = kp.public.encrypt(&m, &mut rng).unwrap();
        assert_ne!(c1, c2, "semantic security: same plaintext, fresh randomness");
        assert_eq!(kp.private.decrypt(&c1), kp.private.decrypt(&c2));
    }

    #[test]
    fn additive_homomorphism() {
        let kp = keypair(256);
        let mut rng = StdRng::seed_from_u64(3);
        let a = kp.public.encrypt(&BigUint::from_u64(1234), &mut rng).unwrap();
        let b = kp.public.encrypt(&BigUint::from_u64(8766), &mut rng).unwrap();
        let sum = kp.public.add(&a, &b);
        assert_eq!(kp.private.decrypt(&sum).to_u64(), Some(10_000));
    }

    #[test]
    fn add_plain_and_mul_plain() {
        let kp = keypair(256);
        let mut rng = StdRng::seed_from_u64(4);
        let c = kp.public.encrypt(&BigUint::from_u64(100), &mut rng).unwrap();
        let c2 = kp.public.add_plain(&c, &BigUint::from_u64(23));
        assert_eq!(kp.private.decrypt(&c2).to_u64(), Some(123));
        let c3 = kp.public.mul_plain(&c, &BigUint::from_u64(5));
        assert_eq!(kp.private.decrypt(&c3).to_u64(), Some(500));
    }

    #[test]
    fn signed_values_roundtrip() {
        let kp = keypair(256);
        let mut rng = StdRng::seed_from_u64(5);
        for v in [-1_000_000i64, -1, 0, 1, 999_999_999] {
            let c = kp.public.encrypt_i64(v, &mut rng).unwrap();
            assert_eq!(kp.private.decrypt_i128(&c), i128::from(v), "v={v}");
        }
    }

    #[test]
    fn signed_sums_cross_zero() {
        let kp = keypair(256);
        let mut rng = StdRng::seed_from_u64(6);
        let a = kp.public.encrypt_i64(-500, &mut rng).unwrap();
        let b = kp.public.encrypt_i64(200, &mut rng).unwrap();
        assert_eq!(kp.private.decrypt_i128(&kp.public.add(&a, &b)), -300);
    }

    #[test]
    fn rerandomize_preserves_plaintext() {
        let kp = keypair(256);
        let mut rng = StdRng::seed_from_u64(7);
        let c = kp.public.encrypt(&BigUint::from_u64(77), &mut rng).unwrap();
        let c2 = kp.public.rerandomize(&c, &mut rng);
        assert_ne!(c, c2);
        assert_eq!(kp.private.decrypt(&c2).to_u64(), Some(77));
    }

    #[test]
    fn plaintext_out_of_range_rejected() {
        let kp = keypair(128);
        let mut rng = StdRng::seed_from_u64(8);
        let too_big = kp.public.modulus().clone();
        assert!(matches!(kp.public.encrypt(&too_big, &mut rng), Err(Error::PlaintextOutOfRange)));
    }

    #[test]
    fn crt_decrypt_matches_plain_decrypt() {
        let kp = keypair(256);
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..20 {
            let m = BigUint::random_below(&mut rng, kp.public.modulus());
            let c = kp.public.encrypt(&m, &mut rng).unwrap();
            assert_eq!(kp.private.decrypt(&c), kp.private.decrypt_plain(&c));
            assert_eq!(kp.private.decrypt(&c), m);
        }
    }

    #[test]
    fn fast_path_decrypts_identically_to_slow_path() {
        let kp = keypair(256);
        let mut rng = StdRng::seed_from_u64(11);
        let enc = PaillierEncryptor::new(&kp.public, &mut rng);
        for (i, v) in [0u64, 1, 42, 1_000_000, u64::MAX].into_iter().enumerate() {
            let m = BigUint::from_u64(v);
            let fast = enc.encrypt_seeded(&m, 1000 + i as u64).unwrap();
            assert_eq!(kp.private.decrypt(&fast), m, "fast path roundtrip v={v}");
            // The fast ciphertext interoperates with slow-path ciphertexts.
            let slow = kp.public.encrypt(&m, &mut rng).unwrap();
            let sum = kp.public.add(&fast, &slow);
            assert_eq!(kp.private.decrypt(&sum), m.add(&m), "fast+slow interop v={v}");
        }
    }

    #[test]
    fn fast_path_is_deterministic_in_its_seed() {
        let kp = keypair(128);
        let enc_a = PaillierEncryptor::new(&kp.public, &mut StdRng::seed_from_u64(20));
        let enc_b = PaillierEncryptor::new(&kp.public, &mut StdRng::seed_from_u64(20));
        let m = BigUint::from_u64(314);
        assert_eq!(enc_a.encrypt_seeded(&m, 7).unwrap(), enc_b.encrypt_seeded(&m, 7).unwrap());
        assert_ne!(
            enc_a.encrypt_seeded(&m, 7).unwrap(),
            enc_a.encrypt_seeded(&m, 8).unwrap(),
            "different noise seeds randomize the ciphertext"
        );
    }

    #[test]
    fn fast_path_rejects_out_of_range_plaintext() {
        let kp = keypair(128);
        let mut rng = StdRng::seed_from_u64(21);
        let enc = PaillierEncryptor::new(&kp.public, &mut rng);
        let too_big = kp.public.modulus().clone();
        assert!(matches!(enc.encrypt_seeded(&too_big, 0), Err(Error::PlaintextOutOfRange)));
    }

    #[test]
    fn noise_pool_output_is_independent_of_prefill_and_threads() {
        let kp = keypair(128);
        let mut rng = StdRng::seed_from_u64(22);
        let enc = PaillierEncryptor::new(&kp.public, &mut rng);
        // Reference: no prefill at all, take on demand.
        let cold = NoisePool::new(777);
        let start = cold.reserve(12);
        let want: Vec<BigUint> = (start..start + 12).map(|j| cold.take(&enc, j)).collect();
        for threads in [1usize, 4] {
            let pool = vfps_par::Pool::with_threads(threads);
            let warm = NoisePool::new(777);
            warm.prefill(&enc, 5, &pool); // partial prefill: 5 of 12
            assert_eq!(warm.ready_len(), 5);
            let start = warm.reserve(12);
            let got: Vec<BigUint> = (start..start + 12).map(|j| warm.take(&enc, j)).collect();
            assert_eq!(got, want, "threads={threads}");
            assert_eq!(warm.ready_len(), 0, "prefilled factors consumed");
        }
    }

    #[test]
    fn noise_pool_reservations_are_contiguous() {
        let pool = NoisePool::new(1);
        assert_eq!(pool.reserve(3), 0);
        assert_eq!(pool.reserve(1), 3);
        assert_eq!(pool.reserve(0), 4);
        assert_eq!(pool.reserve(2), 4);
    }

    #[test]
    fn long_sum_chain() {
        let kp = keypair(256);
        let mut rng = StdRng::seed_from_u64(9);
        let mut acc = kp.public.encrypt(&BigUint::zero(), &mut rng).unwrap();
        let mut expect = 0u64;
        for i in 1..=50u64 {
            let c = kp.public.encrypt(&BigUint::from_u64(i * i), &mut rng).unwrap();
            acc = kp.public.add(&acc, &c);
            expect += i * i;
        }
        assert_eq!(kp.private.decrypt(&acc).to_u64(), Some(expect));
    }
}
