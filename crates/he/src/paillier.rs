//! The Paillier cryptosystem: an exact, additively homomorphic public-key
//! scheme.
//!
//! VFPS-SM only needs to *sum* encrypted partial distances, which Paillier
//! supports natively: `Enc(a)·Enc(b) mod n² = Enc(a+b)`. Plaintexts live in
//! `Z_n`; signed values are wrapped modularly and decoded by the `n/2`
//! threshold.
//!
//! Implementation notes: `g = n + 1`, so encryption avoids a full
//! exponentiation (`g^m = 1 + m·n mod n²`) and decryption uses
//! `μ = λ⁻¹ mod n`.

use crate::bigint::BigUint;
use crate::error::{Error, Result};
use rand::Rng;

/// Minimum accepted modulus width. Far below any secure size — permitted so
/// tests stay fast — but production callers should use ≥ 2048.
pub const MIN_KEY_BITS: usize = 64;

/// Paillier public key: the modulus `n` and cached `n²`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PaillierPublicKey {
    n: BigUint,
    n_squared: BigUint,
    half_n: BigUint,
}

/// Paillier private key: Carmichael `λ` and `μ = λ⁻¹ mod n`, plus the
/// prime factorization enabling CRT-accelerated decryption.
#[derive(Clone, Debug)]
pub struct PaillierPrivateKey {
    lambda: BigUint,
    mu: BigUint,
    pk: PaillierPublicKey,
    crt: Option<CrtParams>,
}

/// Precomputed Chinese-Remainder-Theorem parameters: decrypting modulo
/// `p²` and `q²` separately and recombining replaces one `n²`-sized
/// exponentiation with two quarter-cost ones — the standard ~4× Paillier
/// decryption speedup.
#[derive(Clone, Debug)]
struct CrtParams {
    p: BigUint,
    q: BigUint,
    p_squared: BigUint,
    q_squared: BigUint,
    /// `λ mod (p−1)` — exponent for the `p²` branch.
    lambda_p: BigUint,
    /// `λ mod (q−1)` — exponent for the `q²` branch.
    lambda_q: BigUint,
    /// `L_p(g^{λ_p} mod p²)^{-1} mod p` (with `g = n+1`).
    h_p: BigUint,
    /// `L_q(g^{λ_q} mod q²)^{-1} mod q`.
    h_q: BigUint,
    /// `p^{-1} mod q` for the final recombination.
    p_inv_q: BigUint,
}

impl CrtParams {
    fn new(p: &BigUint, q: &BigUint, n: &BigUint, lambda: &BigUint) -> Option<CrtParams> {
        let one = BigUint::one();
        let p_squared = p.square();
        let q_squared = q.square();
        let lambda_p = lambda.rem(&p.sub(&one));
        let lambda_q = lambda.rem(&q.sub(&one));
        // g = n + 1; g^λp mod p² = 1 + (n mod p²)·λp· ... — compute directly.
        let g = n.add(&one);
        let l_p = |x: &BigUint| x.sub(&one).divrem(p).0;
        let l_q = |x: &BigUint| x.sub(&one).divrem(q).0;
        let hp_raw = l_p(&g.mod_pow(&lambda_p, &p_squared)).rem(p);
        let hq_raw = l_q(&g.mod_pow(&lambda_q, &q_squared)).rem(q);
        Some(CrtParams {
            h_p: hp_raw.mod_inverse(p)?,
            h_q: hq_raw.mod_inverse(q)?,
            p_inv_q: p.mod_inverse(q)?,
            p: p.clone(),
            q: q.clone(),
            p_squared,
            q_squared,
            lambda_p,
            lambda_q,
        })
    }

    /// CRT decryption of ciphertext `c`.
    fn decrypt(&self, c: &BigUint) -> BigUint {
        let one = BigUint::one();
        // m_p = L_p(c^{λp} mod p²) · h_p mod p
        let mp = c
            .rem(&self.p_squared)
            .mod_pow(&self.lambda_p, &self.p_squared)
            .sub(&one)
            .divrem(&self.p)
            .0
            .mul_mod(&self.h_p, &self.p);
        let mq = c
            .rem(&self.q_squared)
            .mod_pow(&self.lambda_q, &self.q_squared)
            .sub(&one)
            .divrem(&self.q)
            .0
            .mul_mod(&self.h_q, &self.q);
        // Garner recombination: m = m_p + p·((m_q − m_p)·p⁻¹ mod q).
        let diff = mq.sub_mod(&mp, &self.q);
        mp.add(&self.p.mul(&diff.mul_mod(&self.p_inv_q, &self.q)))
    }
}

/// A public/private key pair.
#[derive(Clone, Debug)]
pub struct PaillierKeypair {
    /// Public half, distributed to every party and the aggregation server.
    pub public: PaillierPublicKey,
    /// Private half, held only by the leader participant.
    pub private: PaillierPrivateKey,
}

/// A Paillier ciphertext (an element of `Z_{n²}`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PaillierCiphertext(BigUint);

impl PaillierCiphertext {
    /// Serialized size in bytes (used for byte-accurate communication
    /// accounting).
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.0.byte_len()
    }

    /// Raw ciphertext value (exposed for serialization).
    #[must_use]
    pub fn as_biguint(&self) -> &BigUint {
        &self.0
    }

    /// Rebuilds a ciphertext from its raw value. The value is *not*
    /// validated against a key; use only with trusted serialized data.
    #[must_use]
    pub fn from_biguint(v: BigUint) -> Self {
        PaillierCiphertext(v)
    }
}

/// Generates a fresh keypair with an `n` of exactly `bits` bits.
///
/// # Errors
/// Returns [`Error::KeyTooSmall`] when `bits < MIN_KEY_BITS`.
pub fn generate_keypair<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> Result<PaillierKeypair> {
    if bits < MIN_KEY_BITS {
        return Err(Error::KeyTooSmall { bits, min: MIN_KEY_BITS });
    }
    loop {
        let p = BigUint::random_prime(rng, bits / 2);
        let q = BigUint::random_prime(rng, bits - bits / 2);
        if p == q {
            continue;
        }
        let n = p.mul(&q);
        if n.bits() != bits {
            continue;
        }
        let one = BigUint::one();
        let lambda = p.sub(&one).lcm(&q.sub(&one));
        let Some(mu) = lambda.mod_inverse(&n) else {
            continue;
        };
        let n_squared = n.square();
        let half_n = n.shr(1);
        let crt = CrtParams::new(&p, &q, &n, &lambda);
        let pk = PaillierPublicKey { n, n_squared, half_n };
        return Ok(PaillierKeypair {
            private: PaillierPrivateKey { lambda, mu, pk: pk.clone(), crt },
            public: pk,
        });
    }
}

impl PaillierPublicKey {
    /// The modulus `n`.
    #[must_use]
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Bit width of the modulus.
    #[must_use]
    pub fn key_bits(&self) -> usize {
        self.n.bits()
    }

    /// Encrypts a non-negative plaintext `m < n`.
    ///
    /// # Errors
    /// Returns [`Error::PlaintextOutOfRange`] if `m >= n`.
    pub fn encrypt<R: Rng + ?Sized>(&self, m: &BigUint, rng: &mut R) -> Result<PaillierCiphertext> {
        if m >= &self.n {
            return Err(Error::PlaintextOutOfRange);
        }
        let r = BigUint::random_coprime(rng, &self.n);
        // g^m = (1 + n)^m = 1 + m·n (mod n²)
        let gm = BigUint::one().add(&m.mul(&self.n)).rem(&self.n_squared);
        let rn = r.mod_pow(&self.n, &self.n_squared);
        Ok(PaillierCiphertext(gm.mul_mod(&rn, &self.n_squared)))
    }

    /// Encrypts a signed 64-bit value (wrapped into `Z_n`).
    pub fn encrypt_i64<R: Rng + ?Sized>(&self, v: i64, rng: &mut R) -> Result<PaillierCiphertext> {
        self.encrypt(&self.encode_i64(v), rng)
    }

    /// Wraps a signed value into `Z_n` (negatives map to `n - |v|`).
    #[must_use]
    pub fn encode_i64(&self, v: i64) -> BigUint {
        if v >= 0 {
            BigUint::from_u64(v as u64)
        } else {
            self.n.sub(&BigUint::from_u64(v.unsigned_abs()))
        }
    }

    /// Homomorphic addition: `Enc(a) ⊕ Enc(b) = Enc(a + b mod n)`.
    #[must_use]
    pub fn add(&self, a: &PaillierCiphertext, b: &PaillierCiphertext) -> PaillierCiphertext {
        PaillierCiphertext(a.0.mul_mod(&b.0, &self.n_squared))
    }

    /// Adds a plaintext to a ciphertext without re-encryption.
    #[must_use]
    pub fn add_plain(&self, a: &PaillierCiphertext, m: &BigUint) -> PaillierCiphertext {
        let gm = BigUint::one().add(&m.rem(&self.n).mul(&self.n)).rem(&self.n_squared);
        PaillierCiphertext(a.0.mul_mod(&gm, &self.n_squared))
    }

    /// Multiplies the underlying plaintext by a constant: `Enc(a)^k = Enc(k·a)`.
    #[must_use]
    pub fn mul_plain(&self, a: &PaillierCiphertext, k: &BigUint) -> PaillierCiphertext {
        PaillierCiphertext(a.0.mod_pow(k, &self.n_squared))
    }

    /// Re-randomizes a ciphertext (multiplies by a fresh encryption of zero),
    /// breaking ciphertext linkability.
    pub fn rerandomize<R: Rng + ?Sized>(
        &self,
        a: &PaillierCiphertext,
        rng: &mut R,
    ) -> PaillierCiphertext {
        let r = BigUint::random_coprime(rng, &self.n);
        let rn = r.mod_pow(&self.n, &self.n_squared);
        PaillierCiphertext(a.0.mul_mod(&rn, &self.n_squared))
    }

    /// Decodes a `Z_n` element into a signed value via the `n/2` threshold.
    #[must_use]
    pub fn decode_i128(&self, m: &BigUint) -> i128 {
        if m > &self.half_n {
            let mag = self.n.sub(m);
            -(mag.to_u128().expect("decoded magnitude exceeds i128") as i128)
        } else {
            m.to_u128().expect("decoded value exceeds i128") as i128
        }
    }
}

impl PaillierPrivateKey {
    /// The associated public key.
    #[must_use]
    pub fn public(&self) -> &PaillierPublicKey {
        &self.pk
    }

    /// Decrypts to the plaintext residue in `[0, n)` (CRT fast path when
    /// the factorization is available).
    #[must_use]
    pub fn decrypt(&self, c: &PaillierCiphertext) -> BigUint {
        match &self.crt {
            Some(crt) => crt.decrypt(&c.0),
            None => self.decrypt_plain(c),
        }
    }

    /// Division-based decryption via the full `n²` exponentiation — the
    /// oracle the CRT path is tested against.
    #[must_use]
    pub fn decrypt_plain(&self, c: &PaillierCiphertext) -> BigUint {
        let pk = &self.pk;
        let x = c.0.mod_pow(&self.lambda, &pk.n_squared);
        // L(x) = (x - 1) / n
        let l = x.sub(&BigUint::one()).divrem(&pk.n).0;
        l.mul_mod(&self.mu, &pk.n)
    }

    /// Decrypts to a signed value via the `n/2` threshold.
    #[must_use]
    pub fn decrypt_i128(&self, c: &PaillierCiphertext) -> i128 {
        let m = self.decrypt(c);
        self.pk.decode_i128(&m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair(bits: usize) -> PaillierKeypair {
        let mut rng = StdRng::seed_from_u64(42);
        generate_keypair(&mut rng, bits).unwrap()
    }

    #[test]
    fn rejects_tiny_keys() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(generate_keypair(&mut rng, 32), Err(Error::KeyTooSmall { .. })));
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let kp = keypair(256);
        let mut rng = StdRng::seed_from_u64(1);
        for v in [0u64, 1, 42, 1_000_000, u64::MAX] {
            let m = BigUint::from_u64(v);
            let c = kp.public.encrypt(&m, &mut rng).unwrap();
            assert_eq!(kp.private.decrypt(&c), m, "v={v}");
        }
    }

    #[test]
    fn ciphertexts_are_randomized() {
        let kp = keypair(256);
        let mut rng = StdRng::seed_from_u64(2);
        let m = BigUint::from_u64(7);
        let c1 = kp.public.encrypt(&m, &mut rng).unwrap();
        let c2 = kp.public.encrypt(&m, &mut rng).unwrap();
        assert_ne!(c1, c2, "semantic security: same plaintext, fresh randomness");
        assert_eq!(kp.private.decrypt(&c1), kp.private.decrypt(&c2));
    }

    #[test]
    fn additive_homomorphism() {
        let kp = keypair(256);
        let mut rng = StdRng::seed_from_u64(3);
        let a = kp.public.encrypt(&BigUint::from_u64(1234), &mut rng).unwrap();
        let b = kp.public.encrypt(&BigUint::from_u64(8766), &mut rng).unwrap();
        let sum = kp.public.add(&a, &b);
        assert_eq!(kp.private.decrypt(&sum).to_u64(), Some(10_000));
    }

    #[test]
    fn add_plain_and_mul_plain() {
        let kp = keypair(256);
        let mut rng = StdRng::seed_from_u64(4);
        let c = kp.public.encrypt(&BigUint::from_u64(100), &mut rng).unwrap();
        let c2 = kp.public.add_plain(&c, &BigUint::from_u64(23));
        assert_eq!(kp.private.decrypt(&c2).to_u64(), Some(123));
        let c3 = kp.public.mul_plain(&c, &BigUint::from_u64(5));
        assert_eq!(kp.private.decrypt(&c3).to_u64(), Some(500));
    }

    #[test]
    fn signed_values_roundtrip() {
        let kp = keypair(256);
        let mut rng = StdRng::seed_from_u64(5);
        for v in [-1_000_000i64, -1, 0, 1, 999_999_999] {
            let c = kp.public.encrypt_i64(v, &mut rng).unwrap();
            assert_eq!(kp.private.decrypt_i128(&c), i128::from(v), "v={v}");
        }
    }

    #[test]
    fn signed_sums_cross_zero() {
        let kp = keypair(256);
        let mut rng = StdRng::seed_from_u64(6);
        let a = kp.public.encrypt_i64(-500, &mut rng).unwrap();
        let b = kp.public.encrypt_i64(200, &mut rng).unwrap();
        assert_eq!(kp.private.decrypt_i128(&kp.public.add(&a, &b)), -300);
    }

    #[test]
    fn rerandomize_preserves_plaintext() {
        let kp = keypair(256);
        let mut rng = StdRng::seed_from_u64(7);
        let c = kp.public.encrypt(&BigUint::from_u64(77), &mut rng).unwrap();
        let c2 = kp.public.rerandomize(&c, &mut rng);
        assert_ne!(c, c2);
        assert_eq!(kp.private.decrypt(&c2).to_u64(), Some(77));
    }

    #[test]
    fn plaintext_out_of_range_rejected() {
        let kp = keypair(128);
        let mut rng = StdRng::seed_from_u64(8);
        let too_big = kp.public.modulus().clone();
        assert!(matches!(kp.public.encrypt(&too_big, &mut rng), Err(Error::PlaintextOutOfRange)));
    }

    #[test]
    fn crt_decrypt_matches_plain_decrypt() {
        let kp = keypair(256);
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..20 {
            let m = BigUint::random_below(&mut rng, kp.public.modulus());
            let c = kp.public.encrypt(&m, &mut rng).unwrap();
            assert_eq!(kp.private.decrypt(&c), kp.private.decrypt_plain(&c));
            assert_eq!(kp.private.decrypt(&c), m);
        }
    }

    #[test]
    fn long_sum_chain() {
        let kp = keypair(256);
        let mut rng = StdRng::seed_from_u64(9);
        let mut acc = kp.public.encrypt(&BigUint::zero(), &mut rng).unwrap();
        let mut expect = 0u64;
        for i in 1..=50u64 {
            let c = kp.public.encrypt(&BigUint::from_u64(i * i), &mut rng).unwrap();
            acc = kp.public.add(&acc, &c);
            expect += i * i;
        }
        assert_eq!(kp.private.decrypt(&acc).to_u64(), Some(expect));
    }
}
