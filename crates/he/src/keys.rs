//! Key serialization — the key-server role's wire format.
//!
//! The paper's key server generates a keypair, distributes the public key
//! to every participant and the aggregation server, and sends the secret
//! key to the leader. These codecs give those messages a concrete,
//! versioned byte format (length-prefixed big-endian integers with a
//! magic+version header).

use crate::bigint::BigUint;
use crate::error::{Error, Result};

const MAGIC: &[u8; 4] = b"VFPK";
const VERSION: u8 = 1;

fn put_biguint(buf: &mut Vec<u8>, v: &BigUint) {
    let bytes = v.to_bytes_be();
    buf.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    buf.extend_from_slice(&bytes);
}

fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8]> {
    if input.len() < n {
        return Err(Error::InvalidParameters("truncated key material".into()));
    }
    let (head, rest) = input.split_at(n);
    *input = rest;
    Ok(head)
}

fn get_biguint(input: &mut &[u8]) -> Result<BigUint> {
    let len_bytes = take(input, 4)?;
    let len = u32::from_be_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
    Ok(BigUint::from_bytes_be(take(input, len)?))
}

fn header(kind: u8) -> Vec<u8> {
    let mut buf = Vec::with_capacity(6);
    buf.extend_from_slice(MAGIC);
    buf.push(VERSION);
    buf.push(kind);
    buf
}

fn check_header(input: &mut &[u8], kind: u8) -> Result<()> {
    let head = take(input, 6)?;
    if &head[..4] != MAGIC {
        return Err(Error::InvalidParameters("bad key magic".into()));
    }
    if head[4] != VERSION {
        return Err(Error::InvalidParameters(format!("unsupported key version {}", head[4])));
    }
    if head[5] != kind {
        return Err(Error::InvalidParameters(format!(
            "wrong key kind: expected {kind}, got {}",
            head[5]
        )));
    }
    Ok(())
}

/// Serialized Paillier public key (`kind = 0`): just the modulus `n`
/// (`n²`, `g = n+1` and the decode threshold are derived).
#[must_use]
pub fn encode_paillier_public(n: &BigUint) -> Vec<u8> {
    let mut buf = header(0);
    put_biguint(&mut buf, n);
    buf
}

/// Parses a serialized Paillier public key, returning `n`.
///
/// # Errors
/// Fails on malformed or wrong-kind input.
pub fn decode_paillier_public(mut input: &[u8]) -> Result<BigUint> {
    check_header(&mut input, 0)?;
    let n = get_biguint(&mut input)?;
    if !input.is_empty() {
        return Err(Error::InvalidParameters("trailing bytes after key".into()));
    }
    if n.bits() < crate::paillier::MIN_KEY_BITS {
        return Err(Error::KeyTooSmall { bits: n.bits(), min: crate::paillier::MIN_KEY_BITS });
    }
    Ok(n)
}

/// Serialized Paillier secret material (`kind = 1`): `(n, λ, μ)` — enough
/// for the leader to decrypt (without the CRT fast path, which requires
/// the factorization and should not leave the key server).
#[must_use]
pub fn encode_paillier_secret(n: &BigUint, lambda: &BigUint, mu: &BigUint) -> Vec<u8> {
    let mut buf = header(1);
    put_biguint(&mut buf, n);
    put_biguint(&mut buf, lambda);
    put_biguint(&mut buf, mu);
    buf
}

/// Parses serialized Paillier secret material, returning `(n, λ, μ)`.
///
/// # Errors
/// Fails on malformed or wrong-kind input.
pub fn decode_paillier_secret(mut input: &[u8]) -> Result<(BigUint, BigUint, BigUint)> {
    check_header(&mut input, 1)?;
    let n = get_biguint(&mut input)?;
    let lambda = get_biguint(&mut input)?;
    let mu = get_biguint(&mut input)?;
    if !input.is_empty() {
        return Err(Error::InvalidParameters("trailing bytes after key".into()));
    }
    Ok((n, lambda, mu))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paillier::generate_keypair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn public_key_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let kp = generate_keypair(&mut rng, 128).unwrap();
        let bytes = encode_paillier_public(kp.public.modulus());
        let n = decode_paillier_public(&bytes).unwrap();
        assert_eq!(&n, kp.public.modulus());
    }

    #[test]
    fn secret_key_roundtrip() {
        let n = BigUint::from_hex("deadbeefcafebabe1234567890abcdef01").unwrap();
        let lambda = BigUint::from_u64(123_456_789);
        let mu = BigUint::from_u64(987_654_321);
        let bytes = encode_paillier_secret(&n, &lambda, &mu);
        let (n2, l2, m2) = decode_paillier_secret(&bytes).unwrap();
        assert_eq!(n2, n);
        assert_eq!(l2, lambda);
        assert_eq!(m2, mu);
    }

    #[test]
    fn wrong_kind_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let kp = generate_keypair(&mut rng, 128).unwrap();
        let public = encode_paillier_public(kp.public.modulus());
        assert!(decode_paillier_secret(&public).is_err());
    }

    #[test]
    fn corrupted_inputs_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let kp = generate_keypair(&mut rng, 128).unwrap();
        let bytes = encode_paillier_public(kp.public.modulus());
        // Truncation.
        assert!(decode_paillier_public(&bytes[..bytes.len() - 1]).is_err());
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(decode_paillier_public(&bad).is_err());
        // Bad version.
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(decode_paillier_public(&bad).is_err());
        // Trailing garbage.
        let mut bad = bytes;
        bad.push(0);
        assert!(decode_paillier_public(&bad).is_err());
    }

    #[test]
    fn undersized_modulus_rejected() {
        let bytes = encode_paillier_public(&BigUint::from_u64(12345));
        assert!(matches!(decode_paillier_public(&bytes), Err(Error::KeyTooSmall { .. })));
    }
}
