//! A uniform interface over the additively homomorphic schemes.
//!
//! The VFL protocols only require: encrypt a batch of reals, add two
//! ciphertexts, decrypt, and report serialized size. [`AdditiveHe`] captures
//! exactly that, with three implementations:
//!
//! * [`PaillierHe`] — exact integer HE (fixed-point encoded reals),
//! * [`CkksHe`] — approximate RLWE HE with SIMD slots (the paper's choice),
//! * [`PlainHe`] — a no-op scheme for ablations and large-scale simulation
//!   where HE costs are accounted analytically instead of paid for real.

use crate::bigint::BigUint;
use crate::ckks::{CkksCiphertext, CkksContext, CkksParams, CkksPublicKey, CkksSecretKey};
use crate::error::Result;
use crate::fixed::FixedPoint;
use crate::packing::{PackingLayout, DEFAULT_MAX_TERMS};
use crate::paillier::{self, NoisePool, PaillierCiphertext, PaillierEncryptor, PaillierKeypair};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// Operations the VFL protocols need from an additively homomorphic scheme.
pub trait AdditiveHe: Send + Sync {
    /// Opaque ciphertext carrying a batch of real values.
    type Ciphertext: Clone + Send + Sync;

    /// Scheme name for reports.
    fn name(&self) -> &'static str;

    /// Maximum number of values a single ciphertext can carry.
    fn max_batch(&self) -> usize;

    /// Encrypts a batch of at most [`AdditiveHe::max_batch`] values.
    ///
    /// # Errors
    /// Fails when the batch exceeds the slot count or a value cannot be
    /// represented.
    fn encrypt(&self, values: &[f64]) -> Result<Self::Ciphertext>;

    /// Encrypts several batches at once — the protocol hot path when a
    /// participant ships all its candidate partials for one query.
    ///
    /// The default implementation fans the per-batch [`AdditiveHe::encrypt`]
    /// calls out on the global [`vfps_par`] pool, which is correct for
    /// deterministic schemes ([`PlainHe`]). Schemes whose `encrypt` draws
    /// from a shared RNG ([`PaillierHe`], [`CkksHe`]) MUST override it to
    /// sequence their randomness deterministically (seed reservation under
    /// a lock) before fanning out, so the output is identical at any
    /// thread count.
    ///
    /// # Errors
    /// Fails when any batch exceeds the slot count or a value cannot be
    /// represented.
    fn encrypt_many(&self, batches: &[&[f64]]) -> Result<Vec<Self::Ciphertext>> {
        vfps_par::global().par_map_indexed(batches, |_, b| self.encrypt(b)).into_iter().collect()
    }

    /// Decrypts the first `count` values.
    fn decrypt(&self, ct: &Self::Ciphertext, count: usize) -> Vec<f64>;

    /// Homomorphic addition.
    fn add(&self, a: &Self::Ciphertext, b: &Self::Ciphertext) -> Self::Ciphertext;

    /// Serialized ciphertext size in bytes (for communication accounting).
    fn ct_bytes(&self, ct: &Self::Ciphertext) -> usize;

    /// Serializes a ciphertext for transmission.
    fn ct_to_bytes(&self, ct: &Self::Ciphertext) -> Vec<u8>;

    /// Deserializes a transmitted ciphertext.
    ///
    /// # Errors
    /// Fails on malformed input.
    fn ct_from_bytes(&self, bytes: &[u8]) -> Result<Self::Ciphertext>;

    /// Worst-case absolute error of decrypting a sum of `terms` fresh
    /// ciphertexts (0 for exact schemes).
    fn error_bound(&self, terms: usize) -> f64;
}

// ---------------------------------------------------------------------------
// Plain (identity) scheme
// ---------------------------------------------------------------------------

/// A pass-through "scheme" that performs no cryptography. Used to run
/// large-scale protocol simulations where HE costs are attributed by the
/// cost model rather than paid in real time.
#[derive(Debug, Clone)]
pub struct PlainHe {
    batch: usize,
    /// Bytes charged per carried value, mirroring the expansion a real
    /// ciphertext would have (default: CKKS-like 16x expansion over f64).
    pub bytes_per_value: usize,
}

impl PlainHe {
    /// Creates a plain scheme carrying up to `batch` values per "ciphertext".
    #[must_use]
    pub fn new(batch: usize) -> Self {
        PlainHe { batch, bytes_per_value: 128 }
    }
}

impl AdditiveHe for PlainHe {
    type Ciphertext = Vec<f64>;

    fn name(&self) -> &'static str {
        "plain"
    }

    fn max_batch(&self) -> usize {
        self.batch
    }

    fn encrypt(&self, values: &[f64]) -> Result<Vec<f64>> {
        if values.len() > self.batch {
            return Err(crate::error::Error::TooManySlots { got: values.len(), max: self.batch });
        }
        vfps_obs::time_us("he.plain.encrypt_us", || Ok(values.to_vec()))
    }

    fn decrypt(&self, ct: &Vec<f64>, count: usize) -> Vec<f64> {
        vfps_obs::time_us("he.plain.decrypt_us", || ct.iter().copied().take(count).collect())
    }

    fn add(&self, a: &Vec<f64>, b: &Vec<f64>) -> Vec<f64> {
        vfps_obs::time_us("he.plain.add_us", || {
            let n = a.len().max(b.len());
            (0..n)
                .map(|i| a.get(i).copied().unwrap_or(0.0) + b.get(i).copied().unwrap_or(0.0))
                .collect()
        })
    }

    fn ct_bytes(&self, ct: &Vec<f64>) -> usize {
        ct.len() * self.bytes_per_value
    }

    fn ct_to_bytes(&self, ct: &Vec<f64>) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + ct.len() * 8);
        out.extend_from_slice(&(ct.len() as u32).to_le_bytes());
        for v in ct {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    fn ct_from_bytes(&self, bytes: &[u8]) -> Result<Vec<f64>> {
        let err = || crate::error::Error::InvalidParameters("malformed plain ciphertext".into());
        if bytes.len() < 4 {
            return Err(err());
        }
        let n = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
        if bytes.len() != 4 + n * 8 {
            return Err(err());
        }
        Ok((0..n)
            .map(|i| f64::from_le_bytes(bytes[4 + i * 8..12 + i * 8].try_into().expect("8 bytes")))
            .collect())
    }

    fn error_bound(&self, _terms: usize) -> f64 {
        0.0
    }
}

// ---------------------------------------------------------------------------
// Paillier
// ---------------------------------------------------------------------------

/// A packed Paillier ciphertext: `count` fixed-point values laid out
/// [`PackingLayout::slots`]-per-inner-ciphertext, plus the number of fresh
/// encryptions (`terms`) summed into it — needed to undo the per-slot bias
/// at decode time and to police the carry headroom.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PackedPaillier {
    cts: Vec<PaillierCiphertext>,
    count: u32,
    terms: u32,
}

impl PackedPaillier {
    /// Values carried.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count as usize
    }

    /// Fresh encryptions summed into this ciphertext.
    #[must_use]
    pub fn terms(&self) -> u32 {
        self.terms
    }

    /// Inner `Z_{n²}` ciphertexts (one per slot group).
    #[must_use]
    pub fn groups(&self) -> &[PaillierCiphertext] {
        &self.cts
    }
}

/// Paillier-backed scheme: fixed-point values shift-and-packed several per
/// integer ciphertext ([`PackingLayout`]), encrypted via the precomputed
/// fixed-base fast path ([`PaillierEncryptor`]) with noise factors drawn
/// from a seeded [`NoisePool`]. Exact up to quantization.
pub struct PaillierHe {
    keypair: PaillierKeypair,
    encryptor: PaillierEncryptor,
    noise: NoisePool,
    layout: PackingLayout,
    codec: FixedPoint,
    batch: usize,
}

impl PaillierHe {
    /// Generates a fresh scheme instance with the given key width.
    ///
    /// # Errors
    /// Propagates key-generation failures for undersized keys.
    pub fn generate(key_bits: usize, batch: usize, seed: u64) -> Result<Self> {
        let mut rng = StdRng::seed_from_u64(seed);
        let keypair = paillier::generate_keypair(&mut rng, key_bits)?;
        let encryptor = PaillierEncryptor::new(&keypair.public, &mut rng);
        let noise = NoisePool::new(rng.gen());
        let layout = PackingLayout::for_key(key_bits, DEFAULT_MAX_TERMS).ok_or_else(|| {
            crate::error::Error::InvalidParameters(format!(
                "key width {key_bits} cannot fit a packed slot"
            ))
        })?;
        Ok(PaillierHe {
            keypair,
            encryptor,
            noise,
            layout,
            codec: FixedPoint::default_codec(),
            batch,
        })
    }

    /// The underlying keypair (tests and calibration benches).
    #[must_use]
    pub fn keypair(&self) -> &PaillierKeypair {
        &self.keypair
    }

    /// The slot layout in effect (values amortized per exponentiation).
    #[must_use]
    pub fn layout(&self) -> PackingLayout {
        self.layout
    }

    /// Precomputes `count` noise factors off the critical path so upcoming
    /// encryptions only pay pack + two modular products. Ciphertexts are
    /// identical with or without prefill.
    pub fn prefill_noise(&self, count: usize, pool: &vfps_par::Pool) {
        self.noise.prefill(&self.encryptor, count, pool);
    }

    /// Noise factors currently sitting ready in the pool.
    #[must_use]
    pub fn noise_ready(&self) -> usize {
        self.noise.ready_len()
    }

    /// Encrypts one batch on an explicit pool (tests and benchmarks pin
    /// the thread count through this; [`AdditiveHe::encrypt`] uses the
    /// global pool).
    ///
    /// One call reserves one contiguous run of noise-pool indices under a
    /// lock — so ciphertexts are a pure function of the call sequence, not
    /// of thread count or prefill state — then packs and encrypts the slot
    /// groups in parallel.
    ///
    /// # Errors
    /// Fails when the batch exceeds the slot count or a value cannot be
    /// represented.
    pub fn encrypt_on(&self, values: &[f64], pool: &vfps_par::Pool) -> Result<PackedPaillier> {
        if values.len() > self.batch {
            return Err(crate::error::Error::TooManySlots { got: values.len(), max: self.batch });
        }
        let n_groups = values.len().div_ceil(self.layout.slots().max(1));
        let start = self.noise.reserve(n_groups);
        vfps_obs::time_us("he.paillier.encrypt_us", || self.encrypt_reserved(values, start, pool))
    }

    /// The reserved-index core of [`PaillierHe::encrypt_on`]: slot group
    /// `g` encrypts under noise index `start + g`.
    fn encrypt_reserved(
        &self,
        values: &[f64],
        start: u64,
        pool: &vfps_par::Pool,
    ) -> Result<PackedPaillier> {
        let slots = self.layout.slots();
        let groups: Vec<&[f64]> = values.chunks(slots.max(1)).collect();
        let cts: Result<Vec<PaillierCiphertext>> = pool
            .par_map_indexed(&groups, |g, group| {
                // Pad the tail group with zeros so every slot carries the
                // bias and additions of unequal-count ciphertexts stay
                // decodable slot-by-slot.
                let mut encoded = vec![0i64; slots];
                for (e, &v) in encoded.iter_mut().zip(group.iter()) {
                    *e = self.codec.encode(v)?;
                }
                let plain = self.layout.pack(&encoded)?;
                let noise = self.noise.take(&self.encryptor, start + g as u64);
                self.encryptor.encrypt_with_noise(&plain, &noise)
            })
            .into_iter()
            .collect();
        vfps_obs::counter_add("he.paillier.exponentiations", groups.len() as u64);
        vfps_obs::counter_add("he.paillier.enc_values", values.len() as u64);
        Ok(PackedPaillier { cts: cts?, count: values.len() as u32, terms: 1 })
    }

    /// Encrypts several batches on an explicit pool. One reservation covers
    /// every batch's slot groups, then all groups across all batches fan
    /// out as a single flat parallel map.
    ///
    /// # Errors
    /// Fails when any batch exceeds the slot count or a value cannot be
    /// represented.
    pub fn encrypt_many_on(
        &self,
        batches: &[&[f64]],
        pool: &vfps_par::Pool,
    ) -> Result<Vec<PackedPaillier>> {
        for b in batches {
            if b.len() > self.batch {
                return Err(crate::error::Error::TooManySlots { got: b.len(), max: self.batch });
            }
        }
        let slots = self.layout.slots().max(1);
        // Noise index ranges per batch, assigned contiguously in order.
        let mut starts = Vec::with_capacity(batches.len());
        let total_groups: usize = batches.iter().map(|b| b.len().div_ceil(slots)).sum();
        let start = self.noise.reserve(total_groups);
        let mut next = start;
        for b in batches {
            starts.push(next);
            next += b.len().div_ceil(slots) as u64;
        }
        vfps_obs::time_us("he.paillier.encrypt_us", || {
            // Flatten to (batch, group) tasks so small batches still fill
            // the pool, then reassemble per batch.
            let tasks: Vec<(usize, usize)> = batches
                .iter()
                .enumerate()
                .flat_map(|(bi, b)| (0..b.len().div_ceil(slots)).map(move |g| (bi, g)))
                .collect();
            let flat: Result<Vec<PaillierCiphertext>> = pool
                .par_map_indexed(&tasks, |_, &(bi, g)| {
                    let group = &batches[bi][g * slots..batches[bi].len().min((g + 1) * slots)];
                    let mut encoded = vec![0i64; slots];
                    for (e, &v) in encoded.iter_mut().zip(group.iter()) {
                        *e = self.codec.encode(v)?;
                    }
                    let plain = self.layout.pack(&encoded)?;
                    let noise = self.noise.take(&self.encryptor, starts[bi] + g as u64);
                    self.encryptor.encrypt_with_noise(&plain, &noise)
                })
                .into_iter()
                .collect();
            let mut flat = flat?.into_iter();
            let out = batches
                .iter()
                .map(|b| PackedPaillier {
                    cts: (0..b.len().div_ceil(slots))
                        .map(|_| flat.next().expect("one ct per group"))
                        .collect(),
                    count: b.len() as u32,
                    terms: 1,
                })
                .collect();
            vfps_obs::counter_add("he.paillier.exponentiations", total_groups as u64);
            vfps_obs::counter_add(
                "he.paillier.enc_values",
                batches.iter().map(|b| b.len() as u64).sum(),
            );
            Ok(out)
        })
    }
}

impl AdditiveHe for PaillierHe {
    type Ciphertext = PackedPaillier;

    fn name(&self) -> &'static str {
        "paillier"
    }

    fn max_batch(&self) -> usize {
        self.batch
    }

    fn encrypt(&self, values: &[f64]) -> Result<Self::Ciphertext> {
        self.encrypt_on(values, vfps_par::global())
    }

    fn encrypt_many(&self, batches: &[&[f64]]) -> Result<Vec<Self::Ciphertext>> {
        self.encrypt_many_on(batches, vfps_par::global())
    }

    fn decrypt(&self, ct: &Self::Ciphertext, count: usize) -> Vec<f64> {
        vfps_obs::time_us("he.paillier.decrypt_us", || {
            let slots = self.layout.slots().max(1);
            let mut remaining = count.min(ct.count as usize);
            let mut out = Vec::with_capacity(remaining);
            for c in &ct.cts {
                if remaining == 0 {
                    break;
                }
                let take = remaining.min(slots);
                let residue = self.keypair.private.decrypt(c);
                let vals = self
                    .layout
                    .unpack(&residue, take, ct.terms)
                    .expect("packed decode within layout bounds");
                out.extend(vals.into_iter().map(|v| self.codec.decode_i128(v)));
                remaining -= take;
            }
            out
        })
    }

    fn add(&self, a: &Self::Ciphertext, b: &Self::Ciphertext) -> Self::Ciphertext {
        vfps_obs::time_us("he.paillier.add_us", || {
            assert_eq!(
                a.cts.len(),
                b.cts.len(),
                "packed paillier addition requires identically chunked ciphertexts"
            );
            let terms = a.terms + b.terms;
            assert!(
                terms <= self.layout.max_terms(),
                "summing {terms} fresh ciphertexts exceeds the packed headroom of {}",
                self.layout.max_terms()
            );
            PackedPaillier {
                cts: a
                    .cts
                    .iter()
                    .zip(b.cts.iter())
                    .map(|(x, y)| self.keypair.public.add(x, y))
                    .collect(),
                count: a.count.max(b.count),
                terms,
            }
        })
    }

    fn ct_bytes(&self, ct: &Self::Ciphertext) -> usize {
        ct.cts.iter().map(PaillierCiphertext::byte_len).sum()
    }

    fn ct_to_bytes(&self, ct: &Self::Ciphertext) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&ct.count.to_le_bytes());
        out.extend_from_slice(&ct.terms.to_le_bytes());
        out.extend_from_slice(&(ct.cts.len() as u32).to_le_bytes());
        for c in &ct.cts {
            let b = c.as_biguint().to_bytes_be();
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(&b);
        }
        out
    }

    fn ct_from_bytes(&self, bytes: &[u8]) -> Result<Self::Ciphertext> {
        let err = || crate::error::Error::InvalidParameters("malformed paillier ciphertext".into());
        let mut cur = bytes;
        let take_u32 = |n: &mut &[u8]| -> Result<u32> {
            if n.len() < 4 {
                return Err(err());
            }
            let (head, rest) = n.split_at(4);
            *n = rest;
            Ok(u32::from_le_bytes(head.try_into().expect("4 bytes")))
        };
        let count = take_u32(&mut cur)?;
        let terms = take_u32(&mut cur)?;
        let n_cts = take_u32(&mut cur)? as usize;
        let mut cts = Vec::with_capacity(n_cts.min(1 << 20));
        for _ in 0..n_cts {
            let len = take_u32(&mut cur)? as usize;
            if cur.len() < len {
                return Err(err());
            }
            let (raw, rest) = cur.split_at(len);
            cur = rest;
            cts.push(PaillierCiphertext::from_biguint(BigUint::from_bytes_be(raw)));
        }
        if cur.is_empty() {
            Ok(PackedPaillier { cts, count, terms })
        } else {
            Err(err())
        }
    }

    fn error_bound(&self, terms: usize) -> f64 {
        terms as f64 * self.codec.quantization_error()
    }
}

// ---------------------------------------------------------------------------
// CKKS
// ---------------------------------------------------------------------------

/// CKKS-backed scheme: SIMD batches of reals per ciphertext, approximate.
pub struct CkksHe {
    ctx: CkksContext,
    pk: CkksPublicKey,
    sk: CkksSecretKey,
    rng: Mutex<StdRng>,
}

impl CkksHe {
    /// Generates a fresh scheme instance from CKKS parameters.
    ///
    /// # Errors
    /// Propagates parameter validation failures.
    pub fn generate(params: &CkksParams, seed: u64) -> Result<Self> {
        let ctx = CkksContext::new(params)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let (pk, sk) = ctx.keygen(&mut rng);
        Ok(CkksHe { ctx, pk, sk, rng: Mutex::new(rng) })
    }

    /// The underlying context (tests and calibration benches).
    #[must_use]
    pub fn context(&self) -> &CkksContext {
        &self.ctx
    }

    /// Encrypts several slot-batches on an explicit pool, one ciphertext
    /// per batch. A single master draw seeds the whole call; batch `i`
    /// encrypts under `split_seed(call_seed, i)`, so the NTT/sampling work
    /// parallelizes across ciphertexts while the output stays identical at
    /// any thread count.
    ///
    /// # Errors
    /// Fails when any batch exceeds the slot count.
    pub fn encrypt_many_on(
        &self,
        batches: &[&[f64]],
        pool: &vfps_par::Pool,
    ) -> Result<Vec<CkksCiphertext>> {
        let call_seed: u64 = self.rng.lock().expect("rng mutex poisoned").gen();
        vfps_obs::time_us("he.ckks.encrypt_us", || {
            pool.par_map_indexed(batches, |i, b| {
                let mut rng = StdRng::seed_from_u64(vfps_par::split_seed(call_seed, i as u64));
                self.ctx.encrypt(&self.pk, b, &mut rng)
            })
            .into_iter()
            .collect()
        })
    }
}

impl AdditiveHe for CkksHe {
    type Ciphertext = CkksCiphertext;

    fn name(&self) -> &'static str {
        "ckks"
    }

    fn max_batch(&self) -> usize {
        self.ctx.slots()
    }

    fn encrypt(&self, values: &[f64]) -> Result<CkksCiphertext> {
        let mut rng = self.rng.lock().expect("rng mutex poisoned");
        vfps_obs::time_us("he.ckks.encrypt_us", || self.ctx.encrypt(&self.pk, values, &mut *rng))
    }

    fn encrypt_many(&self, batches: &[&[f64]]) -> Result<Vec<CkksCiphertext>> {
        self.encrypt_many_on(batches, vfps_par::global())
    }

    fn decrypt(&self, ct: &CkksCiphertext, count: usize) -> Vec<f64> {
        vfps_obs::time_us("he.ckks.decrypt_us", || self.ctx.decrypt(&self.sk, ct, count))
    }

    fn add(&self, a: &CkksCiphertext, b: &CkksCiphertext) -> CkksCiphertext {
        vfps_obs::time_us("he.ckks.add_us", || self.ctx.add(a, b))
    }

    fn ct_bytes(&self, ct: &CkksCiphertext) -> usize {
        ct.byte_len()
    }

    fn ct_to_bytes(&self, ct: &CkksCiphertext) -> Vec<u8> {
        ct.to_bytes()
    }

    fn ct_from_bytes(&self, bytes: &[u8]) -> Result<CkksCiphertext> {
        self.ctx.ct_from_bytes(bytes)
    }

    fn error_bound(&self, terms: usize) -> f64 {
        self.ctx.error_bound(terms)
    }
}

/// Returns a random `BigUint` below `bound` using a seeded RNG — helper for
/// deterministic cross-crate tests.
#[must_use]
pub fn seeded_random_below(seed: u64, bound: &BigUint) -> BigUint {
    let mut rng = StdRng::seed_from_u64(seed);
    BigUint::random_below(&mut rng, bound)
}

/// Deterministic helper: a seeded RNG for callers that only need one.
#[must_use]
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Draws `n` uniform reals in `[lo, hi)` from a seeded RNG (test helper).
#[must_use]
pub fn seeded_uniform(seed: u64, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise_serialization<H: AdditiveHe>(scheme: &H)
    where
        H::Ciphertext: PartialEq + std::fmt::Debug,
    {
        let ct = scheme.encrypt(&[1.0, -2.0, 3.5]).unwrap();
        let bytes = scheme.ct_to_bytes(&ct);
        let back = scheme.ct_from_bytes(&bytes).unwrap();
        assert_eq!(back, ct, "{} ciphertext serialization roundtrip", scheme.name());
        assert!(scheme.ct_from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn ciphertext_serialization_roundtrips() {
        exercise_serialization(&PlainHe::new(8));
        exercise_serialization(&PaillierHe::generate(256, 8, 21).unwrap());
        exercise_serialization(&CkksHe::generate(&CkksParams::insecure_test(), 22).unwrap());
    }

    fn exercise<H: AdditiveHe>(scheme: &H, tol_scale: f64) {
        let a = [1.5, -2.25, 3.0, 0.0];
        let b = [0.5, 2.25, -1.0, 7.5];
        let ca = scheme.encrypt(&a).unwrap();
        let cb = scheme.encrypt(&b).unwrap();
        let sum = scheme.add(&ca, &cb);
        let out = scheme.decrypt(&sum, 4);
        let bound = scheme.error_bound(2).max(1e-12) * tol_scale;
        for i in 0..4 {
            assert!(
                (out[i] - (a[i] + b[i])).abs() <= bound,
                "{} slot {i}: {} vs {}",
                scheme.name(),
                out[i],
                a[i] + b[i]
            );
        }
        assert!(scheme.ct_bytes(&ca) > 0);
    }

    #[test]
    fn plain_scheme_behaves() {
        exercise(&PlainHe::new(16), 1.0);
    }

    #[test]
    fn paillier_scheme_behaves() {
        let scheme = PaillierHe::generate(256, 16, 11).unwrap();
        exercise(&scheme, 1.0);
    }

    #[test]
    fn ckks_scheme_behaves() {
        let scheme = CkksHe::generate(&CkksParams::insecure_test(), 12).unwrap();
        exercise(&scheme, 1.0);
    }

    #[test]
    fn plain_batch_limit_enforced() {
        let scheme = PlainHe::new(2);
        assert!(scheme.encrypt(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn paillier_exactness_vs_ckks_approximation() {
        let p = PaillierHe::generate(256, 4, 1).unwrap();
        let c = CkksHe::generate(&CkksParams::insecure_test(), 1).unwrap();
        assert!(p.error_bound(100) < 1e-4, "paillier is exact up to quantization");
        assert!(c.error_bound(100) > 0.0, "ckks error grows with terms");
    }

    #[test]
    fn paillier_encrypt_is_identical_across_thread_counts() {
        let values = seeded_uniform(3, 24, -5.0, 5.0);
        let reference = {
            let scheme = PaillierHe::generate(256, 32, 77).unwrap();
            scheme.encrypt_on(&values, &vfps_par::Pool::with_threads(1)).unwrap()
        };
        for threads in [2usize, 4] {
            let scheme = PaillierHe::generate(256, 32, 77).unwrap();
            let ct = scheme.encrypt_on(&values, &vfps_par::Pool::with_threads(threads)).unwrap();
            assert_eq!(ct, reference, "{threads} threads");
        }
    }

    #[test]
    fn ckks_encrypt_many_is_identical_across_thread_counts() {
        let flat = seeded_uniform(4, 12, -1.0, 1.0);
        let batches: Vec<&[f64]> = flat.chunks(4).collect();
        let reference = {
            let scheme = CkksHe::generate(&CkksParams::insecure_test(), 78).unwrap();
            scheme.encrypt_many_on(&batches, &vfps_par::Pool::with_threads(1)).unwrap()
        };
        for threads in [2usize, 4] {
            let scheme = CkksHe::generate(&CkksParams::insecure_test(), 78).unwrap();
            let cts =
                scheme.encrypt_many_on(&batches, &vfps_par::Pool::with_threads(threads)).unwrap();
            assert_eq!(cts, reference, "{threads} threads");
        }
    }

    fn exercise_encrypt_many<H: AdditiveHe>(scheme: &H, tol_scale: f64) {
        let flat = seeded_uniform(5, 9, -3.0, 3.0);
        let batches: Vec<&[f64]> = flat.chunks(3).collect();
        let cts = scheme.encrypt_many(&batches).unwrap();
        assert_eq!(cts.len(), batches.len());
        let bound = scheme.error_bound(1).max(1e-12) * tol_scale;
        for (ct, batch) in cts.iter().zip(&batches) {
            let out = scheme.decrypt(ct, batch.len());
            for (got, want) in out.iter().zip(*batch) {
                assert!((got - want).abs() <= bound, "{}: {got} vs {want}", scheme.name());
            }
        }
    }

    #[test]
    fn encrypt_many_roundtrips_on_every_scheme() {
        exercise_encrypt_many(&PlainHe::new(8), 1.0);
        exercise_encrypt_many(&PaillierHe::generate(256, 8, 31).unwrap(), 1.0);
        exercise_encrypt_many(&CkksHe::generate(&CkksParams::insecure_test(), 32).unwrap(), 1.0);
    }

    #[test]
    fn encrypt_many_rejects_oversized_batches() {
        let scheme = PaillierHe::generate(256, 2, 41).unwrap();
        let big = [1.0, 2.0, 3.0];
        assert!(scheme.encrypt_many(&[&big[..]]).is_err());
    }

    #[test]
    fn schemes_report_distinct_names() {
        let p = PaillierHe::generate(128, 4, 1).unwrap();
        let c = CkksHe::generate(&CkksParams::insecure_test(), 1).unwrap();
        let names = [PlainHe::new(1).name(), p.name(), c.name()];
        assert_eq!(names, ["plain", "paillier", "ckks"]);
    }
}
