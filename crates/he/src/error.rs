//! Error type for the HE crate.

use std::fmt;

/// Errors produced by key generation, encryption, and encoding.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Requested key width is below the supported minimum.
    KeyTooSmall {
        /// Requested bits.
        bits: usize,
        /// Minimum accepted bits.
        min: usize,
    },
    /// Plaintext does not fit the scheme's message space.
    PlaintextOutOfRange,
    /// A value could not be represented in the fixed-point encoding.
    FixedPointOverflow {
        /// The offending value.
        value: f64,
    },
    /// CKKS parameters are invalid (e.g. ring degree not a power of two).
    InvalidParameters(String),
    /// Too many values for the scheme's slot count.
    TooManySlots {
        /// Values supplied.
        got: usize,
        /// Slots available.
        max: usize,
    },
    /// A fixed-point encoding exceeds the magnitude a packed slot can hold.
    PackedValueOutOfRange {
        /// The offending encoded value.
        encoded: i64,
        /// Per-slot magnitude bound in bits.
        mag_bits: u32,
    },
    /// A packed sum exceeds the per-slot addition headroom.
    PackedHeadroomExceeded {
        /// Fresh encryptions summed into the ciphertext.
        terms: u32,
        /// Maximum the layout reserves headroom for.
        max_terms: u32,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::KeyTooSmall { bits, min } => {
                write!(f, "key width {bits} bits is below the minimum of {min}")
            }
            Error::PlaintextOutOfRange => write!(f, "plaintext outside the message space"),
            Error::FixedPointOverflow { value } => {
                write!(f, "value {value} overflows the fixed-point encoding")
            }
            Error::InvalidParameters(msg) => write!(f, "invalid parameters: {msg}"),
            Error::TooManySlots { got, max } => {
                write!(f, "{got} values exceed the {max} available slots")
            }
            Error::PackedValueOutOfRange { encoded, mag_bits } => {
                write!(f, "encoded value {encoded} exceeds the 2^{mag_bits} packed-slot bound")
            }
            Error::PackedHeadroomExceeded { terms, max_terms } => {
                write!(f, "{terms} summed terms exceed the packed headroom for {max_terms}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
