//! Primality testing: trial division by small primes, then Miller–Rabin.

use super::BigUint;
use rand::Rng;

/// Small primes used for cheap pre-screening before Miller–Rabin.
const SMALL_PRIMES: [u64; 54] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251,
];

/// Number of Miller–Rabin rounds; error probability ≤ 4^-ROUNDS.
const MR_ROUNDS: usize = 24;

impl BigUint {
    /// Probabilistic primality test (Miller–Rabin with 24 random
    /// bases after small-prime trial division).
    pub fn is_probable_prime<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        if let Some(v) = self.to_u64() {
            if v < 2 {
                return false;
            }
            if SMALL_PRIMES.contains(&v) {
                return true;
            }
        }
        if self.is_even() {
            return false;
        }
        for &p in &SMALL_PRIMES {
            let (_, r) = self.divrem_u64(p);
            if r == 0 {
                return self.to_u64() == Some(p);
            }
        }
        self.miller_rabin(rng, MR_ROUNDS)
    }

    /// Miller–Rabin with `rounds` random bases. Assumes `self` is odd and > 3.
    fn miller_rabin<R: Rng + ?Sized>(&self, rng: &mut R, rounds: usize) -> bool {
        let one = Self::one();
        let n_minus_1 = self.sub(&one);
        // n - 1 = d * 2^s with d odd.
        let s = trailing_zeros(&n_minus_1);
        let d = n_minus_1.shr(s);
        let n_minus_2 = n_minus_1.sub(&one);

        'witness: for _ in 0..rounds {
            let a = Self::random_range(rng, &Self::from_u64(2), &n_minus_2);
            let mut x = a.mod_pow(&d, self);
            if x.is_one() || x == n_minus_1 {
                continue;
            }
            for _ in 0..s.saturating_sub(1) {
                x = x.square().rem(self);
                if x == n_minus_1 {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }
}

fn trailing_zeros(v: &BigUint) -> usize {
    debug_assert!(!v.is_zero());
    let mut tz = 0;
    for &l in v.limbs() {
        if l == 0 {
            tz += 64;
        } else {
            return tz + l.trailing_zeros() as usize;
        }
    }
    tz
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn small_primes_detected() {
        let mut r = rng();
        for p in [2u64, 3, 5, 7, 97, 251, 257, 65537, 1_000_000_007] {
            assert!(BigUint::from_u64(p).is_probable_prime(&mut r), "{p}");
        }
    }

    #[test]
    fn small_composites_rejected() {
        let mut r = rng();
        for c in [0u64, 1, 4, 9, 15, 91, 561, 1105, 6601, 1_000_000_008] {
            assert!(!BigUint::from_u64(c).is_probable_prime(&mut r), "{c}");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Carmichael numbers fool Fermat tests but not Miller–Rabin.
        let mut r = rng();
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 10585, 15841, 29341] {
            assert!(!BigUint::from_u64(c).is_probable_prime(&mut r), "{c}");
        }
    }

    #[test]
    fn mersenne_primes() {
        let mut r = rng();
        for e in [13u32, 17, 19, 31, 61, 89, 107, 127] {
            let m = BigUint::one().shl(e as usize).sub(&BigUint::one());
            assert!(m.is_probable_prime(&mut r), "2^{e}-1");
        }
        // 2^67 - 1 is famously composite.
        let m67 = BigUint::one().shl(67).sub(&BigUint::one());
        assert!(!m67.is_probable_prime(&mut r));
    }

    #[test]
    fn large_known_prime() {
        // 2^89-1 shifted composites around it.
        let mut r = rng();
        let p = BigUint::from_decimal("618970019642690137449562111").unwrap(); // 2^89-1
        assert!(p.is_probable_prime(&mut r));
        assert!(!p.add(&BigUint::from_u64(2)).is_probable_prime(&mut r));
    }
}
