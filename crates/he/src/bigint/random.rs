//! Random generation: uniform values, ranges, and prime search.

use super::BigUint;
use rand::Rng;

impl BigUint {
    /// Uniformly random value with exactly `bits` significant bits
    /// (the top bit is forced to 1). `bits` must be ≥ 1.
    pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> Self {
        assert!(bits >= 1, "random_bits needs at least one bit");
        let limbs = bits.div_ceil(64);
        let mut v: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
        let top_bits = bits - (limbs - 1) * 64;
        let mask = if top_bits == 64 { u64::MAX } else { (1u64 << top_bits) - 1 };
        let last = limbs - 1;
        v[last] &= mask;
        v[last] |= 1u64 << (top_bits - 1);
        Self::from_limbs(v)
    }

    /// Uniformly random value in `[0, bound)` by rejection sampling.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &Self) -> Self {
        assert!(!bound.is_zero(), "random_below with zero bound");
        let bits = bound.bits();
        let limbs = bits.div_ceil(64);
        let top_bits = bits - (limbs - 1) * 64;
        let mask = if top_bits == 64 { u64::MAX } else { (1u64 << top_bits) - 1 };
        loop {
            let mut v: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
            let last = limbs - 1;
            v[last] &= mask;
            let candidate = Self::from_limbs(v);
            if candidate < *bound {
                return candidate;
            }
        }
    }

    /// Uniformly random value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn random_range<R: Rng + ?Sized>(rng: &mut R, lo: &Self, hi: &Self) -> Self {
        assert!(lo <= hi, "random_range with lo > hi");
        let span = hi.sub(lo).add_u64(1);
        lo.add(&Self::random_below(rng, &span))
    }

    /// Random value in `[1, n)` that is coprime with `n` (rejection loop).
    pub fn random_coprime<R: Rng + ?Sized>(rng: &mut R, n: &Self) -> Self {
        loop {
            let r = Self::random_range(rng, &Self::one(), &n.sub(&Self::one()));
            if r.gcd(n).is_one() {
                return r;
            }
        }
    }

    /// Random probable prime with exactly `bits` bits (top and bottom bits
    /// forced to 1, then incremental search by 2).
    pub fn random_prime<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> Self {
        assert!(bits >= 2, "primes need at least 2 bits");
        loop {
            let mut candidate = Self::random_bits(rng, bits);
            if candidate.is_even() {
                candidate = candidate.add_u64(1);
            }
            // Walk odd numbers from the candidate; restart if we leave the
            // requested bit width.
            for _ in 0..2048 {
                if candidate.bits() != bits {
                    break;
                }
                if candidate.is_probable_prime(rng) {
                    return candidate;
                }
                candidate = candidate.add_u64(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_bits_width_is_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        for bits in [1usize, 2, 17, 64, 65, 128, 257] {
            let v = BigUint::random_bits(&mut rng, bits);
            assert_eq!(v.bits(), bits, "bits={bits}");
        }
    }

    #[test]
    fn random_below_respects_bound() {
        let mut rng = StdRng::seed_from_u64(2);
        let bound = BigUint::from_u64(1000);
        for _ in 0..200 {
            assert!(BigUint::random_below(&mut rng, &bound) < bound);
        }
    }

    #[test]
    fn random_below_covers_range() {
        // With bound 4, all residues should appear over many draws.
        let mut rng = StdRng::seed_from_u64(3);
        let bound = BigUint::from_u64(4);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = BigUint::random_below(&mut rng, &bound).to_u64().unwrap();
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_range_inclusive() {
        let mut rng = StdRng::seed_from_u64(4);
        let lo = BigUint::from_u64(10);
        let hi = BigUint::from_u64(12);
        let mut seen = [false; 3];
        for _ in 0..100 {
            let v = BigUint::random_range(&mut rng, &lo, &hi).to_u64().unwrap();
            assert!((10..=12).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_coprime_is_coprime() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = BigUint::from_u64(360);
        for _ in 0..50 {
            let r = BigUint::random_coprime(&mut rng, &n);
            assert!(r.gcd(&n).is_one());
            assert!(r < n && !r.is_zero());
        }
    }

    #[test]
    fn random_prime_has_width_and_is_prime() {
        let mut rng = StdRng::seed_from_u64(6);
        for bits in [16usize, 32, 64, 128] {
            let p = BigUint::random_prime(&mut rng, bits);
            assert_eq!(p.bits(), bits);
            assert!(p.is_probable_prime(&mut rng));
        }
    }
}
