//! Montgomery-form modular arithmetic for odd moduli.
//!
//! Paillier spends virtually all of its time in `mod_pow` with an odd
//! modulus (`n` or `n²`); Montgomery REDC replaces each division-based
//! reduction with multiply-accumulate passes, a several-fold speedup at
//! cryptographic sizes (see the `he_ops` bench).

use super::BigUint;

/// Precomputed context for Montgomery arithmetic modulo an odd `m`.
#[derive(Clone, Debug)]
pub struct MontgomeryCtx {
    m: Vec<u64>,
    /// `-m⁻¹ mod 2^64`.
    n0_inv: u64,
    /// `R² mod m` with `R = 2^(64·L)`, used to enter Montgomery form.
    r_squared: BigUint,
}

impl MontgomeryCtx {
    /// Builds a context. Returns `None` for even or zero moduli.
    #[must_use]
    pub fn new(modulus: &BigUint) -> Option<Self> {
        if modulus.is_zero() || modulus.is_even() {
            return None;
        }
        let m = modulus.limbs().to_vec();
        let n0_inv = inv_mod_2_64(m[0]).wrapping_neg();
        let l = m.len();
        // R² mod m via shifting (2·64·L doublings of 1 mod m would be slow;
        // shift in one go and reduce).
        let r_squared = BigUint::one().shl(2 * 64 * l).rem(modulus);
        Some(MontgomeryCtx { m, n0_inv, r_squared })
    }

    fn limbs(&self) -> usize {
        self.m.len()
    }

    /// Montgomery reduction of a double-width product `t` (length `2L+1`
    /// scratch): returns `t · R⁻¹ mod m` as an `L`-limb value.
    fn redc(&self, t: &mut [u64]) -> Vec<u64> {
        let l = self.limbs();
        debug_assert!(t.len() > 2 * l);
        for i in 0..l {
            let u = t[i].wrapping_mul(self.n0_inv);
            // t += u * m << (64 * i)
            let mut carry = 0u128;
            for (j, &mj) in self.m.iter().enumerate() {
                let sum = u128::from(t[i + j]) + u128::from(u) * u128::from(mj) + carry;
                t[i + j] = sum as u64;
                carry = sum >> 64;
            }
            let mut k = i + l;
            while carry != 0 {
                let sum = u128::from(t[k]) + carry;
                t[k] = sum as u64;
                carry = sum >> 64;
                k += 1;
            }
        }
        let mut out: Vec<u64> = t[l..2 * l].to_vec();
        let overflow = t[2 * l] != 0;
        if overflow || !less_than(&out, &self.m) {
            sub_in_place(&mut out, &self.m);
        }
        out
    }

    /// Montgomery product: `a · b · R⁻¹ mod m` for `L`-limb inputs.
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let l = self.limbs();
        let mut t = vec![0u64; 2 * l + 1];
        // Schoolbook product into t.
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &bj) in b.iter().enumerate() {
                let sum = u128::from(t[i + j]) + u128::from(ai) * u128::from(bj) + carry;
                t[i + j] = sum as u64;
                carry = sum >> 64;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let sum = u128::from(t[k]) + carry;
                t[k] = sum as u64;
                carry = sum >> 64;
                k += 1;
            }
        }
        self.redc(&mut t)
    }

    /// `base^exp mod m` via Montgomery square-and-multiply.
    #[must_use]
    pub fn mod_pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        let l = self.limbs();
        let modulus = BigUint::from_limbs(self.m.clone());
        if modulus.is_one() {
            return BigUint::zero();
        }
        if exp.is_zero() {
            return BigUint::one();
        }
        let mut base_limbs = base.rem(&modulus).limbs().to_vec();
        base_limbs.resize(l, 0);
        let mut r2 = self.r_squared.limbs().to_vec();
        r2.resize(l, 0);
        // Enter Montgomery form.
        let base_m = self.mont_mul(&base_limbs, &r2);
        // one in Montgomery form = R mod m = REDC(R²).
        let mut acc = {
            let mut one = vec![0u64; l];
            one[0] = 1;
            self.mont_mul(&one, &r2)
        };
        let nbits = exp.bits();
        let mut sq = base_m;
        for i in 0..nbits {
            if exp.bit(i) {
                acc = self.mont_mul(&acc, &sq);
            }
            if i + 1 < nbits {
                sq = self.mont_mul(&sq, &sq);
            }
        }
        // Leave Montgomery form: REDC(acc · 1).
        let mut one = vec![0u64; l];
        one[0] = 1;
        let out = self.mont_mul(&acc, &one);
        BigUint::from_limbs(out)
    }

    /// Enters Montgomery form: `x · R mod m` as `L` limbs.
    fn to_mont(&self, x: &BigUint) -> Vec<u64> {
        let l = self.limbs();
        let modulus = BigUint::from_limbs(self.m.clone());
        let mut limbs = x.rem(&modulus).limbs().to_vec();
        limbs.resize(l, 0);
        let mut r2 = self.r_squared.limbs().to_vec();
        r2.resize(l, 0);
        self.mont_mul(&limbs, &r2)
    }

    /// Leaves Montgomery form: `REDC(a · 1)`.
    fn leave_mont(&self, a: &[u64]) -> BigUint {
        let l = self.limbs();
        let mut one = vec![0u64; l];
        one[0] = 1;
        BigUint::from_limbs(self.mont_mul(a, &one))
    }
}

/// Fixed-base modular exponentiation with a precomputed window table.
///
/// For a base `h` that is reused across many exponentiations (the Paillier
/// noise base `h = r₀ⁿ mod n²`), precompute `h^(d·2^(w·j))` in Montgomery
/// form for every window position `j` and digit `d ∈ [1, 2^w)`. An
/// exponentiation then costs one Montgomery product per *non-zero* window
/// of the exponent — about `exp_bits / w` products, with no squarings at
/// all — versus ~1.5·`exp_bits` products for square-and-multiply on a
/// fresh base. Table construction costs ~`(2^w + w - 2)·exp_bits / w`
/// products once.
#[derive(Clone, Debug)]
pub struct FixedBaseWindow {
    ctx: MontgomeryCtx,
    /// `table[j][d-1] = base^((d+0) · 2^(w·j)) · R mod m` for `d` in `1..2^w`.
    table: Vec<Vec<Vec<u64>>>,
    window_bits: usize,
    max_exp_bits: usize,
}

impl FixedBaseWindow {
    /// Window width in bits. Four keeps the table small (15 entries per
    /// window) while already eliminating ~4x of the multiplications.
    pub const WINDOW_BITS: usize = 4;

    /// Precomputes the window table for `base` modulo the odd `modulus`,
    /// covering exponents up to `max_exp_bits` bits. Returns `None` for
    /// even or zero moduli.
    #[must_use]
    pub fn new(base: &BigUint, modulus: &BigUint, max_exp_bits: usize) -> Option<Self> {
        let ctx = MontgomeryCtx::new(modulus)?;
        let w = Self::WINDOW_BITS;
        let digits = (1usize << w) - 1;
        let windows = max_exp_bits.div_ceil(w).max(1);
        let mut table = Vec::with_capacity(windows);
        // `cur` = base^(2^(w·j)) in Montgomery form for the current window.
        let mut cur = ctx.to_mont(base);
        for _ in 0..windows {
            let mut row: Vec<Vec<u64>> = Vec::with_capacity(digits);
            row.push(cur.clone());
            for d in 1..digits {
                let next = ctx.mont_mul(&row[d - 1], &cur);
                row.push(next);
            }
            // Advance to the next window: cur^(2^w) by w squarings.
            for _ in 0..w {
                cur = ctx.mont_mul(&cur, &cur);
            }
            table.push(row);
        }
        Some(FixedBaseWindow { ctx, table, window_bits: w, max_exp_bits })
    }

    /// The largest exponent width (in bits) the table covers.
    #[must_use]
    pub fn max_exp_bits(&self) -> usize {
        self.max_exp_bits
    }

    /// `base^exp mod m` from the precomputed table.
    ///
    /// # Panics
    /// Panics if `exp` is wider than the table was built for.
    #[must_use]
    pub fn pow(&self, exp: &BigUint) -> BigUint {
        assert!(
            exp.bits() <= self.max_exp_bits,
            "exponent of {} bits exceeds the {}-bit window table",
            exp.bits(),
            self.max_exp_bits
        );
        let w = self.window_bits;
        let mut acc: Option<Vec<u64>> = None;
        for (j, row) in self.table.iter().enumerate() {
            let mut digit = 0usize;
            for b in 0..w {
                if exp.bit(j * w + b) {
                    digit |= 1 << b;
                }
            }
            if digit == 0 {
                continue;
            }
            let entry = &row[digit - 1];
            acc = Some(match acc {
                None => entry.clone(),
                Some(a) => self.ctx.mont_mul(&a, entry),
            });
        }
        match acc {
            None => BigUint::one().rem(&BigUint::from_limbs(self.ctx.m.clone())),
            Some(a) => self.ctx.leave_mont(&a),
        }
    }
}

/// Inverse of an odd `x` modulo 2^64 by Newton–Hensel lifting.
fn inv_mod_2_64(x: u64) -> u64 {
    debug_assert!(x & 1 == 1);
    let mut inv = x; // correct mod 2^3 (x odd ⇒ x·x ≡ 1 mod 8)
    for _ in 0..5 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(x.wrapping_mul(inv)));
    }
    inv
}

fn less_than(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        if x != y {
            return x < y;
        }
    }
    false
}

fn sub_in_place(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for (x, &y) in a.iter_mut().zip(b) {
        let (d1, b1) = x.overflowing_sub(y);
        let (d2, b2) = d1.overflowing_sub(borrow);
        *x = d2;
        borrow = u64::from(b1) + u64::from(b2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn inv_mod_2_64_is_inverse() {
        for x in [1u64, 3, 5, 0xdead_beef | 1, u64::MAX] {
            assert_eq!(x.wrapping_mul(inv_mod_2_64(x)), 1, "x={x}");
        }
    }

    #[test]
    fn rejects_even_or_zero_modulus() {
        assert!(MontgomeryCtx::new(&BigUint::from_u64(10)).is_none());
        assert!(MontgomeryCtx::new(&BigUint::zero()).is_none());
        assert!(MontgomeryCtx::new(&BigUint::from_u64(9)).is_some());
    }

    #[test]
    fn matches_plain_mod_pow_small() {
        let m = BigUint::from_u64(1_000_000_007);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        for (b, e) in [(2u64, 10u64), (12345, 67890), (999_999_999, 3)] {
            let base = BigUint::from_u64(b);
            let exp = BigUint::from_u64(e);
            assert_eq!(ctx.mod_pow(&base, &exp), base.mod_pow_plain(&exp, &m), "{b}^{e}");
        }
    }

    #[test]
    fn matches_plain_mod_pow_large_random() {
        let mut rng = StdRng::seed_from_u64(5);
        for bits in [128usize, 384, 512] {
            let mut m = BigUint::random_bits(&mut rng, bits);
            if m.is_even() {
                m = m.add_u64(1);
            }
            let ctx = MontgomeryCtx::new(&m).unwrap();
            for _ in 0..3 {
                let base = BigUint::random_below(&mut rng, &m);
                let exp = BigUint::random_bits(&mut rng, bits / 2);
                assert_eq!(ctx.mod_pow(&base, &exp), base.mod_pow_plain(&exp, &m), "bits={bits}");
            }
        }
    }

    #[test]
    fn edge_exponents() {
        let m = BigUint::from_u64(101);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let base = BigUint::from_u64(7);
        assert!(ctx.mod_pow(&base, &BigUint::zero()).is_one());
        assert_eq!(ctx.mod_pow(&base, &BigUint::one()).to_u64(), Some(7));
        assert!(ctx.mod_pow(&BigUint::zero(), &BigUint::from_u64(5)).is_zero());
    }

    #[test]
    fn fixed_base_window_matches_mod_pow() {
        let mut rng = StdRng::seed_from_u64(17);
        for bits in [64usize, 192, 512] {
            let mut m = BigUint::random_bits(&mut rng, bits);
            if m.is_even() {
                m = m.add_u64(1);
            }
            let base = BigUint::random_below(&mut rng, &m);
            let window = FixedBaseWindow::new(&base, &m, bits).unwrap();
            for exp_bits in [1usize, 3, bits / 2, bits - 1, bits] {
                let exp = BigUint::random_bits(&mut rng, exp_bits);
                assert_eq!(window.pow(&exp), base.mod_pow(&exp, &m), "bits={bits}/{exp_bits}");
            }
        }
    }

    #[test]
    fn fixed_base_window_edge_exponents() {
        let m = BigUint::from_u64(101);
        let base = BigUint::from_u64(7);
        let window = FixedBaseWindow::new(&base, &m, 64).unwrap();
        assert!(window.pow(&BigUint::zero()).is_one());
        assert_eq!(window.pow(&BigUint::one()).to_u64(), Some(7));
        assert_eq!(
            window.pow(&BigUint::from_u64(15)).to_u64(),
            base.mod_pow(&BigUint::from_u64(15), &m).to_u64()
        );
        assert!(FixedBaseWindow::new(&base, &BigUint::from_u64(10), 64).is_none());
    }
}
