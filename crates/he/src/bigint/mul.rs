//! Multiplication: schoolbook for small operands, Karatsuba above a
//! threshold. The threshold is conservative; Paillier operands (16–64 limbs)
//! sit right around the crossover.

use super::BigUint;

/// Limb count above which Karatsuba is used.
const KARATSUBA_THRESHOLD: usize = 24;

impl BigUint {
    /// `self * other`.
    #[must_use]
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let n = self.limbs.len().min(other.limbs.len());
        if n < KARATSUBA_THRESHOLD {
            Self::from_limbs(schoolbook(&self.limbs, &other.limbs))
        } else {
            karatsuba(self, other)
        }
    }

    /// `self * v` for a small multiplier.
    #[must_use]
    pub fn mul_u64(&self, v: u64) -> Self {
        if v == 0 || self.is_zero() {
            return Self::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &l in &self.limbs {
            let t = u128::from(l) * u128::from(v) + carry;
            out.push(t as u64);
            carry = t >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        Self::from_limbs(out)
    }

    /// `self * self`, slightly cheaper than `mul` for squaring-heavy modpow.
    #[must_use]
    pub fn square(&self) -> Self {
        // A dedicated squaring routine would halve the limb products; the
        // symmetric schoolbook is kept for clarity and Karatsuba already
        // captures the asymptotic win for big operands.
        self.mul(self)
    }
}

fn schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let t = u128::from(ai) * u128::from(bj) + u128::from(out[i + j]) + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let t = u128::from(out[k]) + carry;
            out[k] = t as u64;
            carry = t >> 64;
            k += 1;
        }
    }
    out
}

fn karatsuba(a: &BigUint, b: &BigUint) -> BigUint {
    let half = a.limbs.len().max(b.limbs.len()) / 2;
    let (a0, a1) = split(a, half);
    let (b0, b1) = split(b, half);
    let z0 = a0.mul(&b0);
    let z2 = a1.mul(&b1);
    let z1 = a0.add(&a1).mul(&b0.add(&b1)).sub(&z0).sub(&z2);
    z2.shl(half * 128).add(&z1.shl(half * 64)).add(&z0)
}

fn split(x: &BigUint, at: usize) -> (BigUint, BigUint) {
    if x.limbs.len() <= at {
        (x.clone(), BigUint::zero())
    } else {
        (BigUint::from_limbs(x.limbs[..at].to_vec()), BigUint::from_limbs(x.limbs[at..].to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_small_values() {
        let a = BigUint::from_u64(123_456_789);
        let b = BigUint::from_u64(987_654_321);
        assert_eq!(a.mul(&b).to_u128(), Some(123_456_789u128 * 987_654_321));
    }

    #[test]
    fn mul_by_zero_and_one() {
        let a = BigUint::from_u128(u128::MAX);
        assert!(a.mul(&BigUint::zero()).is_zero());
        assert_eq!(a.mul(&BigUint::one()), a);
    }

    #[test]
    fn mul_u64_matches_mul() {
        let a = BigUint::from_u128(0xffff_ffff_ffff_ffff_ffff);
        assert_eq!(a.mul_u64(12345), a.mul(&BigUint::from_u64(12345)));
    }

    #[test]
    fn mul_carries_across_limbs() {
        let a = BigUint::from_limbs(vec![u64::MAX; 3]);
        let sq = a.mul(&a);
        // (2^192 - 1)^2 = 2^384 - 2^193 + 1
        let expect = BigUint::one().shl(384).sub(&BigUint::one().shl(193)).add(&BigUint::one());
        assert_eq!(sq, expect);
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Build operands big enough to cross the threshold.
        let mut limbs = Vec::new();
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..64 {
            limbs.push(x);
            x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9).wrapping_add(1);
        }
        let a = BigUint::from_limbs(limbs.clone());
        let b = BigUint::from_limbs(limbs.into_iter().rev().collect());
        let fast = a.mul(&b);
        let slow = BigUint::from_limbs(schoolbook(a.limbs(), b.limbs()));
        assert_eq!(fast, slow);
    }

    #[test]
    fn square_matches_mul() {
        let a = BigUint::from_u128(0xdead_beef_dead_beef_dead_beef);
        assert_eq!(a.square(), a.mul(&a));
    }
}
