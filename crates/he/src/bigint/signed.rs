//! A minimal signed big integer, used by the extended Euclidean algorithm
//! and by fixed-point plaintext encodings.

use super::BigUint;
use std::cmp::Ordering;
use std::fmt;

/// Sign of a [`BigInt`]. Zero always carries [`Sign::Zero`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Sign {
    /// Negative value.
    Negative,
    /// The value zero.
    Zero,
    /// Positive value.
    Positive,
}

/// Signed arbitrary-precision integer (sign + magnitude).
#[derive(Clone, PartialEq, Eq)]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

impl BigInt {
    /// The value zero.
    #[must_use]
    pub fn zero() -> Self {
        BigInt { sign: Sign::Zero, mag: BigUint::zero() }
    }

    /// The value one.
    #[must_use]
    pub fn one() -> Self {
        BigInt { sign: Sign::Positive, mag: BigUint::one() }
    }

    /// A non-negative value from a [`BigUint`].
    #[must_use]
    pub fn from_biguint(mag: BigUint) -> Self {
        let sign = if mag.is_zero() { Sign::Zero } else { Sign::Positive };
        BigInt { sign, mag }
    }

    /// From a signed 64-bit integer.
    #[must_use]
    pub fn from_i64(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => Self::zero(),
            Ordering::Greater => BigInt { sign: Sign::Positive, mag: BigUint::from_u64(v as u64) },
            Ordering::Less => {
                BigInt { sign: Sign::Negative, mag: BigUint::from_u64(v.unsigned_abs()) }
            }
        }
    }

    /// The sign.
    #[must_use]
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude.
    #[must_use]
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// True iff zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// True iff strictly negative.
    #[must_use]
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    fn with_sign(sign: Sign, mag: BigUint) -> Self {
        if mag.is_zero() {
            Self::zero()
        } else {
            BigInt { sign, mag }
        }
    }

    /// Negation.
    #[must_use]
    pub fn neg(&self) -> Self {
        match self.sign {
            Sign::Zero => Self::zero(),
            Sign::Positive => Self::with_sign(Sign::Negative, self.mag.clone()),
            Sign::Negative => Self::with_sign(Sign::Positive, self.mag.clone()),
        }
    }

    /// `self + other`.
    #[must_use]
    pub fn add(&self, other: &Self) -> Self {
        match (self.sign, other.sign) {
            (Sign::Zero, _) => other.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => Self::with_sign(a, self.mag.add(&other.mag)),
            _ => match self.mag.cmp_big(&other.mag) {
                Ordering::Equal => Self::zero(),
                Ordering::Greater => Self::with_sign(self.sign, self.mag.sub(&other.mag)),
                Ordering::Less => Self::with_sign(other.sign, other.mag.sub(&self.mag)),
            },
        }
    }

    /// `self - other`.
    #[must_use]
    pub fn sub(&self, other: &Self) -> Self {
        self.add(&other.neg())
    }

    /// `self * other`.
    #[must_use]
    pub fn mul(&self, other: &Self) -> Self {
        let sign = match (self.sign, other.sign) {
            (Sign::Zero, _) | (_, Sign::Zero) => return Self::zero(),
            (a, b) if a == b => Sign::Positive,
            _ => Sign::Negative,
        };
        Self::with_sign(sign, self.mag.mul(&other.mag))
    }

    /// Extended Euclidean algorithm.
    ///
    /// Returns `(g, x, y)` with `g = gcd(|self|, |other|)` (as a non-negative
    /// `BigInt`) and `self·x + other·y = g`.
    #[must_use]
    pub fn extended_gcd(&self, other: &Self) -> (Self, Self, Self) {
        let (mut old_r, mut r) = (self.clone(), other.clone());
        let (mut old_s, mut s) = (Self::one(), Self::zero());
        let (mut old_t, mut t) = (Self::zero(), Self::one());
        while !r.is_zero() {
            let q = Self::with_sign(
                if old_r.sign == r.sign { Sign::Positive } else { Sign::Negative },
                old_r.mag.divrem(&r.mag).0,
            );
            let new_r = old_r.sub(&q.mul(&r));
            old_r = std::mem::replace(&mut r, new_r);
            let new_s = old_s.sub(&q.mul(&s));
            old_s = std::mem::replace(&mut s, new_s);
            let new_t = old_t.sub(&q.mul(&t));
            old_t = std::mem::replace(&mut t, new_t);
        }
        if old_r.is_negative() {
            (old_r.neg(), old_s.neg(), old_t.neg())
        } else {
            (old_r, old_s, old_t)
        }
    }

    /// Euclidean (floor) remainder into `[0, m)` for a positive modulus.
    #[must_use]
    pub fn rem_floor(&self, m: &BigUint) -> BigUint {
        let r = self.mag.rem(m);
        match self.sign {
            Sign::Negative if !r.is_zero() => m.sub(&r),
            _ => r,
        }
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.sign {
            Sign::Negative => write!(f, "-{}", self.mag.to_decimal()),
            _ => f.write_str(&self.mag.to_decimal()),
        }
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_arithmetic() {
        let a = BigInt::from_i64(10);
        let b = BigInt::from_i64(-4);
        assert_eq!(format!("{}", a.add(&b)), "6");
        assert_eq!(format!("{}", a.sub(&b)), "14");
        assert_eq!(format!("{}", a.mul(&b)), "-40");
        assert_eq!(format!("{}", b.mul(&b)), "16");
        assert!(a.add(&a.neg()).is_zero());
    }

    #[test]
    fn extended_gcd_bezout() {
        let a = BigInt::from_i64(240);
        let b = BigInt::from_i64(46);
        let (g, x, y) = a.extended_gcd(&b);
        assert_eq!(format!("{g}"), "2");
        assert_eq!(a.mul(&x).add(&b.mul(&y)), g);
    }

    #[test]
    fn extended_gcd_with_negative() {
        let a = BigInt::from_i64(-35);
        let b = BigInt::from_i64(15);
        let (g, x, y) = a.extended_gcd(&b);
        assert_eq!(format!("{g}"), "5");
        assert_eq!(a.mul(&x).add(&b.mul(&y)), g);
    }

    #[test]
    fn rem_floor_wraps_negatives() {
        let m = BigUint::from_u64(7);
        assert_eq!(BigInt::from_i64(-3).rem_floor(&m).to_u64(), Some(4));
        assert_eq!(BigInt::from_i64(10).rem_floor(&m).to_u64(), Some(3));
        assert_eq!(BigInt::from_i64(-14).rem_floor(&m).to_u64(), Some(0));
    }

    #[test]
    fn zero_is_canonical() {
        let z = BigInt::from_i64(5).sub(&BigInt::from_i64(5));
        assert!(z.is_zero());
        assert_eq!(z.sign(), Sign::Zero);
    }
}
