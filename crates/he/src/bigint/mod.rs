//! Arbitrary-precision unsigned integer arithmetic.
//!
//! [`BigUint`] is a little-endian vector of `u64` limbs, always kept
//! *normalized* (no trailing zero limbs; zero is the empty vector). The
//! implementation targets the sizes Paillier needs (hundreds to a few
//! thousand bits) and favours clarity plus solid asymptotics: schoolbook
//! multiplication with a Karatsuba ramp, Knuth Algorithm D division, and
//! square-and-multiply modular exponentiation.

mod convert;
mod div;
mod modular;
pub mod montgomery;
mod mul;
mod prime;
mod random;
pub mod signed;

pub use montgomery::MontgomeryCtx;
pub use signed::BigInt;

use std::cmp::Ordering;

/// An arbitrary-precision unsigned integer.
///
/// Invariant: `limbs` never ends with a zero limb (so representations are
/// canonical and comparison is limb-count first).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    pub(crate) limbs: Vec<u64>,
}

impl BigUint {
    /// The value zero.
    #[must_use]
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    #[must_use]
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Constructs from a single `u64`.
    #[must_use]
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Constructs from a `u128`.
    #[must_use]
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut out = BigUint { limbs: vec![lo, hi] };
        out.normalize();
        out
    }

    /// Constructs from little-endian limbs (normalizing).
    #[must_use]
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Returns the little-endian limb slice.
    #[must_use]
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// True iff the value is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is one.
    #[must_use]
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True iff the value is even (zero counts as even).
    #[must_use]
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for zero).
    #[must_use]
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Returns bit `i` (little-endian bit order).
    #[must_use]
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// The value as a `u64`, if it fits.
    #[must_use]
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// The value as a `u128`, if it fits.
    #[must_use]
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(u128::from(self.limbs[0])),
            2 => Some(u128::from(self.limbs[0]) | (u128::from(self.limbs[1]) << 64)),
            _ => None,
        }
    }

    pub(crate) fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Compares two values.
    #[must_use]
    pub fn cmp_big(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => {}
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// `self + other`.
    #[must_use]
    pub fn add(&self, other: &Self) -> Self {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = long[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry != 0 {
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }

    /// `self + v` for a small addend.
    #[must_use]
    pub fn add_u64(&self, v: u64) -> Self {
        self.add(&BigUint::from_u64(v))
    }

    /// `self - other`. Panics if `other > self` (caller invariant).
    #[must_use]
    pub fn sub(&self, other: &Self) -> Self {
        debug_assert!(self.cmp_big(other) != Ordering::Less, "BigUint::sub underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = u64::from(b1) + u64::from(b2);
        }
        assert_eq!(borrow, 0, "BigUint::sub underflow");
        BigUint::from_limbs(out)
    }

    /// `self << bits`.
    #[must_use]
    pub fn shl(&self, bits: usize) -> Self {
        if self.is_zero() || bits == 0 {
            let mut c = self.clone();
            c.normalize();
            return c;
        }
        let (limb_shift, bit_shift) = (bits / 64, bits % 64);
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }

    /// `self >> bits`.
    #[must_use]
    pub fn shr(&self, bits: usize) -> Self {
        let (limb_shift, bit_shift) = (bits / 64, bits % 64);
        if limb_shift >= self.limbs.len() {
            return Self::zero();
        }
        let mut out: Vec<u64> = self.limbs[limb_shift..].to_vec();
        if bit_shift > 0 {
            let mut carry = 0u64;
            for l in out.iter_mut().rev() {
                let new = (*l >> bit_shift) | carry;
                carry = *l << (64 - bit_shift);
                *l = new;
            }
        }
        BigUint::from_limbs(out)
    }

    /// Greatest common divisor (binary-free Euclid via divrem).
    #[must_use]
    pub fn gcd(&self, other: &Self) -> Self {
        let (mut a, mut b) = (self.clone(), other.clone());
        while !b.is_zero() {
            let (_, r) = a.divrem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Least common multiple. Returns zero if either input is zero.
    #[must_use]
    pub fn lcm(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let g = self.gcd(other);
        self.divrem(&g).0.mul(other)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_big(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one_basics() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
        assert!(BigUint::zero().is_even());
        assert!(!BigUint::one().is_even());
    }

    #[test]
    fn add_with_carry_chain() {
        let a = BigUint::from_limbs(vec![u64::MAX, u64::MAX]);
        let b = BigUint::one();
        let s = a.add(&b);
        assert_eq!(s.limbs(), &[0, 0, 1]);
    }

    #[test]
    fn sub_with_borrow_chain() {
        let a = BigUint::from_limbs(vec![0, 0, 1]);
        let b = BigUint::one();
        let d = a.sub(&b);
        assert_eq!(d.limbs(), &[u64::MAX, u64::MAX]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = BigUint::from_u128(0x1234_5678_9abc_def0_1122_3344_5566_7788);
        let b = BigUint::from_u128(0x0fed_cba9_8765_4321);
        assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn shifts_roundtrip() {
        let a = BigUint::from_u128(0xdead_beef_cafe_babe_1234);
        for s in [0, 1, 7, 63, 64, 65, 130] {
            assert_eq!(a.shl(s).shr(s), a, "shift {s}");
        }
    }

    #[test]
    fn shr_to_zero() {
        let a = BigUint::from_u64(42);
        assert!(a.shr(6).is_zero());
        assert_eq!(a.shr(3).to_u64(), Some(5));
    }

    #[test]
    fn cmp_orders_by_magnitude() {
        let a = BigUint::from_u64(5);
        let b = BigUint::from_u128(1 << 100);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a.clone()), Ordering::Equal);
    }

    #[test]
    fn bit_access() {
        let a = BigUint::from_u64(0b1010);
        assert!(!a.bit(0));
        assert!(a.bit(1));
        assert!(!a.bit(2));
        assert!(a.bit(3));
        assert!(!a.bit(64));
    }

    #[test]
    fn gcd_small() {
        let g = BigUint::from_u64(48).gcd(&BigUint::from_u64(18));
        assert_eq!(g.to_u64(), Some(6));
        assert_eq!(BigUint::from_u64(7).gcd(&BigUint::zero()).to_u64(), Some(7));
    }

    #[test]
    fn lcm_small() {
        let l = BigUint::from_u64(4).lcm(&BigUint::from_u64(6));
        assert_eq!(l.to_u64(), Some(12));
        assert!(BigUint::zero().lcm(&BigUint::from_u64(6)).is_zero());
    }

    #[test]
    fn u128_roundtrip() {
        let v = 0x1234_5678_9abc_def0_1122_3344_5566_7788u128;
        assert_eq!(BigUint::from_u128(v).to_u128(), Some(v));
    }
}
