//! Conversions: byte serialization, hex / decimal formatting and parsing.

use super::BigUint;
use std::fmt;

impl BigUint {
    /// Big-endian byte encoding with no leading zero bytes (empty for zero).
    #[must_use]
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for &l in self.limbs.iter().rev() {
            out.extend_from_slice(&l.to_be_bytes());
        }
        let first = out.iter().position(|&b| b != 0).unwrap_or(out.len());
        out.split_off(first)
    }

    /// Parses a big-endian byte slice.
    #[must_use]
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.rchunks(8) {
            let mut buf = [0u8; 8];
            buf[8 - chunk.len()..].copy_from_slice(chunk);
            limbs.push(u64::from_be_bytes(buf));
        }
        Self::from_limbs(limbs)
    }

    /// Number of bytes in the big-endian encoding.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.bits().div_ceil(8)
    }

    /// Parses a hexadecimal string (no prefix, case-insensitive).
    ///
    /// Returns `None` for empty input or non-hex characters.
    #[must_use]
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.is_empty() {
            return None;
        }
        let mut out = Self::zero();
        for ch in s.chars() {
            let d = ch.to_digit(16)?;
            out = out.shl(4).add_u64(u64::from(d));
        }
        Some(out)
    }

    /// Lowercase hexadecimal rendering (no prefix; `"0"` for zero).
    #[must_use]
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_owned();
        }
        let mut s = format!("{:x}", self.limbs.last().unwrap());
        for &l in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{l:016x}"));
        }
        s
    }

    /// Parses a decimal string. Returns `None` for empty or non-digit input.
    #[must_use]
    pub fn from_decimal(s: &str) -> Option<Self> {
        if s.is_empty() {
            return None;
        }
        let mut out = Self::zero();
        for ch in s.chars() {
            let d = ch.to_digit(10)?;
            out = out.mul_u64(10).add_u64(u64::from(d));
        }
        Some(out)
    }

    /// Decimal rendering.
    #[must_use]
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_owned();
        }
        let mut digits = Vec::new();
        let mut cur = self.clone();
        // Peel 19 decimal digits at a time (largest power of ten in u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        while !cur.is_zero() {
            let (q, r) = cur.divrem_u64(CHUNK);
            digits.push(r);
            cur = q;
        }
        let mut s = digits.pop().map(|d| d.to_string()).unwrap_or_default();
        for d in digits.into_iter().rev() {
            s.push_str(&format!("{d:019}"));
        }
        s
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_decimal())
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip() {
        let a = BigUint::from_u128(0x0102_0304_0506_0708_090a);
        let bytes = a.to_bytes_be();
        assert_eq!(bytes[0], 0x01, "no leading zeros");
        assert_eq!(BigUint::from_bytes_be(&bytes), a);
        assert!(BigUint::zero().to_bytes_be().is_empty());
        assert!(BigUint::from_bytes_be(&[]).is_zero());
    }

    #[test]
    fn byte_len_matches_encoding() {
        for v in [0u64, 1, 255, 256, 0xffff, 0x1_0000] {
            let b = BigUint::from_u64(v);
            assert_eq!(b.byte_len(), b.to_bytes_be().len(), "v={v}");
        }
    }

    #[test]
    fn hex_roundtrip() {
        let a = BigUint::from_hex("deadbeefcafebabe0123456789abcdef00").unwrap();
        assert_eq!(a.to_hex(), "deadbeefcafebabe0123456789abcdef00");
        assert_eq!(BigUint::zero().to_hex(), "0");
        assert!(BigUint::from_hex("xyz").is_none());
        assert!(BigUint::from_hex("").is_none());
    }

    #[test]
    fn decimal_roundtrip() {
        let s = "123456789012345678901234567890123456789";
        let a = BigUint::from_decimal(s).unwrap();
        assert_eq!(a.to_decimal(), s);
        assert_eq!(BigUint::zero().to_decimal(), "0");
        assert!(BigUint::from_decimal("12a").is_none());
    }

    #[test]
    fn display_and_debug() {
        let a = BigUint::from_u64(255);
        assert_eq!(format!("{a}"), "255");
        assert_eq!(format!("{a:?}"), "BigUint(0xff)");
    }
}
