//! Division with remainder: single-limb fast path and Knuth's Algorithm D
//! (TAOCP Vol. 2, §4.3.1) for the general case.

use super::BigUint;
use std::cmp::Ordering;

impl BigUint {
    /// Returns `(self / divisor, self % divisor)`.
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    #[must_use]
    pub fn divrem(&self, divisor: &Self) -> (Self, Self) {
        assert!(!divisor.is_zero(), "BigUint division by zero");
        match self.cmp_big(divisor) {
            Ordering::Less => return (Self::zero(), self.clone()),
            Ordering::Equal => return (Self::one(), Self::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.divrem_u64(divisor.limbs[0]);
            return (q, Self::from_u64(r));
        }
        knuth_d(self, divisor)
    }

    /// Returns `(self / d, self % d)` for a single-limb divisor.
    ///
    /// # Panics
    /// Panics if `d` is zero.
    #[must_use]
    pub fn divrem_u64(&self, d: u64) -> (Self, u64) {
        assert!(d != 0, "BigUint division by zero");
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | u128::from(self.limbs[i]);
            q[i] = (cur / u128::from(d)) as u64;
            rem = cur % u128::from(d);
        }
        (Self::from_limbs(q), rem as u64)
    }

    /// `self % modulus`.
    #[must_use]
    pub fn rem(&self, modulus: &Self) -> Self {
        self.divrem(modulus).1
    }
}

/// Knuth Algorithm D. Requires `u > v` and `v` to have at least two limbs.
fn knuth_d(u: &BigUint, v: &BigUint) -> (BigUint, BigUint) {
    let n = v.limbs.len();
    let m = u.limbs.len() - n;

    // D1: normalize so the divisor's top limb has its high bit set.
    let shift = v.limbs[n - 1].leading_zeros() as usize;
    let vn = v.shl(shift);
    let mut un = u.shl(shift).limbs;
    un.resize(u.limbs.len() + 1, 0); // extra high limb for the loop

    let vtop = vn.limbs[n - 1];
    let vsecond = vn.limbs[n - 2];
    let mut q = vec![0u64; m + 1];

    // D2–D7: main loop.
    for j in (0..=m).rev() {
        // D3: estimate qhat from the top two limbs of the current window.
        let top2 = (u128::from(un[j + n]) << 64) | u128::from(un[j + n - 1]);
        let mut qhat = top2 / u128::from(vtop);
        let mut rhat = top2 % u128::from(vtop);
        while qhat >> 64 != 0
            || qhat * u128::from(vsecond) > ((rhat << 64) | u128::from(un[j + n - 2]))
        {
            qhat -= 1;
            rhat += u128::from(vtop);
            if rhat >> 64 != 0 {
                break;
            }
        }

        // D4: multiply-and-subtract the window by qhat * v.
        let mut borrow = 0i128;
        let mut carry = 0u128;
        for i in 0..n {
            let p = qhat * u128::from(vn.limbs[i]) + carry;
            carry = p >> 64;
            let sub = i128::from(un[j + i]) - i128::from(p as u64) + borrow;
            un[j + i] = sub as u64;
            borrow = sub >> 64; // arithmetic shift: 0 or -1
        }
        let sub = i128::from(un[j + n]) - i128::from(carry as u64) + borrow;
        un[j + n] = sub as u64;
        let went_negative = sub < 0;

        q[j] = qhat as u64;

        // D6: rare add-back correction when qhat was one too large.
        if went_negative {
            q[j] -= 1;
            let mut carry = 0u128;
            for i in 0..n {
                let t = u128::from(un[j + i]) + u128::from(vn.limbs[i]) + carry;
                un[j + i] = t as u64;
                carry = t >> 64;
            }
            un[j + n] = un[j + n].wrapping_add(carry as u64);
        }
    }

    // D8: denormalize the remainder.
    let rem = BigUint::from_limbs(un[..n].to_vec()).shr(shift);
    (BigUint::from_limbs(q), rem)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(a: &BigUint, b: &BigUint) {
        let (q, r) = a.divrem(b);
        assert!(r.cmp_big(b) == Ordering::Less, "remainder >= divisor");
        assert_eq!(q.mul(b).add(&r), *a, "q*b + r != a");
    }

    #[test]
    fn small_division() {
        let (q, r) = BigUint::from_u64(100).divrem(&BigUint::from_u64(7));
        assert_eq!(q.to_u64(), Some(14));
        assert_eq!(r.to_u64(), Some(2));
    }

    #[test]
    fn dividend_smaller_than_divisor() {
        let (q, r) = BigUint::from_u64(3).divrem(&BigUint::from_u128(1 << 100));
        assert!(q.is_zero());
        assert_eq!(r.to_u64(), Some(3));
    }

    #[test]
    fn equal_operands() {
        let a = BigUint::from_u128(0xdead_beef_0000_1111_2222);
        let (q, r) = a.divrem(&a);
        assert!(q.is_one());
        assert!(r.is_zero());
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn divide_by_zero_panics() {
        let _ = BigUint::from_u64(1).divrem(&BigUint::zero());
    }

    #[test]
    fn single_limb_divisor_path() {
        let a = BigUint::from_limbs(vec![0x1111_2222_3333_4444, 0x5555_6666_7777_8888, 0x9]);
        check(&a, &BigUint::from_u64(0x1234_5678_9abc_def1));
    }

    #[test]
    fn knuth_d_multi_limb() {
        let a = BigUint::from_limbs(vec![
            0xffee_ddcc_bbaa_9988,
            0x7766_5544_3322_1100,
            0x0123_4567_89ab_cdef,
            0xfedc_ba98_7654_3210,
        ]);
        let b = BigUint::from_limbs(vec![0xaaaa_bbbb_cccc_dddd, 0x1111_2222_3333_4444]);
        check(&a, &b);
    }

    #[test]
    fn knuth_d_addback_case() {
        // Classic add-back trigger shape: dividend with high limbs just below
        // a multiple of the divisor.
        let b = BigUint::from_limbs(vec![0, 0x8000_0000_0000_0000]);
        let a = BigUint::from_limbs(vec![u64::MAX, u64::MAX - 1, 0x7fff_ffff_ffff_ffff]);
        check(&a, &b);
    }

    #[test]
    fn randomized_divrem_identity() {
        // Deterministic pseudo-random sweep over operand shapes.
        let mut x = 0x243f_6a88_85a3_08d3u64;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for alen in 1..8usize {
            for blen in 1..5usize {
                let a = BigUint::from_limbs((0..alen).map(|_| next()).collect());
                let mut bl: Vec<u64> = (0..blen).map(|_| next()).collect();
                if bl.iter().all(|&l| l == 0) {
                    bl[0] = 1;
                }
                let b = BigUint::from_limbs(bl);
                check(&a, &b);
            }
        }
    }
}
