//! Modular arithmetic: addition, multiplication, exponentiation and inverse.

use super::signed::BigInt;
use super::BigUint;

impl BigUint {
    /// `(self + other) mod m`. Operands need not be reduced.
    #[must_use]
    pub fn add_mod(&self, other: &Self, m: &Self) -> Self {
        self.add(other).rem(m)
    }

    /// `(self - other) mod m`, wrapping into `[0, m)`.
    #[must_use]
    pub fn sub_mod(&self, other: &Self, m: &Self) -> Self {
        let a = self.rem(m);
        let b = other.rem(m);
        if a >= b {
            a.sub(&b)
        } else {
            a.add(m).sub(&b)
        }
    }

    /// `(self * other) mod m`.
    #[must_use]
    pub fn mul_mod(&self, other: &Self, m: &Self) -> Self {
        self.mul(other).rem(m)
    }

    /// `self^exp mod m`.
    ///
    /// Odd multi-limb moduli (the Paillier case) take the Montgomery fast
    /// path; everything else falls back to division-based
    /// square-and-multiply.
    ///
    /// # Panics
    /// Panics if `m` is zero.
    #[must_use]
    pub fn mod_pow(&self, exp: &Self, m: &Self) -> Self {
        assert!(!m.is_zero(), "mod_pow with zero modulus");
        if m.is_one() {
            return Self::zero();
        }
        if !m.is_even() && m.limbs().len() > 1 && exp.bits() > 4 {
            if let Some(ctx) = super::montgomery::MontgomeryCtx::new(m) {
                return ctx.mod_pow(self, exp);
            }
        }
        self.mod_pow_plain(exp, m)
    }

    /// Division-based square-and-multiply (always correct; the oracle the
    /// Montgomery path is tested against).
    #[must_use]
    pub fn mod_pow_plain(&self, exp: &Self, m: &Self) -> Self {
        assert!(!m.is_zero(), "mod_pow with zero modulus");
        if m.is_one() {
            return Self::zero();
        }
        let mut base = self.rem(m);
        if exp.is_zero() {
            return Self::one();
        }
        let mut result = Self::one();
        let nbits = exp.bits();
        // Right-to-left binary exponentiation: squares the base each step and
        // multiplies it in when the exponent bit is set.
        for i in 0..nbits {
            if exp.bit(i) {
                result = result.mul_mod(&base, m);
            }
            if i + 1 < nbits {
                base = base.square().rem(m);
            }
        }
        result
    }

    /// Modular inverse: `self^{-1} mod m`, if it exists (`gcd(self, m) == 1`).
    #[must_use]
    pub fn mod_inverse(&self, m: &Self) -> Option<Self> {
        if m.is_zero() {
            return None;
        }
        let (g, x, _) =
            BigInt::from_biguint(self.rem(m)).extended_gcd(&BigInt::from_biguint(m.clone()));
        if !g.magnitude().is_one() {
            return None;
        }
        Some(x.rem_floor(m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_mod() {
        let m = BigUint::from_u64(97);
        let a = BigUint::from_u64(90);
        let b = BigUint::from_u64(15);
        assert_eq!(a.add_mod(&b, &m).to_u64(), Some(8));
        assert_eq!(b.sub_mod(&a, &m).to_u64(), Some(22));
        assert_eq!(a.sub_mod(&b, &m).to_u64(), Some(75));
    }

    #[test]
    fn mod_pow_small() {
        let b = BigUint::from_u64(4);
        let e = BigUint::from_u64(13);
        let m = BigUint::from_u64(497);
        assert_eq!(b.mod_pow(&e, &m).to_u64(), Some(445));
    }

    #[test]
    fn mod_pow_edge_cases() {
        let m = BigUint::from_u64(13);
        assert!(BigUint::from_u64(5).mod_pow(&BigUint::zero(), &m).is_one());
        assert!(BigUint::from_u64(5).mod_pow(&BigUint::from_u64(100), &BigUint::one()).is_zero());
        assert!(BigUint::zero().mod_pow(&BigUint::from_u64(5), &m).is_zero());
    }

    #[test]
    fn fermat_little_theorem() {
        // a^(p-1) ≡ 1 (mod p) for prime p not dividing a.
        let p = BigUint::from_u64(1_000_000_007);
        for a in [2u64, 3, 12345, 999_999_999] {
            let r = BigUint::from_u64(a).mod_pow(&p.sub(&BigUint::one()), &p);
            assert!(r.is_one(), "a={a}");
        }
    }

    #[test]
    fn mod_pow_large_operands() {
        // 2^128 mod (2^61 - 1): Mersenne prime makes the expected value easy.
        let m = BigUint::from_u64((1 << 61) - 1);
        let got = BigUint::from_u64(2).mod_pow(&BigUint::from_u64(128), &m);
        // 2^128 = 2^(61*2+6) ≡ 2^6 (mod 2^61 - 1)
        assert_eq!(got.to_u64(), Some(64));
    }

    #[test]
    fn mod_inverse_basics() {
        let m = BigUint::from_u64(97);
        let a = BigUint::from_u64(31);
        let inv = a.mod_inverse(&m).unwrap();
        assert!(a.mul_mod(&inv, &m).is_one());
        // Non-invertible: shares a factor with the modulus.
        assert!(BigUint::from_u64(6).mod_inverse(&BigUint::from_u64(9)).is_none());
        assert!(BigUint::from_u64(5).mod_inverse(&BigUint::zero()).is_none());
    }

    #[test]
    fn mod_inverse_large() {
        let m = BigUint::from_hex("fffffffffffffffffffffffffffffffeffffffffffffffff").unwrap();
        let a = BigUint::from_hex("123456789abcdef0123456789abcdef0").unwrap();
        if let Some(inv) = a.mod_inverse(&m) {
            assert!(a.mul_mod(&inv, &m).is_one());
        }
    }
}
