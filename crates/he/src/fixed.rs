//! Fixed-point encoding of real values for exact (integer) HE schemes.
//!
//! Distances in VFPS-SM are non-negative reals; Paillier operates on
//! integers mod `n`. [`FixedPoint`] maps `x ↦ round(x · 2^frac_bits)` and
//! back, tracking the scale so homomorphic sums decode correctly.

use crate::error::{Error, Result};

/// A fixed-point codec with `frac_bits` fractional bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FixedPoint {
    frac_bits: u32,
}

impl FixedPoint {
    /// Default fractional precision used by the VFL protocols.
    pub const DEFAULT_FRAC_BITS: u32 = 24;

    /// Creates a codec with the given fractional precision (≤ 52 so a unit
    /// value still round-trips through `f64`).
    ///
    /// # Errors
    /// Returns [`Error::InvalidParameters`] if `frac_bits > 52`.
    pub fn new(frac_bits: u32) -> Result<Self> {
        if frac_bits > 52 {
            return Err(Error::InvalidParameters(format!("frac_bits {frac_bits} exceeds 52")));
        }
        Ok(FixedPoint { frac_bits })
    }

    /// The default codec.
    #[must_use]
    pub fn default_codec() -> Self {
        FixedPoint { frac_bits: Self::DEFAULT_FRAC_BITS }
    }

    /// The scale factor `2^frac_bits`.
    #[must_use]
    pub fn scale(&self) -> f64 {
        (1u64 << self.frac_bits) as f64
    }

    /// Encodes a real into a scaled signed integer.
    ///
    /// # Errors
    /// Returns [`Error::FixedPointOverflow`] for non-finite input or values
    /// whose scaled magnitude exceeds `i64`.
    pub fn encode(&self, x: f64) -> Result<i64> {
        if !x.is_finite() {
            return Err(Error::FixedPointOverflow { value: x });
        }
        let scaled = x * self.scale();
        if scaled.abs() >= i64::MAX as f64 {
            return Err(Error::FixedPointOverflow { value: x });
        }
        Ok(scaled.round() as i64)
    }

    /// Decodes a scaled integer back into a real.
    #[must_use]
    pub fn decode(&self, v: i64) -> f64 {
        v as f64 / self.scale()
    }

    /// Decodes a (possibly widened) sum of scaled integers.
    #[must_use]
    pub fn decode_i128(&self, v: i128) -> f64 {
        v as f64 / self.scale()
    }

    /// Encodes a slice, failing on the first unrepresentable element.
    pub fn encode_slice(&self, xs: &[f64]) -> Result<Vec<i64>> {
        xs.iter().map(|&x| self.encode(x)).collect()
    }

    /// Absolute quantization error bound for a single encoded value.
    #[must_use]
    pub fn quantization_error(&self) -> f64 {
        0.5 / self.scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_within_quantization_error() {
        let fp = FixedPoint::default_codec();
        for &x in &[0.0, 1.0, -1.0, std::f64::consts::PI, -std::f64::consts::E, 1e6, -1e6, 1e-7] {
            let v = fp.encode(x).unwrap();
            assert!((fp.decode(v) - x).abs() <= fp.quantization_error(), "x={x}");
        }
    }

    #[test]
    fn sums_decode_correctly() {
        let fp = FixedPoint::default_codec();
        let xs = [1.25, 2.5, 3.125, -0.875];
        let total: i128 = xs.iter().map(|&x| i128::from(fp.encode(x).unwrap())).sum();
        let expect: f64 = xs.iter().sum();
        assert!((fp.decode_i128(total) - expect).abs() < 4.0 * fp.quantization_error());
    }

    #[test]
    fn rejects_non_finite() {
        let fp = FixedPoint::default_codec();
        assert!(fp.encode(f64::NAN).is_err());
        assert!(fp.encode(f64::INFINITY).is_err());
        assert!(fp.encode(f64::NEG_INFINITY).is_err());
    }

    #[test]
    fn rejects_overflow() {
        let fp = FixedPoint::default_codec();
        assert!(fp.encode(1e30).is_err());
        assert!(fp.encode(-1e30).is_err());
    }

    #[test]
    fn rejects_excess_precision() {
        assert!(FixedPoint::new(53).is_err());
        assert!(FixedPoint::new(52).is_ok());
    }

    #[test]
    fn encode_slice_propagates_errors() {
        let fp = FixedPoint::default_codec();
        assert!(fp.encode_slice(&[1.0, f64::NAN]).is_err());
        assert_eq!(fp.encode_slice(&[1.0, 2.0]).unwrap().len(), 2);
    }
}
