//! Differential-privacy mechanisms — the alternative protection technique
//! the paper surveys (§II): instead of encrypting transmitted statistics,
//! perturb them with calibrated noise. Provided so the repo can ablate
//! DP-protected selection against the HE-protected protocol (the paper's
//! observation: "adding noises inevitably affects the model accuracy").

use rand::Rng;

use crate::error::{Error, Result};

/// The Laplace mechanism: adds `Lap(Δ/ε)` noise for ε-DP release of a
/// statistic with L1 sensitivity `Δ`.
#[derive(Clone, Copy, Debug)]
pub struct LaplaceMechanism {
    scale: f64,
}

impl LaplaceMechanism {
    /// Calibrates for sensitivity `Δ` and privacy budget `ε`.
    ///
    /// # Errors
    /// Returns [`Error::InvalidParameters`] for non-positive inputs.
    pub fn new(sensitivity: f64, epsilon: f64) -> Result<Self> {
        if !(sensitivity > 0.0 && sensitivity.is_finite()) {
            return Err(Error::InvalidParameters(format!(
                "sensitivity {sensitivity} must be positive"
            )));
        }
        if !(epsilon > 0.0 && epsilon.is_finite()) {
            return Err(Error::InvalidParameters(format!("epsilon {epsilon} must be positive")));
        }
        Ok(LaplaceMechanism { scale: sensitivity / epsilon })
    }

    /// The noise scale `b = Δ/ε`.
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Draws one noise sample by inverse-CDF.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(-0.5..0.5);
        -self.scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
    }

    /// Privatizes one value.
    pub fn privatize<R: Rng + ?Sized>(&self, value: f64, rng: &mut R) -> f64 {
        value + self.sample(rng)
    }

    /// Privatizes a slice in place.
    pub fn privatize_slice<R: Rng + ?Sized>(&self, values: &mut [f64], rng: &mut R) {
        for v in values {
            *v += self.sample(rng);
        }
    }
}

/// The Gaussian mechanism: adds `N(0, σ²)` noise for (ε, δ)-DP release of
/// a statistic with L2 sensitivity `Δ`, with the classic calibration
/// `σ = Δ·√(2 ln(1.25/δ))/ε` (valid for ε ≤ 1).
#[derive(Clone, Copy, Debug)]
pub struct GaussianMechanism {
    sigma: f64,
}

impl GaussianMechanism {
    /// Calibrates for sensitivity `Δ` and budget `(ε, δ)`.
    ///
    /// # Errors
    /// Returns [`Error::InvalidParameters`] for out-of-range inputs.
    pub fn new(sensitivity: f64, epsilon: f64, delta: f64) -> Result<Self> {
        if !(sensitivity > 0.0 && sensitivity.is_finite()) {
            return Err(Error::InvalidParameters(format!(
                "sensitivity {sensitivity} must be positive"
            )));
        }
        if !(epsilon > 0.0 && epsilon <= 1.0) {
            return Err(Error::InvalidParameters(format!(
                "epsilon {epsilon} must be in (0, 1] for this calibration"
            )));
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(Error::InvalidParameters(format!("delta {delta} must be in (0, 1)")));
        }
        let sigma = sensitivity * (2.0 * (1.25 / delta).ln()).sqrt() / epsilon;
        Ok(GaussianMechanism { sigma })
    }

    /// The noise standard deviation.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws one noise sample (Box–Muller).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        self.sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Privatizes one value.
    pub fn privatize<R: Rng + ?Sized>(&self, value: f64, rng: &mut R) -> f64 {
        value + self.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn stats(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn laplace_moments() {
        let mech = LaplaceMechanism::new(1.0, 0.5).unwrap();
        assert_eq!(mech.scale(), 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..20_000).map(|_| mech.sample(&mut rng)).collect();
        let (mean, var) = stats(&samples);
        assert!(mean.abs() < 0.1, "mean {mean}");
        // Var(Lap(b)) = 2b² = 8.
        assert!((var - 8.0).abs() < 0.8, "var {var}");
    }

    #[test]
    fn gaussian_moments() {
        let mech = GaussianMechanism::new(1.0, 1.0, 1e-5).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..20_000).map(|_| mech.sample(&mut rng)).collect();
        let (mean, var) = stats(&samples);
        assert!(mean.abs() < 0.1, "mean {mean}");
        let expect = mech.sigma() * mech.sigma();
        assert!((var - expect).abs() / expect < 0.1, "var {var} vs {expect}");
    }

    #[test]
    fn noise_shrinks_with_budget() {
        let loose = LaplaceMechanism::new(1.0, 10.0).unwrap();
        let tight = LaplaceMechanism::new(1.0, 0.1).unwrap();
        assert!(loose.scale() < tight.scale());
        let g_loose = GaussianMechanism::new(1.0, 1.0, 1e-5).unwrap();
        let g_tight = GaussianMechanism::new(1.0, 0.1, 1e-5).unwrap();
        assert!(g_loose.sigma() < g_tight.sigma());
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(LaplaceMechanism::new(0.0, 1.0).is_err());
        assert!(LaplaceMechanism::new(1.0, 0.0).is_err());
        assert!(LaplaceMechanism::new(f64::NAN, 1.0).is_err());
        assert!(GaussianMechanism::new(1.0, 2.0, 1e-5).is_err());
        assert!(GaussianMechanism::new(1.0, 0.5, 0.0).is_err());
    }

    #[test]
    fn privatize_slice_perturbs_everything() {
        let mech = LaplaceMechanism::new(1.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut values = vec![5.0; 32];
        mech.privatize_slice(&mut values, &mut rng);
        assert!(values.iter().any(|&v| (v - 5.0).abs() > 1e-9));
        let mean: f64 = values.iter().sum::<f64>() / 32.0;
        assert!((mean - 5.0).abs() < 2.0);
    }
}
