//! Shift-and-pack plaintext packing for Paillier.
//!
//! Paillier plaintexts live in `Z_n` — hundreds of bits — while a fixed-point
//! encoded partial distance needs at most `MAG_BITS + 1` of them. Packing
//! lays many values side by side in one plaintext so a single noise
//! exponentiation (the dominant encryption cost) is amortized over a whole
//! slot group, and homomorphic ciphertext addition sums every slot at once.
//!
//! ## Layout and headroom math
//!
//! Each slot is `slot_bits` wide and stores one fixed-point encoded value
//! `e` (|`e`| ≤ 2^`MAG_BITS`, covering |x| ≤ 2^30 at the default 24
//! fractional bits — comfortably above the protocol's 1e9 self-exclusion
//! sentinel) as the non-negative `e + B` with bias `B = 2^MAG_BITS`. After
//! homomorphically summing `t ≤ max_terms` fresh ciphertexts a slot holds
//! `Σe_i + t·B`, which is bounded by
//!
//! ```text
//! t · (B + 2^MAG_BITS) ≤ max_terms · 2^(MAG_BITS+1) < 2^slot_bits
//! ```
//!
//! so `slot_bits = MAG_BITS + 1 + ceil_log2(max_terms) + 1` (one guard bit)
//! guarantees no carry ever crosses a slot boundary. The whole plaintext is
//! `slots · slot_bits ≤ key_bits − 1` bits, hence strictly below
//! `2^(key_bits−1) ≤ n`: slot sums are plain non-negative integers and
//! decoding needs no `n/2` threshold. Decode subtracts `t·B` per slot.

use crate::bigint::BigUint;
use crate::error::{Error, Result};

/// Per-slot magnitude bound in bits: encoded values must satisfy
/// |`e`| ≤ 2^`MAG_BITS`. With the default 24 fractional bits this admits
/// real values up to 2^30 ≈ 1.07e9, which covers every distance the VFL
/// protocols encrypt (the largest is the 1e9 self-exclusion sentinel).
pub const MAG_BITS: u32 = 54;

/// Default addition headroom: slots keep carry-free room for summing this
/// many fresh ciphertexts (one per participant in VFPS-SM, so 16 covers
/// every configuration in the tree with margin).
pub const DEFAULT_MAX_TERMS: u32 = 16;

/// A shift-and-pack layout for a given Paillier key width.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PackingLayout {
    slot_bits: u32,
    slots: usize,
    max_terms: u32,
}

impl PackingLayout {
    /// Derives the layout for a key of `key_bits` with headroom for
    /// `max_terms` homomorphic additions. Returns `None` when the key is
    /// too narrow to fit even one slot (callers then fall back to one
    /// value per ciphertext).
    #[must_use]
    pub fn for_key(key_bits: usize, max_terms: u32) -> Option<Self> {
        if max_terms == 0 {
            return None;
        }
        let headroom_bits = u32::BITS - (max_terms - 1).leading_zeros(); // ceil_log2
        let slot_bits = MAG_BITS + 1 + headroom_bits + 1;
        let slots = (key_bits.saturating_sub(1)) / slot_bits as usize;
        if slots == 0 {
            return None;
        }
        Some(PackingLayout { slot_bits, slots, max_terms })
    }

    /// Values per plaintext (= values amortized per noise exponentiation).
    #[must_use]
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Width of one slot in bits.
    #[must_use]
    pub fn slot_bits(&self) -> u32 {
        self.slot_bits
    }

    /// The addition headroom the layout reserves per slot.
    #[must_use]
    pub fn max_terms(&self) -> u32 {
        self.max_terms
    }

    /// The per-slot bias `B = 2^MAG_BITS` added to each encoded value.
    fn bias() -> i128 {
        1i128 << MAG_BITS
    }

    /// Packs up to [`PackingLayout::slots`] encoded values into one
    /// plaintext.
    ///
    /// # Errors
    /// [`Error::TooManySlots`] when given more values than slots;
    /// [`Error::PackedValueOutOfRange`] when a value exceeds the
    /// 2^[`MAG_BITS`] slot magnitude.
    pub fn pack(&self, encoded: &[i64]) -> Result<BigUint> {
        if encoded.len() > self.slots {
            return Err(Error::TooManySlots { got: encoded.len(), max: self.slots });
        }
        let bound = 1i64 << MAG_BITS;
        let mut out = BigUint::zero();
        for &e in encoded.iter().rev() {
            if e.abs() > bound {
                return Err(Error::PackedValueOutOfRange { encoded: e, mag_bits: MAG_BITS });
            }
            let slot = (i128::from(e) + Self::bias()) as u128;
            out = out.shl(self.slot_bits as usize).add(&BigUint::from_u128(slot));
        }
        Ok(out)
    }

    /// Unpacks the first `count` slots of a decrypted sum of `terms` fresh
    /// ciphertexts, undoing the per-slot bias.
    ///
    /// # Errors
    /// [`Error::PackedHeadroomExceeded`] when `terms` exceeds the layout's
    /// headroom (slot sums may then have carried into neighbours, so the
    /// decode would be silently wrong); [`Error::TooManySlots`] when
    /// `count` exceeds the slot count.
    pub fn unpack(&self, plain: &BigUint, count: usize, terms: u32) -> Result<Vec<i128>> {
        if terms > self.max_terms {
            return Err(Error::PackedHeadroomExceeded { terms, max_terms: self.max_terms });
        }
        if count > self.slots {
            return Err(Error::TooManySlots { got: count, max: self.slots });
        }
        let slot_modulus = BigUint::one().shl(self.slot_bits as usize);
        let offset = i128::from(terms) * Self::bias();
        let mut rest = plain.clone();
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let (q, r) = rest.divrem(&slot_modulus);
            let slot = r.to_u128().expect("slot narrower than 128 bits") as i128;
            out.push(slot - offset);
            rest = q;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_sizes() {
        let l = PackingLayout::for_key(512, DEFAULT_MAX_TERMS).unwrap();
        assert_eq!(l.slot_bits(), 60);
        assert_eq!(l.slots(), 8);
        let l = PackingLayout::for_key(256, DEFAULT_MAX_TERMS).unwrap();
        assert_eq!(l.slots(), 4);
        let l = PackingLayout::for_key(128, DEFAULT_MAX_TERMS).unwrap();
        assert_eq!(l.slots(), 2);
        let l = PackingLayout::for_key(64, DEFAULT_MAX_TERMS).unwrap();
        assert_eq!(l.slots(), 1, "minimum key width still fits one biased slot");
        assert!(PackingLayout::for_key(32, DEFAULT_MAX_TERMS).is_none());
        assert!(PackingLayout::for_key(512, 0).is_none());
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let l = PackingLayout::for_key(512, 8).unwrap();
        let bound = 1i64 << MAG_BITS;
        let vals = [0i64, 1, -1, bound, -bound, 123_456_789, -987_654_321];
        let packed = l.pack(&vals).unwrap();
        let got = l.unpack(&packed, vals.len(), 1).unwrap();
        assert_eq!(got, vals.iter().map(|&v| i128::from(v)).collect::<Vec<_>>());
    }

    #[test]
    fn packed_sums_decode_slotwise() {
        let l = PackingLayout::for_key(256, 4).unwrap();
        let a = [100i64, -200, 300, -400];
        let b = [5i64, 6, -7, 8];
        let pa = l.pack(&a).unwrap();
        let pb = l.pack(&b).unwrap();
        let sum = pa.add(&pb);
        let got = l.unpack(&sum, 4, 2).unwrap();
        for i in 0..4 {
            assert_eq!(got[i], i128::from(a[i]) + i128::from(b[i]), "slot {i}");
        }
    }

    #[test]
    fn rejects_out_of_range_and_headroom() {
        let l = PackingLayout::for_key(256, 4).unwrap();
        let too_big = (1i64 << MAG_BITS) + 1;
        assert!(matches!(l.pack(&[too_big]), Err(Error::PackedValueOutOfRange { .. })));
        assert!(matches!(l.pack(&[0; 5]).unwrap_err(), Error::TooManySlots { got: 5, max: 4 }));
        let p = l.pack(&[1]).unwrap();
        assert!(matches!(
            l.unpack(&p, 1, 5),
            Err(Error::PackedHeadroomExceeded { terms: 5, max_terms: 4 })
        ));
    }
}
