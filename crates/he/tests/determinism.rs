//! Determinism of batched encryption across thread counts.
//!
//! Pooled, packed encryption must be a pure function of (scheme seed, call
//! sequence): the ciphertext bytes have to be bit-identical whether the
//! noise factors were prefilled or computed on demand, and whether the
//! slot groups fanned out over 1 worker or 8. These tests sweep explicit
//! pools at every thread count the CI determinism matrix pins through
//! `VFPS_THREADS` and compare serialized ciphertexts against the
//! single-threaded reference.

use vfps_he::ckks::CkksParams;
use vfps_he::scheme::{seeded_uniform, AdditiveHe, CkksHe, PaillierHe, PlainHe};
use vfps_par::Pool;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn batches(flat: &[f64], width: usize) -> Vec<&[f64]> {
    flat.chunks(width).collect()
}

#[test]
fn paillier_encrypt_many_is_bit_identical_across_thread_counts() {
    let flat = seeded_uniform(0xa11ce, 36, -8.0, 8.0);
    let batches = batches(&flat, 9);
    let reference: Vec<Vec<u8>> = {
        let scheme = PaillierHe::generate(256, 16, 4242).unwrap();
        let cts = scheme.encrypt_many_on(&batches, &Pool::with_threads(1)).unwrap();
        cts.iter().map(|ct| scheme.ct_to_bytes(ct)).collect()
    };
    for threads in THREADS {
        let scheme = PaillierHe::generate(256, 16, 4242).unwrap();
        let cts = scheme.encrypt_many_on(&batches, &Pool::with_threads(threads)).unwrap();
        let bytes: Vec<Vec<u8>> = cts.iter().map(|ct| scheme.ct_to_bytes(ct)).collect();
        assert_eq!(bytes, reference, "{threads} threads");
    }
}

#[test]
fn paillier_prefill_does_not_change_ciphertexts() {
    let flat = seeded_uniform(0xb0b, 24, -4.0, 4.0);
    let batches = batches(&flat, 6);
    let reference: Vec<Vec<u8>> = {
        let scheme = PaillierHe::generate(256, 16, 99).unwrap();
        let cts = scheme.encrypt_many_on(&batches, &Pool::with_threads(1)).unwrap();
        cts.iter().map(|ct| scheme.ct_to_bytes(ct)).collect()
    };
    for threads in THREADS {
        let pool = Pool::with_threads(threads);
        let scheme = PaillierHe::generate(256, 16, 99).unwrap();
        // Prefill part of the demand: outputs must not depend on how much.
        scheme.prefill_noise(3 * threads, &pool);
        let cts = scheme.encrypt_many_on(&batches, &pool).unwrap();
        let bytes: Vec<Vec<u8>> = cts.iter().map(|ct| scheme.ct_to_bytes(ct)).collect();
        assert_eq!(bytes, reference, "prefilled, {threads} threads");
    }
}

#[test]
fn ckks_encrypt_many_is_bit_identical_across_thread_counts() {
    let params = CkksParams::insecure_test();
    let probe = CkksHe::generate(&params, 77).unwrap();
    let slots = probe.max_batch();
    let flat = seeded_uniform(0xcafe, 4 * slots, -1.0, 1.0);
    let batches = batches(&flat, slots);
    let reference: Vec<Vec<u8>> = {
        let scheme = CkksHe::generate(&params, 77).unwrap();
        let cts = scheme.encrypt_many_on(&batches, &Pool::with_threads(1)).unwrap();
        cts.iter().map(|ct| scheme.ct_to_bytes(ct)).collect()
    };
    for threads in THREADS {
        let scheme = CkksHe::generate(&params, 77).unwrap();
        let cts = scheme.encrypt_many_on(&batches, &Pool::with_threads(threads)).unwrap();
        let bytes: Vec<Vec<u8>> = cts.iter().map(|ct| scheme.ct_to_bytes(ct)).collect();
        assert_eq!(bytes, reference, "{threads} threads");
    }
}

#[test]
fn default_encrypt_many_is_deterministic_for_plain_scheme() {
    // PlainHe exercises the trait's default implementation, which fans out
    // on the global pool; its output must equal the serial per-batch path.
    let scheme = PlainHe::new(8);
    let flat = seeded_uniform(0xdead, 40, -2.0, 2.0);
    let batches = batches(&flat, 5);
    let serial: Vec<Vec<f64>> = batches.iter().map(|b| scheme.encrypt(b).unwrap()).collect();
    let pooled = scheme.encrypt_many(&batches).unwrap();
    assert_eq!(pooled, serial);
}

#[test]
fn repeated_encrypt_calls_differ_but_decrypt_identically() {
    // Fresh noise indices per call: semantic security (distinct bytes),
    // exactness (identical plaintexts back).
    let scheme = PaillierHe::generate(256, 8, 11).unwrap();
    let values = [1.5, -2.25, 3.0];
    let c1 = scheme.encrypt(&values).unwrap();
    let c2 = scheme.encrypt(&values).unwrap();
    assert_ne!(scheme.ct_to_bytes(&c1), scheme.ct_to_bytes(&c2));
    assert_eq!(scheme.decrypt(&c1, 3), scheme.decrypt(&c2, 3));
}
