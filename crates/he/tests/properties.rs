//! Property-based tests of the HE substrate's core invariants.

use proptest::prelude::*;
use vfps_he::bigint::{BigInt, BigUint, MontgomeryCtx};
use vfps_he::ckks::ntt::{find_ntt_prime, NttTables};
use vfps_he::ckks::CkksParams;
use vfps_he::packing::{PackingLayout, DEFAULT_MAX_TERMS, MAG_BITS};
use vfps_he::paillier::{generate_keypair, PaillierEncryptor};
use vfps_he::scheme::{AdditiveHe, CkksHe, PaillierHe};
use vfps_he::{Error, FixedPoint};

fn biguint_strategy(max_limbs: usize) -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u64>(), 0..=max_limbs).prop_map(BigUint::from_limbs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ring laws: commutativity, associativity, distributivity.
    #[test]
    fn bigint_ring_laws(
        a in biguint_strategy(4),
        b in biguint_strategy(4),
        c in biguint_strategy(3),
    ) {
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert_eq!(a.mul(&b), b.mul(&a));
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
        prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
        prop_assert_eq!(a.add(&b).mul(&c), a.mul(&c).add(&b.mul(&c)));
    }

    /// Division identity: a = q·d + r with r < d.
    #[test]
    fn bigint_divrem_identity(a in biguint_strategy(6), d in biguint_strategy(3)) {
        prop_assume!(!d.is_zero());
        let (q, r) = a.divrem(&d);
        prop_assert!(r < d);
        prop_assert_eq!(q.mul(&d).add(&r), a);
    }

    /// Byte/hex serialization round-trips.
    #[test]
    fn bigint_serialization_roundtrip(a in biguint_strategy(5)) {
        prop_assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a.clone());
        prop_assert_eq!(BigUint::from_hex(&a.to_hex()).unwrap(), a.clone());
        prop_assert_eq!(BigUint::from_decimal(&a.to_decimal()).unwrap(), a);
    }

    /// Montgomery modpow agrees with the division-based oracle.
    #[test]
    fn montgomery_matches_plain(
        base in biguint_strategy(3),
        exp in biguint_strategy(2),
        m in biguint_strategy(3),
    ) {
        let modulus = if m.is_even() { m.add_u64(1) } else { m };
        prop_assume!(!modulus.is_zero() && !modulus.is_one());
        if let Some(ctx) = MontgomeryCtx::new(&modulus) {
            prop_assert_eq!(
                ctx.mod_pow(&base, &exp),
                base.mod_pow_plain(&exp, &modulus)
            );
        }
    }

    /// Extended gcd produces a valid Bézout identity.
    #[test]
    fn bezout_identity(a in any::<i64>(), b in any::<i64>()) {
        let ba = BigInt::from_i64(a);
        let bb = BigInt::from_i64(b);
        let (g, x, y) = ba.extended_gcd(&bb);
        prop_assert_eq!(ba.mul(&x).add(&bb.mul(&y)), g);
    }

    /// Fixed-point codec: round-trip error within the quantization bound.
    #[test]
    fn fixed_point_roundtrip(x in -1e9f64..1e9) {
        let fp = FixedPoint::default_codec();
        let v = fp.encode(x).unwrap();
        prop_assert!((fp.decode(v) - x).abs() <= fp.quantization_error());
    }
}

proptest! {
    // Key generation is expensive; keep the case count low and the keys
    // fixed per test body.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Paillier: Dec(Enc(a) ⊕ Enc(b)) = a + b for random real batches.
    #[test]
    fn paillier_homomorphism(
        a in proptest::collection::vec(-1e6f64..1e6, 4),
        b in proptest::collection::vec(-1e6f64..1e6, 4),
    ) {
        let he = PaillierHe::generate(256, 8, 0xbeef).unwrap();
        let ca = he.encrypt(&a).unwrap();
        let cb = he.encrypt(&b).unwrap();
        let out = he.decrypt(&he.add(&ca, &cb), 4);
        for i in 0..4 {
            prop_assert!((out[i] - (a[i] + b[i])).abs() < 1e-6, "slot {}", i);
        }
    }

    /// CKKS: same property within the scheme's error bound.
    #[test]
    fn ckks_homomorphism(
        a in proptest::collection::vec(-1e3f64..1e3, 8),
        b in proptest::collection::vec(-1e3f64..1e3, 8),
    ) {
        let he = CkksHe::generate(&CkksParams::insecure_test(), 0xcafe).unwrap();
        let ca = he.encrypt(&a).unwrap();
        let cb = he.encrypt(&b).unwrap();
        let out = he.decrypt(&he.add(&ca, &cb), 8);
        let bound = he.error_bound(2);
        for i in 0..8 {
            prop_assert!(
                (out[i] - (a[i] + b[i])).abs() < bound,
                "slot {}: {} vs {}", i, out[i], a[i] + b[i]
            );
        }
    }

    /// Ciphertext serialization round-trips for both real schemes.
    #[test]
    fn ciphertext_wire_roundtrip(values in proptest::collection::vec(-1e4f64..1e4, 3)) {
        let p = PaillierHe::generate(128, 4, 7).unwrap();
        let cp = p.encrypt(&values).unwrap();
        prop_assert_eq!(p.ct_from_bytes(&p.ct_to_bytes(&cp)).unwrap(), cp);

        let c = CkksHe::generate(&CkksParams::insecure_test(), 7).unwrap();
        let cc = c.encrypt(&values).unwrap();
        prop_assert_eq!(c.ct_from_bytes(&c.ct_to_bytes(&cc)).unwrap(), cc);
    }

    /// Pool-backed fast-path ciphertexts decrypt to exactly the same
    /// plaintext residues as the slow reference path.
    #[test]
    fn fast_path_matches_slow_path_oracle(seeds in proptest::collection::vec(any::<u64>(), 4)) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(0xfeed);
        let kp = generate_keypair(&mut rng, 128).unwrap();
        let enc = PaillierEncryptor::new(&kp.public, &mut rng);
        for (i, &seed) in seeds.iter().enumerate() {
            let m = BigUint::from_u64(seed).rem(kp.public.modulus());
            let fast = enc.encrypt_seeded(&m, seed ^ i as u64).unwrap();
            let slow = kp.public.encrypt(&m, &mut rng).unwrap();
            prop_assert_eq!(kp.private.decrypt(&fast), kp.private.decrypt(&slow));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Packing round-trips arbitrary in-range values, including boundary
    /// magnitudes at exactly ±2^MAG_BITS.
    #[test]
    fn packing_roundtrip(
        mut vals in proptest::collection::vec(-(1i64 << MAG_BITS)..=(1i64 << MAG_BITS), 1..8),
        which in 0usize..3,
    ) {
        // Force one boundary magnitude into every case.
        vals[0] = [1i64 << MAG_BITS, -(1i64 << MAG_BITS), 0][which];
        let layout = PackingLayout::for_key(512, DEFAULT_MAX_TERMS).unwrap();
        let packed = layout.pack(&vals).unwrap();
        let got = layout.unpack(&packed, vals.len(), 1).unwrap();
        let want: Vec<i128> = vals.iter().map(|&v| i128::from(v)).collect();
        prop_assert_eq!(got, want);
    }

    /// Out-of-range values and exceeded headroom fail with typed errors,
    /// never silently corrupt neighbouring slots.
    #[test]
    fn packing_rejects_overflow(extra in 1i64..1_000_000) {
        let layout = PackingLayout::for_key(256, 4).unwrap();
        let too_big = (1i64 << MAG_BITS) + extra;
        prop_assert!(matches!(
            layout.pack(&[too_big]),
            Err(Error::PackedValueOutOfRange { .. })
        ));
        prop_assert!(matches!(
            layout.pack(&[-too_big]),
            Err(Error::PackedValueOutOfRange { .. })
        ));
        let packed = layout.pack(&[1]).unwrap();
        prop_assert!(matches!(
            layout.unpack(&packed, 1, 4 + (extra % 16 + 1) as u32),
            Err(Error::PackedHeadroomExceeded { .. })
        ));
    }

    /// The Shoup-multiplied NTT equals the `u128 %` reference transform on
    /// random polynomials.
    #[test]
    fn shoup_ntt_matches_reference(seed in any::<u64>()) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        for n in [16usize, 128] {
            let q = find_ntt_prime(55, n);
            let tables = NttTables::new(n, q);
            let orig: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
            let mut fast = orig.clone();
            let mut slow = orig;
            tables.forward(&mut fast);
            tables.forward_reference(&mut slow);
            prop_assert_eq!(&fast, &slow, "forward n={}", n);
            tables.inverse(&mut fast);
            tables.inverse_reference(&mut slow);
            prop_assert_eq!(&fast, &slow, "inverse n={}", n);
        }
    }
}
