//! Regression and property tests for the fault-tolerant message plane:
//! dead nodes must never hang the cluster, out-of-order interleavings must
//! never be misreported as protocol violations, and fault injection must
//! be deterministic.
//!
//! Every scenario that historically deadlocked runs under a watchdog: the
//! cluster executes on a helper thread and the test fails loudly if it
//! does not come back within the deadline, instead of wedging the runner.

use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::time::Duration;
use vfps_net::cluster::{run_cluster_fallible, ClusterOptions, NodeCtx};
use vfps_net::{run_cluster, Error, FaultPlan, TrafficLedger};

const WATCHDOG: Duration = Duration::from_secs(30);

/// Runs `f` on a worker thread and panics if it does not finish in time —
/// the reintroduced-deadlock detector.
fn with_watchdog<R: Send + 'static>(f: impl FnOnce() -> R + Send + 'static) -> R {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        let out = f();
        let _ = tx.send(());
        out
    });
    rx.recv_timeout(WATCHDOG).expect("cluster hung: watchdog expired before the run returned");
    worker.join().expect("watchdogged closure panicked")
}

type FallibleNode = Box<dyn FnOnce(NodeCtx<u64>) -> Result<u64, Error> + Send>;

/// Five nodes in a star: node 0 gathers one message from each peer. Node 2
/// is killed by the fault plan before it sends. Historically this hung the
/// join loop forever; now the run returns and every survivor observes a
/// typed outcome.
#[test]
fn killing_node_2_of_5_returns_instead_of_hanging() {
    let (results, _) = with_watchdog(|| {
        let opts =
            ClusterOptions { ledger: TrafficLedger::new(), faults: FaultPlan::new().kill_at(2, 0) };
        let fns: Vec<FallibleNode> = (0..5)
            .map(|i| {
                Box::new(move |ctx: NodeCtx<u64>| {
                    if i == 0 {
                        let mut got = 0u64;
                        for _ in 0..4 {
                            match ctx.recv() {
                                Ok(env) => got += env.msg,
                                Err(Error::Hangup { peer }) => {
                                    assert_eq!(peer, 2, "only node 2 dies");
                                }
                                Err(e) => panic!("unexpected error: {e}"),
                            }
                        }
                        Ok(got)
                    } else {
                        ctx.send(0, i as u64)?;
                        Ok(0)
                    }
                }) as FallibleNode
            })
            .collect();
        run_cluster_fallible(fns, opts)
    });
    assert_eq!(results[0], Ok(1 + 3 + 4), "server gathered every survivor");
    assert_eq!(results[2], Err(Error::Killed { node: 2, op: 0 }));
    for i in [1, 3, 4] {
        assert_eq!(results[i], Ok(0), "survivors complete normally");
    }
}

/// Same topology, but node 2 *panics* instead of being fault-injected.
/// The departure guard must still broadcast, every thread must terminate,
/// and `run_cluster` must re-raise the panic only after draining them.
#[test]
fn panicking_node_2_of_5_unwinds_instead_of_hanging() {
    let outcome = with_watchdog(|| {
        catch_unwind(AssertUnwindSafe(|| {
            let fns: Vec<Box<dyn FnOnce(NodeCtx<u64>) -> u64 + Send>> = (0..5)
                .map(|i| {
                    Box::new(move |ctx: NodeCtx<u64>| {
                        if i == 0 {
                            let mut got = 0u64;
                            for _ in 0..4 {
                                match ctx.recv() {
                                    Ok(env) => got += env.msg,
                                    Err(Error::Hangup { peer: 2 }) => {}
                                    Err(e) => panic!("unexpected error: {e}"),
                                }
                            }
                            got
                        } else if i == 2 {
                            panic!("node 2 exploded");
                        } else {
                            ctx.send(0, i as u64).unwrap();
                            0
                        }
                    }) as Box<dyn FnOnce(NodeCtx<u64>) -> u64 + Send>
                })
                .collect();
            run_cluster(fns)
        }))
    });
    let payload = outcome.expect_err("node 2's panic must propagate");
    let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
    assert_eq!(msg, "node 2 exploded");
}

/// A participant dying mid-conversation surfaces `Hangup` to a peer that
/// is blocked waiting specifically for it.
#[test]
fn recv_from_dead_peer_errors_promptly() {
    let results = with_watchdog(|| {
        let opts = ClusterOptions {
            ledger: TrafficLedger::new(),
            // Node 1 completes exactly 2 ops (one send, one recv) and dies
            // on the third, mid-protocol.
            faults: FaultPlan::new().kill_at(1, 2),
        };
        let fns: Vec<FallibleNode> = vec![
            Box::new(|ctx: NodeCtx<u64>| {
                let v = ctx.recv_from(1)?;
                ctx.send(1, v + 1)?;
                // Node 1 dies before its second send: this must error.
                match ctx.recv_from(1) {
                    Err(e) if e.is_hangup_of(1) => Ok(v),
                    other => panic!("expected hangup of 1, got {other:?}"),
                }
            }),
            Box::new(|ctx: NodeCtx<u64>| {
                ctx.send(0, 10)?;
                let _ = ctx.recv_from(0)?;
                ctx.send(0, 99)?; // killed here (op 2)
                Ok(0)
            }),
        ];
        run_cluster_fallible(fns, opts).0
    });
    assert_eq!(results[0], Ok(10));
    assert_eq!(results[1], Err(Error::Killed { node: 1, op: 2 }));
}

/// The same seed must produce byte-identical behavior run after run:
/// deterministic fault injection is what makes a failing matrix entry
/// replayable.
#[test]
fn seeded_fault_runs_are_replayable() {
    let run = |seed: u64| {
        with_watchdog(move || {
            let opts = ClusterOptions {
                ledger: TrafficLedger::new(),
                faults: FaultPlan::chaos(seed, 4, 1, 3),
            };
            let fns: Vec<FallibleNode> = (0..4)
                .map(|i| {
                    Box::new(move |ctx: NodeCtx<u64>| {
                        if i == 0 {
                            let mut got = Vec::new();
                            for _ in 0..3 {
                                match ctx.recv() {
                                    Ok(env) => got.push(env.from as u64 * 100 + env.msg),
                                    Err(Error::Hangup { peer }) => got.push(peer as u64),
                                    Err(e) => return Err(e),
                                }
                            }
                            got.sort_unstable();
                            Ok(got.iter().sum())
                        } else {
                            ctx.send(0, i as u64)?;
                            Ok(0)
                        }
                    }) as FallibleNode
                })
                .collect();
            let (results, ledger) = run_cluster_fallible(fns, opts);
            (results, ledger.total_bytes(), ledger.total_messages())
        })
    };
    assert_eq!(run(7), run(7), "identical seed, identical outcome");
    assert_eq!(FaultPlan::chaos(7, 4, 1, 3), FaultPlan::chaos(7, 4, 1, 3));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Two senders each stream a fixed sequence to node 0 concurrently;
    /// node 0 issues `recv_from` calls in an arbitrary order between the
    /// two. Whatever the interleaving, every call succeeds (the reorder
    /// buffer absorbs the other sender) and each sender's stream arrives
    /// in its original order.
    #[test]
    fn any_interleaving_of_two_senders_is_accepted(
        raw_order in proptest::collection::vec(any::<bool>(), 6..=6),
        seq_a in proptest::collection::vec(0u64..1000, 3..=3),
        seq_b in proptest::collection::vec(0u64..1000, 3..=3),
    ) {
        // Exactly three asks per sender, in the property's order.
        let mut order: Vec<usize> = raw_order.iter().map(|&b| if b { 1 } else { 2 }).collect();
        let (ones, twos): (Vec<_>, Vec<_>) = order.iter().partition(|&&s| s == 1);
        // Rebalance to exactly 3 of each, preserving the prefix pattern.
        order = ones.into_iter().take(3).chain(twos.into_iter().take(3)).copied().collect();
        while order.len() < 6 {
            let count1 = order.iter().filter(|&&s| s == 1).count();
            order.push(if count1 < 3 { 1 } else { 2 });
        }

        type StreamNode = Box<dyn FnOnce(NodeCtx<u64>) -> Result<(Vec<u64>, Vec<u64>), Error> + Send>;
        let sa = seq_a.clone();
        let sb = seq_b.clone();
        let asks = order.clone();
        let fns: Vec<StreamNode> = vec![
            Box::new(move |ctx: NodeCtx<u64>| {
                let mut got1 = Vec::new();
                let mut got2 = Vec::new();
                for from in asks {
                    let v = ctx.recv_from(from)?;
                    if from == 1 { got1.push(v) } else { got2.push(v) }
                }
                Ok((got1, got2))
            }),
            Box::new(move |ctx: NodeCtx<u64>| {
                for v in seq_a {
                    ctx.send(0, v)?;
                }
                Ok((Vec::new(), Vec::new()))
            }),
            Box::new(move |ctx: NodeCtx<u64>| {
                for v in seq_b {
                    ctx.send(0, v)?;
                }
                Ok((Vec::new(), Vec::new()))
            }),
        ];
        let (results, _) = run_cluster_fallible(fns, ClusterOptions::default());
        for r in &results {
            prop_assert!(r.is_ok(), "no interleaving is a protocol violation: {:?}", r);
        }
        let (got1, got2) = results[0].clone().unwrap();
        prop_assert_eq!(got1, sa, "sender 1's stream kept its order");
        prop_assert_eq!(got2, sb, "sender 2's stream kept its order");
    }
}
