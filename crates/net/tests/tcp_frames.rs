//! `net::wire` frames over *real* sockets (ISSUE 10, satellite 3).
//!
//! The in-crate proptests exercise the codec against byte slices; these
//! push the same adversarial inputs through an actual localhost TCP pair,
//! where the reader sees the peer's bytes chopped at arbitrary boundaries
//! and must map every failure onto the typed taxonomy — never a panic,
//! never an unbounded hang, never an attempt to allocate an oversized
//! frame.

use proptest::prelude::*;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;
use vfps_net::wire::{read_frame, write_frame, FrameError, Wire, MAX_FRAME_BYTES};
use vfps_net::TransportFailure;

/// Hard per-read deadline: generous enough for a loopback write, small
/// enough that a hang fails the suite instead of wedging it.
const READ_DEADLINE: Duration = Duration::from_secs(5);

/// Connects a localhost TCP pair and hands the writer's half to `feed` on
/// its own thread; returns the reader's half with a read deadline armed.
fn tcp_pair(feed: impl FnOnce(TcpStream) + Send + 'static) -> TcpStream {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let writer = std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).expect("connect loopback");
        feed(stream);
    });
    let (reader, _) = listener.accept().expect("accept");
    reader.set_read_timeout(Some(READ_DEADLINE)).expect("set read timeout");
    // The writer thread owns its half; dropping the handle after spawn is
    // fine — the reader observes EOF when the thread finishes.
    drop(writer);
    reader
}

/// Writes `bytes` in `chunks`-sized pieces with flushes in between, so the
/// reader's `read` calls observe arbitrary frame fragmentation.
fn feed_chunked(stream: &mut TcpStream, bytes: &[u8], chunk: usize) {
    for piece in bytes.chunks(chunk.max(1)) {
        if stream.write_all(piece).is_err() {
            return; // reader gave up early (expected for rejected frames)
        }
        let _ = stream.flush();
    }
}

proptest! {
    // Real sockets per case: keep the case count modest so the suite
    // stays inside the CI budget on the 1-CPU container.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Well-formed frames survive arbitrary TCP fragmentation.
    #[test]
    fn split_frames_decode_intact(
        msgs in proptest::collection::vec(proptest::collection::vec(any::<u64>(), 0..32), 1..8),
        chunk in 1usize..13,
    ) {
        let mut bytes = Vec::new();
        for m in &msgs {
            write_frame(&mut bytes, m).expect("vec write");
        }
        let mut reader = tcp_pair(move |mut s| feed_chunked(&mut s, &bytes, chunk));
        for m in &msgs {
            let got: Vec<u64> = read_frame(&mut reader)
                .expect("intact frame")
                .expect("frame present");
            prop_assert_eq!(&got, m);
        }
        // Peer closed at a frame boundary: clean EOF, not an error.
        prop_assert!(matches!(read_frame::<_, Vec<u64>>(&mut reader), Ok(None)));
    }

    /// Garbage payloads (valid length prefix, undecodable bytes) surface
    /// as typed `ProtocolViolation` — never a panic or hang.
    #[test]
    fn garbage_payloads_are_typed_protocol_violations(
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        chunk in 1usize..9,
    ) {
        // Force undecodability for Vec<f64>: either a short payload or a
        // length prefix pointing past the end.
        let mut framed = Vec::new();
        framed.extend_from_slice(&(payload.len() as u32 + 4).to_le_bytes());
        framed.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd element count
        framed.extend_from_slice(&payload);
        let mut reader = tcp_pair(move |mut s| feed_chunked(&mut s, &framed, chunk));
        let err = read_frame::<_, Vec<f64>>(&mut reader).expect_err("undecodable payload");
        prop_assert!(matches!(err, FrameError::Wire(_)), "got {err:?}");
        let classified = TransportFailure::classify_frame(&err, READ_DEADLINE);
        prop_assert!(
            matches!(classified, TransportFailure::Protocol { .. }),
            "got {classified:?}"
        );
        prop_assert!(!classified.is_liveness_failure());
    }

    /// Oversized length prefixes are rejected from the 4-byte header alone
    /// — the reader never tries to allocate or consume the declared body.
    #[test]
    fn oversized_prefix_is_rejected_without_reading_the_body(
        extra in 1u64..(u32::MAX as u64 - MAX_FRAME_BYTES as u64),
    ) {
        let declared = MAX_FRAME_BYTES as u64 + extra;
        let header = u32::try_from(declared).unwrap().to_le_bytes().to_vec();
        // Send ONLY the header: if the reader correctly refuses at the
        // prefix, it errors immediately; if it tried to read the body it
        // would block until the deadline and fail the match below.
        let mut reader = tcp_pair(move |mut s| feed_chunked(&mut s, &header, 4));
        let err = read_frame::<_, Vec<u8>>(&mut reader).expect_err("oversized frame");
        prop_assert!(
            matches!(err, FrameError::TooLarge(n) if n as u64 == declared),
            "got {err:?}"
        );
        prop_assert!(matches!(
            TransportFailure::classify_frame(&err, READ_DEADLINE),
            TransportFailure::Protocol { .. }
        ));
    }

    /// A peer dying mid-frame is a `Hangup`, not a protocol violation and
    /// not a clean EOF.
    #[test]
    fn midframe_eof_classifies_as_hangup(cut in 1usize..20) {
        let msg: Vec<u64> = (0..8).collect();
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &msg).expect("vec write");
        let cut = cut.min(bytes.len() - 1);
        bytes.truncate(cut);
        let mut reader = tcp_pair(move |mut s| feed_chunked(&mut s, &bytes, 3));
        let err = read_frame::<_, Vec<u64>>(&mut reader).expect_err("truncated frame");
        prop_assert!(matches!(err, FrameError::Io(_)), "got {err:?}");
        prop_assert!(matches!(
            TransportFailure::classify_frame(&err, READ_DEADLINE),
            TransportFailure::Hangup
        ));
    }
}

/// A silent peer trips the armed read deadline and classifies as
/// `Timeout` (deterministic single case — no proptest needed).
#[test]
fn silent_peer_classifies_as_timeout() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let _writer = TcpStream::connect(addr).expect("connect"); // never writes
    let (mut reader, _) = listener.accept().expect("accept");
    let waited = Duration::from_millis(50);
    reader.set_read_timeout(Some(waited)).expect("set read timeout");
    let err = read_frame::<_, Vec<u64>>(&mut reader).expect_err("silent peer");
    match &err {
        FrameError::Io(io) => assert!(
            matches!(io.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut),
            "unexpected kind {:?}",
            io.kind()
        ),
        other => panic!("expected io timeout, got {other:?}"),
    }
    assert_eq!(
        TransportFailure::classify_frame(&err, waited),
        TransportFailure::Timeout { waited }
    );
}

/// The 16 MiB cap itself holds over a socket: a frame exactly at the cap
/// passes, one byte over is refused.
#[test]
fn cap_boundary_over_a_socket() {
    // Vec<u8> encodes as 4-byte count + payload; pick the payload so the
    // whole encoding sits exactly at MAX_FRAME_BYTES.
    let at_cap: Vec<u8> = vec![0xa5; MAX_FRAME_BYTES - 4];
    assert_eq!(at_cap.encoded_len(), MAX_FRAME_BYTES);
    let mut bytes = Vec::new();
    write_frame(&mut bytes, &at_cap).expect("vec write");
    let mut over = (MAX_FRAME_BYTES as u32 + 1).to_le_bytes().to_vec();
    over.extend_from_slice(&[0u8; 8]); // a little body the reader must not consume
    let mut reader = tcp_pair(move |mut s| {
        feed_chunked(&mut s, &bytes, 1 << 16);
        feed_chunked(&mut s, &over, 12);
    });
    let got: Vec<u8> = read_frame(&mut reader).expect("cap-sized frame").expect("present");
    assert_eq!(got.len(), MAX_FRAME_BYTES - 4);
    let err = read_frame::<_, Vec<u8>>(&mut reader).expect_err("one over the cap");
    assert!(matches!(err, FrameError::TooLarge(n) if n == MAX_FRAME_BYTES + 1), "{err:?}");
}
