//! Hand-rolled binary wire codec.
//!
//! Byte counts drive the communication cost model, so the encoding is kept
//! explicit and deterministic: little-endian fixed-width integers, `f64` as
//! IEEE-754 bits, and length-prefixed sequences. No external serialization
//! crate is used (DESIGN.md §5).

use std::fmt;
use std::io::{Read, Write};

/// Decoding error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value was complete.
    UnexpectedEnd,
    /// An enum tag byte was not recognized.
    BadTag(u8),
    /// A declared length exceeds the remaining input.
    BadLength(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEnd => write!(f, "unexpected end of input"),
            WireError::BadTag(t) => write!(f, "unrecognized tag byte {t}"),
            WireError::BadLength(l) => write!(f, "declared length {l} exceeds input"),
        }
    }
}

impl std::error::Error for WireError {}

/// Types with a canonical wire encoding.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decodes a value from the front of `input`, advancing it.
    ///
    /// # Errors
    /// Returns a [`WireError`] on truncated or malformed input.
    fn decode(input: &mut &[u8]) -> Result<Self, WireError>;

    /// Exact encoded size in bytes.
    fn encoded_len(&self) -> usize;

    /// Encodes into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.encoded_len());
        self.encode(&mut buf);
        buf
    }

    /// Decodes a value that must consume the entire input.
    ///
    /// # Errors
    /// Returns [`WireError::BadLength`] when trailing bytes remain.
    fn from_bytes(mut input: &[u8]) -> Result<Self, WireError> {
        let v = Self::decode(&mut input)?;
        if input.is_empty() {
            Ok(v)
        } else {
            Err(WireError::BadLength(input.len()))
        }
    }
}

/// Splits `n` bytes off the front of `input`, erroring when short — the
/// primitive decoder building block (exposed for downstream message enums).
///
/// # Errors
/// Returns [`WireError::UnexpectedEnd`] when fewer than `n` bytes remain.
pub fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], WireError> {
    if input.len() < n {
        return Err(WireError::UnexpectedEnd);
    }
    let (head, rest) = input.split_at(n);
    *input = rest;
    Ok(head)
}

macro_rules! impl_wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
                let bytes = take(input, std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("exact length")))
            }
            fn encoded_len(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        }
    )*};
}

impl_wire_int!(u8, u16, u32, u64, i64);

impl Wire for f64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let bytes = take(input, 8)?;
        Ok(f64::from_le_bytes(bytes.try_into().expect("exact length")))
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Wire for usize {
    fn encode(&self, buf: &mut Vec<u8>) {
        (*self as u64).encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(u64::decode(input)? as usize)
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Wire for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(input)? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let len = u32::decode(input)? as usize;
        // Guard against absurd lengths from corrupt input.
        if len > input.len().saturating_mul(8).saturating_add(16) {
            return Err(WireError::BadLength(len));
        }
        let mut out = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            out.push(T::decode(input)?);
        }
        Ok(out)
    }
    fn encoded_len(&self) -> usize {
        4 + self.iter().map(Wire::encoded_len).sum::<usize>()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(input)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(input)?)),
            t => Err(WireError::BadTag(t)),
        }
    }
    fn encoded_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Wire::encoded_len)
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        buf.extend_from_slice(self.as_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let len = u32::decode(input)? as usize;
        let bytes = take(input, len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadTag(0xff))
    }
    fn encoded_len(&self) -> usize {
        4 + self.len()
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok((A::decode(input)?, B::decode(input)?))
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len()
    }
}

// ---------------------------------------------------------------------------
// Length-prefixed stream framing
// ---------------------------------------------------------------------------

/// Upper bound on a single frame's payload. Large enough for any selection
/// request or reply this workspace produces, small enough that a corrupt or
/// hostile length prefix cannot trigger a huge allocation.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// A failure while reading a framed message off a byte stream.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed (including EOF *inside* a frame).
    Io(std::io::Error),
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    TooLarge(usize),
    /// The payload arrived intact but does not decode as the expected type.
    Wire(WireError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::TooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME_BYTES}-byte cap")
            }
            FrameError::Wire(e) => write!(f, "frame payload undecodable: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            FrameError::Wire(e) => Some(e),
            FrameError::TooLarge(_) => None,
        }
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes `msg` as one frame: a little-endian `u32` payload length followed
/// by the payload's canonical [`Wire`] encoding, then flushes.
///
/// # Errors
/// Propagates stream errors.
///
/// # Panics
/// Panics if the encoding exceeds [`MAX_FRAME_BYTES`] (a frame that
/// [`read_frame`] would refuse; sending it would only poison the peer).
pub fn write_frame<W: Write>(w: &mut W, msg: &impl Wire) -> std::io::Result<()> {
    let payload = msg.to_bytes();
    assert!(payload.len() <= MAX_FRAME_BYTES, "outbound frame exceeds MAX_FRAME_BYTES");
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&payload)?;
    w.flush()
}

/// Reads one frame and decodes its payload. Returns `Ok(None)` on a clean
/// EOF *at a frame boundary* (the peer closed between messages); EOF inside
/// a frame is an [`FrameError::Io`] error.
///
/// # Errors
/// [`FrameError`] on stream failure, an oversized length prefix, or a
/// payload that does not decode as `T` (trailing bytes included).
pub fn read_frame<R: Read, T: Wire>(r: &mut R) -> Result<Option<T>, FrameError> {
    let mut len_bytes = [0u8; 4];
    // Hand-rolled first-byte probe so that "peer closed between frames" is
    // distinguishable from "peer died mid-frame".
    match r.read(&mut len_bytes[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
            return read_frame(r);
        }
        Err(e) => return Err(FrameError::Io(e)),
    }
    r.read_exact(&mut len_bytes[1..])?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    T::from_bytes(&payload).map(Some).map_err(FrameError::Wire)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(bytes.len(), v.encoded_len(), "encoded_len must be exact");
        assert_eq!(T::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(u8::MAX);
        roundtrip(12_345u32);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(std::f64::consts::PI);
        roundtrip(f64::NEG_INFINITY);
        roundtrip(true);
        roundtrip(987_654usize);
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<f64>::new());
        roundtrip("hello wire".to_owned());
        roundtrip((7u32, vec![1.5f64, -2.5]));
        roundtrip(vec![vec![1u8, 2], vec![], vec![3]]);
        roundtrip(Option::<u64>::None);
        roundtrip(Some(42u64));
        roundtrip(vec![Some(1.5f64), None, Some(-3.0)]);
    }

    #[test]
    fn option_tag_is_validated() {
        assert_eq!(Option::<u64>::from_bytes(&[2]), Err(WireError::BadTag(2)));
        assert_eq!(Option::<u64>::from_bytes(&[0]), Ok(None));
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = 123_456u64.to_bytes();
        assert_eq!(u64::from_bytes(&bytes[..4]), Err(WireError::UnexpectedEnd));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 1u8.to_bytes();
        bytes.push(0);
        assert!(matches!(u8::from_bytes(&bytes), Err(WireError::BadLength(1))));
    }

    #[test]
    fn bad_bool_tag_rejected() {
        assert_eq!(bool::from_bytes(&[2]), Err(WireError::BadTag(2)));
    }

    #[test]
    fn absurd_vec_length_rejected() {
        // Claim 2^31 elements with 0 bytes of payload.
        let mut buf = Vec::new();
        (u32::MAX / 2).encode(&mut buf);
        assert!(Vec::<u64>::from_bytes(&buf).is_err());
    }

    #[test]
    fn frames_roundtrip_over_a_stream() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &vec![1u64, 2, 3]).unwrap();
        write_frame(&mut buf, &"two".to_owned()).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame::<_, Vec<u64>>(&mut r).unwrap(), Some(vec![1, 2, 3]));
        assert_eq!(read_frame::<_, String>(&mut r).unwrap(), Some("two".to_owned()));
        // Clean EOF at the frame boundary: None, not an error.
        assert!(read_frame::<_, String>(&mut r).unwrap().is_none());
    }

    #[test]
    fn truncated_frame_is_an_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &vec![7u64; 4]).unwrap();
        let mut r = &buf[..buf.len() - 3];
        assert!(matches!(read_frame::<_, Vec<u64>>(&mut r), Err(FrameError::Io(_))));
        // Truncated even inside the length prefix: still Io, not None.
        let mut r = &buf[..2];
        assert!(matches!(read_frame::<_, Vec<u64>>(&mut r), Err(FrameError::Io(_))));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let bytes = (u32::MAX).to_le_bytes().to_vec();
        let mut r = &bytes[..];
        assert!(matches!(
            read_frame::<_, Vec<u64>>(&mut r),
            Err(FrameError::TooLarge(n)) if n == u32::MAX as usize
        ));
    }

    #[test]
    fn frame_payload_type_mismatch_is_a_wire_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &3u8).unwrap();
        let mut r = &buf[..];
        assert!(matches!(read_frame::<_, u64>(&mut r), Err(FrameError::Wire(_))));
    }

    #[test]
    fn vec_len_matches_distance_batches() {
        // A batch of 100 f64 partial distances costs 4 + 800 bytes.
        let batch = vec![0.5f64; 100];
        assert_eq!(batch.encoded_len(), 804);
    }
}
