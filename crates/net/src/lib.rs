//! # vfps-net — simulated distributed substrate for VFPS-SM
//!
//! The paper deploys five roles on five AWS machines talking gRPC; this
//! crate reproduces that topology in-process:
//!
//! * [`wire`] — a hand-rolled binary codec, so every message has an exact,
//!   deterministic byte size;
//! * [`cluster`] — one thread per node with crossbeam-channel links and a
//!   shared per-link traffic ledger;
//! * [`channel`] — the transport trait ([`channel::Channel`]) the protocol
//!   bodies are generic over, implemented by the simulated cluster here
//!   and by the real-socket TCP transport in `vfps-cluster`;
//! * [`error`] — the typed failure taxonomy (hangup, timeout, protocol
//!   violation, fault-plan kill) every channel operation returns instead
//!   of panicking;
//! * [`fault`] — deterministic, replayable fault injection
//!   ([`fault::FaultPlan`]): kill a node at channel-op *n*, drop or delay
//!   the *n*-th message on a link;
//! * [`cost`] — operation ledgers (encrypt/decrypt/add/distance counts,
//!   bytes, rounds) and the [`cost::CostModel`] that prices them into
//!   simulated seconds at the paper's data scales.
//!
//! ```
//! use vfps_net::cost::{CostModel, OpLedger};
//!
//! let mut ledger = OpLedger::default();
//! ledger.record_enc(1_000, 4); // each of 4 parties encrypts 1000 values
//! ledger.record_round();
//! let secs = ledger.simulated_seconds(&CostModel::default());
//! assert!(secs > 0.0);
//! ```

#![warn(missing_docs)]

pub mod channel;
pub mod cluster;
pub mod cost;
pub mod error;
pub mod fault;
pub mod wire;

pub use channel::Channel;
pub use cluster::{
    run_cluster, run_cluster_fallible, run_cluster_traced, run_cluster_with, ClusterOptions,
    Envelope, FallibleNodeFn, NodeCtx, NodeId, TraceEvent, TrafficLedger,
};
pub use cost::{CostModel, OpLedger};
pub use error::{Error, TransportFailure};
pub use fault::FaultPlan;
pub use wire::{read_frame, write_frame, FrameError, Wire, WireError, MAX_FRAME_BYTES};

#[cfg(test)]
mod proptests {
    use super::wire::Wire;
    use proptest::prelude::*;

    proptest! {
        /// Every encoded value round-trips and reports its exact size.
        #[test]
        fn wire_roundtrip_vec_f64(v in proptest::collection::vec(-1e12f64..1e12, 0..64)) {
            let bytes = v.to_bytes();
            prop_assert_eq!(bytes.len(), v.encoded_len());
            prop_assert_eq!(Vec::<f64>::from_bytes(&bytes).unwrap(), v);
        }

        #[test]
        fn wire_roundtrip_pairs(v in proptest::collection::vec((0usize..1_000_000, -1e9f64..1e9), 0..32)) {
            let bytes = v.to_bytes();
            prop_assert_eq!(bytes.len(), v.encoded_len());
            prop_assert_eq!(Vec::<(usize, f64)>::from_bytes(&bytes).unwrap(), v);
        }

        /// Decoding arbitrary garbage never panics.
        #[test]
        fn decode_garbage_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = Vec::<u64>::from_bytes(&bytes);
            let _ = String::from_bytes(&bytes);
            let _ = <(u32, f64)>::from_bytes(&bytes);
        }
    }
}
