//! Cost accounting: operation ledgers and the cost model that converts
//! counted work into simulated wall-clock seconds.
//!
//! The paper's timings are dominated by (a) homomorphic operations and
//! (b) bytes moved between five AWS nodes. Both are *counted exactly* by
//! the protocol implementations; the [`CostModel`] then prices them with
//! per-op microsecond costs. The defaults are magnitudes measured from this
//! repo's own Paillier/CKKS implementations (see the `he_ops` bench, which
//! can re-calibrate them), plus typical intra-region AWS latency/bandwidth.
//!
//! Ledgers track two quantities per operation class:
//!
//! * **critical-path count** — the time-determining count, where work done
//!   by P participants in parallel counts once;
//! * **work count** — total operations across all machines (used for the
//!   per-query candidate statistics of Fig. 9).

/// Per-operation costs in microseconds plus link characteristics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Encrypt one value (amortized over a ciphertext batch). Ledger `enc`
    /// counts stay *per value* regardless of how the scheme groups values
    /// into ciphertexts: with shift-and-pack Paillier one noise
    /// exponentiation covers a whole slot group, which shows up here as a
    /// smaller calibrated `enc_us` — never as fewer billed values.
    pub enc_us: f64,
    /// Decrypt one value.
    pub dec_us: f64,
    /// Homomorphically add two encrypted values.
    pub he_add_us: f64,
    /// A plaintext arithmetic op (add/compare).
    pub plain_op_us: f64,
    /// Compute one partial squared distance term.
    pub dist_us: f64,
    /// One-way message latency per round.
    pub latency_us: f64,
    /// Link bandwidth in bytes per microsecond (125 = 1 Gbps).
    pub bytes_per_us: f64,
    /// Serialized bytes per encrypted value.
    pub cipher_bytes: usize,
    /// Serialized bytes per plaintext id.
    pub id_bytes: usize,
    /// Serialized bytes per plaintext scalar.
    pub scalar_bytes: usize,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            enc_us: 120.0,
            dec_us: 60.0,
            he_add_us: 5.0,
            plain_op_us: 0.005,
            dist_us: 0.01,
            latency_us: 250.0,
            bytes_per_us: 125.0,
            cipher_bytes: 256,
            id_bytes: 8,
            scalar_bytes: 8,
        }
    }
}

impl CostModel {
    /// A model with free cryptography — isolates pure communication cost
    /// in ablations.
    #[must_use]
    pub fn plaintext_only() -> Self {
        CostModel { enc_us: 0.0, dec_us: 0.0, he_add_us: 0.0, cipher_bytes: 8, ..Self::default() }
    }
}

/// A two-sided counter: critical-path vs total work.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCount {
    /// Time-determining count (parallel work counted once).
    pub path: u64,
    /// Total count across all machines.
    pub work: u64,
}

impl OpCount {
    fn add(&mut self, path: u64, work: u64) {
        self.path += path;
        self.work += work;
    }

    fn merge(&mut self, other: OpCount) {
        self.path += other.path;
        self.work += other.work;
    }
}

/// Accumulated operation and traffic counts for one protocol run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OpLedger {
    /// Encryption ops.
    pub enc: OpCount,
    /// Decryption ops.
    pub dec: OpCount,
    /// Homomorphic additions.
    pub he_add: OpCount,
    /// Plaintext ops.
    pub plain: OpCount,
    /// Partial-distance computations.
    pub dist: OpCount,
    /// Total bytes placed on the wire.
    pub bytes: u64,
    /// Messages sent.
    pub messages: u64,
    /// Synchronous communication rounds (each costs one latency).
    pub rounds: u64,
    /// Participants observed to drop out during the run (degraded-mode
    /// bookkeeping — zero cost, but surfaced in every report).
    pub dropouts: u64,
    /// Selection-artifact cache hits observed during the run (zero cost:
    /// a hit *replaces* federated work, it does not add any).
    pub cache_hits: u64,
    /// Selection-artifact cache misses observed during the run.
    pub cache_misses: u64,
    /// Random accesses performed by the top-k stage: complete-object
    /// fetches outside the sorted streams (Fagin's phase-2 lookups, TA's
    /// per-candidate probes). Zero for NRA — its sorted-access-only
    /// guarantee is the point of exposing this counter. Bookkeeping only;
    /// the priced cost of the fetches is already in `enc`/`bytes`.
    pub random_accesses: u64,
}

impl OpLedger {
    /// Records `per_party` encryptions done by `parties` machines in
    /// parallel.
    pub fn record_enc(&mut self, per_party: u64, parties: u64) {
        self.enc.add(per_party, per_party * parties);
    }

    /// Records decryptions (single machine: the leader).
    pub fn record_dec(&mut self, count: u64) {
        self.dec.add(count, count);
    }

    /// Records homomorphic additions at the aggregation server.
    pub fn record_he_add(&mut self, count: u64) {
        self.he_add.add(count, count);
    }

    /// Records `per_party` plaintext ops on `parties` parallel machines.
    pub fn record_plain(&mut self, per_party: u64, parties: u64) {
        self.plain.add(per_party, per_party * parties);
    }

    /// Records `per_party` partial-distance computations on `parties`
    /// parallel machines.
    pub fn record_dist(&mut self, per_party: u64, parties: u64) {
        self.dist.add(per_party, per_party * parties);
    }

    /// Records encryptions with heterogeneous per-party volumes: `path` is
    /// the slowest party's count, `work` the total across parties.
    pub fn record_enc_hetero(&mut self, path: u64, work: u64) {
        self.enc.add(path, work);
    }

    /// Records plaintext ops with heterogeneous per-party volumes.
    pub fn record_plain_hetero(&mut self, path: u64, work: u64) {
        self.plain.add(path, work);
    }

    /// Records traffic: `bytes` over the wire in `messages` messages.
    pub fn record_traffic(&mut self, bytes: u64, messages: u64) {
        self.bytes += bytes;
        self.messages += messages;
    }

    /// Records one synchronous round (one latency on the critical path).
    pub fn record_round(&mut self) {
        self.rounds += 1;
    }

    /// Records one participant dropout observed during the run.
    pub fn record_dropout(&mut self) {
        self.dropouts += 1;
    }

    /// Records one selection-artifact cache hit (warm or churned serving).
    pub fn record_cache_hit(&mut self) {
        self.cache_hits += 1;
    }

    /// Records one selection-artifact cache miss (cold run, entry stored).
    pub fn record_cache_miss(&mut self) {
        self.cache_misses += 1;
    }

    /// Records `count` random accesses by the top-k stage (bookkeeping
    /// only — the fetches' cost is billed separately via `enc`/traffic).
    pub fn record_random_access(&mut self, count: u64) {
        self.random_accesses += count;
    }

    /// Merges `times` copies of another ledger into this one (saturating)
    /// — used to bill repeated identical protocol passes analytically.
    pub fn merge_times(&mut self, other: &OpLedger, times: u64) {
        let m = |c: &mut OpCount, o: OpCount| {
            c.path = c.path.saturating_add(o.path.saturating_mul(times));
            c.work = c.work.saturating_add(o.work.saturating_mul(times));
        };
        m(&mut self.enc, other.enc);
        m(&mut self.dec, other.dec);
        m(&mut self.he_add, other.he_add);
        m(&mut self.plain, other.plain);
        m(&mut self.dist, other.dist);
        self.bytes = self.bytes.saturating_add(other.bytes.saturating_mul(times));
        self.messages = self.messages.saturating_add(other.messages.saturating_mul(times));
        self.rounds = self.rounds.saturating_add(other.rounds.saturating_mul(times));
        self.dropouts = self.dropouts.saturating_add(other.dropouts.saturating_mul(times));
        self.cache_hits = self.cache_hits.saturating_add(other.cache_hits.saturating_mul(times));
        self.cache_misses =
            self.cache_misses.saturating_add(other.cache_misses.saturating_mul(times));
        self.random_accesses =
            self.random_accesses.saturating_add(other.random_accesses.saturating_mul(times));
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &OpLedger) {
        self.enc.merge(other.enc);
        self.dec.merge(other.dec);
        self.he_add.merge(other.he_add);
        self.plain.merge(other.plain);
        self.dist.merge(other.dist);
        self.bytes += other.bytes;
        self.messages += other.messages;
        self.rounds += other.rounds;
        self.dropouts += other.dropouts;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.random_accesses += other.random_accesses;
    }

    /// Simulated wall-clock microseconds under `model`.
    #[must_use]
    pub fn simulated_us(&self, model: &CostModel) -> f64 {
        self.breakdown(model).total_us()
    }

    /// Per-component simulated cost — the paper's §V-B time-breakdown view.
    #[must_use]
    pub fn breakdown(&self, model: &CostModel) -> CostBreakdown {
        CostBreakdown {
            enc_us: self.enc.path as f64 * model.enc_us,
            dec_us: self.dec.path as f64 * model.dec_us,
            he_add_us: self.he_add.path as f64 * model.he_add_us,
            plain_us: self.plain.path as f64 * model.plain_op_us
                + self.dist.path as f64 * model.dist_us,
            transfer_us: self.bytes as f64 / model.bytes_per_us,
            latency_us: self.rounds as f64 * model.latency_us,
        }
    }

    /// Simulated seconds under `model`.
    #[must_use]
    pub fn simulated_seconds(&self, model: &CostModel) -> f64 {
        self.simulated_us(model) / 1e6
    }

    /// Total encrypted values placed on the wire (work count) — the paper's
    /// Fig. 9 "encrypted and communicated instances" metric is derived from
    /// this divided by query count.
    #[must_use]
    pub fn encrypted_values(&self) -> u64 {
        self.enc.work
    }
}

/// Simulated time split by cost component (all microseconds).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostBreakdown {
    /// Encryption time.
    pub enc_us: f64,
    /// Decryption time.
    pub dec_us: f64,
    /// Homomorphic-addition time.
    pub he_add_us: f64,
    /// Plaintext compute (including distance kernels).
    pub plain_us: f64,
    /// Byte-transfer time.
    pub transfer_us: f64,
    /// Round-trip latency time.
    pub latency_us: f64,
}

impl CostBreakdown {
    /// Merges another breakdown into this one component-wise. Together with
    /// [`OpLedger::merge`] this lets per-worker ledgers from a parallel run
    /// be combined into exactly the totals a sequential run would produce
    /// (all counters are sums, so merging commutes with recording).
    pub fn merge(&mut self, other: &CostBreakdown) {
        self.enc_us += other.enc_us;
        self.dec_us += other.dec_us;
        self.he_add_us += other.he_add_us;
        self.plain_us += other.plain_us;
        self.transfer_us += other.transfer_us;
        self.latency_us += other.latency_us;
    }

    /// Sum of all components.
    #[must_use]
    pub fn total_us(&self) -> f64 {
        self.enc_us
            + self.dec_us
            + self.he_add_us
            + self.plain_us
            + self.transfer_us
            + self.latency_us
    }

    /// Fraction of the total spent in HE operations (enc + dec + add) —
    /// the paper's argument for the Fagin optimization is that this
    /// dominates.
    #[must_use]
    pub fn crypto_fraction(&self) -> f64 {
        let total = self.total_us();
        if total <= 0.0 {
            0.0
        } else {
            (self.enc_us + self.dec_us + self.he_add_us) / total
        }
    }
}

impl crate::wire::Wire for OpCount {
    fn encode(&self, out: &mut Vec<u8>) {
        self.path.encode(out);
        self.work.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, crate::wire::WireError> {
        Ok(OpCount { path: u64::decode(input)?, work: u64::decode(input)? })
    }

    fn encoded_len(&self) -> usize {
        16
    }
}

impl crate::wire::Wire for OpLedger {
    fn encode(&self, out: &mut Vec<u8>) {
        self.enc.encode(out);
        self.dec.encode(out);
        self.he_add.encode(out);
        self.plain.encode(out);
        self.dist.encode(out);
        self.bytes.encode(out);
        self.messages.encode(out);
        self.rounds.encode(out);
        self.dropouts.encode(out);
        self.cache_hits.encode(out);
        self.cache_misses.encode(out);
        self.random_accesses.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, crate::wire::WireError> {
        Ok(OpLedger {
            enc: OpCount::decode(input)?,
            dec: OpCount::decode(input)?,
            he_add: OpCount::decode(input)?,
            plain: OpCount::decode(input)?,
            dist: OpCount::decode(input)?,
            bytes: u64::decode(input)?,
            messages: u64::decode(input)?,
            rounds: u64::decode(input)?,
            dropouts: u64::decode(input)?,
            cache_hits: u64::decode(input)?,
            cache_misses: u64::decode(input)?,
            random_accesses: u64::decode(input)?,
        })
    }

    fn encoded_len(&self) -> usize {
        5 * 16 + 7 * 8
    }
}

impl crate::wire::Wire for CostModel {
    fn encode(&self, out: &mut Vec<u8>) {
        self.enc_us.encode(out);
        self.dec_us.encode(out);
        self.he_add_us.encode(out);
        self.plain_op_us.encode(out);
        self.dist_us.encode(out);
        self.latency_us.encode(out);
        self.bytes_per_us.encode(out);
        self.cipher_bytes.encode(out);
        self.id_bytes.encode(out);
        self.scalar_bytes.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, crate::wire::WireError> {
        Ok(CostModel {
            enc_us: f64::decode(input)?,
            dec_us: f64::decode(input)?,
            he_add_us: f64::decode(input)?,
            plain_op_us: f64::decode(input)?,
            dist_us: f64::decode(input)?,
            latency_us: f64::decode(input)?,
            bytes_per_us: f64::decode(input)?,
            cipher_bytes: usize::decode(input)?,
            id_bytes: usize::decode(input)?,
            scalar_bytes: usize::decode(input)?,
        })
    }

    fn encoded_len(&self) -> usize {
        10 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_components_sum_to_total() {
        let model = CostModel::default();
        let mut l = OpLedger::default();
        l.record_enc(1000, 4);
        l.record_dec(500);
        l.record_he_add(2000);
        l.record_dist(10_000, 4);
        l.record_traffic(1 << 20, 8);
        l.record_round();
        let b = l.breakdown(&model);
        assert!((b.total_us() - l.simulated_us(&model)).abs() < 1e-9);
        assert!(b.enc_us > 0.0 && b.transfer_us > 0.0 && b.latency_us > 0.0);
        assert!((0.0..=1.0).contains(&b.crypto_fraction()));
    }

    #[test]
    fn he_heavy_ledger_is_crypto_dominated() {
        let model = CostModel::default();
        let mut l = OpLedger::default();
        l.record_enc(1_000_000, 4);
        l.record_traffic(1024, 1);
        assert!(l.breakdown(&model).crypto_fraction() > 0.99);
    }

    #[test]
    fn parallel_work_counts_once_on_path() {
        let mut l = OpLedger::default();
        l.record_enc(100, 4);
        assert_eq!(l.enc.path, 100);
        assert_eq!(l.enc.work, 400);
    }

    #[test]
    fn simulated_time_composition() {
        let model = CostModel {
            enc_us: 10.0,
            dec_us: 5.0,
            he_add_us: 1.0,
            plain_op_us: 0.0,
            dist_us: 0.0,
            latency_us: 100.0,
            bytes_per_us: 10.0,
            cipher_bytes: 64,
            id_bytes: 8,
            scalar_bytes: 8,
        };
        let mut l = OpLedger::default();
        l.record_enc(3, 2); // 30us
        l.record_dec(2); // 10us
        l.record_he_add(5); // 5us
        l.record_traffic(1000, 4); // 100us
        l.record_round(); // 100us
        assert!((l.simulated_us(&model) - 245.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = OpLedger::default();
        a.record_enc(1, 2);
        a.record_round();
        let mut b = OpLedger::default();
        b.record_enc(2, 2);
        b.record_traffic(10, 1);
        a.merge(&b);
        assert_eq!(a.enc.path, 3);
        assert_eq!(a.enc.work, 6);
        assert_eq!(a.bytes, 10);
        assert_eq!(a.rounds, 1);
    }

    #[test]
    fn dropouts_are_counted_but_free() {
        let model = CostModel::default();
        let mut l = OpLedger::default();
        l.record_enc(10, 2);
        let before = l.simulated_us(&model);
        l.record_dropout();
        l.record_dropout();
        assert_eq!(l.dropouts, 2);
        assert_eq!(l.simulated_us(&model), before, "dropouts carry no simulated cost");
        let mut m = OpLedger::default();
        m.merge_times(&l, 3);
        assert_eq!(m.dropouts, 6);
    }

    /// The contract the parallel selection engine relies on: splitting a
    /// recording stream across ledgers and merging them afterwards yields
    /// byte-exact the same ledger as recording sequentially into one.
    #[test]
    fn merge_of_splits_equals_sequential_accumulation() {
        // A synthetic stream of heterogeneous records.
        let records: Vec<(u64, u64)> = (1..=40).map(|i| (i, i % 5 + 1)).collect();
        let record_all = |ledger: &mut OpLedger, part: &[(u64, u64)]| {
            for &(n, p) in part {
                ledger.record_enc(n, p);
                ledger.record_dec(n / 2);
                ledger.record_he_add(n * p);
                ledger.record_plain(n * 3, p);
                ledger.record_dist(n, p);
                ledger.record_traffic(n * 256, p);
                ledger.record_round();
            }
        };

        let mut sequential = OpLedger::default();
        record_all(&mut sequential, &records);

        // Split into uneven chunks, record each into its own ledger (as
        // parallel workers would), merge in chunk order.
        let mut merged = OpLedger::default();
        let mut merged_breakdown = CostBreakdown::default();
        let model = CostModel::default();
        for chunk in records.chunks(7) {
            let mut part = OpLedger::default();
            record_all(&mut part, chunk);
            merged_breakdown.merge(&part.breakdown(&model));
            merged.merge(&part);
        }

        assert_eq!(merged, sequential);
        let seq_breakdown = sequential.breakdown(&model);
        assert!((merged_breakdown.total_us() - seq_breakdown.total_us()).abs() < 1e-9);
        assert!((merged_breakdown.enc_us - seq_breakdown.enc_us).abs() < 1e-12);
        assert!((merged_breakdown.latency_us - seq_breakdown.latency_us).abs() < 1e-12);
    }

    #[test]
    fn more_encryption_costs_more_time() {
        let model = CostModel::default();
        let mut small = OpLedger::default();
        small.record_enc(100, 4);
        let mut big = OpLedger::default();
        big.record_enc(10_000, 4);
        assert!(big.simulated_seconds(&model) > small.simulated_seconds(&model));
    }

    #[test]
    fn cache_counters_are_counted_but_free() {
        let model = CostModel::default();
        let mut l = OpLedger::default();
        l.record_enc(10, 2);
        let before = l.simulated_us(&model);
        l.record_cache_hit();
        l.record_cache_miss();
        l.record_random_access(3);
        assert_eq!((l.cache_hits, l.cache_misses), (1, 1));
        assert_eq!(l.random_accesses, 3);
        assert_eq!(l.simulated_us(&model), before, "cache bookkeeping carries no simulated cost");
        let mut m = OpLedger::default();
        m.merge_times(&l, 4);
        assert_eq!((m.cache_hits, m.cache_misses), (4, 4));
        assert_eq!(m.random_accesses, 12);
        let mut n = OpLedger::default();
        n.merge(&l);
        assert_eq!((n.cache_hits, n.cache_misses), (1, 1));
        assert_eq!(n.random_accesses, 3);
    }

    #[test]
    fn ledger_and_model_roundtrip_through_wire() {
        use crate::wire::Wire;
        let mut l = OpLedger::default();
        l.record_enc(7, 3);
        l.record_dec(5);
        l.record_he_add(11);
        l.record_dist(13, 2);
        l.record_traffic(4096, 9);
        l.record_round();
        l.record_dropout();
        l.record_cache_hit();
        l.record_cache_miss();
        l.record_random_access(17);
        assert_eq!(OpLedger::from_bytes(&l.to_bytes()).unwrap(), l);

        let model = CostModel::default();
        assert_eq!(CostModel::from_bytes(&model.to_bytes()).unwrap(), model);
    }

    #[test]
    fn plaintext_model_zeroes_crypto() {
        let m = CostModel::plaintext_only();
        let mut l = OpLedger::default();
        l.record_enc(1_000_000, 4);
        l.record_dec(1_000_000);
        assert_eq!(l.simulated_us(&m), 0.0);
    }
}
