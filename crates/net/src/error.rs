//! The cluster's typed failure taxonomy.
//!
//! Every fallible [`crate::cluster::NodeCtx`] operation returns one of
//! these instead of panicking, so protocol code can degrade (drop a dead
//! participant, finish on the survivors) rather than poison the whole
//! simulated deployment. The variants mirror what a real gRPC mesh
//! surfaces: peer hangups, deadline expiry, and protocol-state violations,
//! plus the fault-injection kill used by [`crate::fault::FaultPlan`].

use crate::cluster::NodeId;
use std::fmt;
use std::time::Duration;

/// A message-plane failure observed by one node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// A peer exited (crash, kill, or clean completion) while this node
    /// still depended on it. `peer` is the node that went away; when a
    /// blocking receive finds *every* peer gone it reports the last one.
    Hangup {
        /// The departed node.
        peer: NodeId,
    },
    /// A deadline-based receive expired with no message.
    Timeout {
        /// The node the caller was waiting for, when it was waiting for a
        /// specific one.
        peer: Option<NodeId>,
        /// How long the caller waited.
        waited: Duration,
    },
    /// A message arrived that the protocol state machine cannot accept
    /// (wrong variant, impossible phase).
    ProtocolViolation {
        /// Human-readable description of the violated expectation.
        detail: String,
    },
    /// This node was killed by the active [`crate::fault::FaultPlan`]. All
    /// of its subsequent channel operations return this same error.
    Killed {
        /// The killed node (always the caller's own id).
        node: NodeId,
        /// The channel-op index at which the kill fired.
        op: u64,
    },
}

impl Error {
    /// Convenience constructor for protocol-violation errors.
    #[must_use]
    pub fn violation(detail: impl Into<String>) -> Self {
        Error::ProtocolViolation { detail: detail.into() }
    }

    /// True when the error reports the departure of `node` specifically.
    #[must_use]
    pub fn is_hangup_of(&self, node: NodeId) -> bool {
        matches!(self, Error::Hangup { peer } if *peer == node)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Hangup { peer } => write!(f, "node {peer} hung up"),
            Error::Timeout { peer: Some(p), waited } => {
                write!(f, "timed out after {waited:?} waiting for node {p}")
            }
            Error::Timeout { peer: None, waited } => {
                write!(f, "timed out after {waited:?} waiting for any message")
            }
            Error::ProtocolViolation { detail } => write!(f, "protocol violation: {detail}"),
            Error::Killed { node, op } => {
                write!(f, "node {node} killed by fault plan at channel op {op}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// The cluster taxonomy projected onto a *real-socket* transport failure —
/// the classification the routing tier applies when a backend daemon
/// misbehaves. Mirrors [`Error`]'s hangup / timeout / protocol-violation
/// triad, but identifies peers by name (a backend in a router's ring)
/// rather than by simulated [`NodeId`], and carries no fault-plan variant
/// (real sockets are not killed by a plan).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportFailure {
    /// The peer closed the connection (or refused it) where a frame was
    /// due — the socket analogue of [`Error::Hangup`].
    Hangup,
    /// A read or connect deadline expired — the socket analogue of
    /// [`Error::Timeout`].
    Timeout {
        /// How long the caller waited before giving up.
        waited: Duration,
    },
    /// The bytes arrived but violate the protocol (undecodable frame,
    /// oversized length prefix, unexpected message kind) — the socket
    /// analogue of [`Error::ProtocolViolation`].
    Protocol {
        /// Human-readable description of the violation.
        detail: String,
    },
}

impl TransportFailure {
    /// Classifies an I/O error against the taxonomy: deadline-shaped kinds
    /// (`WouldBlock` from a socket read timeout, `TimedOut` from connect)
    /// become [`TransportFailure::Timeout`]; everything else — resets,
    /// refusals, EOF-inside-a-frame — is a peer that went away, i.e.
    /// [`TransportFailure::Hangup`].
    #[must_use]
    pub fn classify_io(e: &std::io::Error, waited: Duration) -> TransportFailure {
        use std::io::ErrorKind;
        match e.kind() {
            ErrorKind::WouldBlock | ErrorKind::TimedOut => TransportFailure::Timeout { waited },
            _ => TransportFailure::Hangup,
        }
    }

    /// Classifies a framed-stream failure: I/O errors via
    /// [`TransportFailure::classify_io`], everything else (oversized or
    /// undecodable frames) as [`TransportFailure::Protocol`].
    #[must_use]
    pub fn classify_frame(e: &crate::wire::FrameError, waited: Duration) -> TransportFailure {
        match e {
            crate::wire::FrameError::Io(io) => TransportFailure::classify_io(io, waited),
            other => TransportFailure::Protocol { detail: other.to_string() },
        }
    }

    /// True for the variants a health checker should count against the
    /// backend (hangups and timeouts); protocol violations indicate a
    /// version mismatch, not flakiness.
    #[must_use]
    pub fn is_liveness_failure(&self) -> bool {
        !matches!(self, TransportFailure::Protocol { .. })
    }
}

impl fmt::Display for TransportFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportFailure::Hangup => write!(f, "peer hung up"),
            TransportFailure::Timeout { waited } => write!(f, "timed out after {waited:?}"),
            TransportFailure::Protocol { detail } => write!(f, "protocol violation: {detail}"),
        }
    }
}

impl std::error::Error for TransportFailure {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::Hangup { peer: 3 };
        assert!(e.to_string().contains("node 3"));
        let t = Error::Timeout { peer: Some(1), waited: Duration::from_millis(50) };
        assert!(t.to_string().contains("node 1"));
        let v = Error::violation("expected RankBatch");
        assert!(v.to_string().contains("expected RankBatch"));
        let k = Error::Killed { node: 2, op: 7 };
        assert!(k.to_string().contains("op 7"));
    }

    #[test]
    fn hangup_predicate_matches_peer() {
        assert!(Error::Hangup { peer: 4 }.is_hangup_of(4));
        assert!(!Error::Hangup { peer: 4 }.is_hangup_of(1));
        assert!(!Error::violation("x").is_hangup_of(4));
    }

    #[test]
    fn io_errors_classify_onto_the_taxonomy() {
        use std::io::{Error as IoError, ErrorKind};
        let waited = Duration::from_millis(250);
        for kind in [ErrorKind::WouldBlock, ErrorKind::TimedOut] {
            assert_eq!(
                TransportFailure::classify_io(&IoError::from(kind), waited),
                TransportFailure::Timeout { waited },
                "{kind:?} is a deadline expiry"
            );
        }
        for kind in
            [ErrorKind::ConnectionRefused, ErrorKind::ConnectionReset, ErrorKind::UnexpectedEof]
        {
            assert_eq!(
                TransportFailure::classify_io(&IoError::from(kind), waited),
                TransportFailure::Hangup,
                "{kind:?} is a departed peer"
            );
        }
    }

    #[test]
    fn frame_errors_classify_onto_the_taxonomy() {
        use crate::wire::{FrameError, WireError};
        let waited = Duration::from_millis(10);
        let io = FrameError::Io(std::io::Error::from(std::io::ErrorKind::TimedOut));
        assert_eq!(
            TransportFailure::classify_frame(&io, waited),
            TransportFailure::Timeout { waited }
        );
        let huge = FrameError::TooLarge(1 << 30);
        assert!(matches!(
            TransportFailure::classify_frame(&huge, waited),
            TransportFailure::Protocol { .. }
        ));
        let bad = FrameError::Wire(WireError::BadTag(9));
        let c = TransportFailure::classify_frame(&bad, waited);
        assert!(c.to_string().contains("tag byte 9"), "{c}");
        assert!(!c.is_liveness_failure(), "protocol violations are not flakiness");
        assert!(TransportFailure::Hangup.is_liveness_failure());
    }
}
