//! The cluster's typed failure taxonomy.
//!
//! Every fallible [`crate::cluster::NodeCtx`] operation returns one of
//! these instead of panicking, so protocol code can degrade (drop a dead
//! participant, finish on the survivors) rather than poison the whole
//! simulated deployment. The variants mirror what a real gRPC mesh
//! surfaces: peer hangups, deadline expiry, and protocol-state violations,
//! plus the fault-injection kill used by [`crate::fault::FaultPlan`].

use crate::cluster::NodeId;
use std::fmt;
use std::time::Duration;

/// A message-plane failure observed by one node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// A peer exited (crash, kill, or clean completion) while this node
    /// still depended on it. `peer` is the node that went away; when a
    /// blocking receive finds *every* peer gone it reports the last one.
    Hangup {
        /// The departed node.
        peer: NodeId,
    },
    /// A deadline-based receive expired with no message.
    Timeout {
        /// The node the caller was waiting for, when it was waiting for a
        /// specific one.
        peer: Option<NodeId>,
        /// How long the caller waited.
        waited: Duration,
    },
    /// A message arrived that the protocol state machine cannot accept
    /// (wrong variant, impossible phase).
    ProtocolViolation {
        /// Human-readable description of the violated expectation.
        detail: String,
    },
    /// This node was killed by the active [`crate::fault::FaultPlan`]. All
    /// of its subsequent channel operations return this same error.
    Killed {
        /// The killed node (always the caller's own id).
        node: NodeId,
        /// The channel-op index at which the kill fired.
        op: u64,
    },
}

impl Error {
    /// Convenience constructor for protocol-violation errors.
    #[must_use]
    pub fn violation(detail: impl Into<String>) -> Self {
        Error::ProtocolViolation { detail: detail.into() }
    }

    /// True when the error reports the departure of `node` specifically.
    #[must_use]
    pub fn is_hangup_of(&self, node: NodeId) -> bool {
        matches!(self, Error::Hangup { peer } if *peer == node)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Hangup { peer } => write!(f, "node {peer} hung up"),
            Error::Timeout { peer: Some(p), waited } => {
                write!(f, "timed out after {waited:?} waiting for node {p}")
            }
            Error::Timeout { peer: None, waited } => {
                write!(f, "timed out after {waited:?} waiting for any message")
            }
            Error::ProtocolViolation { detail } => write!(f, "protocol violation: {detail}"),
            Error::Killed { node, op } => {
                write!(f, "node {node} killed by fault plan at channel op {op}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::Hangup { peer: 3 };
        assert!(e.to_string().contains("node 3"));
        let t = Error::Timeout { peer: Some(1), waited: Duration::from_millis(50) };
        assert!(t.to_string().contains("node 1"));
        let v = Error::violation("expected RankBatch");
        assert!(v.to_string().contains("expected RankBatch"));
        let k = Error::Killed { node: 2, op: 7 };
        assert!(k.to_string().contains("op 7"));
    }

    #[test]
    fn hangup_predicate_matches_peer() {
        assert!(Error::Hangup { peer: 4 }.is_hangup_of(4));
        assert!(!Error::Hangup { peer: 4 }.is_hangup_of(1));
        assert!(!Error::violation("x").is_hangup_of(4));
    }
}
