//! Deterministic fault injection for the simulated cluster.
//!
//! A [`FaultPlan`] is a *script*, not a random process: every fault is
//! keyed to a deterministic per-node or per-link counter, so the same plan
//! against the same protocol produces the same failure every run — a
//! failing fault test replays exactly. Seeded random plans are derived
//! once up front by [`FaultPlan::chaos`], after which they too are plain
//! scripts (print the plan, re-run the plan).
//!
//! Three fault kinds:
//!
//! * **kill** — the node's channel ops (sends + receives) are counted;
//!   when the counter reaches the scheduled index every subsequent op
//!   returns [`crate::Error::Killed`]. The node's protocol loop unwinds,
//!   and the cluster runtime broadcasts its (dirty) departure so blocked
//!   peers observe [`crate::Error::Hangup`] instead of deadlocking.
//! * **drop** — the n-th message placed on a directed link vanishes in
//!   flight: the sender proceeds normally, nothing is delivered and
//!   nothing is billed to the traffic ledger. Receivers guard against the
//!   resulting silence with [`crate::cluster::NodeCtx::recv_timeout`].
//! * **delay** — the n-th message on a directed link is held until the
//!   sender has performed `hold_ops` further channel ops (released early
//!   if the sender is about to block or exits), reordering it past later
//!   traffic. This is the adversary the receive-side reorder buffer
//!   exists for.

use crate::cluster::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// A deterministic, replayable fault script for one cluster run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// node → channel-op index at which it dies.
    kills: BTreeMap<NodeId, u64>,
    /// (from, to) → per-link message indices that are dropped.
    drops: BTreeMap<(NodeId, NodeId), BTreeSet<u64>>,
    /// (from, to) → per-link message index → hold duration in sender ops.
    delays: BTreeMap<(NodeId, NodeId), BTreeMap<u64, u64>>,
}

impl FaultPlan {
    /// An empty plan: the cluster behaves exactly as without injection.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `node` to die when its channel-op counter (sends plus
    /// receives, counted from 0) reaches `op`.
    #[must_use]
    pub fn kill_at(mut self, node: NodeId, op: u64) -> Self {
        self.kills.insert(node, op);
        self
    }

    /// Drops the `nth` message (0-based, counted per directed link) sent
    /// from `from` to `to`.
    #[must_use]
    pub fn drop_nth(mut self, from: NodeId, to: NodeId, nth: u64) -> Self {
        self.drops.entry((from, to)).or_default().insert(nth);
        self
    }

    /// Delays the `nth` message (0-based, per directed link) from `from`
    /// to `to` until the sender has performed `hold_ops` further channel
    /// ops. Held messages are flushed before the sender blocks in a
    /// receive and when it exits cleanly, so a delay can reorder traffic
    /// but never wedge the cluster on its own.
    #[must_use]
    pub fn delay_nth(mut self, from: NodeId, to: NodeId, nth: u64, hold_ops: u64) -> Self {
        self.delays.entry((from, to)).or_default().insert(nth, hold_ops.max(1));
        self
    }

    /// True when the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty() && self.drops.is_empty() && self.delays.is_empty()
    }

    /// The scheduled kill op for `node`, if any.
    #[must_use]
    pub fn kill_op(&self, node: NodeId) -> Option<u64> {
        self.kills.get(&node).copied()
    }

    /// Whether the `seq`-th message on link `from → to` is dropped.
    #[must_use]
    pub fn should_drop(&self, from: NodeId, to: NodeId, seq: u64) -> bool {
        self.drops.get(&(from, to)).is_some_and(|s| s.contains(&seq))
    }

    /// Hold duration (in sender ops) for the `seq`-th message on link
    /// `from → to`, if it is scheduled for delay.
    #[must_use]
    pub fn delay_for(&self, from: NodeId, to: NodeId, seq: u64) -> Option<u64> {
        self.delays.get(&(from, to)).and_then(|m| m.get(&seq)).copied()
    }

    /// Derives a random-but-replayable plan: `kills` nodes chosen from
    /// `1..nodes` (node 0 — conventionally the server — is spared so the
    /// plan exercises degradation rather than instant abort), each killed
    /// at a channel-op index below `max_op`. The same seed always yields
    /// the same plan.
    #[must_use]
    pub fn chaos(seed: u64, nodes: usize, kills: usize, max_op: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        if nodes <= 1 {
            return plan;
        }
        let mut victims: Vec<NodeId> = (1..nodes).collect();
        // Fisher–Yates prefix: pick `kills` distinct victims.
        for i in 0..victims.len().min(kills) {
            let j = rng.gen_range(i..victims.len());
            victims.swap(i, j);
        }
        for &v in victims.iter().take(kills.min(nodes - 1)) {
            let op = rng.gen_range(0..max_op.max(1));
            plan = plan.kill_at(v, op);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let p = FaultPlan::new();
        assert!(p.is_empty());
        assert_eq!(p.kill_op(0), None);
        assert!(!p.should_drop(0, 1, 0));
        assert_eq!(p.delay_for(0, 1, 0), None);
    }

    #[test]
    fn builder_records_faults() {
        let p = FaultPlan::new().kill_at(2, 5).drop_nth(0, 1, 3).delay_nth(1, 0, 2, 4);
        assert!(!p.is_empty());
        assert_eq!(p.kill_op(2), Some(5));
        assert!(p.should_drop(0, 1, 3));
        assert!(!p.should_drop(0, 1, 2));
        assert!(!p.should_drop(1, 0, 3), "drops are per directed link");
        assert_eq!(p.delay_for(1, 0, 2), Some(4));
        assert_eq!(p.delay_for(1, 0, 3), None);
    }

    #[test]
    fn chaos_is_replayable_and_spares_node_zero() {
        let a = FaultPlan::chaos(42, 6, 3, 20);
        let b = FaultPlan::chaos(42, 6, 3, 20);
        assert_eq!(a, b, "same seed, same plan");
        assert!(!a.is_empty());
        assert_eq!(a.kill_op(0), None, "server spared");
        let c = FaultPlan::chaos(43, 6, 3, 20);
        assert_ne!(a, c, "different seed, different plan");
    }

    #[test]
    fn chaos_respects_bounds() {
        let p = FaultPlan::chaos(7, 4, 10, 8);
        // At most nodes-1 victims even when more kills are requested.
        let victims: Vec<_> = (0..4).filter_map(|n| p.kill_op(n)).collect();
        assert!(victims.len() <= 3);
        assert!(victims.iter().all(|&op| op < 8));
    }
}
