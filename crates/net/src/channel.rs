//! The transport abstraction shared by the simulated and real-socket
//! cluster backends.
//!
//! Protocol bodies (the fed-KNN server/participant loops in `vfps-vfl`)
//! only ever touch four operations: send to a peer, receive from anyone
//! with a deadline, receive from a *specific* peer with a deadline, and
//! ask whether a peer has departed. [`Channel`] captures exactly that
//! surface, so the same protocol code runs unchanged over
//! [`crate::cluster::NodeCtx`] (threads + crossbeam channels) and over
//! `vfps-cluster`'s TCP transport (real daemons on real sockets) — the
//! backend is chosen by the caller, and bit-identical results across the
//! two are pinned by test.
//!
//! The contract every implementation must honour (the simulated cluster
//! is the reference semantics):
//!
//! * `send` to a departed peer returns [`Error::Hangup`] for that peer;
//! * `recv_from_timeout(from, d)` buffers envelopes interleaved by
//!   *other* senders (they are replayed, in arrival order, by later
//!   receives), records other peers' departures silently, and fails only
//!   when `from` itself departs ([`Error::Hangup`]) or the deadline
//!   expires ([`Error::Timeout`] with `peer == Some(from)`);
//! * `recv_timeout` returns the next buffered or arriving envelope from
//!   any sender; a dirty departure surfaces as [`Error::Hangup`], and a
//!   receive that can never complete (every peer gone) reports the last
//!   departed peer;
//! * `is_departed` reflects departures this node has *consumed* so far —
//!   a notification may still be in flight.

use crate::cluster::{Envelope, NodeCtx, NodeId};
use crate::error::Error;
use std::time::Duration;

/// A node's view of the cluster message plane: the minimal send/receive
/// surface the fed-KNN protocol bodies require, implemented by both the
/// simulated [`NodeCtx`] and the real-socket transport in `vfps-cluster`.
pub trait Channel<M> {
    /// Sends `msg` to node `to`.
    ///
    /// # Errors
    /// [`Error::Hangup`] when `to` is known to have departed;
    /// [`Error::Killed`] once a fault plan has killed this node.
    fn send(&self, to: NodeId, msg: M) -> Result<(), Error>;

    /// Receives the next message from any sender, giving up after
    /// `timeout`.
    ///
    /// # Errors
    /// [`Error::Timeout`] when the deadline expires; [`Error::Hangup`]
    /// when a peer exits dirtily or every peer is gone;
    /// [`Error::Killed`] once a fault plan has killed this node.
    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope<M>, Error>;

    /// Receives the next message from `from`, buffering envelopes that
    /// other senders interleave, giving up after `timeout`.
    ///
    /// # Errors
    /// [`Error::Timeout`] (with `peer == Some(from)`) when the deadline
    /// expires; [`Error::Hangup`] if `from` has exited (other peers'
    /// departures are recorded but do not fail this call);
    /// [`Error::Killed`] once a fault plan has killed this node.
    fn recv_from_timeout(&self, from: NodeId, timeout: Duration) -> Result<M, Error>;

    /// Whether `node` has been observed to exit, as consumed so far.
    fn is_departed(&self, node: NodeId) -> bool;
}

impl<M: crate::wire::Wire + Send + 'static> Channel<M> for NodeCtx<M> {
    fn send(&self, to: NodeId, msg: M) -> Result<(), Error> {
        NodeCtx::send(self, to, msg)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope<M>, Error> {
        NodeCtx::recv_timeout(self, timeout)
    }

    fn recv_from_timeout(&self, from: NodeId, timeout: Duration) -> Result<M, Error> {
        NodeCtx::recv_from_timeout(self, from, timeout)
    }

    fn is_departed(&self, node: NodeId) -> bool {
        NodeCtx::is_departed(self, node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::run_cluster;

    /// A generic body that only knows the `Channel` surface must run over
    /// the simulated cluster unchanged.
    fn ping<C: Channel<u64>>(ch: &C, to: NodeId) -> u64 {
        ch.send(to, 41).unwrap();
        ch.recv_from_timeout(to, Duration::from_secs(5)).unwrap()
    }

    #[test]
    fn node_ctx_satisfies_the_channel_contract() {
        let fns: Vec<Box<dyn FnOnce(NodeCtx<u64>) -> u64 + Send>> = vec![
            Box::new(|ctx| ping(&ctx, 1)),
            Box::new(|ctx| {
                let env = ctx.recv_timeout(Duration::from_secs(5)).unwrap();
                Channel::send(&ctx, env.from, env.msg + 1).unwrap();
                assert!(!Channel::<u64>::is_departed(&ctx, 0));
                0
            }),
        ];
        let (results, _) = run_cluster(fns);
        assert_eq!(results[0], 42);
    }
}
