//! A simulated cluster: one thread per node, crossbeam channels as links,
//! and a shared traffic ledger recording byte-accurate per-link volume.
//!
//! The VFL protocols deploy five logical roles (key server, aggregation
//! server, leader, participants) onto these nodes, mirroring the paper's
//! five-machine deployment.

use crate::wire::Wire;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Node identifier within a cluster.
pub type NodeId = usize;

/// A routed message envelope.
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    /// Sender node.
    pub from: NodeId,
    /// The payload.
    pub msg: M,
}

/// Per-link traffic totals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkTraffic {
    /// Bytes moved over the link.
    pub bytes: u64,
    /// Messages moved over the link.
    pub messages: u64,
}

/// A single send, in global order — the protocol transcript entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number (order of sends across all nodes).
    pub seq: u64,
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Wire size of the message.
    pub bytes: u64,
}

/// Shared, thread-safe traffic ledger, optionally recording the full
/// message transcript (enable with [`TrafficLedger::with_trace`] — the
/// transcript is the tool for diagnosing protocol races and deadlocks).
#[derive(Clone, Debug, Default)]
pub struct TrafficLedger {
    links: Arc<Mutex<HashMap<(NodeId, NodeId), LinkTraffic>>>,
    trace: Option<Arc<Mutex<Vec<TraceEvent>>>>,
}

impl TrafficLedger {
    /// Creates an empty ledger.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a ledger that also records the message transcript.
    #[must_use]
    pub fn with_trace() -> Self {
        TrafficLedger { links: Arc::default(), trace: Some(Arc::new(Mutex::new(Vec::new()))) }
    }

    fn record(&self, from: NodeId, to: NodeId, bytes: u64) {
        let mut links = self.links.lock();
        let entry = links.entry((from, to)).or_default();
        entry.bytes += bytes;
        entry.messages += 1;
        if let Some(trace) = &self.trace {
            let mut t = trace.lock();
            let seq = t.len() as u64;
            t.push(TraceEvent { seq, from, to, bytes });
        }
    }

    /// The recorded transcript (empty unless built with `with_trace`).
    #[must_use]
    pub fn transcript(&self) -> Vec<TraceEvent> {
        self.trace.as_ref().map(|t| t.lock().clone()).unwrap_or_default()
    }

    /// Snapshot of all links.
    #[must_use]
    pub fn snapshot(&self) -> HashMap<(NodeId, NodeId), LinkTraffic> {
        self.links.lock().clone()
    }

    /// Total bytes over all links.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.links.lock().values().map(|l| l.bytes).sum()
    }

    /// Total messages over all links.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.links.lock().values().map(|l| l.messages).sum()
    }
}

/// A node's handle to the cluster: send to any node, receive from anyone.
pub struct NodeCtx<M> {
    /// This node's id.
    pub id: NodeId,
    senders: Vec<Sender<Envelope<M>>>,
    receiver: Receiver<Envelope<M>>,
    ledger: TrafficLedger,
}

impl<M: Wire + Send + 'static> NodeCtx<M> {
    /// Sends `msg` to node `to`, recording its wire size on the ledger.
    ///
    /// # Panics
    /// Panics if the destination is out of range or has hung up.
    pub fn send(&self, to: NodeId, msg: M) {
        let bytes = msg.encoded_len() as u64;
        self.ledger.record(self.id, to, bytes);
        self.senders[to].send(Envelope { from: self.id, msg }).expect("destination node hung up");
    }

    /// Blocking receive of the next message.
    ///
    /// # Panics
    /// Panics when all senders have hung up.
    #[must_use]
    pub fn recv(&self) -> Envelope<M> {
        self.receiver.recv().expect("all peers hung up")
    }

    /// Receives until a message from `from` arrives, asserting the cluster
    /// protocol is well-ordered (used by the strictly phased VFL flows).
    ///
    /// # Panics
    /// Panics if a message from a different node arrives first.
    #[must_use]
    pub fn recv_from(&self, from: NodeId) -> M {
        let env = self.recv();
        assert_eq!(env.from, from, "protocol violation: expected node {from}, got {}", env.from);
        env.msg
    }

    /// Number of nodes in the cluster.
    #[must_use]
    pub fn cluster_size(&self) -> usize {
        self.senders.len()
    }
}

/// Spawns `node_fns.len()` nodes, runs them to completion, and returns their
/// results plus the traffic ledger.
///
/// # Panics
/// Propagates panics from node threads.
pub fn run_cluster<M, R>(
    node_fns: Vec<Box<dyn FnOnce(NodeCtx<M>) -> R + Send>>,
) -> (Vec<R>, TrafficLedger)
where
    M: Wire + Send + 'static,
    R: Send + 'static,
{
    run_cluster_with(node_fns, TrafficLedger::new())
}

/// As [`run_cluster`] but records the full message transcript
/// ([`TrafficLedger::transcript`]) for protocol debugging.
///
/// # Panics
/// Propagates panics from node threads.
pub fn run_cluster_traced<M, R>(
    node_fns: Vec<Box<dyn FnOnce(NodeCtx<M>) -> R + Send>>,
) -> (Vec<R>, TrafficLedger)
where
    M: Wire + Send + 'static,
    R: Send + 'static,
{
    run_cluster_with(node_fns, TrafficLedger::with_trace())
}

fn run_cluster_with<M, R>(
    node_fns: Vec<Box<dyn FnOnce(NodeCtx<M>) -> R + Send>>,
    ledger: TrafficLedger,
) -> (Vec<R>, TrafficLedger)
where
    M: Wire + Send + 'static,
    R: Send + 'static,
{
    let n = node_fns.len();
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    let mut handles = Vec::with_capacity(n);
    for (id, (f, receiver)) in node_fns.into_iter().zip(receivers).enumerate() {
        let ctx = NodeCtx { id, senders: senders.clone(), receiver, ledger: ledger.clone() };
        handles.push(std::thread::spawn(move || f(ctx)));
    }
    drop(senders);
    let results = handles.into_iter().map(|h| h.join().expect("node thread panicked")).collect();
    (results, ledger)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass_accumulates_traffic() {
        // Node 0 sends a token around a 4-node ring; each hop adds one.
        let n = 4;
        let fns: Vec<Box<dyn FnOnce(NodeCtx<u64>) -> u64 + Send>> = (0..n)
            .map(|i| {
                Box::new(move |ctx: NodeCtx<u64>| {
                    if i == 0 {
                        ctx.send(1, 1u64);
                        ctx.recv().msg
                    } else {
                        let v = ctx.recv().msg;
                        ctx.send((i + 1) % n, v + 1);
                        v
                    }
                }) as Box<dyn FnOnce(NodeCtx<u64>) -> u64 + Send>
            })
            .collect();
        let (results, ledger) = run_cluster(fns);
        assert_eq!(results[0], 4, "token incremented by three intermediate hops + 1");
        assert_eq!(ledger.total_messages(), 4);
        assert_eq!(ledger.total_bytes(), 4 * 8, "four u64 hops");
    }

    #[test]
    fn star_aggregation() {
        // Nodes 1..4 send a vector to node 0, which sums them.
        type SumNodeFn = Box<dyn FnOnce(NodeCtx<Vec<f64>>) -> f64 + Send>;
        let fns: Vec<SumNodeFn> = (0..4)
            .map(|i| {
                Box::new(move |ctx: NodeCtx<Vec<f64>>| {
                    if i == 0 {
                        let mut total = 0.0;
                        for _ in 0..3 {
                            total += ctx.recv().msg.iter().sum::<f64>();
                        }
                        total
                    } else {
                        ctx.send(0, vec![i as f64; 2]);
                        0.0
                    }
                }) as SumNodeFn
            })
            .collect();
        let (results, ledger) = run_cluster(fns);
        assert_eq!(results[0], 12.0, "2*(1+2+3)");
        // Each message: 4-byte length + 2 f64 = 20 bytes.
        let snap = ledger.snapshot();
        assert_eq!(snap[&(1, 0)].bytes, 20);
        assert_eq!(snap[&(2, 0)].messages, 1);
    }

    #[test]
    fn transcript_records_sends_in_order() {
        let fns: Vec<Box<dyn FnOnce(NodeCtx<u8>) -> u8 + Send>> = vec![
            Box::new(|ctx: NodeCtx<u8>| {
                ctx.send(1, 1);
                let v = ctx.recv_from(1);
                ctx.send(1, v + 1);
                0
            }),
            Box::new(|ctx: NodeCtx<u8>| {
                let v = ctx.recv_from(0);
                ctx.send(0, v + 1);
                ctx.recv_from(0)
            }),
        ];
        let (results, ledger) = run_cluster_traced(fns);
        assert_eq!(results[1], 3);
        let t = ledger.transcript();
        assert_eq!(t.len(), 3);
        // Strict alternation 0→1, 1→0, 0→1 with increasing seq.
        assert_eq!((t[0].from, t[0].to), (0, 1));
        assert_eq!((t[1].from, t[1].to), (1, 0));
        assert_eq!((t[2].from, t[2].to), (0, 1));
        assert!(t.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(t.iter().all(|e| e.bytes == 1));
    }

    #[test]
    fn untraced_ledger_has_empty_transcript() {
        let fns: Vec<Box<dyn FnOnce(NodeCtx<u8>) -> u8 + Send>> =
            vec![Box::new(|_ctx: NodeCtx<u8>| 0)];
        let (_, ledger) = run_cluster(fns);
        assert!(ledger.transcript().is_empty());
    }

    #[test]
    fn recv_from_enforces_order() {
        let fns: Vec<Box<dyn FnOnce(NodeCtx<u8>) -> u8 + Send>> = vec![
            Box::new(|ctx: NodeCtx<u8>| {
                let v = ctx.recv_from(1);
                v + 1
            }),
            Box::new(|ctx: NodeCtx<u8>| {
                ctx.send(0, 41);
                0
            }),
        ];
        let (results, _) = run_cluster(fns);
        assert_eq!(results[0], 42);
    }
}
