//! A simulated cluster: one thread per node, crossbeam channels as links,
//! and a shared traffic ledger recording byte-accurate per-link volume.
//!
//! The VFL protocols deploy five logical roles (key server, aggregation
//! server, leader, participants) onto these nodes, mirroring the paper's
//! five-machine deployment.
//!
//! ## Failure semantics
//!
//! Every channel operation on [`NodeCtx`] returns `Result<_, Error>`
//! instead of panicking. When a node thread exits — cleanly, by returning
//! an error, or by panicking — a departure guard broadcasts the fact to
//! every peer, so a blocked `recv` observes [`Error::Hangup`] instead of
//! deadlocking, and [`run_cluster_with`] always drains every thread.
//! Out-of-order arrivals from other senders are buffered by
//! [`NodeCtx::recv_from`] (in arrival order) rather than treated as
//! protocol violations, and a [`FaultPlan`] can deterministically kill
//! nodes or drop/delay links to exercise all of the above.

use crate::error::Error;
use crate::fault::FaultPlan;
use crate::wire::Wire;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Node identifier within a cluster.
pub type NodeId = usize;

/// A routed message envelope.
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    /// Sender node.
    pub from: NodeId,
    /// The payload.
    pub msg: M,
}

/// Per-link traffic totals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkTraffic {
    /// Bytes moved over the link.
    pub bytes: u64,
    /// Messages moved over the link.
    pub messages: u64,
}

/// A single send, in global order — the protocol transcript entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number (order of sends across all nodes).
    pub seq: u64,
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Wire size of the message.
    pub bytes: u64,
}

#[derive(Debug, Default)]
struct LedgerInner {
    links: HashMap<(NodeId, NodeId), LinkTraffic>,
    trace: Option<Vec<TraceEvent>>,
}

/// Shared, thread-safe traffic ledger, optionally recording the full
/// message transcript (enable with [`TrafficLedger::with_trace`] — the
/// transcript is the tool for diagnosing protocol races and deadlocks).
///
/// Link totals and the transcript live under a *single* lock, so any
/// mid-run observer sees a consistent pair: the transcript length always
/// equals the summed message count of the link snapshot taken in the same
/// critical section (see [`TrafficLedger::consistent_view`]).
#[derive(Clone, Debug, Default)]
pub struct TrafficLedger {
    inner: Arc<Mutex<LedgerInner>>,
}

impl TrafficLedger {
    /// Creates an empty ledger.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a ledger that also records the message transcript.
    #[must_use]
    pub fn with_trace() -> Self {
        TrafficLedger {
            inner: Arc::new(Mutex::new(LedgerInner {
                links: HashMap::new(),
                trace: Some(Vec::new()),
            })),
        }
    }

    fn record(&self, from: NodeId, to: NodeId, bytes: u64) {
        let mut inner = self.inner.lock();
        let entry = inner.links.entry((from, to)).or_default();
        entry.bytes += bytes;
        entry.messages += 1;
        if let Some(trace) = &mut inner.trace {
            let seq = trace.len() as u64;
            trace.push(TraceEvent { seq, from, to, bytes });
        }
    }

    /// The recorded transcript (empty unless built with `with_trace`).
    #[must_use]
    pub fn transcript(&self) -> Vec<TraceEvent> {
        self.inner.lock().trace.clone().unwrap_or_default()
    }

    /// Snapshot of all links.
    #[must_use]
    pub fn snapshot(&self) -> HashMap<(NodeId, NodeId), LinkTraffic> {
        self.inner.lock().links.clone()
    }

    /// Atomically captures link totals *and* transcript in one critical
    /// section, so the two can be cross-checked even while senders are
    /// still running (the transcript length equals the summed message
    /// count of the snapshot).
    #[must_use]
    pub fn consistent_view(&self) -> (HashMap<(NodeId, NodeId), LinkTraffic>, Vec<TraceEvent>) {
        let inner = self.inner.lock();
        (inner.links.clone(), inner.trace.clone().unwrap_or_default())
    }

    /// Total bytes over all links.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.inner.lock().links.values().map(|l| l.bytes).sum()
    }

    /// Total messages over all links.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.inner.lock().links.values().map(|l| l.messages).sum()
    }
}

/// What actually travels on a channel: either a routed message or the
/// notification that a peer's thread has exited.
enum Packet<M> {
    Msg(Envelope<M>),
    Departed { node: NodeId, clean: bool },
}

/// A message held back by a delay fault, due for release at `release_op`.
/// Wire size is captured at hold time so flushing (including from `Drop`,
/// where the `Wire` bound is unavailable) needs no re-encoding.
struct Delayed<M> {
    release_op: u64,
    to: NodeId,
    bytes: u64,
    env: Envelope<M>,
}

/// Interior mutable per-node bookkeeping (nodes are single-threaded, so a
/// `RefCell` suffices and keeps the public methods `&self`).
struct CtxState<M> {
    /// Envelopes consumed while waiting for a specific sender, replayed in
    /// arrival order by subsequent receives.
    reorder: VecDeque<Envelope<M>>,
    /// Peers observed to have exited, with their clean/dirty flag.
    departed: HashMap<NodeId, bool>,
    /// Most recently observed departure (reported when everyone is gone).
    last_departed: Option<NodeId>,
    /// Combined send + receive operation counter (fault-plan clock).
    ops: u64,
    /// Per-destination message sequence numbers (fault-plan link clock).
    link_seq: HashMap<NodeId, u64>,
    /// Messages held back by delay faults.
    delayed: Vec<Delayed<M>>,
    /// Set once the fault plan kills this node; sticky.
    killed: Option<u64>,
}

/// A node's handle to the cluster: send to any node, receive from anyone.
pub struct NodeCtx<M> {
    /// This node's id.
    pub id: NodeId,
    senders: Vec<Sender<Packet<M>>>,
    receiver: Receiver<Packet<M>>,
    ledger: TrafficLedger,
    faults: Arc<FaultPlan>,
    state: RefCell<CtxState<M>>,
}

impl<M: Wire + Send + 'static> NodeCtx<M> {
    /// Advances the fault-plan clock by one channel operation; errors once
    /// the plan's kill point for this node is reached (and forever after).
    fn tick(&self) -> Result<(), Error> {
        let mut st = self.state.borrow_mut();
        if let Some(op) = st.killed {
            return Err(Error::Killed { node: self.id, op });
        }
        let op = st.ops;
        st.ops += 1;
        if let Some(kill) = self.faults.kill_op(self.id) {
            if op >= kill {
                st.killed = Some(kill);
                vfps_obs::counter_add("cluster.faults.kills", 1);
                return Err(Error::Killed { node: self.id, op: kill });
            }
        }
        Ok(())
    }

    /// Releases delayed messages whose hold has expired (`all` releases
    /// everything — used before blocking, so a held message can never
    /// deadlock the cluster on its own). Billed at delivery time; a
    /// hung-up destination just loses the message, like a crash while a
    /// real packet is in flight.
    fn flush_delayed(&self, all: bool) {
        let due: Vec<Delayed<M>> = {
            let mut st = self.state.borrow_mut();
            let now = st.ops;
            let mut due = Vec::new();
            let mut i = 0;
            while i < st.delayed.len() {
                if all || st.delayed[i].release_op <= now {
                    due.push(st.delayed.remove(i));
                } else {
                    i += 1;
                }
            }
            due
        };
        for d in due {
            self.ledger.record(self.id, d.to, d.bytes);
            let _ = self.senders[d.to].send(Packet::Msg(d.env));
        }
    }

    /// Sends `msg` to node `to`, recording its wire size on the ledger.
    ///
    /// # Errors
    /// [`Error::Hangup`] if the destination has exited;
    /// [`Error::Killed`] once the fault plan has killed this node.
    pub fn send(&self, to: NodeId, msg: M) -> Result<(), Error> {
        self.tick()?;
        self.flush_delayed(false);
        let seq = {
            let mut st = self.state.borrow_mut();
            let seq = st.link_seq.entry(to).or_insert(0);
            let s = *seq;
            *seq += 1;
            s
        };
        if self.faults.should_drop(self.id, to, seq) {
            // Lost in flight: sender proceeds, nothing delivered or billed.
            vfps_obs::counter_add("cluster.faults.dropped_msgs", 1);
            return Ok(());
        }
        let bytes = msg.encoded_len() as u64;
        let env = Envelope { from: self.id, msg };
        if let Some(hold) = self.faults.delay_for(self.id, to, seq) {
            let release_op = self.state.borrow().ops + hold;
            self.state.borrow_mut().delayed.push(Delayed { release_op, to, bytes, env });
            return Ok(());
        }
        if self.state.borrow().departed.contains_key(&to) {
            return Err(Error::Hangup { peer: to });
        }
        self.ledger.record(self.id, to, bytes);
        if vfps_obs::is_enabled() {
            vfps_obs::counter_add(&format!("cluster.node{}.msgs_sent", self.id), 1);
            vfps_obs::counter_add(&format!("cluster.node{}.bytes_sent", self.id), bytes);
        }
        self.senders[to].send(Packet::Msg(env)).map_err(|_| Error::Hangup { peer: to })
    }

    /// Records a departure notification; returns the peer id.
    fn note_departure(&self, node: NodeId, clean: bool) {
        let mut st = self.state.borrow_mut();
        st.departed.insert(node, clean);
        st.last_departed = Some(node);
    }

    /// True once every peer has exited (no more messages can ever arrive).
    fn all_peers_departed(&self) -> bool {
        self.state.borrow().departed.len() >= self.senders.len().saturating_sub(1)
    }

    /// The error to report when a blocking receive can never complete.
    fn starved(&self) -> Error {
        let peer = self.state.borrow().last_departed.unwrap_or(self.id);
        Error::Hangup { peer }
    }

    /// Receives one packet, blocking up to `deadline` (forever if `None`).
    fn recv_packet(&self, deadline: Option<Instant>) -> Result<Packet<M>, Error> {
        // Anything we are still holding back could be the very message our
        // peer must answer before we unblock — release it all.
        self.flush_delayed(true);
        if self.all_peers_departed() {
            return Err(self.starved());
        }
        match deadline {
            None => self.receiver.recv().map_err(|_| self.starved()),
            Some(d) => {
                let now = Instant::now();
                let remaining = d.saturating_duration_since(now);
                self.receiver.recv_timeout(remaining).map_err(|e| match e {
                    RecvTimeoutError::Timeout => Error::Timeout { peer: None, waited: remaining },
                    RecvTimeoutError::Disconnected => self.starved(),
                })
            }
        }
    }

    fn recv_inner(&self, deadline: Option<Instant>) -> Result<Envelope<M>, Error> {
        self.tick()?;
        if let Some(env) = self.state.borrow_mut().reorder.pop_front() {
            return Ok(env);
        }
        loop {
            match self.recv_packet(deadline)? {
                Packet::Msg(env) => return Ok(env),
                Packet::Departed { node, clean } => {
                    self.note_departure(node, clean);
                    if !clean {
                        return Err(Error::Hangup { peer: node });
                    }
                    // Clean exits only matter once nobody is left to talk.
                    if self.all_peers_departed() {
                        return Err(self.starved());
                    }
                }
            }
        }
    }

    /// Blocking receive of the next message (buffered out-of-order
    /// envelopes first, in arrival order).
    ///
    /// # Errors
    /// [`Error::Hangup`] when a peer exits dirtily or every peer is gone;
    /// [`Error::Killed`] once the fault plan has killed this node.
    pub fn recv(&self) -> Result<Envelope<M>, Error> {
        self.recv_inner(None)
    }

    /// As [`NodeCtx::recv`] but gives up after `timeout`.
    ///
    /// # Errors
    /// [`Error::Timeout`] when the deadline expires, otherwise as
    /// [`NodeCtx::recv`].
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Envelope<M>, Error> {
        self.recv_inner(Some(Instant::now() + timeout))
    }

    fn recv_from_inner(&self, from: NodeId, deadline: Option<Instant>) -> Result<M, Error> {
        self.tick()?;
        // Serve a previously buffered envelope from this sender first.
        {
            let mut st = self.state.borrow_mut();
            if let Some(pos) = st.reorder.iter().position(|e| e.from == from) {
                return Ok(st.reorder.remove(pos).expect("position just found").msg);
            }
            if st.departed.contains_key(&from) {
                return Err(Error::Hangup { peer: from });
            }
        }
        loop {
            match self.recv_packet(deadline) {
                Ok(Packet::Msg(env)) => {
                    if env.from == from {
                        return Ok(env.msg);
                    }
                    // Out-of-order arrival from another sender: buffer it
                    // in arrival order instead of declaring a violation.
                    self.state.borrow_mut().reorder.push_back(env);
                }
                Ok(Packet::Departed { node, clean }) => {
                    // Departures of *other* peers are recorded silently
                    // (query via `is_departed`); only the awaited sender's
                    // exit fails this call.
                    self.note_departure(node, clean);
                    if node == from {
                        return Err(Error::Hangup { peer: from });
                    }
                }
                Err(Error::Timeout { waited, .. }) => {
                    return Err(Error::Timeout { peer: Some(from), waited });
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Receives the next message from `from`, buffering envelopes that
    /// other senders interleave (they are replayed, in arrival order, by
    /// later receives).
    ///
    /// # Errors
    /// [`Error::Hangup`] if `from` has exited (other peers' departures are
    /// recorded but do not fail this call);
    /// [`Error::Killed`] once the fault plan has killed this node.
    pub fn recv_from(&self, from: NodeId) -> Result<M, Error> {
        self.recv_from_inner(from, None)
    }

    /// As [`NodeCtx::recv_from`] but gives up after `timeout`.
    ///
    /// # Errors
    /// [`Error::Timeout`] when the deadline expires, otherwise as
    /// [`NodeCtx::recv_from`].
    pub fn recv_from_timeout(&self, from: NodeId, timeout: Duration) -> Result<M, Error> {
        self.recv_from_inner(from, Some(Instant::now() + timeout))
    }

    /// Whether `node` has been observed to exit (its departure
    /// notification may still be in flight — this reflects what this node
    /// has consumed so far).
    #[must_use]
    pub fn is_departed(&self, node: NodeId) -> bool {
        self.state.borrow().departed.contains_key(&node)
    }

    /// All peers observed to have exited, in ascending id order.
    #[must_use]
    pub fn departed(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.state.borrow().departed.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Number of nodes in the cluster.
    #[must_use]
    pub fn cluster_size(&self) -> usize {
        self.senders.len()
    }
}

impl<M> Drop for NodeCtx<M> {
    fn drop(&mut self) {
        // A cleanly exiting node's held-back messages still reach their
        // destinations (a killed node's do not — it crashed holding them).
        let st = self.state.get_mut();
        if st.killed.is_some() {
            return;
        }
        for d in st.delayed.drain(..) {
            self.ledger.record(self.id, d.to, d.bytes);
            let _ = self.senders[d.to].send(Packet::Msg(d.env));
        }
    }
}

/// Broadcasts this node's departure to every peer when dropped — on clean
/// return, error return, *and* panic — so no peer ever blocks forever on a
/// dead node (the fix for the join deadlock).
struct DepartureGuard<M> {
    id: NodeId,
    senders: Vec<Sender<Packet<M>>>,
    clean: bool,
}

impl<M> Drop for DepartureGuard<M> {
    fn drop(&mut self) {
        vfps_obs::counter_add(
            if self.clean { "cluster.departures.clean" } else { "cluster.departures.dirty" },
            1,
        );
        for (to, tx) in self.senders.iter().enumerate() {
            if to != self.id {
                let _ = tx.send(Packet::Departed { node: self.id, clean: self.clean });
            }
        }
    }
}

/// Configuration for [`run_cluster_with`]: which ledger records traffic
/// and which fault plan (if any) is injected.
#[derive(Clone, Debug, Default)]
pub struct ClusterOptions {
    /// Traffic ledger shared by all nodes.
    pub ledger: TrafficLedger,
    /// Deterministic fault script (empty by default).
    pub faults: FaultPlan,
}

impl ClusterOptions {
    /// Options with a transcript-recording ledger and no faults.
    #[must_use]
    pub fn traced() -> Self {
        ClusterOptions { ledger: TrafficLedger::with_trace(), faults: FaultPlan::default() }
    }
}

fn run_cluster_impl<M, R>(
    node_fns: Vec<Box<dyn FnOnce(NodeCtx<M>) -> R + Send>>,
    opts: ClusterOptions,
    is_clean: fn(&R) -> bool,
) -> (Vec<R>, TrafficLedger)
where
    M: Wire + Send + 'static,
    R: Send + 'static,
{
    let n = node_fns.len();
    let ledger = opts.ledger;
    let faults = Arc::new(opts.faults);
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    let mut handles = Vec::with_capacity(n);
    for (id, (f, receiver)) in node_fns.into_iter().zip(receivers).enumerate() {
        let ctx = NodeCtx {
            id,
            senders: senders.clone(),
            receiver,
            ledger: ledger.clone(),
            faults: Arc::clone(&faults),
            state: RefCell::new(CtxState {
                reorder: VecDeque::new(),
                departed: HashMap::new(),
                last_departed: None,
                ops: 0,
                link_seq: HashMap::new(),
                delayed: Vec::new(),
                killed: None,
            }),
        };
        let guard_senders = senders.clone();
        handles.push(std::thread::spawn(move || {
            let mut guard = DepartureGuard { id, senders: guard_senders, clean: false };
            let out = f(ctx);
            guard.clean = is_clean(&out);
            out
        }));
    }
    drop(senders);
    // Join EVERY thread before propagating any panic: departure broadcasts
    // guarantee each one terminates, and draining them all first is what
    // turns "one node panicked" from a deadlock into a clean unwind.
    let joined: Vec<Result<R, Box<dyn std::any::Any + Send>>> =
        handles.into_iter().map(std::thread::JoinHandle::join).collect();
    let mut results = Vec::with_capacity(n);
    let mut panic_payload = None;
    for j in joined {
        match j {
            Ok(r) => results.push(r),
            Err(p) => {
                if panic_payload.is_none() {
                    panic_payload = Some(p);
                }
            }
        }
    }
    if let Some(p) = panic_payload {
        std::panic::resume_unwind(p);
    }
    (results, ledger)
}

/// Spawns `node_fns.len()` nodes, runs them to completion, and returns their
/// results plus the traffic ledger.
///
/// # Panics
/// Propagates panics from node threads — after draining every other
/// thread, so a panicking node can no longer deadlock the join loop.
pub fn run_cluster<M, R>(
    node_fns: Vec<Box<dyn FnOnce(NodeCtx<M>) -> R + Send>>,
) -> (Vec<R>, TrafficLedger)
where
    M: Wire + Send + 'static,
    R: Send + 'static,
{
    run_cluster_with(node_fns, ClusterOptions::default())
}

/// As [`run_cluster`] but records the full message transcript
/// ([`TrafficLedger::transcript`]) for protocol debugging.
///
/// # Panics
/// Propagates panics from node threads (after draining all threads).
pub fn run_cluster_traced<M, R>(
    node_fns: Vec<Box<dyn FnOnce(NodeCtx<M>) -> R + Send>>,
) -> (Vec<R>, TrafficLedger)
where
    M: Wire + Send + 'static,
    R: Send + 'static,
{
    run_cluster_with(node_fns, ClusterOptions::traced())
}

/// As [`run_cluster`] with explicit [`ClusterOptions`] (custom ledger
/// and/or an injected [`FaultPlan`]).
///
/// # Panics
/// Propagates panics from node threads (after draining all threads).
pub fn run_cluster_with<M, R>(
    node_fns: Vec<Box<dyn FnOnce(NodeCtx<M>) -> R + Send>>,
    opts: ClusterOptions,
) -> (Vec<R>, TrafficLedger)
where
    M: Wire + Send + 'static,
    R: Send + 'static,
{
    run_cluster_impl(node_fns, opts, |_| true)
}

/// A fallible node body, as consumed by [`run_cluster_fallible`].
pub type FallibleNodeFn<M, R> = Box<dyn FnOnce(NodeCtx<M>) -> Result<R, Error> + Send>;

/// Runs fallible node bodies: a node returning `Err` departs *dirty* (its
/// peers observe [`Error::Hangup`]), one returning `Ok` departs clean.
/// Unlike [`run_cluster`], node failures come back as values instead of
/// unwinding, so callers can degrade instead of aborting.
pub fn run_cluster_fallible<M, R>(
    node_fns: Vec<FallibleNodeFn<M, R>>,
    opts: ClusterOptions,
) -> (Vec<Result<R, Error>>, TrafficLedger)
where
    M: Wire + Send + 'static,
    R: Send + 'static,
{
    run_cluster_impl(node_fns, opts, Result::is_ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass_accumulates_traffic() {
        // Node 0 sends a token around a 4-node ring; each hop adds one.
        let n = 4;
        let fns: Vec<Box<dyn FnOnce(NodeCtx<u64>) -> u64 + Send>> = (0..n)
            .map(|i| {
                Box::new(move |ctx: NodeCtx<u64>| {
                    if i == 0 {
                        ctx.send(1, 1u64).unwrap();
                        ctx.recv().unwrap().msg
                    } else {
                        let v = ctx.recv().unwrap().msg;
                        ctx.send((i + 1) % n, v + 1).unwrap();
                        v
                    }
                }) as Box<dyn FnOnce(NodeCtx<u64>) -> u64 + Send>
            })
            .collect();
        let (results, ledger) = run_cluster(fns);
        assert_eq!(results[0], 4, "token incremented by three intermediate hops + 1");
        assert_eq!(ledger.total_messages(), 4);
        assert_eq!(ledger.total_bytes(), 4 * 8, "four u64 hops");
    }

    #[test]
    fn star_aggregation() {
        // Nodes 1..4 send a vector to node 0, which sums them.
        type SumNodeFn = Box<dyn FnOnce(NodeCtx<Vec<f64>>) -> f64 + Send>;
        let fns: Vec<SumNodeFn> = (0..4)
            .map(|i| {
                Box::new(move |ctx: NodeCtx<Vec<f64>>| {
                    if i == 0 {
                        let mut total = 0.0;
                        for _ in 0..3 {
                            total += ctx.recv().unwrap().msg.iter().sum::<f64>();
                        }
                        total
                    } else {
                        ctx.send(0, vec![i as f64; 2]).unwrap();
                        0.0
                    }
                }) as SumNodeFn
            })
            .collect();
        let (results, ledger) = run_cluster(fns);
        assert_eq!(results[0], 12.0, "2*(1+2+3)");
        // Each message: 4-byte length + 2 f64 = 20 bytes.
        let snap = ledger.snapshot();
        assert_eq!(snap[&(1, 0)].bytes, 20);
        assert_eq!(snap[&(2, 0)].messages, 1);
    }

    #[test]
    fn transcript_records_sends_in_order() {
        let fns: Vec<Box<dyn FnOnce(NodeCtx<u8>) -> u8 + Send>> = vec![
            Box::new(|ctx: NodeCtx<u8>| {
                ctx.send(1, 1).unwrap();
                let v = ctx.recv_from(1).unwrap();
                ctx.send(1, v + 1).unwrap();
                0
            }),
            Box::new(|ctx: NodeCtx<u8>| {
                let v = ctx.recv_from(0).unwrap();
                ctx.send(0, v + 1).unwrap();
                ctx.recv_from(0).unwrap()
            }),
        ];
        let (results, ledger) = run_cluster_traced(fns);
        assert_eq!(results[1], 3);
        let t = ledger.transcript();
        assert_eq!(t.len(), 3);
        // Strict alternation 0→1, 1→0, 0→1 with increasing seq.
        assert_eq!((t[0].from, t[0].to), (0, 1));
        assert_eq!((t[1].from, t[1].to), (1, 0));
        assert_eq!((t[2].from, t[2].to), (0, 1));
        assert!(t.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(t.iter().all(|e| e.bytes == 1));
    }

    #[test]
    fn untraced_ledger_has_empty_transcript() {
        let fns: Vec<Box<dyn FnOnce(NodeCtx<u8>) -> u8 + Send>> =
            vec![Box::new(|_ctx: NodeCtx<u8>| 0)];
        let (_, ledger) = run_cluster(fns);
        assert!(ledger.transcript().is_empty());
    }

    #[test]
    fn recv_from_enforces_order() {
        let fns: Vec<Box<dyn FnOnce(NodeCtx<u8>) -> u8 + Send>> = vec![
            Box::new(|ctx: NodeCtx<u8>| {
                let v = ctx.recv_from(1).unwrap();
                v + 1
            }),
            Box::new(|ctx: NodeCtx<u8>| {
                ctx.send(0, 41).unwrap();
                0
            }),
        ];
        let (results, _) = run_cluster(fns);
        assert_eq!(results[0], 42);
    }

    #[test]
    fn recv_from_buffers_other_senders() {
        // Node 2's message is guaranteed to land before node 1's, yet node
        // 0 asks for node 1 first: the old API panicked here, the new one
        // buffers node 2's envelope and replays it in arrival order.
        let fns: Vec<Box<dyn FnOnce(NodeCtx<u8>) -> u8 + Send>> = vec![
            Box::new(|ctx: NodeCtx<u8>| {
                let a = ctx.recv_from(1).unwrap();
                let b = ctx.recv_from(2).unwrap();
                a * 10 + b
            }),
            Box::new(|ctx: NodeCtx<u8>| {
                // Wait until node 2's message has certainly been consumed
                // into the buffer path by ordering: 2 sends, then pings 1.
                let go = ctx.recv_from(2).unwrap();
                ctx.send(0, go).unwrap();
                0
            }),
            Box::new(|ctx: NodeCtx<u8>| {
                ctx.send(0, 7).unwrap();
                ctx.send(1, 4).unwrap();
                0
            }),
        ];
        let (results, _) = run_cluster(fns);
        assert_eq!(results[0], 47);
    }

    #[test]
    fn clean_exit_of_all_peers_surfaces_hangup() {
        let fns: Vec<Box<dyn FnOnce(NodeCtx<u8>) -> bool + Send>> = vec![
            Box::new(|ctx: NodeCtx<u8>| {
                let _ = ctx.recv_from(1).unwrap();
                // Peer is gone now; a further receive must error, not hang.
                matches!(ctx.recv(), Err(Error::Hangup { peer: 1 }))
            }),
            Box::new(|ctx: NodeCtx<u8>| {
                ctx.send(0, 1).unwrap();
                true
            }),
        ];
        let (results, _) = run_cluster(fns);
        assert!(results[0]);
    }

    #[test]
    fn fault_kill_returns_killed_error() {
        let opts =
            ClusterOptions { ledger: TrafficLedger::new(), faults: FaultPlan::new().kill_at(1, 0) };
        let fns: Vec<FallibleNodeFn<u8, u8>> = vec![
            Box::new(|ctx: NodeCtx<u8>| {
                // Node 1 dies on its first op; we must see its hangup.
                match ctx.recv_from(1) {
                    Err(Error::Hangup { peer: 1 }) => Ok(0),
                    other => panic!("expected hangup of node 1, got {other:?}"),
                }
            }),
            Box::new(|ctx: NodeCtx<u8>| {
                ctx.send(0, 9)?; // killed at op 0: this fails
                Ok(1)
            }),
        ];
        let (results, ledger) = run_cluster_fallible(fns, opts);
        assert_eq!(results[0], Ok(0));
        assert_eq!(results[1], Err(Error::Killed { node: 1, op: 0 }));
        assert_eq!(ledger.total_messages(), 0, "killed before any send");
    }

    #[test]
    fn fault_drop_loses_message_silently() {
        let opts = ClusterOptions {
            ledger: TrafficLedger::new(),
            faults: FaultPlan::new().drop_nth(1, 0, 0),
        };
        let fns: Vec<FallibleNodeFn<u8, u8>> = vec![
            Box::new(|ctx: NodeCtx<u8>| {
                // First message dropped: only the retry arrives.
                let v = ctx.recv_from(1)?;
                Ok(v)
            }),
            Box::new(|ctx: NodeCtx<u8>| {
                ctx.send(0, 1)?; // dropped in flight
                ctx.send(0, 2)?; // delivered
                Ok(0)
            }),
        ];
        let (results, ledger) = run_cluster_fallible(fns, opts);
        assert_eq!(results[0], Ok(2));
        assert_eq!(ledger.total_messages(), 1, "dropped message is not billed");
    }

    #[test]
    fn fault_delay_reorders_but_flushes_before_block() {
        let opts = ClusterOptions {
            ledger: TrafficLedger::new(),
            // Hold node 1's first message to node 0 for 10 ops: its second
            // message overtakes it; the hold is flushed when node 1 blocks.
            faults: FaultPlan::new().delay_nth(1, 0, 0, 10),
        };
        let fns: Vec<FallibleNodeFn<u8, Vec<u8>>> = vec![
            Box::new(|ctx: NodeCtx<u8>| {
                let a = ctx.recv()?.msg;
                let b = ctx.recv()?.msg;
                ctx.send(1, 0)?;
                Ok(vec![a, b])
            }),
            Box::new(|ctx: NodeCtx<u8>| {
                ctx.send(0, 1)?; // held
                ctx.send(0, 2)?; // overtakes
                let _ = ctx.recv_from(0)?; // blocking: flushes the hold first
                Ok(vec![])
            }),
        ];
        let (results, ledger) = run_cluster_fallible(fns, opts);
        assert_eq!(results[0].as_ref().unwrap(), &vec![2, 1], "delay reordered the pair");
        assert_eq!(ledger.total_messages(), 3, "held message still billed on delivery");
    }

    #[test]
    fn recv_timeout_expires_on_silence() {
        let fns: Vec<FallibleNodeFn<u8, u8>> = vec![
            Box::new(|ctx: NodeCtx<u8>| {
                match ctx.recv_timeout(Duration::from_millis(20)) {
                    Err(Error::Timeout { .. }) => {}
                    other => panic!("expected timeout, got {other:?}"),
                }
                // Unblock node 1.
                ctx.send(1, 1)?;
                Ok(0)
            }),
            Box::new(|ctx: NodeCtx<u8>| {
                let v = ctx.recv_from(0)?;
                Ok(v)
            }),
        ];
        let (results, _) = run_cluster_fallible(fns, ClusterOptions::default());
        assert_eq!(results[1], Ok(1));
    }

    #[test]
    fn ledger_consistent_view_is_atomic() {
        // Hammer the ledger from two writer threads while a reader checks
        // that transcript length always equals summed link messages.
        let ledger = TrafficLedger::with_trace();
        let writers: Vec<_> = (0..2)
            .map(|w| {
                let l = ledger.clone();
                std::thread::spawn(move || {
                    for i in 0..500 {
                        l.record(w, 1 - w, (i % 7) + 1);
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            let (links, trace) = ledger.consistent_view();
            let msgs: u64 = links.values().map(|l| l.messages).sum();
            assert_eq!(trace.len() as u64, msgs, "trace and totals observed atomically");
        }
        for w in writers {
            w.join().unwrap();
        }
        let (links, trace) = ledger.consistent_view();
        assert_eq!(trace.len(), 1000);
        assert_eq!(links.values().map(|l| l.messages).sum::<u64>(), 1000);
    }
}
