//! Fagin's algorithm (FA) for monotone multi-party top-k queries.
//!
//! Three phases, exactly as the paper describes (§IV-B, Fig. 2):
//!
//! 1. **Sequential phase** — walk all sorted lists in lockstep until `k`
//!    items have been *fully seen* (appeared in every list).
//! 2. **Random-access phase** — fetch the missing scores of every item that
//!    was seen at least once.
//! 3. **Aggregate** — sum, sort, return the best `k`.
//!
//! Correctness for monotone aggregates: any unseen item ranks at or below
//! the fully-seen depth in *every* list, so its aggregate cannot beat a
//! fully-seen candidate.

use crate::list::{ItemId, RankedList};
use crate::naive::sort_for;
use crate::TopkOutcome;

/// Runs Fagin's algorithm over `lists`, returning the best `k` items.
///
/// # Panics
/// Panics if `lists` is empty or lists disagree on length/direction.
#[must_use]
pub fn fagin_topk(lists: &mut [RankedList], k: usize) -> TopkOutcome {
    assert!(!lists.is_empty(), "need at least one list");
    let n = lists[0].len();
    let direction = lists[0].direction();
    assert!(
        lists.iter().all(|l| l.len() == n && l.direction() == direction),
        "lists must agree on length and direction"
    );
    let k = k.min(n);
    let parties = lists.len();

    // Phase 1: lockstep sequential scan. Each surfaced id remembers *which*
    // party's list it surfaced in (and the score), so phase 2 knows exactly
    // which entries are still missing.
    let mut seen: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    let mut fully_seen = 0usize;
    let mut depth = 0usize;
    while fully_seen < k && depth < n {
        for (pi, list) in lists.iter_mut().enumerate() {
            let (id, score) = list.sequential_access(depth).expect("depth < n");
            seen[id].push((pi, score));
            if seen[id].len() == parties {
                fully_seen += 1;
            }
        }
        depth += 1;
    }

    // Phase 2: random accesses for partially-seen candidates. Items already
    // fully seen need no random access at all; a partially-seen item fetches
    // only from the lists where it has *not* surfaced. Every such point
    // lookup is counted — it is the per-entry cost (one encryption + one
    // transmission in the federated protocol) the paper's savings argument
    // is priced in, so over-fetching here would overstate FA's cost.
    let mut candidates: Vec<(ItemId, f64)> = Vec::new();
    let mut random_accesses = 0usize;
    let mut per_party: Vec<Option<f64>> = vec![None; parties];
    for id in 0..n {
        if seen[id].is_empty() {
            continue;
        }
        per_party.iter_mut().for_each(|s| *s = None);
        for &(pi, score) in &seen[id] {
            per_party[pi] = Some(score);
        }
        // Summed in party order so aggregates are bit-identical to the
        // naive oracle's accumulation order.
        let mut total = 0.0f64;
        for (pi, list) in lists.iter_mut().enumerate() {
            total += match per_party[pi] {
                Some(score) => score,
                None => {
                    random_accesses += 1;
                    list.random_access(id).expect("dense ids")
                }
            };
        }
        candidates.push((id, total));
    }

    // Phase 3: aggregate + sort.
    let candidates_examined = candidates.len();
    sort_for(direction, &mut candidates);
    candidates.truncate(k);
    TopkOutcome { topk: candidates, candidates_examined, depth, random_accesses }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::{total_stats, Direction};
    use crate::naive::naive_topk;

    /// The walkthrough of the paper's Fig. 2: three ascending lists, k = 2.
    /// X1 and X3 are the first to appear in all lists, every touched item
    /// (X1..X4) becomes a candidate, but the final minimal-2 is {X1, X2}.
    #[test]
    fn fagin_paper_fig2() {
        // ids: X1=0, X2=1, X3=2, X4=3
        let p1 = RankedList::from_scores(vec![1.0, 2.0, 6.0, 9.0], Direction::Ascending);
        let p2 = RankedList::from_scores(vec![3.0, 3.5, 1.0, 2.0], Direction::Ascending);
        let p3 = RankedList::from_scores(vec![1.0, 1.5, 2.0, 9.0], Direction::Ascending);
        let mut lists = vec![p1, p2, p3];
        let out = fagin_topk(&mut lists, 2);
        assert_eq!(out.depth, 3, "scan stops once X1 and X3 are fully seen");
        assert_eq!(out.candidates_examined, 4, "X1..X4 all surfaced");
        // At depth 3: X1 and X3 are fully seen (0 fetches), X2 surfaced in
        // p1 and p3 (1 missing list), X4 surfaced only in p2 (2 missing
        // lists) — so exactly 3 random accesses, not 4 x |P| = 12.
        assert_eq!(out.random_accesses, 3, "only the missing entries are fetched");
        assert_eq!(total_stats(&lists).random, 3, "the lists saw the same count");
        let ids: Vec<_> = out.topk.iter().map(|e| e.0).collect();
        assert_eq!(ids, vec![0, 1], "minimal-2 is X1, X2 — not the fully-seen X3");
    }

    #[test]
    fn matches_naive_on_dense_example() {
        let scores = [
            vec![0.5, 2.0, 1.0, 4.0, 3.0, 0.1],
            vec![1.5, 0.2, 2.0, 0.4, 3.0, 2.2],
            vec![0.3, 1.0, 0.7, 2.0, 0.1, 0.9],
        ];
        for k in 1..=6 {
            let mut a: Vec<RankedList> = scores
                .iter()
                .map(|s| RankedList::from_scores(s.clone(), Direction::Ascending))
                .collect();
            let mut b = a.clone();
            assert_eq!(fagin_topk(&mut a, k).topk, naive_topk(&mut b, k).topk, "k={k}");
        }
    }

    #[test]
    fn stops_early_on_aligned_lists() {
        // Identical rankings: the first k rows complete immediately.
        let s = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let mut lists = vec![
            RankedList::from_scores(s.clone(), Direction::Ascending),
            RankedList::from_scores(s, Direction::Ascending),
        ];
        let out = fagin_topk(&mut lists, 3);
        assert_eq!(out.depth, 3);
        assert_eq!(out.candidates_examined, 3);
        assert_eq!(out.random_accesses, 0);
        let stats = total_stats(&lists);
        assert_eq!(stats.random, 0, "no partial candidates on aligned lists");
        assert_eq!(stats.sequential, 6);
    }

    #[test]
    fn anti_correlated_lists_degrade_gracefully() {
        // Reversed rankings force a deep scan — FA's worst case.
        let asc: Vec<f64> = (0..10).map(f64::from).collect();
        let desc: Vec<f64> = (0..10).rev().map(f64::from).collect();
        let mut lists = vec![
            RankedList::from_scores(asc, Direction::Ascending),
            RankedList::from_scores(desc, Direction::Ascending),
        ];
        let out = fagin_topk(&mut lists, 1);
        assert!(out.depth >= 5, "must scan past the middle, got {}", out.depth);
        let mut oracle = lists.clone();
        assert_eq!(out.topk, naive_topk(&mut oracle, 1).topk);
    }

    #[test]
    fn k_clamped_to_n() {
        let mut lists = vec![RankedList::from_scores(vec![2.0, 1.0], Direction::Ascending)];
        let out = fagin_topk(&mut lists, 50);
        assert_eq!(out.topk.len(), 2);
        assert_eq!(out.topk[0].0, 1);
    }

    #[test]
    fn single_party_is_just_its_ranking() {
        let mut lists = vec![RankedList::from_scores(vec![3.0, 1.0, 2.0], Direction::Ascending)];
        let out = fagin_topk(&mut lists, 2);
        assert_eq!(out.topk, vec![(1, 1.0), (2, 2.0)]);
        assert_eq!(out.depth, 2);
    }

    #[test]
    fn descending_direction_supported() {
        let mut lists = vec![
            RankedList::from_scores(vec![1.0, 5.0, 2.0], Direction::Descending),
            RankedList::from_scores(vec![2.0, 4.0, 3.0], Direction::Descending),
        ];
        let out = fagin_topk(&mut lists, 1);
        assert_eq!(out.topk, vec![(1, 9.0)]);
    }
}
