//! Side-by-side comparison of the top-k algorithms on identical inputs —
//! the experiment harness and benches use this to report the
//! sequential/random access mix each algorithm pays.

use crate::fagin::fagin_topk;
use crate::list::{total_stats, AccessStats, RankedList};
use crate::naive::naive_topk;
use crate::nra::nra_topk;
use crate::threshold::threshold_topk;
use crate::TopkOutcome;

/// The algorithms under comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// Full scan (the `VFPS-SM-BASE` cost profile).
    Naive,
    /// Fagin's algorithm (the paper's choice).
    Fagin,
    /// The Threshold Algorithm.
    Threshold,
    /// No-Random-Access.
    Nra,
}

impl Algorithm {
    /// All algorithms, naive first.
    pub const ALL: [Algorithm; 4] =
        [Algorithm::Naive, Algorithm::Fagin, Algorithm::Threshold, Algorithm::Nra];

    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Naive => "naive",
            Algorithm::Fagin => "fagin",
            Algorithm::Threshold => "threshold",
            Algorithm::Nra => "nra",
        }
    }

    /// Runs the algorithm on fresh copies of `lists`.
    #[must_use]
    pub fn run(&self, lists: &[RankedList], k: usize) -> ComparisonRow {
        let mut copies = lists.to_vec();
        for l in &mut copies {
            l.reset_stats();
        }
        let outcome = match self {
            Algorithm::Naive => naive_topk(&mut copies, k),
            Algorithm::Fagin => fagin_topk(&mut copies, k),
            Algorithm::Threshold => threshold_topk(&mut copies, k),
            Algorithm::Nra => nra_topk(&mut copies, k),
        };
        ComparisonRow { algorithm: *self, stats: total_stats(&copies), outcome }
    }
}

/// One algorithm's result and cost on a shared input.
#[derive(Clone, Debug)]
pub struct ComparisonRow {
    /// Which algorithm ran.
    pub algorithm: Algorithm,
    /// Accesses it performed across all lists.
    pub stats: AccessStats,
    /// What it returned.
    pub outcome: TopkOutcome,
}

/// Runs every algorithm on the same lists and returns the rows
/// (naive first — its ids are the correctness oracle).
///
/// # Panics
/// Panics if the algorithms disagree on the returned id set — this is a
/// correctness tripwire, not a recoverable condition.
#[must_use]
pub fn compare_all(lists: &[RankedList], k: usize) -> Vec<ComparisonRow> {
    let rows: Vec<ComparisonRow> = Algorithm::ALL.iter().map(|a| a.run(lists, k)).collect();
    let mut oracle = rows[0].outcome.ids();
    oracle.sort_unstable();
    for row in &rows[1..] {
        let mut ids = row.outcome.ids();
        ids.sort_unstable();
        assert_eq!(ids, oracle, "{} disagreed with the exhaustive oracle", row.algorithm.name());
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::Direction;

    fn correlated_lists(n: usize, parties: usize) -> Vec<RankedList> {
        (0..parties)
            .map(|p| {
                let scores: Vec<f64> =
                    (0..n).map(|i| i as f64 + ((i * 7 + p * 13) % 10) as f64 * 0.3).collect();
                RankedList::from_scores(scores, Direction::Ascending)
            })
            .collect()
    }

    #[test]
    fn all_algorithms_agree() {
        let lists = correlated_lists(200, 3);
        let rows = compare_all(&lists, 5);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].algorithm, Algorithm::Naive);
    }

    #[test]
    fn naive_pays_the_most_random_accesses() {
        let lists = correlated_lists(200, 3);
        let rows = compare_all(&lists, 5);
        let naive = &rows[0];
        assert_eq!(naive.stats.random, 600, "3 lists x 200 items");
        for row in &rows[1..] {
            assert!(
                row.stats.total() < naive.stats.total(),
                "{} paid {} vs naive {}",
                row.algorithm.name(),
                row.stats.total(),
                naive.stats.total()
            );
        }
    }

    #[test]
    fn nra_never_random_accesses() {
        let lists = correlated_lists(100, 2);
        let row = Algorithm::Nra.run(&lists, 3);
        assert_eq!(row.stats.random, 0);
    }

    #[test]
    fn rerunning_resets_counters() {
        let lists = correlated_lists(50, 2);
        let a = Algorithm::Fagin.run(&lists, 3);
        let b = Algorithm::Fagin.run(&lists, 3);
        assert_eq!(a.stats, b.stats, "stats must not accumulate across runs");
    }
}
