//! Access-counted sorted lists — the access model of the classic top-k
//! query literature (Fagin 1996; Fagin, Lotem & Naor 2001).
//!
//! Each party exposes its scores through two primitives whose costs differ
//! in a middleware/federated setting:
//!
//! * **sequential access** — read the next `(id, score)` pair in rank order;
//! * **random access** — look up the score of a given id directly.
//!
//! [`RankedList`] counts both so algorithms can be compared on the exact
//! currency the paper's Fagin optimization saves.

/// Identifier of a data instance (a pseudo ID after shuffling).
pub type ItemId = usize;

/// Running tally of list accesses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Number of sequential (sorted) accesses performed.
    pub sequential: usize,
    /// Number of random (by-id) accesses performed.
    pub random: usize,
}

impl AccessStats {
    /// Component-wise sum.
    #[must_use]
    pub fn merged(self, other: AccessStats) -> AccessStats {
        AccessStats {
            sequential: self.sequential + other.sequential,
            random: self.random + other.random,
        }
    }

    /// Total accesses of either kind.
    #[must_use]
    pub fn total(self) -> usize {
        self.sequential + self.random
    }
}

/// Sort direction of a ranked list.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Direction {
    /// Smallest score first (distances — the VFPS-SM case).
    #[default]
    Ascending,
    /// Largest score first (relevance scores).
    Descending,
}

impl Direction {
    /// True when `a` ranks before `b` under this direction.
    #[must_use]
    pub fn ranks_before(self, a: f64, b: f64) -> bool {
        match self {
            Direction::Ascending => a < b,
            Direction::Descending => a > b,
        }
    }
}

/// One party's scored list with counted access primitives.
#[derive(Clone, Debug)]
pub struct RankedList {
    /// `(id, score)` pairs in rank order.
    sorted: Vec<(ItemId, f64)>,
    /// Score lookup by id (dense: ids must be `0..n`).
    by_id: Vec<f64>,
    direction: Direction,
    stats: AccessStats,
}

impl RankedList {
    /// Builds a list from per-id scores (`scores[id]`), sorting internally.
    ///
    /// Ties are broken by id so runs are deterministic.
    #[must_use]
    pub fn from_scores(scores: Vec<f64>, direction: Direction) -> Self {
        let mut sorted: Vec<(ItemId, f64)> = scores.iter().copied().enumerate().collect();
        sorted.sort_by(|a, b| {
            let ord = match direction {
                Direction::Ascending => a.1.total_cmp(&b.1),
                Direction::Descending => b.1.total_cmp(&a.1),
            };
            ord.then(a.0.cmp(&b.0))
        });
        RankedList { sorted, by_id: scores, direction, stats: AccessStats::default() }
    }

    /// Number of items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True when the list holds no items.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// The sort direction.
    #[must_use]
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Sequential access: the `pos`-th best `(id, score)`. Counted.
    ///
    /// Returns `None` past the end.
    pub fn sequential_access(&mut self, pos: usize) -> Option<(ItemId, f64)> {
        let entry = self.sorted.get(pos).copied();
        if entry.is_some() {
            self.stats.sequential += 1;
        }
        entry
    }

    /// Random access: the score of `id`. Counted.
    ///
    /// Returns `None` for unknown ids.
    pub fn random_access(&mut self, id: ItemId) -> Option<f64> {
        let score = self.by_id.get(id).copied();
        if score.is_some() {
            self.stats.random += 1;
        }
        score
    }

    /// Uncounted peek used by tests and oracles.
    #[must_use]
    pub fn peek_score(&self, id: ItemId) -> Option<f64> {
        self.by_id.get(id).copied()
    }

    /// Uncounted view of the full ranking (test oracle only).
    #[must_use]
    pub fn ranking(&self) -> &[(ItemId, f64)] {
        &self.sorted
    }

    /// Accesses performed so far.
    #[must_use]
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// Resets the access counters.
    pub fn reset_stats(&mut self) {
        self.stats = AccessStats::default();
    }
}

/// Sums the access stats of many lists.
#[must_use]
pub fn total_stats(lists: &[RankedList]) -> AccessStats {
    lists.iter().fold(AccessStats::default(), |acc, l| acc.merged(l.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_ascending_with_id_tiebreak() {
        let mut l = RankedList::from_scores(vec![3.0, 1.0, 2.0, 1.0], Direction::Ascending);
        assert_eq!(l.sequential_access(0), Some((1, 1.0)));
        assert_eq!(l.sequential_access(1), Some((3, 1.0)), "tie broken by id");
        assert_eq!(l.sequential_access(2), Some((2, 2.0)));
        assert_eq!(l.sequential_access(3), Some((0, 3.0)));
        assert_eq!(l.sequential_access(4), None);
    }

    #[test]
    fn sorts_descending() {
        let mut l = RankedList::from_scores(vec![3.0, 1.0, 2.0], Direction::Descending);
        assert_eq!(l.sequential_access(0), Some((0, 3.0)));
        assert_eq!(l.sequential_access(2), Some((1, 1.0)));
    }

    #[test]
    fn access_counting() {
        let mut l = RankedList::from_scores(vec![1.0, 2.0], Direction::Ascending);
        let _ = l.sequential_access(0);
        let _ = l.random_access(1);
        let _ = l.random_access(99); // miss: not counted
        let _ = l.sequential_access(9); // miss: not counted
        assert_eq!(l.stats(), AccessStats { sequential: 1, random: 1 });
        l.reset_stats();
        assert_eq!(l.stats().total(), 0);
    }

    #[test]
    fn peek_does_not_count() {
        let l = RankedList::from_scores(vec![1.0, 2.0], Direction::Ascending);
        assert_eq!(l.peek_score(1), Some(2.0));
        assert_eq!(l.stats().total(), 0);
    }

    #[test]
    fn stats_merge() {
        let a = AccessStats { sequential: 2, random: 3 };
        let b = AccessStats { sequential: 1, random: 1 };
        assert_eq!(a.merged(b), AccessStats { sequential: 3, random: 4 });
        assert_eq!(a.total(), 5);
    }

    #[test]
    fn direction_ranks_before() {
        assert!(Direction::Ascending.ranks_before(1.0, 2.0));
        assert!(!Direction::Ascending.ranks_before(2.0, 1.0));
        assert!(Direction::Descending.ranks_before(2.0, 1.0));
    }
}
