//! The naive multi-party top-k baseline: random-access every score in every
//! list, aggregate, and sort. Correct by construction; used as the oracle
//! for the optimized algorithms and as the cost baseline (`VFPS-SM-BASE`
//! touches exactly this many items per query).

use crate::list::{Direction, ItemId, RankedList};
use crate::TopkOutcome;

/// Full-scan top-k: aggregates every id across all lists.
///
/// # Panics
/// Panics if `lists` is empty or lists disagree on length/direction.
#[must_use]
pub fn naive_topk(lists: &mut [RankedList], k: usize) -> TopkOutcome {
    assert!(!lists.is_empty(), "need at least one list");
    let n = lists[0].len();
    let direction = lists[0].direction();
    assert!(
        lists.iter().all(|l| l.len() == n && l.direction() == direction),
        "lists must agree on length and direction"
    );
    let mut agg: Vec<(ItemId, f64)> = (0..n).map(|id| (id, 0.0)).collect();
    for list in lists.iter_mut() {
        for entry in agg.iter_mut() {
            entry.1 += list.random_access(entry.0).expect("dense ids");
        }
    }
    sort_for(direction, &mut agg);
    agg.truncate(k);
    // Every id is point-looked-up in every list: the full n x |P| cost.
    TopkOutcome { topk: agg, candidates_examined: n, depth: 0, random_accesses: n * lists.len() }
}

/// Sorts aggregate scores best-first for `direction`, ties by id.
pub(crate) fn sort_for(direction: Direction, items: &mut [(ItemId, f64)]) {
    items.sort_by(|a, b| {
        let ord = match direction {
            Direction::Ascending => a.1.total_cmp(&b.1),
            Direction::Descending => b.1.total_cmp(&a.1),
        };
        ord.then(a.0.cmp(&b.0))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::total_stats;

    fn lists() -> Vec<RankedList> {
        vec![
            RankedList::from_scores(vec![1.0, 5.0, 2.0, 9.0], Direction::Ascending),
            RankedList::from_scores(vec![2.0, 1.0, 3.0, 9.0], Direction::Ascending),
        ]
    }

    #[test]
    fn finds_minimal_k() {
        let mut ls = lists();
        let out = naive_topk(&mut ls, 2);
        // Aggregates: 3, 6, 5, 18 → minimal-2 = ids 0 and 2.
        assert_eq!(out.topk, vec![(0, 3.0), (2, 5.0)]);
        assert_eq!(out.candidates_examined, 4);
    }

    #[test]
    fn touches_every_item_in_every_list() {
        let mut ls = lists();
        let _ = naive_topk(&mut ls, 1);
        let stats = total_stats(&ls);
        assert_eq!(stats.random, 8, "2 lists x 4 items");
        assert_eq!(stats.sequential, 0);
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        let mut ls = lists();
        let out = naive_topk(&mut ls, 100);
        assert_eq!(out.topk.len(), 4);
    }

    #[test]
    fn descending_direction() {
        let mut ls = vec![
            RankedList::from_scores(vec![1.0, 5.0, 2.0], Direction::Descending),
            RankedList::from_scores(vec![2.0, 1.0, 3.0], Direction::Descending),
        ];
        let out = naive_topk(&mut ls, 1);
        assert_eq!(out.topk, vec![(1, 6.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one list")]
    fn empty_input_panics() {
        let _ = naive_topk(&mut [], 1);
    }
}
