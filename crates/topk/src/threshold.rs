//! The Threshold Algorithm (TA) of Fagin, Lotem & Naor (PODS 2001).
//!
//! TA interleaves sequential and random access: each newly surfaced item is
//! immediately scored in full, and the scan stops as soon as `k` items beat
//! the *threshold* — the aggregate of the scores at the current scan depth,
//! which lower-bounds (for ascending distances) everything still unseen.
//! TA is instance-optimal and typically stops much earlier than FA.

use crate::list::{Direction, ItemId, RankedList};
use crate::naive::sort_for;
use crate::TopkOutcome;

/// Runs the Threshold Algorithm over `lists`, returning the best `k` items.
///
/// # Panics
/// Panics if `lists` is empty or lists disagree on length/direction.
#[must_use]
pub fn threshold_topk(lists: &mut [RankedList], k: usize) -> TopkOutcome {
    assert!(!lists.is_empty(), "need at least one list");
    let n = lists[0].len();
    let direction = lists[0].direction();
    assert!(
        lists.iter().all(|l| l.len() == n && l.direction() == direction),
        "lists must agree on length and direction"
    );
    let k = k.min(n);

    let mut scored = vec![false; n];
    let mut best: Vec<(ItemId, f64)> = Vec::new();
    let mut depth = 0usize;
    let mut candidates_examined = 0usize;

    while depth < n {
        let mut frontier = Vec::with_capacity(lists.len());
        let mut surfaced = Vec::new();
        for list in lists.iter_mut() {
            let (id, score) = list.sequential_access(depth).expect("depth < n");
            frontier.push(score);
            if !scored[id] {
                scored[id] = true;
                surfaced.push(id);
            }
        }
        for id in surfaced {
            let total: f64 =
                lists.iter_mut().map(|l| l.random_access(id).expect("dense ids")).sum();
            candidates_examined += 1;
            best.push((id, total));
            sort_for(direction, &mut best);
            best.truncate(k);
        }
        depth += 1;

        // Threshold: the aggregate at the scan frontier. For ascending
        // distances this lower-bounds every unseen item's aggregate. The
        // comparison is strict so exact ties never cut off an unseen item
        // that deterministic id-tiebreaking would have ranked first; ties
        // cost extra depth but keep results identical to the exhaustive
        // oracle.
        let tau: f64 = frontier.iter().sum();
        let kth_is_final = best.len() == k
            && match direction {
                Direction::Ascending => best[k - 1].1 < tau,
                Direction::Descending => best[k - 1].1 > tau,
            };
        if kth_is_final {
            break;
        }
    }

    // TA scores each surfaced item in full the moment it appears, so its
    // random-access bill is exactly |P| lookups per candidate.
    TopkOutcome {
        topk: best,
        candidates_examined,
        depth,
        random_accesses: candidates_examined * lists.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fagin::fagin_topk;
    use crate::naive::naive_topk;

    fn mk(scores: &[Vec<f64>]) -> Vec<RankedList> {
        scores.iter().map(|s| RankedList::from_scores(s.clone(), Direction::Ascending)).collect()
    }

    #[test]
    fn matches_naive() {
        let scores = [
            vec![0.5, 2.0, 1.0, 4.0, 3.0, 0.1, 7.0, 0.9],
            vec![1.5, 0.2, 2.0, 0.4, 3.0, 2.2, 0.1, 1.1],
        ];
        for k in 1..=8 {
            let mut a = mk(&scores);
            let mut b = mk(&scores);
            assert_eq!(threshold_topk(&mut a, k).topk, naive_topk(&mut b, k).topk, "k={k}");
        }
    }

    #[test]
    fn stops_no_later_than_fagin() {
        let scores = [
            vec![1.0, 2.0, 6.0, 9.0, 0.5, 4.0],
            vec![3.0, 3.5, 1.0, 2.0, 5.0, 0.2],
            vec![1.0, 1.5, 2.0, 9.0, 0.1, 3.3],
        ];
        let mut a = mk(&scores);
        let mut b = mk(&scores);
        let ta = threshold_topk(&mut a, 2);
        let fa = fagin_topk(&mut b, 2);
        assert!(ta.depth <= fa.depth, "TA depth {} vs FA depth {}", ta.depth, fa.depth);
        assert_eq!(ta.topk, fa.topk);
    }

    #[test]
    fn early_stop_on_aligned_lists() {
        let s: Vec<f64> = (0..100).map(f64::from).collect();
        let mut lists = mk(&[s.clone(), s]);
        let out = threshold_topk(&mut lists, 1);
        assert_eq!(out.topk[0].0, 0);
        assert!(out.depth <= 2, "aligned lists stop almost immediately");
    }

    #[test]
    fn descending_threshold_logic() {
        let mut lists = vec![
            RankedList::from_scores(vec![0.9, 0.1, 0.5], Direction::Descending),
            RankedList::from_scores(vec![0.8, 0.2, 0.6], Direction::Descending),
        ];
        let out = threshold_topk(&mut lists, 1);
        assert_eq!(out.topk[0].0, 0);
        assert!((out.topk[0].1 - 1.7).abs() < 1e-12);
    }

    #[test]
    fn k_equals_n() {
        let scores = [vec![2.0, 1.0, 3.0], vec![1.0, 2.0, 0.5]];
        let mut a = mk(&scores);
        let mut b = mk(&scores);
        assert_eq!(threshold_topk(&mut a, 3).topk, naive_topk(&mut b, 3).topk);
    }
}
