//! Server-side streaming Fagin, matching VFPS-SM's optimized workflow
//! (paper §IV-B, Fig. 3, steps ①–③).
//!
//! In the federated setting the aggregation server never sees scores during
//! the sequential phase — participants stream mini-batches of **pseudo IDs
//! only**, in their local rank order. [`StreamingFagin`] consumes those
//! batches, tracks how many parties each id has surfaced in, and reports
//! completion once `k` ids are fully seen. Every surfaced id becomes a
//! *candidate* whose (encrypted) partial distances are then fetched — the
//! set the paper's Fig. 9 counts.

use crate::list::ItemId;
use std::collections::HashSet;

/// Incremental Fagin state fed by per-party pseudo-ID batches.
#[derive(Clone, Debug)]
pub struct StreamingFagin {
    parties: usize,
    k: usize,
    seen_count: Vec<u32>,
    surfaced: Vec<ItemId>,
    fully_seen: usize,
    rows_consumed: Vec<usize>,
    ids_received: usize,
}

impl StreamingFagin {
    /// Creates the state machine for `parties` lists over ids `0..n`,
    /// stopping once `k` ids are seen in all lists.
    ///
    /// # Panics
    /// Panics if `parties == 0` or `k == 0`.
    #[must_use]
    pub fn new(parties: usize, n: usize, k: usize) -> Self {
        assert!(parties > 0, "need at least one party");
        assert!(k > 0, "k must be positive");
        StreamingFagin {
            parties,
            k: k.min(n),
            seen_count: vec![0; n],
            surfaced: Vec::new(),
            fully_seen: 0,
            rows_consumed: vec![0; parties],
            ids_received: 0,
        }
    }

    /// Feeds the next mini-batch of ids from `party` (in its rank order).
    ///
    /// Ids past the completion point are still absorbed (they were already
    /// in flight); the caller should consult [`StreamingFagin::is_complete`]
    /// before requesting more batches.
    ///
    /// # Panics
    /// Panics on an out-of-range party or id.
    pub fn feed(&mut self, party: usize, ids: &[ItemId]) {
        assert!(party < self.parties, "party {party} out of range");
        for &id in ids {
            assert!(id < self.seen_count.len(), "id {id} out of range");
            self.rows_consumed[party] += 1;
            self.ids_received += 1;
            let c = &mut self.seen_count[id];
            if *c == 0 {
                self.surfaced.push(id);
            }
            *c += 1;
            if *c as usize == self.parties {
                self.fully_seen += 1;
            }
            if self.is_complete() {
                // Absorb nothing further from this batch: the sequential
                // phase ends the moment the k-th id completes.
                break;
            }
        }
    }

    /// True once `k` ids have appeared in all lists.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.fully_seen >= self.k
    }

    /// All ids surfaced so far, in first-seen order — the candidate set for
    /// the encrypted random-access phase.
    #[must_use]
    pub fn candidates(&self) -> &[ItemId] {
        &self.surfaced
    }

    /// Candidate count (the paper's Fig. 9 metric, per query).
    #[must_use]
    pub fn candidate_count(&self) -> usize {
        self.surfaced.len()
    }

    /// Unique candidate set as a hash set (convenience).
    #[must_use]
    pub fn candidate_set(&self) -> HashSet<ItemId> {
        self.surfaced.iter().copied().collect()
    }

    /// Rows consumed from each party's ranking so far.
    #[must_use]
    pub fn rows_consumed(&self) -> &[usize] {
        &self.rows_consumed
    }

    /// Total ids received across all parties (communication volume of the
    /// sequential phase, in ids).
    #[must_use]
    pub fn ids_received(&self) -> usize {
        self.ids_received
    }

    /// Number of ids fully seen so far.
    #[must_use]
    pub fn fully_seen(&self) -> usize {
        self.fully_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Round-robin feeding with batch size `b` until completion; returns the
    /// final state.
    fn run_round_robin(rankings: &[Vec<ItemId>], k: usize, b: usize) -> StreamingFagin {
        let n = rankings[0].len();
        let mut sf = StreamingFagin::new(rankings.len(), n, k);
        let mut pos = vec![0usize; rankings.len()];
        while !sf.is_complete() {
            for (p, ranking) in rankings.iter().enumerate() {
                let end = (pos[p] + b).min(ranking.len());
                sf.feed(p, &ranking[pos[p]..end]);
                pos[p] = end;
                if sf.is_complete() {
                    break;
                }
            }
        }
        sf
    }

    #[test]
    fn completes_when_k_ids_fully_seen() {
        // Matches the fagin_paper_fig2 example (rank orders only).
        let rankings = vec![vec![0, 1, 2, 3], vec![2, 3, 0, 1], vec![0, 1, 2, 3]];
        let sf = run_round_robin(&rankings, 2, 1);
        assert!(sf.is_complete());
        assert_eq!(sf.fully_seen(), 2);
        assert_eq!(sf.candidate_count(), 4, "X1..X4 all surfaced");
    }

    #[test]
    fn aligned_rankings_need_k_rows() {
        let rankings = vec![vec![5, 4, 3, 2, 1, 0], vec![5, 4, 3, 2, 1, 0]];
        let sf = run_round_robin(&rankings, 3, 1);
        assert_eq!(sf.candidate_count(), 3);
        assert!(sf.rows_consumed().iter().all(|&r| r == 3));
    }

    #[test]
    fn batch_size_does_not_change_candidates_much() {
        let rankings = vec![
            vec![0, 1, 2, 3, 4, 5, 6, 7],
            vec![7, 6, 5, 4, 3, 2, 1, 0],
            vec![3, 1, 4, 0, 5, 2, 7, 6],
        ];
        let s1 = run_round_robin(&rankings, 2, 1);
        let s4 = run_round_robin(&rankings, 2, 4);
        assert!(s1.is_complete() && s4.is_complete());
        // Bigger batches may overshoot, never undershoot.
        assert!(s4.candidate_count() >= s1.candidate_count());
    }

    #[test]
    fn stops_absorbing_mid_batch_after_completion() {
        let mut sf = StreamingFagin::new(1, 10, 2);
        sf.feed(0, &[9, 8, 7, 6, 5]);
        assert!(sf.is_complete());
        // Single party: every id completes instantly; the k-th completes at
        // the second element, so the rest of the batch is dropped.
        assert_eq!(sf.candidate_count(), 2);
        assert_eq!(sf.ids_received(), 2);
    }

    #[test]
    fn candidate_set_matches_surfaced() {
        let mut sf = StreamingFagin::new(2, 5, 5);
        sf.feed(0, &[0, 1]);
        sf.feed(1, &[1, 2]);
        assert_eq!(sf.candidate_set(), [0, 1, 2].into_iter().collect());
        assert_eq!(sf.fully_seen(), 1);
        assert!(!sf.is_complete());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_party() {
        let mut sf = StreamingFagin::new(2, 5, 1);
        sf.feed(2, &[0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_id() {
        let mut sf = StreamingFagin::new(2, 5, 1);
        sf.feed(0, &[5]);
    }

    #[test]
    fn k_clamped_to_n() {
        let mut sf = StreamingFagin::new(1, 3, 10);
        sf.feed(0, &[0, 1, 2]);
        assert!(sf.is_complete());
    }
}
