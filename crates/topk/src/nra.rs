//! The No-Random-Access algorithm (NRA) of Fagin, Lotem & Naor (PODS
//! 2001).
//!
//! NRA only ever reads the sorted lists sequentially — the access pattern
//! of a federated setting where participants are unwilling (or unable) to
//! answer point lookups. Every seen item carries a *best-case* and
//! *worst-case* aggregate bound; the scan stops once `k` items' worst
//! cases beat everything else's best case.
//!
//! For ascending (distance) lists:
//!
//! * best case  = seen scores + the current frontier of each unseen list
//!   (an unseen entry can score no less than the frontier);
//! * worst case = seen scores + each unseen list's maximum score (list
//!   score ranges are cheap public metadata a party can share once).
//!
//! NRA guarantees the correct top-k *set*; early-stopped scores may be
//! partial, so [`nra_topk`] finishes by reporting best-case bounds and
//! tests compare ids against the exhaustive oracle.

use crate::list::{Direction, ItemId, RankedList};
use crate::TopkOutcome;

/// Runs NRA over ascending lists, returning the best `k` items.
///
/// # Panics
/// Panics if `lists` is empty, lists disagree on length, or any list is
/// sorted descending (NRA is implemented for the distance orientation the
/// VFL protocols use).
#[must_use]
pub fn nra_topk(lists: &mut [RankedList], k: usize) -> TopkOutcome {
    assert!(!lists.is_empty(), "need at least one list");
    let n = lists[0].len();
    assert!(
        lists.iter().all(|l| l.len() == n && l.direction() == Direction::Ascending),
        "NRA expects ascending lists of equal length"
    );
    let k = k.min(n);
    let parties = lists.len();

    // Public per-list score maxima (metadata, not a counted access).
    let maxima: Vec<f64> =
        lists.iter().map(|l| l.ranking().last().map(|e| e.1).unwrap_or(0.0)).collect();

    // seen[id][party] = Some(score)
    let mut seen: Vec<Vec<Option<f64>>> = vec![vec![None; parties]; n];
    let mut surfaced = vec![false; n];
    let mut depth = 0usize;

    while depth < n {
        let mut frontier = vec![0.0f64; parties];
        for (pi, list) in lists.iter_mut().enumerate() {
            let (id, score) = list.sequential_access(depth).expect("depth < n");
            frontier[pi] = score;
            seen[id][pi] = Some(score);
            surfaced[id] = true;
        }
        depth += 1;

        // Bounds for every surfaced item.
        let mut bounds: Vec<(ItemId, f64, f64)> = Vec::new(); // (id, best, worst)
        for id in 0..n {
            if !surfaced[id] {
                continue;
            }
            let mut best = 0.0;
            let mut worst = 0.0;
            for pi in 0..parties {
                match seen[id][pi] {
                    Some(s) => {
                        best += s;
                        worst += s;
                    }
                    None => {
                        best += frontier[pi];
                        worst += maxima[pi];
                    }
                }
            }
            bounds.push((id, best, worst));
        }
        if bounds.len() < k {
            continue;
        }

        // Candidate top-k by worst case (ties by id).
        bounds.sort_by(|a, b| a.2.total_cmp(&b.2).then(a.0.cmp(&b.0)));
        let kth_worst = bounds[k - 1].2;

        // Everything else's best case, including completely unseen items
        // (their best case is the frontier sum).
        let frontier_sum: f64 = frontier.iter().sum();
        let rest_best = bounds[k..]
            .iter()
            .map(|e| e.1)
            .fold(f64::INFINITY, f64::min)
            .min(if depth < n { frontier_sum } else { f64::INFINITY });

        if kth_worst < rest_best {
            let topk: Vec<(ItemId, f64)> = bounds[..k].iter().map(|e| (e.0, e.1)).collect();
            let candidates_examined = bounds.len();
            return TopkOutcome { topk, candidates_examined, depth, random_accesses: 0 };
        }
    }

    // Full scan: every score is known exactly.
    let mut exact: Vec<(ItemId, f64)> =
        (0..n).map(|id| (id, seen[id].iter().map(|s| s.expect("fully scanned")).sum())).collect();
    exact.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    exact.truncate(k);
    TopkOutcome { topk: exact, candidates_examined: n, depth, random_accesses: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::total_stats;
    use crate::naive::naive_topk;

    fn mk(scores: &[Vec<f64>]) -> Vec<RankedList> {
        scores.iter().map(|s| RankedList::from_scores(s.clone(), Direction::Ascending)).collect()
    }

    #[test]
    fn matches_naive_ids_as_set() {
        // NRA guarantees the top-k *set*; ordering inside the set follows
        // worst-case bounds, which may differ from true-score order when
        // it stops early — so compare sets.
        let scores = [
            vec![0.5, 2.0, 1.0, 4.0, 3.0, 0.1, 7.0, 0.9],
            vec![1.5, 0.2, 2.0, 0.4, 3.0, 2.2, 0.1, 1.1],
            vec![0.3, 1.9, 0.8, 1.4, 0.2, 3.1, 2.4, 0.6],
        ];
        for k in 1..=8 {
            let mut a = mk(&scores);
            let mut b = mk(&scores);
            let mut nra = nra_topk(&mut a, k).ids();
            let mut oracle = naive_topk(&mut b, k).ids();
            nra.sort_unstable();
            oracle.sort_unstable();
            assert_eq!(nra, oracle, "k={k}");
        }
    }

    #[test]
    fn never_performs_random_access() {
        let scores = [vec![0.5, 2.0, 1.0, 4.0, 3.0], vec![1.5, 0.2, 2.0, 0.4, 3.0]];
        let mut lists = mk(&scores);
        let _ = nra_topk(&mut lists, 2);
        let stats = total_stats(&lists);
        assert_eq!(stats.random, 0, "NRA must not random-access");
        assert!(stats.sequential > 0);
    }

    #[test]
    fn early_stop_on_aligned_lists() {
        let s: Vec<f64> = (0..200).map(f64::from).collect();
        let mut lists = mk(&[s.clone(), s]);
        let out = nra_topk(&mut lists, 1);
        assert_eq!(out.topk[0].0, 0);
        assert!(out.depth < 200, "aligned lists must stop early, depth {}", out.depth);
    }

    #[test]
    fn full_scan_fallback_is_exact() {
        // All ties: bounds never strictly separate, so NRA scans to the end
        // and returns the exact id-tiebroken answer.
        let mut lists = mk(&[vec![1.0; 6], vec![1.0; 6]]);
        let out = nra_topk(&mut lists, 3);
        assert_eq!(out.ids(), vec![0, 1, 2]);
        assert_eq!(out.depth, 6);
    }

    #[test]
    fn single_list() {
        let mut lists = mk(&[vec![3.0, 1.0, 2.0]]);
        let out = nra_topk(&mut lists, 2);
        assert_eq!(out.ids(), vec![1, 2]);
    }
}
