//! # vfps-topk — multi-party top-k query algorithms
//!
//! The query-processing substrate behind VFPS-SM's efficiency optimization:
//! each participant holds a locally sorted list of partial distances for the
//! same instances, and the aggregation server must find the `k` instances
//! with the smallest *summed* distance while touching as few entries as
//! possible (every touched entry costs an encryption + a transmission).
//!
//! * [`naive::naive_topk`] — full scan; the cost profile of `VFPS-SM-BASE`.
//! * [`fagin::fagin_topk`] — Fagin's algorithm (FA), the paper's choice.
//! * [`threshold::threshold_topk`] — the Threshold Algorithm (TA); the paper
//!   notes VFPS-SM "also supports other top-k query algorithms".
//! * [`nra::nra_topk`] — the No-Random-Access algorithm, for settings where
//!   participants cannot answer point lookups at all.
//! * [`stream::StreamingFagin`] — the server-side incremental FA fed with
//!   pseudo-ID mini-batches, exactly as the federated workflow runs it.
//!
//! All algorithms operate on access-counted [`list::RankedList`]s so their
//! sequential/random access mix can be compared (see the
//! `topk_algorithms` bench).
//!
//! ```
//! use vfps_topk::list::{Direction, RankedList};
//! use vfps_topk::fagin::fagin_topk;
//!
//! let mut lists = vec![
//!     RankedList::from_scores(vec![0.1, 0.9, 0.5], Direction::Ascending),
//!     RankedList::from_scores(vec![0.2, 0.8, 0.6], Direction::Ascending),
//! ];
//! let out = fagin_topk(&mut lists, 1);
//! assert_eq!(out.topk[0].0, 0); // instance 0 has the smallest summed score
//! ```

#![warn(missing_docs)]

pub mod compare;
pub mod fagin;
pub mod list;
pub mod naive;
pub mod nra;
pub mod stream;
pub mod threshold;

pub use compare::{compare_all, Algorithm, ComparisonRow};
pub use list::{AccessStats, Direction, ItemId, RankedList};

/// Result of a top-k run, including the work accounting the paper's
/// ablations report.
#[derive(Clone, Debug, PartialEq)]
pub struct TopkOutcome {
    /// The best `k` `(id, aggregate score)` pairs, best first.
    pub topk: Vec<(ItemId, f64)>,
    /// Number of distinct items whose full score was assembled — for the
    /// federated protocol this is the number of instances that must be
    /// encrypted and communicated (Fig. 9's metric).
    pub candidates_examined: usize,
    /// Sequential scan depth reached (0 when the algorithm does not scan).
    pub depth: usize,
    /// Point lookups issued against the sorted lists — each one is a score
    /// a participant must serve (and, federated, encrypt) outside the
    /// sequential stream. Fagin's savings argument is exactly that this
    /// count covers only the *missing* entries of partially-seen items,
    /// never the full `|P|`-score vector.
    pub random_accesses: usize,
}

impl TopkOutcome {
    /// Just the ids, best first.
    #[must_use]
    pub fn ids(&self) -> Vec<ItemId> {
        self.topk.iter().map(|e| e.0).collect()
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::fagin::fagin_topk;
    use crate::naive::naive_topk;
    use crate::stream::StreamingFagin;
    use crate::threshold::threshold_topk;
    use proptest::prelude::*;

    fn score_matrix() -> impl Strategy<Value = Vec<Vec<f64>>> {
        // parties in 1..=4, items in 1..=24, scores in a bounded range.
        (1usize..=4, 1usize..=24).prop_flat_map(|(p, n)| {
            proptest::collection::vec(proptest::collection::vec(0.0f64..100.0, n), p)
        })
    }

    /// Score matrices drawn from a tiny integer alphabet (0..6) so ties —
    /// within a list and across lists — are the common case, paired with a
    /// direction flag. Integer-valued f64 sums are exact, so full
    /// `(id, score)` outcomes can be compared, not just id sets.
    fn tied_score_matrix() -> impl Strategy<Value = (Vec<Vec<f64>>, bool)> {
        (1usize..=4, 1usize..=24, 0usize..2).prop_flat_map(|(p, n, dir)| {
            proptest::collection::vec(proptest::collection::vec(0usize..6, n), p).prop_map(
                move |m| {
                    let scores =
                        m.into_iter().map(|r| r.into_iter().map(|v| v as f64).collect()).collect();
                    (scores, dir == 1)
                },
            )
        })
    }

    proptest! {
        /// FA and TA agree with the exhaustive oracle on the returned ids
        /// for every k. (Scores can differ only by float summation order,
        /// so compare ids.)
        #[test]
        fn fagin_and_threshold_match_naive(scores in score_matrix(), k in 1usize..8) {
            let mk = |scores: &Vec<Vec<f64>>| -> Vec<RankedList> {
                scores.iter()
                    .map(|s| RankedList::from_scores(s.clone(), Direction::Ascending))
                    .collect()
            };
            let mut a = mk(&scores);
            let mut b = mk(&scores);
            let mut c = mk(&scores);
            let mut d = mk(&scores);
            let oracle = naive_topk(&mut a, k);
            let fa = fagin_topk(&mut b, k);
            let ta = threshold_topk(&mut c, k);
            prop_assert_eq!(fa.ids(), oracle.ids());
            prop_assert_eq!(ta.ids(), oracle.ids());
            // NRA guarantees the set, not the internal order.
            let mut nra_ids = crate::nra::nra_topk(&mut d, k).ids();
            let mut oracle_ids = oracle.ids();
            nra_ids.sort_unstable();
            oracle_ids.sort_unstable();
            prop_assert_eq!(nra_ids, oracle_ids);
        }

        /// Fagin's candidate set always contains the true top-k, regardless
        /// of the feeding batch size — the correctness property the
        /// encrypted phase relies on.
        #[test]
        fn streaming_candidates_cover_topk(
            scores in score_matrix(),
            k in 1usize..6,
            batch in 1usize..5,
        ) {
            let n = scores[0].len();
            let k = k.min(n);
            let rankings: Vec<Vec<ItemId>> = scores.iter().map(|s| {
                let l = RankedList::from_scores(s.clone(), Direction::Ascending);
                l.ranking().iter().map(|e| e.0).collect()
            }).collect();
            let mut sf = StreamingFagin::new(scores.len(), n, k);
            let mut pos = vec![0usize; scores.len()];
            'outer: while !sf.is_complete() {
                for p in 0..scores.len() {
                    let end = (pos[p] + batch).min(n);
                    sf.feed(p, &rankings[p][pos[p]..end]);
                    pos[p] = end;
                    if sf.is_complete() { break 'outer; }
                }
            }
            let mut oracle_lists: Vec<RankedList> = scores.iter()
                .map(|s| RankedList::from_scores(s.clone(), Direction::Ascending))
                .collect();
            let truth = naive_topk(&mut oracle_lists, k);
            let cands = sf.candidate_set();
            for id in truth.ids() {
                prop_assert!(cands.contains(&id), "top-k id {} missing from candidates", id);
            }
        }

        /// FA matches the exhaustive oracle on heavily tied integer scores
        /// in both directions (ties are where sort/scan order bugs hide:
        /// integer scores make aggregates exact, and the shared id
        /// tiebreak makes the full ranking deterministic), and the
        /// corrected random-access accounting never exceeds the trivial
        /// bound of |P| lookups per examined candidate.
        #[test]
        fn fagin_matches_naive_on_ties_and_bounds_random_accesses(
            (scores, descending) in tied_score_matrix(),
            k in 1usize..8,
        ) {
            let direction =
                if descending { Direction::Descending } else { Direction::Ascending };
            let mk = |scores: &Vec<Vec<f64>>| -> Vec<RankedList> {
                scores.iter()
                    .map(|s| RankedList::from_scores(s.clone(), direction))
                    .collect()
            };
            let mut a = mk(&scores);
            let mut b = mk(&scores);
            let oracle = naive_topk(&mut a, k);
            let fa = fagin_topk(&mut b, k);
            prop_assert_eq!(fa.ids(), oracle.ids());
            prop_assert_eq!(&fa.topk, &oracle.topk, "integer scores sum exactly");
            prop_assert!(
                fa.random_accesses <= fa.candidates_examined * scores.len(),
                "{} random accesses for {} candidates x {} parties",
                fa.random_accesses, fa.candidates_examined, scores.len()
            );
        }

        /// The candidate count never exceeds the instance count and never
        /// undercuts k.
        #[test]
        fn candidate_count_bounds(scores in score_matrix(), k in 1usize..6) {
            let n = scores[0].len();
            let k = k.min(n);
            let mut lists: Vec<RankedList> = scores.iter()
                .map(|s| RankedList::from_scores(s.clone(), Direction::Ascending))
                .collect();
            let out = fagin_topk(&mut lists, k);
            prop_assert!(out.candidates_examined <= n);
            prop_assert!(out.candidates_examined >= k);
        }
    }
}
