//! # vfps-obs — structured tracing, phase timers, and metrics export
//!
//! A zero-dependency observability plane for the selection pipeline. The
//! paper's headline claim is a *cost* claim — Fagin's algorithm cuts
//! encryption and communication work per query — so the repo needs to see
//! where time and traffic go per protocol phase, not just the end-of-run
//! [`OpLedger`](https://docs.rs) totals.
//!
//! Three primitives:
//!
//! * **Spans** — RAII phase timers ([`span()`](fn@span) / [`span!`]) that nest: a
//!   span opened while another is open on the same thread becomes its
//!   child. The finished capture is a forest, exported as a JSON tree.
//! * **Metrics** — monotonic counters, gauges, and log2-bucket histograms
//!   in a [`MetricsRegistry`] ([`counter_add`], [`gauge_set`],
//!   [`histogram_record`], [`time_us`]).
//! * **Captures** — [`start_capture`] / [`finish_capture`] bracket a run;
//!   [`Trace::to_json`] serializes the span tree + metrics snapshot.
//!
//! ## Observing, never perturbing
//!
//! Instrumentation must keep fault-free runs bit-identical to
//! uninstrumented ones, so every recording call first checks one relaxed
//! atomic and returns immediately when no capture is active — no lock, no
//! allocation, no clock read. Nothing recorded ever feeds back into
//! computation. Shared state sits behind a single `Mutex` (the same
//! single-lock discipline as `TrafficLedger` in `vfps-net`): coarse, but
//! un-deadlockable, and span recording is far off any per-element hot
//! path.
//!
//! ```
//! vfps_obs::start_capture();
//! {
//!     vfps_obs::span!("phase.outer");
//!     vfps_obs::counter_add("work.items", 3);
//!     {
//!         vfps_obs::span!("phase.inner");
//!     }
//! }
//! let trace = vfps_obs::finish_capture().expect("capture was active");
//! assert_eq!(trace.span_count("phase.outer"), 1);
//! assert_eq!(trace.metrics.counter("work.items"), 3);
//! println!("{}", trace.to_json());
//! ```

#![warn(missing_docs)]

pub mod metrics;
pub mod trace;

pub use metrics::{Histogram, MetricsRegistry, HISTOGRAM_BUCKETS};
pub use trace::{Trace, TraceSpan};

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

/// Fast-path switch: every recording call bails on this single load when
/// no capture is active.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The single lock over all capture state (TrafficLedger's discipline:
/// one lock, held briefly, never while calling out).
static RECORDER: Mutex<Option<Recorder>> = Mutex::new(None);

/// Monotone capture generation; guards from a previous capture detect via
/// mismatch that their span no longer exists.
static GENERATION: AtomicU64 = AtomicU64::new(0);

static THREAD_SEQ: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_LABEL: Cell<Option<u64>> = const { Cell::new(None) };
    /// Innermost open span on this thread: `(generation, span index)`.
    static CURRENT: Cell<Option<(u64, usize)>> = const { Cell::new(None) };
}

struct SpanRec {
    name: String,
    parent: Option<usize>,
    thread: u64,
    start_us: u64,
    duration_us: Option<u64>,
}

struct Recorder {
    generation: u64,
    epoch: Instant,
    spans: Vec<SpanRec>,
    metrics: MetricsRegistry,
}

fn lock() -> MutexGuard<'static, Option<Recorder>> {
    // A panic inside the short critical sections below cannot leave the
    // state torn; recover from poisoning rather than propagate it.
    RECORDER.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn thread_label() -> u64 {
    THREAD_LABEL.with(|l| {
        l.get().unwrap_or_else(|| {
            let v = THREAD_SEQ.fetch_add(1, Ordering::Relaxed);
            l.set(Some(v));
            v
        })
    })
}

/// True while a capture is active. Use to gate instrumentation whose mere
/// setup has a cost (clock reads, name formatting).
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Starts a fresh capture, discarding any capture already in progress.
pub fn start_capture() {
    let generation = GENERATION.fetch_add(1, Ordering::Relaxed) + 1;
    let mut guard = lock();
    *guard = Some(Recorder {
        generation,
        epoch: Instant::now(),
        spans: Vec::new(),
        metrics: MetricsRegistry::default(),
    });
    drop(guard);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Stops the active capture and returns its [`Trace`], or `None` when no
/// capture was active. Spans still open are closed at the capture end and
/// marked `closed: false`.
pub fn finish_capture() -> Option<Trace> {
    ENABLED.store(false, Ordering::SeqCst);
    let recorder = lock().take()?;
    let wall_us = elapsed_us(recorder.epoch);
    let closed: Vec<bool> = recorder.spans.iter().map(|s| s.duration_us.is_some()).collect();
    let spans: Vec<SpanRec> = recorder
        .spans
        .into_iter()
        .map(|mut s| {
            if s.duration_us.is_none() {
                s.duration_us = Some(wall_us.saturating_sub(s.start_us));
            }
            s
        })
        .collect();

    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut roots = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        match s.parent {
            Some(p) => children[p].push(i),
            None => roots.push(i),
        }
    }
    fn build(i: usize, spans: &[SpanRec], children: &[Vec<usize>], closed: &[bool]) -> TraceSpan {
        TraceSpan {
            name: spans[i].name.clone(),
            thread: spans[i].thread,
            start_us: spans[i].start_us,
            duration_us: spans[i].duration_us.unwrap_or(0),
            closed: closed[i],
            children: children[i].iter().map(|&c| build(c, spans, children, closed)).collect(),
        }
    }
    let forest = roots.iter().map(|&r| build(r, &spans, &children, &closed)).collect();
    Some(Trace { spans: forest, metrics: recorder.metrics, wall_us })
}

fn elapsed_us(epoch: Instant) -> u64 {
    u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// RAII guard returned by [`span()`](fn@span); the span closes when it drops.
pub struct SpanGuard {
    token: Option<SpanToken>,
}

struct SpanToken {
    generation: u64,
    index: usize,
    prev: Option<(u64, usize)>,
}

/// Opens a span named `name`. When no capture is active this is one
/// atomic load and returns an inert guard.
///
/// The innermost open span on the current thread becomes the parent;
/// spans opened on other threads (e.g. pool workers) start their own
/// roots.
#[must_use = "the span closes when the guard drops"]
pub fn span(name: &str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { token: None };
    }
    let mut guard = lock();
    let Some(rec) = guard.as_mut() else {
        return SpanGuard { token: None };
    };
    let generation = rec.generation;
    let parent = CURRENT.with(Cell::get).filter(|&(g, _)| g == generation).map(|(_, index)| index);
    let index = rec.spans.len();
    rec.spans.push(SpanRec {
        name: name.to_owned(),
        parent,
        thread: thread_label(),
        start_us: elapsed_us(rec.epoch),
        duration_us: None,
    });
    drop(guard);
    let prev = CURRENT.with(|c| c.replace(Some((generation, index))));
    SpanGuard { token: Some(SpanToken { generation, index, prev }) }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(token) = self.token.take() else { return };
        CURRENT.with(|c| c.set(token.prev));
        let mut guard = lock();
        if let Some(rec) = guard.as_mut() {
            if rec.generation == token.generation {
                let end = elapsed_us(rec.epoch);
                let span = &mut rec.spans[token.index];
                span.duration_us = Some(end.saturating_sub(span.start_us));
            }
        }
    }
}

/// Opens a span scoped to the enclosing block:
/// `span!("fed_knn.query");` is `let _guard = vfps_obs::span(...)` with a
/// hygienic binding.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _span_guard = $crate::span($name);
    };
}

/// Adds `delta` to counter `name` in the active capture (no-op otherwise).
pub fn counter_add(name: &str, delta: u64) {
    if !is_enabled() {
        return;
    }
    if let Some(rec) = lock().as_mut() {
        rec.metrics.counter_add(name, delta);
    }
}

/// Sets gauge `name` in the active capture (no-op otherwise).
pub fn gauge_set(name: &str, value: f64) {
    if !is_enabled() {
        return;
    }
    if let Some(rec) = lock().as_mut() {
        rec.metrics.gauge_set(name, value);
    }
}

/// Records `value` into histogram `name` in the active capture (no-op
/// otherwise).
pub fn histogram_record(name: &str, value: f64) {
    if !is_enabled() {
        return;
    }
    if let Some(rec) = lock().as_mut() {
        rec.metrics.histogram_record(name, value);
    }
}

/// Formats a labelled metric name — `base{key=value}` — for per-tenant
/// (or otherwise partitioned) series. Plain string composition, kept in
/// one place so every producer and every grepping consumer agree on the
/// shape; callers should gate on [`is_enabled`] if the formatting cost
/// matters on their path.
#[must_use]
pub fn labelled(base: &str, key: &str, value: &str) -> String {
    format!("{base}{{{key}={value}}}")
}

/// [`counter_add`] under a `base{key=value}` labelled name (no-op when no
/// capture is active — the name is never even formatted).
pub fn counter_add_labelled(base: &str, key: &str, value: &str, delta: u64) {
    if !is_enabled() {
        return;
    }
    counter_add(&labelled(base, key, value), delta);
}

/// [`gauge_set`] under a `base{key=value}` labelled name (no-op when no
/// capture is active — the name is never even formatted).
pub fn gauge_set_labelled(base: &str, key: &str, value: &str, v: f64) {
    if !is_enabled() {
        return;
    }
    gauge_set(&labelled(base, key, value), v);
}

/// [`histogram_record`] under a `base{key=value}` labelled name (no-op
/// when no capture is active — the name is never even formatted).
pub fn histogram_record_labelled(base: &str, key: &str, value: &str, v: f64) {
    if !is_enabled() {
        return;
    }
    histogram_record(&labelled(base, key, value), v);
}

/// Runs `f`, recording its wall time in microseconds into histogram
/// `name` when a capture is active. When none is, `f` runs with zero
/// added work — no clock is read.
pub fn time_us<T>(name: &str, f: impl FnOnce() -> T) -> T {
    if !is_enabled() {
        return f();
    }
    let t = Instant::now();
    let out = f();
    histogram_record(name, t.elapsed().as_secs_f64() * 1e6);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global capture is process-wide state; tests that use it run
    /// under this lock so `cargo test`'s parallel runner cannot interleave
    /// captures.
    static TEST_SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        TEST_SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_calls_are_inert() {
        let _s = serial();
        assert!(finish_capture().is_none());
        counter_add("x", 1);
        histogram_record("h", 1.0);
        gauge_set("g", 1.0);
        {
            span!("dead");
        }
        assert!(!is_enabled());
        assert!(finish_capture().is_none(), "nothing was captured");
    }

    #[test]
    fn spans_nest_into_a_tree() {
        let _s = serial();
        start_capture();
        {
            span!("outer");
            {
                span!("mid");
                {
                    span!("inner");
                }
            }
            {
                span!("mid");
            }
        }
        let t = finish_capture().expect("active capture");
        assert_eq!(t.spans.len(), 1, "one root");
        assert_eq!(t.spans[0].name, "outer");
        assert_eq!(t.spans[0].children.len(), 2, "two mid spans");
        assert_eq!(t.spans[0].children[0].children[0].name, "inner");
        assert_eq!(t.span_count("mid"), 2);
        assert!(t.spans[0].closed);
    }

    #[test]
    fn sibling_threads_record_their_own_roots() {
        let _s = serial();
        start_capture();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    span!("worker");
                    counter_add("worker.count", 1);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        let t = finish_capture().expect("active capture");
        assert_eq!(t.span_count("worker"), 4);
        assert_eq!(t.spans.len(), 4, "each thread is its own root");
        assert_eq!(t.metrics.counter("worker.count"), 4);
    }

    #[test]
    fn open_spans_are_closed_at_finish_and_marked() {
        let _s = serial();
        start_capture();
        let guard = span("leaks");
        let t = finish_capture().expect("active capture");
        assert_eq!(t.span_count("leaks"), 1);
        assert!(!t.spans[0].closed);
        drop(guard); // a stale-generation drop must be harmless
        assert!(finish_capture().is_none());
    }

    #[test]
    fn stale_guard_does_not_corrupt_next_capture() {
        let _s = serial();
        start_capture();
        let stale = span("old");
        start_capture(); // discards the first capture while `stale` is open
        {
            span!("new");
        }
        drop(stale);
        let t = finish_capture().expect("active capture");
        assert_eq!(t.span_count("new"), 1);
        assert_eq!(t.span_count("old"), 0, "the discarded span must not resurface");
    }

    #[test]
    fn time_us_records_when_enabled_and_passes_value_through() {
        let _s = serial();
        let v = time_us("off.path", || 7);
        assert_eq!(v, 7);
        start_capture();
        let v = time_us("on.path", || 40 + 2);
        assert_eq!(v, 42);
        let t = finish_capture().expect("active capture");
        assert_eq!(t.metrics.histogram("on.path").expect("recorded").count(), 1);
        assert!(t.metrics.histogram("off.path").is_none());
    }

    #[test]
    fn labelled_metrics_partition_by_value() {
        let _s = serial();
        assert_eq!(labelled("serve.accepted", "tenant", "Bank"), "serve.accepted{tenant=Bank}");
        counter_add_labelled("serve.accepted", "tenant", "Bank", 1); // inert: no capture
        start_capture();
        counter_add_labelled("serve.accepted", "tenant", "Bank", 2);
        counter_add_labelled("serve.accepted", "tenant", "Rice", 5);
        gauge_set_labelled("serve.queue_depth", "tenant", "Bank", 3.0);
        histogram_record_labelled("serve.wait_us", "tenant", "Rice", 7.0);
        let t = finish_capture().expect("active capture");
        assert_eq!(t.metrics.counter("serve.accepted{tenant=Bank}"), 2);
        assert_eq!(t.metrics.counter("serve.accepted{tenant=Rice}"), 5);
        assert_eq!(t.metrics.gauge("serve.queue_depth{tenant=Bank}"), Some(3.0));
        assert_eq!(t.metrics.histogram("serve.wait_us{tenant=Rice}").expect("hist").count(), 1);
    }

    #[test]
    fn capture_json_round_trips_span_names() {
        let _s = serial();
        start_capture();
        {
            span!("json.root");
            counter_add("json.counter", 3);
        }
        let t = finish_capture().expect("active capture");
        let j = t.to_json();
        assert!(j.contains("\"json.root\""), "{j}");
        assert!(j.contains("\"json.counter\": 3"), "{j}");
    }
}
