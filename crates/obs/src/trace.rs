//! Finished captures: the span tree, the metrics snapshot, and the
//! hand-rolled JSON exporter (the workspace has no serde — see
//! `shims/README.md`).

use crate::metrics::{Histogram, MetricsRegistry};

/// One span in the finished tree.
#[derive(Clone, Debug)]
pub struct TraceSpan {
    /// Dotted phase name, e.g. `"fed_knn.query"`.
    pub name: String,
    /// Small per-thread label (assigned in first-use order, not an OS id).
    pub thread: u64,
    /// Start offset from the capture epoch, microseconds.
    pub start_us: u64,
    /// Span duration in microseconds. For spans still open when the
    /// capture finished, this is the time until the capture end.
    pub duration_us: u64,
    /// False when the span was still open at [`crate::finish_capture`].
    pub closed: bool,
    /// Nested spans, in recording order.
    pub children: Vec<TraceSpan>,
}

/// A completed capture: the span forest plus the metrics snapshot.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Root spans (those with no enclosing span on their thread).
    pub spans: Vec<TraceSpan>,
    /// Counters, gauges, and histograms recorded during the capture.
    pub metrics: MetricsRegistry,
    /// Total capture wall time in microseconds.
    pub wall_us: u64,
}

impl Trace {
    /// Sum of `duration_us` over every span named `name`, anywhere in the
    /// tree. The aggregate a per-phase breakdown wants.
    #[must_use]
    pub fn total_us(&self, name: &str) -> u64 {
        fn walk(spans: &[TraceSpan], name: &str) -> u64 {
            spans
                .iter()
                .map(|s| (if s.name == name { s.duration_us } else { 0 }) + walk(&s.children, name))
                .sum()
        }
        walk(&self.spans, name)
    }

    /// Number of spans named `name`, anywhere in the tree.
    #[must_use]
    pub fn span_count(&self, name: &str) -> u64 {
        fn walk(spans: &[TraceSpan], name: &str) -> u64 {
            spans.iter().map(|s| u64::from(s.name == name) + walk(&s.children, name)).sum()
        }
        walk(&self.spans, name)
    }

    /// Total number of spans in the tree, regardless of name.
    #[must_use]
    pub fn span_count_total(&self) -> u64 {
        fn walk(spans: &[TraceSpan]) -> u64 {
            spans.iter().map(|s| 1 + walk(&s.children)).sum()
        }
        walk(&self.spans)
    }

    /// Every distinct span name in the tree, sorted.
    #[must_use]
    pub fn span_names(&self) -> Vec<String> {
        fn walk(spans: &[TraceSpan], out: &mut Vec<String>) {
            for s in spans {
                out.push(s.name.clone());
                walk(&s.children, out);
            }
        }
        let mut names = Vec::new();
        walk(&self.spans, &mut names);
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Serializes the full capture — span tree and metrics — as JSON.
    ///
    /// Schema (documented in DESIGN.md §8):
    ///
    /// ```json
    /// {
    ///   "wall_us": 1234,
    ///   "spans": [{"name": "...", "thread": 0, "start_us": 0,
    ///              "duration_us": 10, "closed": true, "children": [...]}],
    ///   "metrics": {
    ///     "counters": {"name": 1},
    ///     "gauges": {"name": 1.5},
    ///     "histograms": {"name": {"count": 2, "sum": 3.0, "min": 1.0,
    ///                             "max": 2.0, "buckets": [...]}}
    ///   }
    /// }
    /// ```
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"wall_us\": {},\n", self.wall_us));
        out.push_str("  \"spans\": ");
        write_spans(&mut out, &self.spans, 1);
        out.push_str(",\n  \"metrics\": {\n    \"counters\": {");
        for (i, (name, v)) in self.metrics.counters().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {v}", json_string(name)));
        }
        out.push_str("},\n    \"gauges\": {");
        for (i, (name, v)) in self.metrics.gauges().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {}", json_string(name), json_number(*v)));
        }
        out.push_str("},\n    \"histograms\": {");
        for (i, (name, h)) in self.metrics.histograms().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: ", json_string(name)));
            write_histogram(&mut out, h);
        }
        out.push_str("}\n  }\n}\n");
        out
    }
}

fn write_spans(out: &mut String, spans: &[TraceSpan], depth: usize) {
    if spans.is_empty() {
        out.push_str("[]");
        return;
    }
    let pad = "  ".repeat(depth + 1);
    out.push_str("[\n");
    for (i, s) in spans.iter().enumerate() {
        out.push_str(&format!(
            "{pad}{{\"name\": {}, \"thread\": {}, \"start_us\": {}, \"duration_us\": {}, \
             \"closed\": {}, \"children\": ",
            json_string(&s.name),
            s.thread,
            s.start_us,
            s.duration_us,
            s.closed
        ));
        write_spans(out, &s.children, depth + 1);
        out.push('}');
        if i + 1 < spans.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(&format!("{}]", "  ".repeat(depth)));
}

fn write_histogram(out: &mut String, h: &Histogram) {
    out.push_str(&format!(
        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \"buckets\": [",
        h.count(),
        json_number(h.sum()),
        h.min().map_or_else(|| "null".to_owned(), json_number),
        h.max().map_or_else(|| "null".to_owned(), json_number),
        h.mean().map_or_else(|| "null".to_owned(), json_number),
    ));
    for (i, b) in h.buckets().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&b.to_string());
    }
    out.push_str("]}");
}

/// A JSON number literal; non-finite values become `null`.
#[must_use]
pub fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// A JSON string literal with the mandatory escapes applied.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(name: &str, dur: u64) -> TraceSpan {
        TraceSpan {
            name: name.to_owned(),
            thread: 0,
            start_us: 0,
            duration_us: dur,
            closed: true,
            children: Vec::new(),
        }
    }

    fn sample() -> Trace {
        let mut metrics = MetricsRegistry::default();
        metrics.counter_add("enc", 7);
        metrics.gauge_set("bytes", 12.5);
        metrics.histogram_record("lat_us", 3.0);
        let root =
            TraceSpan { children: vec![leaf("child", 2), leaf("child", 3)], ..leaf("root", 10) };
        Trace { spans: vec![root], metrics, wall_us: 42 }
    }

    #[test]
    fn aggregates_by_name_across_the_tree() {
        let t = sample();
        assert_eq!(t.total_us("child"), 5);
        assert_eq!(t.total_us("root"), 10);
        assert_eq!(t.total_us("missing"), 0);
        assert_eq!(t.span_count("child"), 2);
        assert_eq!(t.span_count_total(), 3);
        assert_eq!(t.span_names(), vec!["child".to_owned(), "root".to_owned()]);
    }

    #[test]
    fn json_contains_tree_and_metrics() {
        let j = sample().to_json();
        assert!(j.contains("\"wall_us\": 42"), "{j}");
        assert!(j.contains("\"name\": \"root\""), "{j}");
        assert!(j.contains("\"name\": \"child\""), "{j}");
        assert!(j.contains("\"counters\": {\"enc\": 7}"), "{j}");
        assert!(j.contains("\"gauges\": {\"bytes\": 12.5}"), "{j}");
        assert!(j.contains("\"count\": 1"), "{j}");
        // Children nest inside their parent, not beside it.
        let root_pos = j.find("\"name\": \"root\"").unwrap();
        let child_pos = j.find("\"name\": \"child\"").unwrap();
        assert!(child_pos > root_pos);
    }

    #[test]
    fn json_strings_escape_specials() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_numbers_handle_non_finite() {
        assert_eq!(json_number(1.5), "1.5");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(f64::INFINITY), "null");
    }
}
