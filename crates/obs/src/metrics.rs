//! Metric primitives: monotonic counters, point-in-time gauges, and
//! log2-bucketed histograms, collected in a [`MetricsRegistry`].
//!
//! Names are free-form dotted strings (`"fed_knn.fagin.enc_instances"`);
//! the registry stores them in sorted order so snapshots and JSON exports
//! are deterministic regardless of recording order.

use std::collections::BTreeMap;

/// Number of histogram buckets. Bucket 0 holds values in `[0, 1)`; bucket
/// `i >= 1` holds values in `[2^(i-1), 2^i)`; the last bucket absorbs
/// everything larger.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed-shape histogram over non-negative values (op timings in
/// microseconds are the intended payload). Power-of-two buckets keep
/// recording allocation-free and O(1).
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// Records one observation. Negative values clamp to 0; non-finite
    /// values are dropped.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let v = value.max(0.0);
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket(v)] += 1;
    }

    fn bucket(v: f64) -> usize {
        if v < 1.0 {
            0
        } else {
            (v.log2() as usize + 1).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation, `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean, `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// The raw bucket counts.
    #[must_use]
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }
}

/// A named collection of counters, gauges, and histograms.
///
/// A registry is plain data: the global capture in the crate root owns one
/// behind its single lock, and tests can use a standalone instance
/// directly.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Adds `delta` to the (monotonic) counter `name`, creating it at 0.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Sets gauge `name` to `value` (last write wins).
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Records `value` into histogram `name`, creating it when absent.
    pub fn histogram_record(&mut self, name: &str, value: f64) {
        self.histograms.entry(name.to_owned()).or_default().record(value);
    }

    /// Current value of counter `name` (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram `name`, if anything has been recorded into it.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, sorted by name.
    #[must_use]
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// All gauges, sorted by name.
    #[must_use]
    pub fn gauges(&self) -> &BTreeMap<String, f64> {
        &self.gauges
    }

    /// All histograms, sorted by name.
    #[must_use]
    pub fn histograms(&self) -> &BTreeMap<String, Histogram> {
        &self.histograms
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::default();
        m.counter_add("a.b", 2);
        m.counter_add("a.b", 3);
        assert_eq!(m.counter("a.b"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let mut m = MetricsRegistry::default();
        m.gauge_set("g", 1.5);
        m.gauge_set("g", 2.5);
        assert_eq!(m.gauge("g"), Some(2.5));
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::default();
        h.record(0.2); // bucket 0: [0, 1)
        h.record(1.0); // bucket 1: [1, 2)
        h.record(3.0); // bucket 2: [2, 4)
        h.record(1e30); // clamps into the last bucket
        assert_eq!(h.count(), 4);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[2], 1);
        assert_eq!(h.buckets()[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(h.min(), Some(0.2));
        assert_eq!(h.max(), Some(1e30));
    }

    #[test]
    fn histogram_ignores_non_finite_and_clamps_negative() {
        let mut h = Histogram::default();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 0);
        h.record(-5.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), Some(0.0));
    }

    #[test]
    fn empty_registry_reports_empty() {
        let m = MetricsRegistry::default();
        assert!(m.is_empty());
        assert!(m.gauge("x").is_none());
        assert!(m.histogram("x").is_none());
    }
}
