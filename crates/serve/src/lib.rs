//! # vfps-serve — the long-running selection service
//!
//! Four PRs built the machinery — the deterministic pool (`vfps-par`), the
//! fault-tolerant message plane (`vfps-net`), the observability plane
//! (`vfps-obs`), and the selection-artifact cache (`vfps-cache`) — and
//! this crate multiplexes many clients over all of it: a TCP daemon
//! speaking a hand-rolled length-prefixed protocol, with
//!
//! * **admission control** — a bounded queue ([`queue::BoundedQueue`]);
//!   over-capacity submits get an immediate typed [`proto::Response::Busy`],
//!   never unbounded queueing;
//! * **multi-tenancy** (protocol v2) — each request names its dataset
//!   world with a `dataset` tag; a [`tenant::TenantRegistry`] materializes
//!   worlds lazily, LRU-caps residency, shards the artifact cache per
//!   tenant, and accounts admission and `serve.*` metrics per tenant;
//! * **session scheduling** — up to `max_concurrent` jobs run at once,
//!   each through [`vfps_core::select_with_cache`], so repeat requests are
//!   served warm (zero new encryptions, bit-identical) and one-party churn
//!   rides the incremental path;
//! * **graceful drain** — shutdown stops admission, finishes every
//!   admitted job, flushes the trace, and reports final accounting
//!   ([`proto::DrainReport`]) with `in_flight == 0`.
//!
//! ```no_run
//! use vfps_serve::{Client, SelectRequest, Request, Response, ServeConfig, Server};
//!
//! let cfg = ServeConfig { addr: "127.0.0.1:0".into(), ..ServeConfig::default() };
//! let server = Server::bind(&cfg).unwrap();
//! let addr = server.local_addr();
//! std::thread::spawn(move || server.run().unwrap());
//!
//! let mut client = Client::connect(addr).unwrap();
//! let reply = client
//!     .select(&SelectRequest {
//!         request_id: 1,
//!         dataset: String::new(), // "" = the server's default tenant
//!         party_set: vec![0, 1, 2, 3],
//!         select: 2,
//!         k: 10,
//!         query_count: 8,
//!         mode: 1,
//!         seed: 42,
//!         deadline_ms: 0,
//!         maximizer: 0, // 0 = exact greedy (2 = stochastic, 3 = sieve)
//!     })
//!     .unwrap();
//! assert!(matches!(reply, Response::Selected(_)));
//! client.shutdown().unwrap();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod queue;
pub mod server;
pub mod tenant;

pub use client::{Client, ClientError};
pub use proto::{
    health_state_name, knn_mode, maximizer, response_request_id, BackendStatus, DrainReport,
    Request, Response, RouterStatusReply, SelectReply, SelectRequest, TenantStatus,
    PROTOCOL_VERSION, SERVED_MAXIMIZER_EPSILON,
};
pub use queue::{AdmitError, BoundedQueue};
pub use server::{ServeConfig, ServeError, Server};
pub use tenant::{TenantRegistry, TenantStats, TenantWorld};
