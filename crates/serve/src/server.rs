//! The selection daemon: accept loop, admission control, session
//! scheduling, and graceful drain (DESIGN.md §10).
//!
//! Threading model:
//!
//! * one **acceptor** (the caller of [`Server::run`]) blocks in
//!   `TcpListener::accept` and spawns a detached handler per connection;
//! * each **handler** reads one [`Request`] frame at a time, performs
//!   admission control inline, and blocks until the job's single
//!   [`Response`] is ready — a connection never has more than one request
//!   in flight, so handler threads are the natural per-session flow
//!   control;
//! * `max_concurrent` **workers** pop admitted jobs off the
//!   [`BoundedQueue`] and run them through
//!   [`vfps_core::select_with_cache`]; the selection kernels inside fan
//!   out on the shared `vfps-par` pool, so worker count bounds *sessions*,
//!   not CPU parallelism.
//!
//! Determinism: every tenant's dataset and partition are fixed by
//! `(dataset, instances, parties, data_seed)` — built by the
//! [`TenantRegistry`] exactly as the `vfps` CLI builds them — and the
//! request seed feeds the [`SelectionContext`] unchanged, so a served
//! reply is bit-identical (chosen set and scores) to a direct
//! single-tenant pipeline run over the same inputs, and repeat requests
//! hit that tenant's artifact-cache shard's warm path with zero new
//! encryptions.
//!
//! Multi-tenancy (protocol v2): a request's `dataset` tag picks its
//! world; worlds materialize lazily and the registry LRU-caps residency.
//! Admission, queue depth, and failure accounting are kept per tenant
//! (`serve.*{tenant=...}` labelled metrics plus the [`crate::TenantStatus`]
//! counters behind [`Request::ListDatasets`]), so one hot tenant is
//! visible and cannot silently starve the rest.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crossbeam::channel;
use vfps_core::selectors::{SelectionContext, VfpsSmSelector};
use vfps_core::TenantContext;
use vfps_net::cost::CostModel;
use vfps_net::{read_frame, write_frame, FrameError};

use crate::proto::{
    knn_mode, maximizer, DrainReport, Request, Response, SelectReply, SelectRequest,
};
use crate::queue::{AdmitError, BoundedQueue};
use crate::tenant::{TenantRegistry, TenantWorld};

/// Server configuration. The dataset/partition fields must match a direct
/// run's for bit-identical replies (see the module docs).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Address to bind, e.g. `127.0.0.1:0` (0 picks a free port).
    pub addr: String,
    /// Default synthetic dataset name (`vfps_data::DatasetSpec::by_name`)
    /// — the tenant a request with an empty `dataset` tag is served under.
    pub dataset: String,
    /// Instance count; 0 uses the spec's simulation default.
    pub instances: usize,
    /// Consortium size the partition is built for.
    pub parties: usize,
    /// Seed for dataset generation and partitioning — a direct
    /// `vfps --synthetic <ds> --seed S` run matches a served request with
    /// `seed == S` on a server started with `data_seed == S`.
    pub data_seed: u64,
    /// Maximum selection jobs running at once (worker threads).
    pub max_concurrent: usize,
    /// Admission queue capacity; submits beyond it get `Busy`.
    pub queue_capacity: usize,
    /// How many tenant dataset worlds stay materialized at once; beyond
    /// it the least-recently-used world is evicted (its accounting and
    /// cache shard survive, the world rebuilds on next use).
    pub max_tenants: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Duration,
    /// Artifact cache directory; `None` uses a fresh per-process scratch
    /// directory (warm serving still works within the server's lifetime).
    pub cache_dir: Option<PathBuf>,
    /// Serve exactly one selection request, then drain and exit.
    pub once: bool,
    /// Write a structured trace (span forest + metrics) here on drain.
    pub trace_out: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            dataset: "Bank".into(),
            instances: 0,
            parties: 4,
            data_seed: 42,
            max_concurrent: 2,
            queue_capacity: 8,
            max_tenants: 4,
            default_deadline: Duration::from_secs(30),
            cache_dir: None,
            once: false,
            trace_out: None,
        }
    }
}

/// One admitted job: the request, its resolved tenant world, its reply
/// slot and timing. Holding the world by `Arc` pins it across LRU
/// eviction for the job's lifetime.
struct Job {
    req: SelectRequest,
    world: Arc<TenantWorld>,
    admitted_at: Instant,
    deadline: Instant,
    reply: channel::Sender<Response>,
}

/// Everything shared between acceptor, handlers, and workers.
struct Shared {
    registry: TenantRegistry,
    cost_model: CostModel,
    queue: BoundedQueue<Job>,
    default_deadline: Duration,
    once: bool,
    // Lifetime accounting (the DrainReport).
    accepted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cache_hits: AtomicU64,
    in_flight: AtomicU64,
    // Drain machinery: set `shutdown`, close the queue, then wait for
    // every worker to exit (which implies the queue fully drained).
    shutdown: AtomicBool,
    live_workers: AtomicUsize,
    drained: (Mutex<()>, Condvar),
}

impl Shared {
    fn report(&self) -> DrainReport {
        DrainReport {
            accepted: self.accepted.load(Ordering::Acquire),
            completed: self.completed.load(Ordering::Acquire),
            failed: self.failed.load(Ordering::Acquire),
            rejected: self.rejected.load(Ordering::Acquire),
            in_flight: self.in_flight.load(Ordering::Acquire) + self.queue.len() as u64,
            cache_hits: self.cache_hits.load(Ordering::Acquire),
        }
    }

    /// Stops admission and blocks until all admitted work is answered.
    /// A lock poisoned by a panicking thread is recovered, not
    /// propagated: the guarded state is `()` (the condvar's predicate is
    /// the `live_workers` atomic), so a drain must still complete after
    /// any worker panic.
    fn drain(&self) -> DrainReport {
        self.shutdown.store(true, Ordering::Release);
        self.queue.close();
        let (lock, cvar) = &self.drained;
        let mut guard = lock.lock().unwrap_or_else(PoisonError::into_inner);
        while self.live_workers.load(Ordering::Acquire) > 0 {
            let (g, _) = cvar
                .wait_timeout(guard, Duration::from_millis(50))
                .unwrap_or_else(PoisonError::into_inner);
            guard = g;
        }
        drop(guard);
        self.report()
    }

    fn worker_exited(&self) {
        self.live_workers.fetch_sub(1, Ordering::AcqRel);
        let (lock, cvar) = &self.drained;
        let _g = lock.lock().unwrap_or_else(PoisonError::into_inner);
        cvar.notify_all();
    }
}

/// Errors surfaced by [`Server::run`] itself (per-request failures are
/// typed wire replies, not `Err`s).
#[derive(Debug)]
pub enum ServeError {
    /// Configuration problem (unknown dataset, zero parties...).
    Config(String),
    /// Bind / accept / cache-open failure.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(m) => write!(f, "config error: {m}"),
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// The daemon. Construct with [`Server::bind`], then [`Server::run`].
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    trace_out: Option<PathBuf>,
    scratch_cache: Option<PathBuf>,
}

impl Server {
    /// Builds the tenant registry (materializing the default tenant's
    /// world eagerly, so config errors fail the bind, not the first
    /// request), binds the listener, and prints the
    /// `listening on <addr>` line clients and tests parse.
    pub fn bind(cfg: &ServeConfig) -> Result<Server, ServeError> {
        if cfg.max_concurrent == 0 {
            return Err(ServeError::Config("max_concurrent must be positive".into()));
        }
        let (cache_dir, scratch_cache) = match &cfg.cache_dir {
            Some(dir) => (dir.clone(), None),
            None => {
                let dir =
                    std::env::temp_dir().join(format!("vfps_serve_cache_{}", std::process::id()));
                (dir.clone(), Some(dir))
            }
        };
        let registry = TenantRegistry::new(
            &cfg.dataset,
            cfg.instances,
            cfg.parties,
            cfg.data_seed,
            cache_dir,
            cfg.max_tenants,
        );
        registry.resolve("").map_err(ServeError::Config)?;

        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;

        if cfg.trace_out.is_some() {
            vfps_obs::start_capture();
        }

        let shared = Arc::new(Shared {
            registry,
            cost_model: CostModel::default(),
            queue: BoundedQueue::new(cfg.queue_capacity),
            default_deadline: cfg.default_deadline,
            once: cfg.once,
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            live_workers: AtomicUsize::new(cfg.max_concurrent),
            drained: (Mutex::new(()), Condvar::new()),
        });
        for w in 0..cfg.max_concurrent {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name(format!("vfps-serve-worker-{w}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker");
        }

        println!("vfps-serve listening on {local_addr}");
        let _ = std::io::stdout().flush();
        Ok(Server { listener, local_addr, shared, trace_out: cfg.trace_out.clone(), scratch_cache })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Runs the accept loop until a `Shutdown` request (or, in `--once`
    /// mode, the first served selection) drains the server. Returns the
    /// final accounting; after a clean drain `in_flight == 0` and
    /// `accepted == completed + failed`.
    pub fn run(self) -> Result<DrainReport, ServeError> {
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            };
            let shared = self.shared.clone();
            let addr = self.local_addr;
            std::thread::spawn(move || handle_connection(&shared, stream, addr));
        }
        // Belt-and-braces: the drain initiator already waited for workers.
        let report = self.shared.drain();
        if let Some(path) = &self.trace_out {
            if let Some(trace) = vfps_obs::finish_capture() {
                if let Err(e) = std::fs::write(path, trace.to_json()) {
                    eprintln!("warning: cannot write trace to {}: {e}", path.display());
                }
            }
        }
        if let Some(dir) = &self.scratch_cache {
            let _ = std::fs::remove_dir_all(dir);
        }
        println!(
            "drain clean: accepted {} completed {} failed {} rejected {} in-flight {} cache-hits {}",
            report.accepted,
            report.completed,
            report.failed,
            report.rejected,
            report.in_flight,
            report.cache_hits
        );
        Ok(report)
    }
}

/// Wakes the acceptor after `shutdown` is set: `TcpListener::incoming`
/// only notices the flag on its next (possibly never-arriving) connection,
/// so the drain initiator pokes it with a throwaway connect.
fn wake_acceptor(addr: SocketAddr) {
    let _ = TcpStream::connect(addr);
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream, addr: SocketAddr) {
    loop {
        let req = match read_frame::<_, Request>(&mut stream) {
            Ok(Some(r)) => r,
            Ok(None) => return,               // clean EOF: client done
            Err(FrameError::Io(_)) => return, // peer reset mid-frame
            Err(e) => {
                // Undecodable frame: this protocol has no request id to
                // echo, so answer with id 0 and hang up.
                let _ = write_frame(
                    &mut stream,
                    &Response::Rejected { request_id: 0, reason: format!("bad frame: {e}") },
                );
                return;
            }
        };
        match req {
            Request::Ping => {
                if write_frame(
                    &mut stream,
                    &Response::Pong { version: crate::proto::PROTOCOL_VERSION },
                )
                .is_err()
                {
                    return;
                }
            }
            Request::Shutdown => {
                vfps_obs::counter_add("serve.shutdown", 1);
                let report = shared.drain();
                let _ = write_frame(&mut stream, &Response::Draining(report));
                wake_acceptor(addr);
                return;
            }
            Request::ListDatasets => {
                let resp = Response::Datasets {
                    default_dataset: shared.registry.default_dataset().to_owned(),
                    max_resident: shared.registry.max_resident() as u64,
                    tenants: shared.registry.statuses(),
                };
                if write_frame(&mut stream, &resp).is_err() {
                    return;
                }
            }
            // Routing-tier control frames reaching a plain daemon get a
            // typed rejection, not a hangup — a misconfigured `vfps route`
            // pointed at a backend should learn *why* it failed.
            Request::RouterStatus | Request::DrainBackend(_) | Request::AddBackend { .. } => {
                let resp = Response::Rejected {
                    request_id: 0,
                    reason: "not a router: this is a vfps-serve daemon".into(),
                };
                if write_frame(&mut stream, &resp).is_err() {
                    return;
                }
            }
            Request::Select(sel) => {
                let one_shot = shared.once;
                let resp = submit(shared, sel);
                let ok = write_frame(&mut stream, &resp).is_ok();
                if one_shot && matches!(resp, Response::Selected(_)) {
                    shared.drain();
                    wake_acceptor(addr);
                    return;
                }
                if !ok {
                    return;
                }
            }
        }
    }
}

/// Validates, admits, and waits out one selection request; always returns
/// exactly one response.
fn submit(shared: &Arc<Shared>, req: SelectRequest) -> Response {
    let id = req.request_id;
    // Resolve the tenant world first: an unknown dataset is a typed
    // rejection with no tenant to bill it to.
    let world = match shared.registry.resolve(&req.dataset) {
        Ok(w) => w,
        Err(reason) => {
            shared.rejected.fetch_add(1, Ordering::AcqRel);
            vfps_obs::counter_add("serve.rejected", 1);
            return Response::Rejected { request_id: id, reason };
        }
    };
    let tenant = world.name.clone();
    if let Err(reason) = validate(&world, &req) {
        shared.rejected.fetch_add(1, Ordering::AcqRel);
        world.stats.rejected.fetch_add(1, Ordering::AcqRel);
        vfps_obs::counter_add("serve.rejected", 1);
        vfps_obs::counter_add_labelled("serve.rejected", "tenant", &tenant, 1);
        return Response::Rejected { request_id: id, reason };
    }
    let deadline_ms = req.deadline_ms;
    let now = Instant::now();
    let deadline = now
        + if deadline_ms == 0 {
            shared.default_deadline
        } else {
            Duration::from_millis(deadline_ms)
        };
    let (tx, rx) = channel::unbounded();
    let stats = world.stats.clone();
    // Bill the tenant's in-flight slot *before* the push: once the job is
    // in the queue a worker may pop, run, and decrement it at any moment,
    // so incrementing afterwards would race the counter below zero.
    stats.in_flight.fetch_add(1, Ordering::AcqRel);
    let job = Job { req, world, admitted_at: now, deadline, reply: tx };
    match shared.queue.try_push(job) {
        Ok(depth) => {
            shared.accepted.fetch_add(1, Ordering::AcqRel);
            stats.accepted.fetch_add(1, Ordering::AcqRel);
            vfps_obs::counter_add("serve.accepted", 1);
            vfps_obs::counter_add_labelled("serve.accepted", "tenant", &tenant, 1);
            vfps_obs::gauge_set("serve.queue_depth", depth as f64);
            vfps_obs::gauge_set_labelled(
                "serve.queue_depth",
                "tenant",
                &tenant,
                stats.in_flight.load(Ordering::Acquire) as f64,
            );
        }
        Err(AdmitError::Full(_, depth)) => {
            stats.in_flight.fetch_sub(1, Ordering::AcqRel);
            shared.rejected.fetch_add(1, Ordering::AcqRel);
            stats.rejected.fetch_add(1, Ordering::AcqRel);
            vfps_obs::counter_add("serve.rejected", 1);
            vfps_obs::counter_add("serve.busy", 1);
            vfps_obs::counter_add_labelled("serve.busy", "tenant", &tenant, 1);
            return Response::Busy {
                request_id: id,
                queue_depth: depth as u64,
                capacity: shared.queue.capacity() as u64,
            };
        }
        Err(AdmitError::Closed(_)) => {
            stats.in_flight.fetch_sub(1, Ordering::AcqRel);
            shared.rejected.fetch_add(1, Ordering::AcqRel);
            stats.rejected.fetch_add(1, Ordering::AcqRel);
            vfps_obs::counter_add("serve.rejected", 1);
            return Response::Rejected { request_id: id, reason: "server draining".into() };
        }
    }
    // The worker always sends exactly one response (selection, timeout, or
    // rejection), so a blocking receive cannot hang past the deadline plus
    // one job's runtime.
    match rx.recv() {
        Ok(resp) => resp,
        Err(_) => Response::Rejected { request_id: id, reason: "worker dropped reply".into() },
    }
}

fn validate(world: &TenantWorld, req: &SelectRequest) -> Result<(), String> {
    let parties = world.partition.parties();
    if req.party_set.is_empty() {
        return Err("empty party set".into());
    }
    if let Some(&bad) = req.party_set.iter().find(|&&p| p >= parties) {
        return Err(format!("party {bad} out of range (tenant {} has {parties})", world.name));
    }
    let mut sorted = req.party_set.clone();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.len() != req.party_set.len() {
        return Err("duplicate party ids".into());
    }
    if req.select == 0 || req.select > req.party_set.len() {
        return Err(format!(
            "select {} out of range for a {}-party set",
            req.select,
            req.party_set.len()
        ));
    }
    if knn_mode(req.mode).is_none() {
        return Err(format!("unknown KNN mode {}", req.mode));
    }
    if maximizer(req.maximizer).is_none() {
        return Err(format!("unknown maximizer {}", req.maximizer));
    }
    if req.k == 0 || req.query_count == 0 {
        return Err("k and query_count must be positive".into());
    }
    Ok(())
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        vfps_obs::gauge_set("serve.queue_depth", shared.queue.len() as f64);
        let stats = job.world.stats.clone();
        let tenant = job.world.name.clone();
        let waited = job.admitted_at.elapsed();
        if Instant::now() >= job.deadline {
            // Reuse the net plane's timeout taxonomy for the failure.
            let err = vfps_net::Error::Timeout { peer: None, waited };
            vfps_obs::counter_add("serve.failed", 1);
            vfps_obs::counter_add("serve.deadline_expired", 1);
            vfps_obs::counter_add_labelled("serve.failed", "tenant", &tenant, 1);
            shared.failed.fetch_add(1, Ordering::AcqRel);
            stats.failed.fetch_add(1, Ordering::AcqRel);
            stats.in_flight.fetch_sub(1, Ordering::AcqRel);
            let _ = job.reply.send(Response::TimedOut {
                request_id: job.req.request_id,
                waited_ms: match err {
                    vfps_net::Error::Timeout { waited, .. } => waited.as_millis() as u64,
                    _ => unreachable!("constructed as Timeout"),
                },
            });
            continue;
        }
        shared.in_flight.fetch_add(1, Ordering::AcqRel);
        let resp = run_job(shared, &job, waited);
        if matches!(resp, Response::Selected(_)) {
            shared.completed.fetch_add(1, Ordering::AcqRel);
            stats.completed.fetch_add(1, Ordering::AcqRel);
            vfps_obs::counter_add("serve.completed", 1);
            vfps_obs::counter_add_labelled("serve.completed", "tenant", &tenant, 1);
        } else {
            shared.failed.fetch_add(1, Ordering::AcqRel);
            stats.failed.fetch_add(1, Ordering::AcqRel);
            vfps_obs::counter_add("serve.failed", 1);
            vfps_obs::counter_add_labelled("serve.failed", "tenant", &tenant, 1);
        }
        shared.in_flight.fetch_sub(1, Ordering::AcqRel);
        stats.in_flight.fetch_sub(1, Ordering::AcqRel);
        let _ = job.reply.send(resp);
    }
    shared.worker_exited();
}

fn run_job(shared: &Arc<Shared>, job: &Job, queued: Duration) -> Response {
    let _span = vfps_obs::span("serve.request");
    let req = &job.req;
    let world = &job.world;
    let ctx = SelectionContext {
        ds: &world.ds,
        split: &world.split,
        partition: &world.partition,
        cost_scale: 1.0,
        seed: req.seed,
    };
    let sel = VfpsSmSelector {
        k: req.k,
        query_count: req.query_count,
        // Admission already rejected unknown bytes; an unreachable here
        // beats a silent coercion if the two ever drift.
        mode: knn_mode(req.mode).expect("mode validated at admission"),
        maximizer: maximizer(req.maximizer).expect("maximizer validated at admission"),
        ..VfpsSmSelector::default()
    };
    let tc = TenantContext { tenant: &world.name, dataset_tag: world.ds.name.as_bytes() };
    let started = Instant::now();
    // `run_over` is panic-free for validated inputs, but a lost response
    // would wedge the client forever — convert any selection panic into a
    // typed rejection instead.
    let served = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        vfps_core::select_with_cache(
            &world.cache,
            &sel,
            &ctx,
            &req.party_set,
            req.select,
            &shared.cost_model,
            &tc,
        )
    }));
    let run = started.elapsed();
    let served = match served {
        Ok(s) => s,
        Err(_) => {
            return Response::Rejected {
                request_id: req.request_id,
                reason: "selection panicked".into(),
            }
        }
    };
    if let Some(err) = &served.degraded {
        vfps_obs::counter_add("serve.cache_degraded", 1);
        eprintln!("warning: request {}: cache degraded to cold run: {err}", req.request_id);
    }
    let ledger = &served.selection.ledger;
    shared.cache_hits.fetch_add(ledger.cache_hits, Ordering::AcqRel);
    world.stats.cache_hits.fetch_add(ledger.cache_hits, Ordering::AcqRel);
    vfps_obs::counter_add_labelled("serve.cache_hits", "tenant", &world.name, ledger.cache_hits);
    vfps_obs::counter_add_labelled("serve.enc_instances", "tenant", &world.name, ledger.enc.work);
    let total_us = (queued + run).as_micros() as f64;
    vfps_obs::histogram_record("serve.latency_us", total_us);
    vfps_obs::histogram_record("serve.queue_us", queued.as_micros() as f64);
    vfps_obs::histogram_record_labelled("serve.latency_us", "tenant", &world.name, total_us);
    Response::Selected(SelectReply {
        request_id: req.request_id,
        chosen: served.selection.chosen.clone(),
        scores: served.selection.scores.clone(),
        cache_status: served.status.to_string(),
        enc_instances: ledger.enc.work,
        cache_hits: ledger.cache_hits,
        cache_misses: ledger.cache_misses,
        queue_us: queued.as_micros() as u64,
        run_us: run.as_micros() as u64,
        random_accesses: ledger.random_accesses,
    })
}
