//! The bounded admission queue.
//!
//! The crossbeam shim only provides unbounded channels, so backpressure is
//! hand-rolled on `std::sync::{Mutex, Condvar}`: [`BoundedQueue::try_push`]
//! never blocks — over capacity it returns [`AdmitError::Full`]
//! immediately, which the server turns into a typed `Busy` reply. Nothing
//! in the service can queue unboundedly.
//!
//! Workers block in [`BoundedQueue::pop`]. Closing the queue
//! ([`BoundedQueue::close`]) stops admission but lets workers drain what
//! was already admitted: every admitted job was promised a response, so
//! `pop` keeps returning items until the queue is empty *and* closed.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Why an item was not admitted.
#[derive(Debug)]
pub enum AdmitError<T> {
    /// The queue is at capacity; the item is handed back along with the
    /// depth observed at rejection.
    Full(T, usize),
    /// The queue is closed (server draining); the item is handed back.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity MPMC queue with non-blocking admission and blocking,
/// drain-aware removal.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// The queue's state is a plain `VecDeque` plus a flag — every
    /// critical section below leaves it consistent at every await point,
    /// so a panic while the lock is held (poisoning it) cannot tear the
    /// state. Recover the guard rather than propagate: one panicking
    /// worker must not wedge admission for every later request.
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Creates a queue admitting at most `capacity` items at a time.
    ///
    /// # Panics
    /// Panics if `capacity` is 0 — a zero-capacity service could never
    /// admit anything.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "admission queue capacity must be positive");
        BoundedQueue {
            state: Mutex::new(State { items: VecDeque::with_capacity(capacity), closed: false }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth (admitted, not yet popped).
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue currently holds no items.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admits `item` without blocking. Returns the depth *after* the push
    /// on success; hands the item back on a full or closed queue.
    pub fn try_push(&self, item: T) -> Result<usize, AdmitError<T>> {
        let mut s = self.lock();
        if s.closed {
            return Err(AdmitError::Closed(item));
        }
        if s.items.len() >= self.capacity {
            let depth = s.items.len();
            return Err(AdmitError::Full(item, depth));
        }
        s.items.push_back(item);
        let depth = s.items.len();
        drop(s);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Blocks until an item is available and returns it, or returns `None`
    /// once the queue is closed *and* drained — the worker-shutdown
    /// signal. Admitted items are always delivered, even after `close`.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.lock();
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.not_empty.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Like [`BoundedQueue::pop`] but gives up after `timeout`, returning
    /// `None` with the queue still open (callers distinguish via
    /// [`BoundedQueue::is_closed`]).
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut s = self.lock();
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .not_empty
                .wait_timeout(s, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            s = guard;
        }
    }

    /// Stops admission (subsequent `try_push` returns
    /// [`AdmitError::Closed`]) and wakes every blocked `pop`, which will
    /// drain remaining items then return `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }

    /// Whether [`BoundedQueue::close`] has been called.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn admission_is_rejected_at_capacity_without_blocking() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        match q.try_push(3) {
            Err(AdmitError::Full(item, depth)) => {
                assert_eq!(item, 3);
                assert_eq!(depth, 2);
            }
            other => panic!("expected Full, got {other:?}"),
        }
        // Popping frees a slot.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3).unwrap(), 2);
    }

    #[test]
    fn pop_drains_admitted_items_after_close_then_signals_shutdown() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert!(matches!(q.try_push("c"), Err(AdmitError::Closed("c"))));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "closed+empty stays terminal");
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || q.pop())
            })
            .collect();
        std::thread::sleep(Duration::from_millis(50));
        q.try_push(7).unwrap();
        q.close();
        let mut got: Vec<Option<u32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort();
        assert_eq!(got, vec![None, None, Some(7)]);
    }

    #[test]
    fn pop_timeout_expires_on_an_open_queue() {
        let q = BoundedQueue::<u32>::new(1);
        let start = std::time::Instant::now();
        assert_eq!(q.pop_timeout(Duration::from_millis(30)), None);
        assert!(start.elapsed() >= Duration::from_millis(30));
        assert!(!q.is_closed());
    }

    #[test]
    fn a_panicking_holder_leaves_the_queue_serviceable() {
        let q = Arc::new(BoundedQueue::new(4));
        q.try_push(1).unwrap();

        // Poison the state mutex: panic while holding the raw guard.
        let poisoner = q.clone();
        std::thread::spawn(move || {
            let _guard = poisoner.state.lock().unwrap();
            panic!("worker died mid-critical-section");
        })
        .join()
        .unwrap_err();
        assert!(q.state.is_poisoned(), "the panic must actually poison the lock");

        // Every operation still works: admission, depth, pop, close.
        assert_eq!(q.len(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_order_is_preserved() {
        let q = BoundedQueue::new(8);
        for i in 0..8 {
            q.try_push(i).unwrap();
        }
        let popped: Vec<i32> = std::iter::from_fn(|| q.pop_timeout(Duration::ZERO)).collect();
        assert_eq!(popped, (0..8).collect::<Vec<_>>());
    }
}
