//! `vfps` — command-line participant selection for vertical federated
//! learning.
//!
//! Point it at a CSV or LIBSVM file, describe the consortium, and get the
//! selected sub-consortium plus a cost/accuracy report:
//!
//! ```text
//! vfps --data credit.csv --parties 4 --select 2 --method vfps-sm --model knn
//! vfps --data a9a.libsvm --format libsvm --parties 8 --select 4 --method vfmine
//! vfps --synthetic SUSY --parties 4 --select 2 --method all-methods
//! ```
//!
//! Or run it as a service (`vfps serve`) and submit selections over TCP
//! (`vfps submit`) — repeat requests are served from the artifact cache's
//! warm path:
//!
//! ```text
//! vfps serve --synthetic Bank --parties 4 --addr 127.0.0.1:7878
//! vfps submit --addr 127.0.0.1:7878 --select 2 --seed 42
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use vfps_serve::{Client, Request, Response, SelectRequest, ServeConfig, Server};

use vfps_core::make_selector;
use vfps_core::pipeline::{Method, PipelineConfig};
use vfps_core::selectors::SelectionContext;
use vfps_data::{
    load_csv, load_libsvm, prepared_sized, CsvOptions, Dataset, DatasetSpec, Split,
    VerticalPartition, ZScore,
};
use vfps_ml::mlp::TrainConfig;
use vfps_net::cost::CostModel;
use vfps_vfl::split_train::{train_downstream, Downstream};

#[derive(Debug)]
struct Args {
    data: Option<PathBuf>,
    format: String,
    synthetic: Option<String>,
    parties: usize,
    select: usize,
    method: String,
    model: String,
    knn_k: usize,
    queries: usize,
    seed: u64,
    label_column: i64,
    no_header: bool,
    verbose: bool,
    trace_out: Option<PathBuf>,
    cache_dir: Option<PathBuf>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            data: None,
            format: "csv".into(),
            synthetic: None,
            parties: 4,
            select: 2,
            method: "vfps-sm".into(),
            model: "knn".into(),
            knn_k: 10,
            queries: 32,
            seed: 42,
            label_column: -1,
            no_header: false,
            verbose: false,
            trace_out: None,
            cache_dir: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--data" => args.data = Some(PathBuf::from(value("--data")?)),
            "--format" => args.format = value("--format")?,
            "--synthetic" => args.synthetic = Some(value("--synthetic")?),
            "--parties" => {
                args.parties = value("--parties")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--select" => {
                args.select = value("--select")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--method" => args.method = value("--method")?.to_lowercase(),
            "--model" => args.model = value("--model")?.to_lowercase(),
            "--k" => args.knn_k = value("--k")?.parse().map_err(|e| format!("{e}"))?,
            "--queries" => {
                args.queries = value("--queries")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--label-column" => {
                args.label_column = value("--label-column")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--no-header" => args.no_header = true,
            "--verbose" | "-v" => args.verbose = true,
            "--trace-out" => args.trace_out = Some(PathBuf::from(value("--trace-out")?)),
            "--cache-dir" => args.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if args.data.is_none() && args.synthetic.is_none() {
        return Err("one of --data or --synthetic is required".into());
    }
    Ok(args)
}

fn print_help() {
    println!(
        "vfps — participant selection for vertical federated learning\n\n\
         USAGE:\n  vfps --data <file> [options]\n  vfps --synthetic <name> [options]\n\
         \x20 vfps serve [options]    run the selection service (see `vfps serve --help`)\n\
         \x20 vfps submit [options]   submit to a running service (see `vfps submit --help`)\n\
         \x20 vfps party [options]    run one consortium member's feature-column daemon\n\
         \x20                         (see `vfps party --help`)\n\n\
         INPUT:\n\
         \x20 --data <file>          CSV or LIBSVM dataset\n\
         \x20 --format csv|libsvm    input format (default csv)\n\
         \x20 --label-column <i>     CSV label column, negatives from end (default -1)\n\
         \x20 --no-header            CSV has no header row\n\
         \x20 --synthetic <name>     use a synthetic twin (Bank, Credit, Phishing, Web,\n\
         \x20                        Rice, Adult, IJCNN, SUSY, HDI, SD)\n\n\
         SELECTION:\n\
         \x20 --parties <P>          consortium size (default 4)\n\
         \x20 --select <S>           participants to keep (default 2)\n\
         \x20 --method <m>           vfps-sm | vfps-sm-base | random | shapley |\n\
         \x20                        vfmine | all | all-methods (default vfps-sm)\n\
         \x20 --model <m>            downstream task: knn | lr | mlp (default knn)\n\
         \x20 --k <k>                proxy-KNN neighbor count (default 10)\n\
         \x20 --queries <q>          similarity query sample (default 32)\n\
         \x20 --seed <s>             run seed (default 42)\n\
         \x20 --verbose, -v          print the per-party score report\n\n\
         OBSERVABILITY:\n\
         \x20 --trace-out <file>     capture a structured trace of the run (span tree +\n\
         \x20                        metrics) and write it as JSON\n\n\
         CACHING:\n\
         \x20 --cache-dir <dir>      content-addressed selection-artifact cache for the\n\
         \x20                        vfps-sm methods: repeat runs are served warm (no\n\
         \x20                        re-encryption, bit-identical); party churn reuses\n\
         \x20                        the cached similarity matrix"
    );
}

fn method_from(name: &str) -> Result<Method, String> {
    Ok(match name {
        "loo" | "leave-one-out" => return Err("use --method loo via the library API: the CLI exposes the paper's methods; see vfps_core::LeaveOneOutSelector".into()),
        "vfps-sm" => Method::VfpsSm,
        "vfps-sm-base" => Method::VfpsSmBase,
        "random" => Method::Random,
        "shapley" => Method::Shapley,
        "vfmine" | "vf-mine" => Method::VfMine,
        "all" => Method::All,
        other => return Err(format!("unknown method {other}")),
    })
}

fn load(args: &Args) -> Result<(Dataset, Split), String> {
    if let Some(name) = &args.synthetic {
        let spec = DatasetSpec::by_name(name)
            .ok_or_else(|| format!("unknown synthetic dataset {name}"))?;
        return Ok(prepared_sized(&spec, spec.sim_instances, args.seed));
    }
    let path = args.data.as_ref().expect("validated");
    let mut ds = match args.format.as_str() {
        "csv" => {
            let opts = CsvOptions {
                label_column: args.label_column,
                has_header: !args.no_header,
                ..Default::default()
            };
            load_csv(path, &opts).map_err(|e| format!("{e}"))?
        }
        "libsvm" => load_libsvm(path).map_err(|e| format!("{e}"))?,
        other => return Err(format!("unknown format {other}")),
    };
    if ds.len() < 10 {
        return Err(format!("{} rows is too few (need >= 10)", ds.len()));
    }
    let split = Split::paper_split(ds.len(), args.seed);
    let z = ZScore::fit(&ds.x, &split.train);
    z.apply(&mut ds.x);
    Ok((ds, split))
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let (ds, split) = load(&args)?;
    if args.parties > ds.n_features() {
        return Err(format!("{} parties but only {} features", args.parties, ds.n_features()));
    }
    if args.select == 0 || args.select > args.parties {
        return Err(format!("--select {} out of range for {} parties", args.select, args.parties));
    }
    let model = match args.model.as_str() {
        "knn" => Downstream::Knn { k: args.knn_k },
        "lr" => Downstream::Lr,
        "mlp" => Downstream::Mlp,
        other => return Err(format!("unknown model {other}")),
    };
    let partition = VerticalPartition::random(ds.n_features(), args.parties, args.seed);
    println!(
        "dataset {} — {} rows, {} features, {} classes; {} parties, selecting {}",
        ds.name,
        ds.len(),
        ds.n_features(),
        ds.n_classes,
        args.parties,
        args.select
    );
    for p in 0..args.parties {
        println!("  party {p}: {} features", partition.columns(p).len());
    }

    let methods: Vec<Method> = if args.method == "all-methods" {
        Method::TABLE_ORDER.to_vec()
    } else {
        vec![method_from(&args.method)?]
    };

    let cfg = PipelineConfig {
        parties: args.parties,
        select: args.select,
        knn_k: args.knn_k,
        query_count: args.queries,
        ..Default::default()
    };
    let cost_model = CostModel::default();
    if args.trace_out.is_some() {
        vfps_obs::start_capture();
    }
    println!(
        "\n{:<14} {:>9} {:>14} {:>14}   chosen",
        "method", "accuracy", "selection (s)", "training (s)"
    );
    for method in methods {
        let ctx = SelectionContext {
            ds: &ds,
            split: &split,
            partition: &partition,
            cost_scale: 1.0,
            seed: args.seed,
        };
        let (selection, cache_status) = match (&args.cache_dir, method) {
            (Some(dir), Method::VfpsSm | Method::VfpsSmBase) => {
                let mut sel = vfps_core::selectors::VfpsSmSelector {
                    k: args.knn_k,
                    query_count: args.queries,
                    ..vfps_core::selectors::VfpsSmSelector::default()
                };
                if method == Method::VfpsSmBase {
                    sel = sel.base();
                }
                match vfps_cache::ArtifactCache::open(dir) {
                    Ok(cache) => {
                        let party_set: Vec<usize> = (0..args.parties).collect();
                        let served = vfps_core::select_with_cache(
                            &cache,
                            &sel,
                            &ctx,
                            &party_set,
                            args.select,
                            &cost_model,
                            &vfps_core::TenantContext::single(ds.name.as_bytes()),
                        );
                        if let Some(err) = &served.degraded {
                            eprintln!("warning: cache degraded to cold run: {err}");
                        }
                        (served.selection, Some(served.status.to_string()))
                    }
                    // An unusable cache directory must never fail the run.
                    Err(e) => {
                        eprintln!("warning: cache disabled ({e})");
                        (make_selector(method, &cfg).select(&ctx, args.select), None)
                    }
                }
            }
            _ => (make_selector(method, &cfg).select(&ctx, args.select), None),
        };
        if let Some(status) = &cache_status {
            println!("cache: {status}");
        }
        if args.verbose {
            let names: Vec<String> = (0..args.parties).map(|p| format!("party-{p}")).collect();
            println!(
                "\n{}",
                vfps_core::report::selection_report(&selection, method.name(), &names, &cost_model)
            );
        }
        let chosen = if method == Method::All {
            (0..args.parties).collect()
        } else {
            selection.chosen.clone()
        };
        let report = train_downstream(
            &ds,
            &split,
            &partition,
            &chosen,
            model,
            &TrainConfig::fast(),
            1.0,
            args.seed,
        );
        println!(
            "{:<14} {:>9.4} {:>14.2} {:>14.2}   {:?}",
            method.name(),
            report.accuracy,
            selection.ledger.simulated_seconds(&cost_model),
            report.ledger.simulated_seconds(&cost_model),
            chosen
        );
    }
    if let Some(path) = &args.trace_out {
        let trace = vfps_obs::finish_capture().expect("capture was started");
        std::fs::write(path, trace.to_json())
            .map_err(|e| format!("cannot write trace to {}: {e}", path.display()))?;
        println!(
            "\ntrace: {} spans, {} counters -> {}",
            trace.span_count_total(),
            trace.metrics.counters().len(),
            path.display()
        );
    }
    Ok(())
}

// ---------------------------------------------------------------------
// `vfps serve` — run the selection daemon.
// ---------------------------------------------------------------------

fn run_serve(args: &[String]) -> Result<(), String> {
    let mut cfg = ServeConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--synthetic" => cfg.dataset = value("--synthetic")?,
            "--instances" => {
                cfg.instances = value("--instances")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--parties" => {
                cfg.parties = value("--parties")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--seed" => cfg.data_seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--max-concurrent" => {
                cfg.max_concurrent =
                    value("--max-concurrent")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--queue-capacity" => {
                cfg.queue_capacity =
                    value("--queue-capacity")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--max-tenants" => {
                cfg.max_tenants = value("--max-tenants")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--deadline-ms" => {
                cfg.default_deadline = Duration::from_millis(
                    value("--deadline-ms")?.parse().map_err(|e| format!("{e}"))?,
                );
            }
            "--cache-dir" => cfg.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--trace-out" => cfg.trace_out = Some(PathBuf::from(value("--trace-out")?)),
            "--once" => cfg.once = true,
            "--help" | "-h" => {
                print_serve_help();
                std::process::exit(0);
            }
            other => return Err(format!("unknown serve argument {other}")),
        }
    }
    let server = Server::bind(&cfg).map_err(|e| e.to_string())?;
    server.run().map_err(|e| e.to_string())?;
    Ok(())
}

fn print_serve_help() {
    println!(
        "vfps serve — run the selection service\n\n\
         USAGE:\n  vfps serve [options]\n\n\
         \x20 --addr <host:port>     bind address (default 127.0.0.1:0, port 0 = free port;\n\
         \x20                        the chosen address is printed as `listening on ...`)\n\
         \x20 --synthetic <name>     default dataset tenant (default Bank); requests may\n\
         \x20                        name any catalog dataset via `vfps submit --dataset`,\n\
         \x20                        materialized lazily on first use\n\
         \x20 --instances <n>        dataset rows (default: the spec's simulation size)\n\
         \x20 --parties <P>          partition size (default 4)\n\
         \x20 --seed <s>             dataset + partition seed (default 42); a request with\n\
         \x20                        the same seed is bit-identical to `vfps --seed <s>`\n\
         \x20 --max-tenants <n>      dataset worlds kept resident at once (default 4);\n\
         \x20                        the least-recently-used world beyond it is evicted\n\
         \x20 --max-concurrent <n>   selection jobs running at once (default 2)\n\
         \x20 --queue-capacity <n>   admission queue depth; beyond it submits get Busy\n\
         \x20                        (default 8)\n\
         \x20 --deadline-ms <ms>     default per-request deadline (default 30000)\n\
         \x20 --cache-dir <dir>      artifact cache (default: per-process scratch dir)\n\
         \x20 --trace-out <file>     write the span/metrics trace as JSON on drain\n\
         \x20 --once                 serve one selection, then drain and exit"
    );
}

// ---------------------------------------------------------------------
// `vfps party` — run one consortium member's feature-column daemon.
// ---------------------------------------------------------------------

fn run_party(args: &[String]) -> Result<(), String> {
    let mut addr = "127.0.0.1:0".to_owned();
    let mut dataset = "Bank".to_owned();
    let mut instances = 0usize;
    let mut parties = 4usize;
    let mut seed = 42u64;
    let mut party_id: Option<usize> = None;
    let mut max_sessions: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr")?,
            "--synthetic" => dataset = value("--synthetic")?,
            "--instances" => {
                instances = value("--instances")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--parties" => parties = value("--parties")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--party-id" => {
                party_id = Some(value("--party-id")?.parse().map_err(|e| format!("{e}"))?);
            }
            "--max-sessions" => {
                max_sessions = Some(value("--max-sessions")?.parse().map_err(|e| format!("{e}"))?);
            }
            "--help" | "-h" => {
                print_party_help();
                std::process::exit(0);
            }
            other => return Err(format!("unknown party argument {other}")),
        }
    }
    let party_id = party_id.ok_or("--party-id is required")?;
    if parties == 0 || party_id >= parties {
        return Err(format!("--party-id {party_id} out of range for {parties} parties"));
    }
    // The daemon derives its dataset world exactly as a coordinator (or a
    // direct `vfps --synthetic` run) with the same flags does — that shared
    // derivation is what makes a cluster run bit-identical to the sim.
    let spec = DatasetSpec::by_name(&dataset)
        .ok_or_else(|| format!("unknown synthetic dataset {dataset}"))?;
    let rows = if instances == 0 { spec.sim_instances } else { instances };
    let (ds, _split) = prepared_sized(&spec, rows, seed);
    if parties > ds.n_features() {
        return Err(format!("{parties} parties but only {} features", ds.n_features()));
    }
    let partition = VerticalPartition::random(ds.n_features(), parties, seed);
    let cfg =
        vfps_cluster::PartyConfig { max_sessions, ..vfps_cluster::PartyConfig::new(party_id) };

    let listener =
        std::net::TcpListener::bind(&addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| format!("{e}"))?;
    println!(
        "vfps-party {party_id} listening on {local} ({} rows, {} features, {} local columns)",
        ds.len(),
        ds.n_features(),
        partition.columns(party_id).len()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let report =
        vfps_cluster::serve_party(&listener, &ds.x, &partition, &cfg).map_err(|e| e.to_string())?;
    println!("vfps-party {party_id} done: {} sessions, killed {}", report.sessions, report.killed);
    Ok(())
}

fn print_party_help() {
    println!(
        "vfps party — run one consortium member's feature-column daemon\n\n\
         USAGE:\n  vfps party --party-id <p> [options]\n\n\
         \x20 --party-id <p>         which consortium slot this daemon holds (required)\n\
         \x20 --addr <host:port>     bind address (default 127.0.0.1:0, port 0 = free port;\n\
         \x20                        the chosen address is printed as `listening on ...`)\n\
         \x20 --synthetic <name>     dataset world (default Bank) — must match the\n\
         \x20                        coordinator's flags exactly\n\
         \x20 --instances <n>        dataset rows (default: the spec's simulation size)\n\
         \x20 --parties <P>          partition size (default 4)\n\
         \x20 --seed <s>             dataset + partition seed (default 42)\n\
         \x20 --max-sessions <n>     serve n protocol sessions, then exit (default: forever)\n\n\
         The daemon holds only its slot's feature columns during the protocol;\n\
         raw features never cross the wire — only encrypted partial distances\n\
         and candidate pseudo-IDs (run it once per party, then drive the\n\
         consortium with `vfps-bench bench-cluster` or the library's\n\
         run_cluster_knn)."
    );
}

// ---------------------------------------------------------------------
// `vfps submit` — send one request to a running daemon.
// ---------------------------------------------------------------------

struct SubmitArgs {
    addr: String,
    req: SelectRequest,
    parties: usize,
    party_set: Option<Vec<usize>>,
    ping: bool,
    shutdown: bool,
    list_datasets: bool,
}

fn run_submit(args: &[String]) -> Result<(), String> {
    let mut sub = SubmitArgs {
        addr: String::new(),
        req: SelectRequest {
            request_id: 1,
            dataset: String::new(),
            party_set: Vec::new(),
            select: 2,
            k: 10,
            query_count: 32,
            mode: 1,
            seed: 42,
            deadline_ms: 0,
            maximizer: 0,
        },
        parties: 4,
        party_set: None,
        ping: false,
        shutdown: false,
        list_datasets: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => sub.addr = value("--addr")?,
            "--dataset" => sub.req.dataset = value("--dataset")?,
            "--id" => {
                sub.req.request_id = value("--id")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--parties" => sub.parties = value("--parties")?.parse().map_err(|e| format!("{e}"))?,
            "--party-set" => {
                let set: Result<Vec<usize>, _> =
                    value("--party-set")?.split(',').map(str::trim).map(str::parse).collect();
                sub.party_set = Some(set.map_err(|e| format!("{e}"))?);
            }
            "--select" => {
                sub.req.select = value("--select")?.parse().map_err(|e| format!("{e}"))?
            }
            "--k" => sub.req.k = value("--k")?.parse().map_err(|e| format!("{e}"))?,
            "--queries" => {
                sub.req.query_count = value("--queries")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--mode" => {
                sub.req.mode = match value("--mode")?.to_lowercase().as_str() {
                    "base" => 0,
                    "fagin" => 1,
                    "threshold" | "ta" => 2,
                    "nra" => 3,
                    other => return Err(format!("unknown mode {other}")),
                };
            }
            "--maximizer" => {
                sub.req.maximizer = match value("--maximizer")?.to_lowercase().as_str() {
                    "greedy" => 0,
                    "lazy" => 1,
                    "stochastic" => 2,
                    "sieve" => 3,
                    other => return Err(format!("unknown maximizer {other}")),
                };
            }
            "--seed" => sub.req.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--deadline-ms" => {
                sub.req.deadline_ms =
                    value("--deadline-ms")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--ping" => sub.ping = true,
            "--shutdown" => sub.shutdown = true,
            "--list-datasets" => sub.list_datasets = true,
            "--help" | "-h" => {
                print_submit_help();
                std::process::exit(0);
            }
            other => return Err(format!("unknown submit argument {other}")),
        }
    }
    if sub.addr.is_empty() {
        return Err("--addr is required".into());
    }
    sub.req.party_set = sub.party_set.clone().unwrap_or_else(|| (0..sub.parties).collect());

    let mut client = Client::connect(&sub.addr).map_err(|e| e.to_string())?;
    client.set_read_timeout(Some(Duration::from_secs(120))).map_err(|e| e.to_string())?;
    if sub.ping {
        let version = client.ping().map_err(|e| e.to_string())?;
        println!("pong: protocol version {version}");
        return Ok(());
    }
    if sub.list_datasets {
        let (default_dataset, max_resident, tenants) =
            client.list_datasets().map_err(|e| e.to_string())?;
        println!("datasets: default {default_dataset}, max resident {max_resident}");
        for t in tenants {
            println!(
                "  {} [{}]: accepted {} completed {} failed {} rejected {} in-flight {} cache-hits {}",
                t.dataset,
                if t.resident { "resident" } else { "evicted" },
                t.accepted,
                t.completed,
                t.failed,
                t.rejected,
                t.in_flight,
                t.cache_hits
            );
        }
        return Ok(());
    }
    if sub.shutdown {
        let report = client.shutdown().map_err(|e| e.to_string())?;
        println!(
            "draining: accepted {} completed {} failed {} rejected {} in-flight {} cache-hits {}",
            report.accepted,
            report.completed,
            report.failed,
            report.rejected,
            report.in_flight,
            report.cache_hits
        );
        return Ok(());
    }
    match client.roundtrip(&Request::Select(sub.req.clone())).map_err(|e| e.to_string())? {
        Response::Selected(reply) => {
            println!(
                "reply {}: cache={} enc={} hits={} misses={} queue_us={} run_us={} \
                 random_accesses={}",
                reply.request_id,
                reply.cache_status,
                reply.enc_instances,
                reply.cache_hits,
                reply.cache_misses,
                reply.queue_us,
                reply.run_us,
                reply.random_accesses
            );
            println!("chosen: {:?}", reply.chosen);
            println!(
                "scores: [{}]",
                reply.scores.iter().map(|s| format!("{s:.6}")).collect::<Vec<_>>().join(", ")
            );
            Ok(())
        }
        Response::Busy { queue_depth, capacity, .. } => {
            Err(format!("busy: queue {queue_depth}/{capacity} — retry later"))
        }
        Response::TimedOut { waited_ms, .. } => Err(format!("timed out after {waited_ms} ms")),
        Response::Rejected { reason, .. } => Err(format!("rejected: {reason}")),
        other => Err(format!("unexpected response {other:?}")),
    }
}

// ---------------------------------------------------------------------
// `vfps route` — control a running vfps-router.
// ---------------------------------------------------------------------

fn run_route(args: &[String]) -> Result<(), String> {
    let mut addr = String::new();
    let mut action: Option<String> = None;
    let mut drain_target: Option<String> = None;
    let mut add_target: Option<(String, String)> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                addr = it.next().cloned().ok_or("--addr needs a value")?;
            }
            "--help" | "-h" => {
                print_route_help();
                std::process::exit(0);
            }
            "status" if action.is_none() => action = Some("status".into()),
            "drain" if action.is_none() => {
                action = Some("drain".into());
                drain_target = Some(it.next().cloned().ok_or("drain needs a backend name")?);
            }
            "add" if action.is_none() => {
                action = Some("add".into());
                let spec = it.next().cloned().ok_or("add needs <name>=<host:port>")?;
                let (name, backend_addr) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("add target {spec:?} must be <name>=<host:port>"))?;
                add_target = Some((name.to_owned(), backend_addr.to_owned()));
            }
            other => return Err(format!("unknown route argument {other}")),
        }
    }
    let action =
        action.ok_or("route needs an action: status | drain <backend> | add <name>=<addr>")?;
    if addr.is_empty() {
        return Err("--addr is required".into());
    }
    let mut client = Client::connect(&addr).map_err(|e| e.to_string())?;
    client.set_read_timeout(Some(Duration::from_secs(120))).map_err(|e| e.to_string())?;
    let status = match action.as_str() {
        "status" => client.router_status().map_err(|e| e.to_string())?,
        "drain" => {
            let target = drain_target.expect("parsed with the action");
            let status = client.router_drain(&target).map_err(|e| e.to_string())?;
            println!("drained {target} out of the ring (in-flight replies still delivered)");
            status
        }
        "add" => {
            let (name, backend_addr) = add_target.expect("parsed with the action");
            let status = client.router_add(&name, &backend_addr).map_err(|e| e.to_string())?;
            println!("added {name} @ {backend_addr} to the ring (~1/N of tenants re-home)");
            status
        }
        _ => unreachable!("actions are matched above"),
    };
    println!(
        "router: ring seed {} with {} vnodes/backend over {} backends",
        status.ring_seed,
        status.vnodes_per_backend,
        status.backends.len()
    );
    for b in &status.backends {
        println!(
            "  {} @ {} [{}]: vnodes {} routed {} relay-errors {}",
            b.name,
            b.addr,
            vfps_serve::health_state_name(b.state),
            b.vnodes,
            b.routed,
            b.relay_errors
        );
    }
    Ok(())
}

fn print_route_help() {
    println!(
        "vfps route — control a running vfps-router\n\n\
         USAGE:\n  vfps route status --addr <host:port>\n\
         \x20 vfps route drain <backend> --addr <host:port>\n\
         \x20 vfps route add <name>=<host:port> --addr <host:port>\n\n\
         \x20 status                 print the ring and each backend's health,\n\
         \x20                        routed-request count, and relay errors\n\
         \x20 drain <backend>        remove the named backend from the ring; requests\n\
         \x20                        already relayed to it still complete, new ones\n\
         \x20                        route to the surviving backends\n\
         \x20 add <name>=<addr>      join a backend to the ring live; only ~1/N of\n\
         \x20                        the tenant keyspace re-homes to the newcomer\n\
         \x20 --addr <host:port>     the router's address (required)\n\n\
         Pointing `vfps route` at a plain daemon fails with a typed\n\
         'not a router' rejection."
    );
}

fn print_submit_help() {
    println!(
        "vfps submit — send one selection request to a running `vfps serve`\n\n\
         USAGE:\n  vfps submit --addr <host:port> [options]\n\n\
         \x20 --addr <host:port>     server address (required)\n\
         \x20 --dataset <name>       dataset tenant to select under (default: the\n\
         \x20                        server's default dataset)\n\
         \x20 --id <n>               request correlation id (default 1)\n\
         \x20 --parties <P>          shorthand for --party-set 0,1,...,P-1 (default 4)\n\
         \x20 --party-set <a,b,...>  explicit consortium to select from\n\
         \x20 --select <S>           participants to keep (default 2)\n\
         \x20 --k <k>                proxy-KNN neighbor count (default 10)\n\
         \x20 --queries <q>          similarity query sample (default 32)\n\
         \x20 --mode base|fagin|threshold|nra   federated KNN variant (default fagin;\n\
         \x20                        nra is sorted-access-only with counted random\n\
         \x20                        accesses in the reply)\n\
         \x20 --maximizer greedy|lazy|stochastic|sieve   submodular maximizer\n\
         \x20                        (default greedy; stochastic/sieve are sublinear)\n\
         \x20 --seed <s>             run seed (default 42)\n\
         \x20 --deadline-ms <ms>     per-request deadline (0 = server default)\n\
         \x20 --ping                 liveness probe instead of a selection\n\
         \x20 --list-datasets        print the server's tenants and their accounting\n\
         \x20 --shutdown             ask the server to drain and stop"
    );
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = match argv.first().map(String::as_str) {
        Some("serve") => run_serve(&argv[1..]),
        Some("submit") => run_submit(&argv[1..]),
        Some("route") => run_route(&argv[1..]),
        Some("party") => run_party(&argv[1..]),
        _ => run(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run `vfps --help` for usage");
            ExitCode::from(2)
        }
    }
}
