//! Multi-tenant dataset worlds (DESIGN.md §10, protocol v2).
//!
//! A **tenant** is one dataset world: the synthetic dataset, its train
//! split, its vertical partition, and its shard of the artifact cache —
//! everything [`run_job`](crate::server) needs that used to be fixed at
//! startup. The [`TenantRegistry`] materializes worlds lazily on first
//! request and keeps at most `max_resident` of them in memory behind an
//! `RwLock`'d map with LRU eviction; per-tenant accounting
//! ([`TenantStats`]) lives outside the world so counters survive eviction
//! and resume when the world is rebuilt.
//!
//! Isolation is double-walled: every tenant gets its own cache *directory*
//! ([`ArtifactCache::open_tenant`]) and its tenant id folded into every
//! cache *fingerprint* (via [`vfps_core::TenantContext`]), so two tenants
//! can never alias, warm-serve, or churn-serve each other — even when
//! their dataset bits are identical.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use vfps_cache::ArtifactCache;
use vfps_data::{prepared_sized, Dataset, DatasetSpec, Split, VerticalPartition};

use crate::proto::TenantStatus;

/// Lifetime accounting for one tenant. Kept behind an `Arc` shared by the
/// registry and every in-flight job, independent of the (evictable)
/// [`TenantWorld`].
#[derive(Debug, Default)]
pub struct TenantStats {
    /// Select requests admitted for this tenant.
    pub accepted: AtomicU64,
    /// Admitted requests completed with a selection.
    pub completed: AtomicU64,
    /// Admitted requests that failed (deadline expiry, panics).
    pub failed: AtomicU64,
    /// Requests refused for this tenant (busy or rejected).
    pub rejected: AtomicU64,
    /// Jobs currently queued or running for this tenant.
    pub in_flight: AtomicU64,
    /// Cache hits billed across this tenant's completed requests.
    pub cache_hits: AtomicU64,
}

/// One materialized dataset world. Immutable once built; jobs hold it by
/// `Arc`, so LRU eviction never invalidates in-flight work.
pub struct TenantWorld {
    /// The tenant id — the dataset's catalog name.
    pub name: String,
    /// The synthetic dataset, built exactly as a direct pipeline run
    /// builds it (same spec, instances, seed).
    pub ds: Dataset,
    /// Train/test split.
    pub split: Split,
    /// The vertical partition requests select parties from.
    pub partition: VerticalPartition,
    /// This tenant's shard of the artifact store.
    pub cache: ArtifactCache,
    /// Accounting shared with the registry (survives eviction).
    pub stats: Arc<TenantStats>,
    /// LRU clock stamp of the most recent use.
    last_used: AtomicU64,
}

impl std::fmt::Debug for TenantWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantWorld")
            .field("name", &self.name)
            .field("features", &self.ds.n_features())
            .field("parties", &self.partition.parties())
            .finish_non_exhaustive()
    }
}

struct Inner {
    /// Materialized worlds by tenant id.
    resident: HashMap<String, Arc<TenantWorld>>,
    /// Every tenant ever served, in first-seen order, with its lifetime
    /// stats. Never shrinks.
    seen: Vec<(String, Arc<TenantStats>)>,
}

/// Lazily-materializing, LRU-capped registry of dataset worlds.
pub struct TenantRegistry {
    default_dataset: String,
    instances: usize,
    parties: usize,
    data_seed: u64,
    cache_root: PathBuf,
    max_resident: usize,
    clock: AtomicU64,
    inner: RwLock<Inner>,
}

impl TenantRegistry {
    /// A registry whose every world is built from
    /// `(instances, parties, data_seed)` over the named catalog dataset —
    /// the same recipe [`ServeConfig`](crate::server::ServeConfig) used
    /// for its single startup world, so served selections stay
    /// bit-identical to direct single-tenant runs. `max_resident` is
    /// clamped to at least 1.
    pub fn new(
        default_dataset: &str,
        instances: usize,
        parties: usize,
        data_seed: u64,
        cache_root: PathBuf,
        max_resident: usize,
    ) -> TenantRegistry {
        TenantRegistry {
            default_dataset: default_dataset.to_owned(),
            instances,
            parties,
            data_seed,
            cache_root,
            max_resident: max_resident.max(1),
            clock: AtomicU64::new(0),
            inner: RwLock::new(Inner { resident: HashMap::new(), seen: Vec::new() }),
        }
    }

    /// The dataset a `""` request tag resolves to.
    #[must_use]
    pub fn default_dataset(&self) -> &str {
        &self.default_dataset
    }

    /// The LRU residency cap.
    #[must_use]
    pub fn max_resident(&self) -> usize {
        self.max_resident
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Inner> {
        self.inner.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Inner> {
        self.inner.write().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Resolves a request's dataset tag (`""` = default) to a resident
    /// world, materializing it on first use and evicting the
    /// least-recently-used world beyond `max_resident`. Returns a
    /// client-facing reason on an unknown dataset or one the registry's
    /// `(instances, parties)` recipe cannot host.
    pub fn resolve(&self, dataset: &str) -> Result<Arc<TenantWorld>, String> {
        let name = if dataset.is_empty() { self.default_dataset.as_str() } else { dataset };
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;

        // Fast path: resident world, LRU touch under the read lock.
        if let Some(world) = self.read().resident.get(name) {
            world.last_used.store(stamp, Ordering::Relaxed);
            return Ok(world.clone());
        }

        // Slow path: build outside any lock (dataset generation is the
        // expensive part), then insert under the write lock; a racing
        // builder's world wins and ours is dropped.
        let built = self.materialize(name)?;
        let mut inner = self.write();
        if let Some(world) = inner.resident.get(name) {
            world.last_used.store(stamp, Ordering::Relaxed);
            return Ok(world.clone());
        }
        let stats = match inner.seen.iter().find(|(n, _)| n == name) {
            Some((_, stats)) => stats.clone(),
            None => {
                let stats = Arc::new(TenantStats::default());
                inner.seen.push((name.to_owned(), stats.clone()));
                stats
            }
        };
        let world = Arc::new(TenantWorld {
            name: name.to_owned(),
            ds: built.0,
            split: built.1,
            partition: built.2,
            cache: built.3,
            stats,
            last_used: AtomicU64::new(stamp),
        });
        inner.resident.insert(name.to_owned(), world.clone());
        vfps_obs::counter_add("serve.tenant_materialized", 1);
        while inner.resident.len() > self.max_resident {
            let Some(coldest) = inner
                .resident
                .iter()
                .filter(|(n, _)| n.as_str() != name)
                .min_by_key(|(_, w)| w.last_used.load(Ordering::Relaxed))
                .map(|(n, _)| n.clone())
            else {
                break;
            };
            inner.resident.remove(&coldest);
            vfps_obs::counter_add("serve.tenant_evicted", 1);
        }
        vfps_obs::gauge_set("serve.tenants_resident", inner.resident.len() as f64);
        Ok(world)
    }

    fn materialize(
        &self,
        name: &str,
    ) -> Result<(Dataset, Split, VerticalPartition, ArtifactCache), String> {
        let spec = DatasetSpec::by_name(name).ok_or_else(|| format!("unknown dataset {name:?}"))?;
        let instances = if self.instances == 0 { spec.sim_instances } else { self.instances };
        let (ds, split) = prepared_sized(&spec, instances, self.data_seed);
        if self.parties == 0 || self.parties > ds.n_features() {
            return Err(format!(
                "dataset {name:?} cannot host {} parties over {} features",
                self.parties,
                ds.n_features()
            ));
        }
        let partition = VerticalPartition::random(ds.n_features(), self.parties, self.data_seed);
        let cache = ArtifactCache::open_tenant(&self.cache_root, name)
            .map_err(|e| format!("cannot open cache shard for {name:?}: {e}"))?;
        Ok((ds, split, partition, cache))
    }

    /// Whether the named tenant's world is currently materialized.
    #[must_use]
    pub fn is_resident(&self, name: &str) -> bool {
        self.read().resident.contains_key(name)
    }

    /// Per-tenant accounting snapshots, in first-seen order.
    #[must_use]
    pub fn statuses(&self) -> Vec<TenantStatus> {
        let inner = self.read();
        inner
            .seen
            .iter()
            .map(|(name, stats)| TenantStatus {
                dataset: name.clone(),
                resident: inner.resident.contains_key(name),
                accepted: stats.accepted.load(Ordering::Acquire),
                completed: stats.completed.load(Ordering::Acquire),
                failed: stats.failed.load(Ordering::Acquire),
                rejected: stats.rejected.load(Ordering::Acquire),
                in_flight: stats.in_flight.load(Ordering::Acquire),
                cache_hits: stats.cache_hits.load(Ordering::Acquire),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vfps_tenant_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn registry(tag: &str, max_resident: usize) -> TenantRegistry {
        TenantRegistry::new("Bank", 200, 4, 42, scratch(tag), max_resident)
    }

    #[test]
    fn empty_tag_resolves_to_the_default_world() {
        let reg = registry("default", 4);
        let a = reg.resolve("").expect("default");
        let b = reg.resolve("Bank").expect("named");
        assert_eq!(a.name, "Bank");
        assert!(Arc::ptr_eq(&a, &b), "one world per tenant, however it is named");
        assert_eq!(reg.statuses().len(), 1, "one tenant seen");
    }

    #[test]
    fn unknown_and_unhostable_datasets_are_client_errors() {
        let reg = registry("unknown", 4);
        let err = reg.resolve("NoSuchDataset").expect_err("must not materialize");
        assert!(err.contains("unknown dataset"), "{err}");
        assert!(reg.statuses().is_empty(), "failed resolves leave no tenant behind");

        // More parties than any catalog dataset has features.
        let wide = TenantRegistry::new("Bank", 200, 10_000, 42, scratch("wide"), 4);
        let err = wide.resolve("Bank").expect_err("cannot host");
        assert!(err.contains("cannot host"), "{err}");
    }

    #[test]
    fn worlds_match_the_single_tenant_recipe_bit_for_bit() {
        let reg = registry("recipe", 4);
        let world = reg.resolve("Rice").expect("materialize");
        let spec = DatasetSpec::by_name("Rice").unwrap();
        let (ds, split) = prepared_sized(&spec, 200, 42);
        assert_eq!(world.ds.x.rows(), ds.x.rows());
        assert_eq!(world.ds.x.cols(), ds.x.cols());
        for r in 0..ds.x.rows() {
            assert_eq!(world.ds.x.row(r), ds.x.row(r), "row {r} must be bit-identical");
        }
        assert_eq!(world.split.train, split.train);
        let partition = VerticalPartition::random(ds.n_features(), 4, 42);
        assert_eq!(world.partition.parties(), partition.parties());
    }

    #[test]
    fn lru_evicts_the_coldest_world_but_keeps_its_stats() {
        let reg = registry("lru", 1);
        let bank = reg.resolve("Bank").expect("bank");
        bank.stats.accepted.store(7, Ordering::Release);
        assert!(reg.is_resident("Bank"));

        let _rice = reg.resolve("Rice").expect("rice");
        assert!(reg.is_resident("Rice"));
        assert!(!reg.is_resident("Bank"), "cap 1: Bank must be evicted");

        // The evicted world is still usable by in-flight holders...
        assert_eq!(bank.name, "Bank");
        // ...its stats survive in the registry...
        let statuses = reg.statuses();
        assert_eq!(statuses.len(), 2);
        assert_eq!(statuses[0].dataset, "Bank");
        assert!(!statuses[0].resident);
        assert_eq!(statuses[0].accepted, 7);
        // ...and re-resolving rebuilds the world onto the same stats.
        let bank2 = reg.resolve("Bank").expect("rebuild");
        assert!(Arc::ptr_eq(&bank.stats, &bank2.stats), "stats must be shared across rebuilds");
        assert!(!Arc::ptr_eq(&bank, &bank2), "the world itself was rebuilt");
        assert!(!reg.is_resident("Rice"), "cap 1: Rice evicted in turn");
    }

    #[test]
    fn tenant_caches_are_disjoint_directories() {
        let reg = registry("shards", 4);
        let bank = reg.resolve("Bank").expect("bank");
        let rice = reg.resolve("Rice").expect("rice");
        assert_ne!(bank.cache.dir(), rice.cache.dir(), "one directory per tenant");
    }
}
