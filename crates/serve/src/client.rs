//! Blocking client for the vfps-serve protocol.
//!
//! One [`Client`] wraps one connection and issues strictly ordered
//! request/response pairs. Retry-on-`Busy` is deliberately left to the
//! caller (see `experiments bench-serve` for a retry loop with
//! accounting) — the protocol's backpressure only works if `Busy` stays
//! visible.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use vfps_net::{read_frame, write_frame, FrameError};

use crate::proto::{
    knn_mode, DrainReport, Request, Response, RouterStatusReply, SelectRequest, TenantStatus,
};

/// Client-side failures. Typed server replies (`Busy`, `TimedOut`,
/// `Rejected`) are *not* errors — they come back as [`Response`] values.
#[derive(Debug)]
pub enum ClientError {
    /// Connect / read / write failure.
    Io(std::io::Error),
    /// The server closed the connection where a response frame was due.
    Disconnected,
    /// An undecodable or oversized response frame.
    Protocol(String),
    /// The request failed client-side pre-flight validation (unknown KNN
    /// mode byte) — nothing was sent; the server would only have rejected
    /// it.
    InvalidRequest(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o error: {e}"),
            ClientError::Disconnected => f.write_str("server hung up before responding"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::InvalidRequest(m) => write!(f, "invalid request: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => ClientError::Io(io),
            other => ClientError::Protocol(other.to_string()),
        }
    }
}

/// A connected vfps-serve client.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Bounds every blocking read on this connection — a client-side
    /// safety net past the server's own per-request deadline.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends one request frame and reads exactly one response frame.
    pub fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, req)?;
        match read_frame::<_, Response>(&mut self.stream)? {
            Some(resp) => Ok(resp),
            None => Err(ClientError::Disconnected),
        }
    }

    /// Submits one selection. The reply may be any of `Selected`, `Busy`,
    /// `TimedOut`, or `Rejected`; all echo the request id.
    ///
    /// An unknown `mode` or `maximizer` byte fails pre-flight with
    /// [`ClientError::InvalidRequest`] before anything hits the wire —
    /// the server enforces the same checks at admission (the wire-level
    /// contract is pinned by the mode=250 and maximizer=250 tests in
    /// `tests/service.rs`).
    pub fn select(&mut self, req: &SelectRequest) -> Result<Response, ClientError> {
        if knn_mode(req.mode).is_none() {
            return Err(ClientError::InvalidRequest(format!(
                "unknown KNN mode {} (known: 0=Base, 1=Fagin, 2=Threshold, 3=NRA)",
                req.mode
            )));
        }
        if crate::proto::maximizer(req.maximizer).is_none() {
            return Err(ClientError::InvalidRequest(format!(
                "unknown maximizer {} (known: 0=greedy, 1=lazy, 2=stochastic, 3=sieve)",
                req.maximizer
            )));
        }
        self.roundtrip(&Request::Select(req.clone()))
    }

    /// Liveness probe; returns the server's protocol version.
    pub fn ping(&mut self) -> Result<u32, ClientError> {
        match self.roundtrip(&Request::Ping)? {
            Response::Pong { version } => Ok(version),
            other => Err(ClientError::Protocol(format!("expected Pong, got {other:?}"))),
        }
    }

    /// Enumerates the server's tenants: `(default dataset, residency cap,
    /// per-tenant accounting in first-seen order)`.
    pub fn list_datasets(&mut self) -> Result<(String, u64, Vec<TenantStatus>), ClientError> {
        match self.roundtrip(&Request::ListDatasets)? {
            Response::Datasets { default_dataset, max_resident, tenants } => {
                Ok((default_dataset, max_resident, tenants))
            }
            other => Err(ClientError::Protocol(format!("expected Datasets, got {other:?}"))),
        }
    }

    /// Asks a routing tier for its ring and per-backend health/accounting.
    /// A plain daemon answers `Rejected` (`"not a router"`), surfaced here
    /// as [`ClientError::Protocol`].
    pub fn router_status(&mut self) -> Result<RouterStatusReply, ClientError> {
        match self.roundtrip(&Request::RouterStatus)? {
            Response::RouterStatus(r) => Ok(r),
            Response::Rejected { reason, .. } => Err(ClientError::Protocol(reason)),
            other => Err(ClientError::Protocol(format!("expected RouterStatus, got {other:?}"))),
        }
    }

    /// Asks a routing tier to remove `backend` from its ring (in-flight
    /// relays still complete); returns the post-drain status.
    pub fn router_drain(&mut self, backend: &str) -> Result<RouterStatusReply, ClientError> {
        match self.roundtrip(&Request::DrainBackend(backend.to_owned()))? {
            Response::RouterStatus(r) => Ok(r),
            Response::Rejected { reason, .. } => Err(ClientError::Protocol(reason)),
            other => Err(ClientError::Protocol(format!("expected RouterStatus, got {other:?}"))),
        }
    }

    /// Asks a routing tier to join backend `name` at `addr` to its ring
    /// live (only ~1/N of the keyspace re-homes); returns the post-join
    /// status. A duplicate name or a plain daemon answers `Rejected`,
    /// surfaced here as [`ClientError::Protocol`].
    pub fn router_add(&mut self, name: &str, addr: &str) -> Result<RouterStatusReply, ClientError> {
        let req = Request::AddBackend { name: name.to_owned(), addr: addr.to_owned() };
        match self.roundtrip(&req)? {
            Response::RouterStatus(r) => Ok(r),
            Response::Rejected { reason, .. } => Err(ClientError::Protocol(reason)),
            other => Err(ClientError::Protocol(format!("expected RouterStatus, got {other:?}"))),
        }
    }

    /// Asks the server to drain and stop; blocks until in-flight work
    /// finished and returns the final accounting.
    pub fn shutdown(&mut self) -> Result<DrainReport, ClientError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::Draining(report) => Ok(report),
            other => Err(ClientError::Protocol(format!("expected Draining, got {other:?}"))),
        }
    }
}
