//! The vfps-serve wire protocol (DESIGN.md §10).
//!
//! Every message is one length-prefixed frame ([`vfps_net::write_frame`] /
//! [`vfps_net::read_frame`]): a `u32` little-endian payload length followed
//! by the [`Wire`]-encoded payload. Enums carry a leading tag byte; unknown
//! tags decode to [`WireError::BadTag`], never a panic.
//!
//! A connection carries any number of request/response pairs in order: the
//! client writes one [`Request`] frame and reads exactly one [`Response`]
//! frame before writing the next. There is no pipelining — admission
//! control happens server-side per request, so a client blocked behind its
//! own in-flight request is the intended backpressure.

use vfps_net::wire::{Wire, WireError};

/// Bumped on any incompatible frame-layout change; [`Response::Pong`]
/// echoes it so clients can detect mismatched builds.
///
/// v2 (multi-tenant): [`SelectRequest`] gained the `dataset` tag and the
/// [`Request::ListDatasets`] / [`Response::Datasets`] pair. v1 `Select`
/// frames do not decode under v2 (the dataset field shifts every later
/// field); a v1 client should `Ping` first and refuse to proceed on a
/// version mismatch.
///
/// The `maximizer` byte appended to [`SelectRequest`] is v2-*compatible*:
/// it sits at the very end of the frame and decodes as trailing-optional
/// (an early-v2 frame without it reads as `0` = greedy), so the version
/// did not bump.
///
/// The routing-tier control requests ([`Request::RouterStatus`] /
/// [`Request::DrainBackend`] / [`Request::AddBackend`] answered by
/// [`Response::RouterStatus`]) are also v2-compatible: the new request
/// tags are only ever *sent* by routing-aware clients, and a plain daemon
/// answers them with a typed [`Response::Rejected`] (`"not a router"`),
/// never a decode failure.
///
/// The NRA additions are v2-compatible on both sides: `mode` byte `3` is
/// a *value* of an existing field (an old server rejects it at admission
/// with a typed [`Response::Rejected`], exactly like any unknown byte),
/// and [`SelectReply::random_accesses`] is trailing-optional (an old
/// frame without it decodes as `0`).
pub const PROTOCOL_VERSION: u32 = 2;

/// The federated-KNN variant a [`SelectRequest::mode`] byte names, or
/// `None` for an unknown byte. The single place the wire byte is mapped —
/// admission validation, job execution, and the client-side pre-flight all
/// delegate here so an unknown mode can never be silently coerced.
#[must_use]
pub fn knn_mode(mode: u8) -> Option<vfps_vfl::fed_knn::KnnMode> {
    use vfps_vfl::fed_knn::KnnMode;
    match mode {
        0 => Some(KnnMode::Base),
        1 => Some(KnnMode::Fagin),
        2 => Some(KnnMode::Threshold),
        3 => Some(KnnMode::Nra),
        _ => None,
    }
}

/// Epsilon the server attaches to the approximate maximizers. Fixed
/// server-side (not wire-carried) so a request's cache identity stays a
/// pure function of its validated fields.
pub const SERVED_MAXIMIZER_EPSILON: f64 = 0.1;

/// The submodular maximizer a [`SelectRequest::maximizer`] byte names
/// (0 = greedy, 1 = lazy, 2 = stochastic, 3 = sieve), or `None` for an
/// unknown byte. Mirrors [`knn_mode`]: the single mapping point that
/// admission validation, job execution, and the client pre-flight all
/// delegate to, so an unknown maximizer can never be silently coerced.
#[must_use]
pub fn maximizer(byte: u8) -> Option<vfps_core::Maximizer> {
    vfps_core::Maximizer::from_kind(byte, SERVED_MAXIMIZER_EPSILON)
}

/// One selection job, fully self-describing: the server owns the tenant
/// registry of dataset worlds, the request names its world (`dataset`) and
/// owns everything else that feeds the cache fingerprint, so equal
/// requests are served warm across connections and across client
/// processes — but never across tenants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SelectRequest {
    /// Client-chosen correlation id, echoed verbatim in every reply kind.
    pub request_id: u64,
    /// Which dataset world (tenant) serves this request. `""` selects the
    /// server's default tenant (its startup dataset); any other value must
    /// name a catalog dataset and is lazily materialized on first use.
    pub dataset: String,
    /// The consortium to select from (party ids within the tenant's
    /// partition).
    pub party_set: Vec<usize>,
    /// How many participants to keep.
    pub select: usize,
    /// Proxy-KNN neighbor count.
    pub k: usize,
    /// Similarity query sample size.
    pub query_count: usize,
    /// Federated KNN variant: 0 = Base, 1 = Fagin, 2 = Threshold,
    /// 3 = NRA (see [`knn_mode`]). Any other byte is rejected at admission
    /// with a typed [`Response::Rejected`] — it never reaches the pipeline.
    pub mode: u8,
    /// Run seed — the determinism handle: a served selection with this
    /// seed is bit-identical to a direct pipeline run with the same seed.
    pub seed: u64,
    /// Per-request deadline in milliseconds. The value `0` is a sentinel
    /// meaning "use the server's configured default deadline" — it does
    /// NOT mean "already expired"; an explicit 0 is served exactly like an
    /// omitted deadline (DESIGN.md §10).
    pub deadline_ms: u64,
    /// Submodular maximizer: 0 = greedy, 1 = lazy, 2 = stochastic,
    /// 3 = sieve (see [`maximizer`]). Any other byte is rejected at
    /// admission with a typed [`Response::Rejected`]. Trailing-optional on
    /// the wire: an early-v2 frame that omits it decodes as 0 (greedy).
    pub maximizer: u8,
}

impl Wire for SelectRequest {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.request_id.encode(buf);
        self.dataset.encode(buf);
        self.party_set.encode(buf);
        self.select.encode(buf);
        self.k.encode(buf);
        self.query_count.encode(buf);
        self.mode.encode(buf);
        self.seed.encode(buf);
        self.deadline_ms.encode(buf);
        self.maximizer.encode(buf);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(SelectRequest {
            request_id: u64::decode(input)?,
            dataset: String::decode(input)?,
            party_set: Vec::<usize>::decode(input)?,
            select: usize::decode(input)?,
            k: usize::decode(input)?,
            query_count: usize::decode(input)?,
            mode: u8::decode(input)?,
            seed: u64::decode(input)?,
            deadline_ms: u64::decode(input)?,
            // Trailing-optional: frames from early-v2 builds end here, and
            // a `Select` payload is the frame's last content, so an empty
            // remainder unambiguously means "field absent" = greedy.
            maximizer: if input.is_empty() { 0 } else { u8::decode(input)? },
        })
    }

    // Delegating per field keeps the length exact on every target and
    // under every future field-width change (a hardcoded `8` per `usize`
    // was silently wrong on 32-bit).
    fn encoded_len(&self) -> usize {
        self.request_id.encoded_len()
            + self.dataset.encoded_len()
            + self.party_set.encoded_len()
            + self.select.encoded_len()
            + self.k.encoded_len()
            + self.query_count.encoded_len()
            + self.mode.encoded_len()
            + self.seed.encoded_len()
            + self.deadline_ms.encoded_len()
            + self.maximizer.encoded_len()
    }
}

/// A client-to-server frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Run (or warm-serve) one selection.
    Select(SelectRequest),
    /// Liveness / version probe.
    Ping,
    /// Drain and stop: finish in-flight jobs, reply [`Response::Draining`]
    /// with the final accounting, then exit the accept loop. A routing
    /// tier relays this to every backend and replies with the *merged*
    /// accounting.
    Shutdown,
    /// Enumerate the server's tenants (resident and evicted) with their
    /// per-tenant accounting; answered with [`Response::Datasets`]. A
    /// routing tier fans this out to every healthy backend and merges the
    /// ledgers by tenant name.
    ListDatasets,
    /// Routing-tier control: report the consistent-hash ring and the
    /// per-backend health/accounting ([`Response::RouterStatus`]). A plain
    /// daemon answers with a typed `Rejected` (`"not a router"`).
    RouterStatus,
    /// Routing-tier control: remove the named backend from the ring.
    /// In-flight requests already relayed to it still complete and their
    /// replies are still delivered; only *new* requests stop routing
    /// there. Answered with the post-drain [`Response::RouterStatus`].
    DrainBackend(String),
    /// Routing-tier control: join the backend `name=addr` to the ring
    /// live. Keys whose ring positions now land on the newcomer route
    /// there from the next request on; everything else keeps its old
    /// owner (consistent hashing moves only ~1/N of the keyspace).
    /// Answered with the post-join [`Response::RouterStatus`]; a plain
    /// daemon answers with a typed `Rejected` (`"not a router"`), and a
    /// duplicate name is a typed `Rejected`, never a ring corruption.
    AddBackend {
        /// The newcomer's ring name (must be unique on the router).
        name: String,
        /// The newcomer's socket address.
        addr: String,
    },
}

impl Wire for Request {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Request::Select(r) => {
                buf.push(0);
                r.encode(buf);
            }
            Request::Ping => buf.push(1),
            Request::Shutdown => buf.push(2),
            Request::ListDatasets => buf.push(3),
            Request::RouterStatus => buf.push(4),
            Request::DrainBackend(name) => {
                buf.push(5);
                name.encode(buf);
            }
            Request::AddBackend { name, addr } => {
                buf.push(6);
                name.encode(buf);
                addr.encode(buf);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(input)? {
            0 => Ok(Request::Select(SelectRequest::decode(input)?)),
            1 => Ok(Request::Ping),
            2 => Ok(Request::Shutdown),
            3 => Ok(Request::ListDatasets),
            4 => Ok(Request::RouterStatus),
            5 => Ok(Request::DrainBackend(String::decode(input)?)),
            6 => Ok(Request::AddBackend {
                name: String::decode(input)?,
                addr: String::decode(input)?,
            }),
            t => Err(WireError::BadTag(t)),
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            Request::Select(r) => r.encoded_len(),
            Request::Ping | Request::Shutdown | Request::ListDatasets | Request::RouterStatus => 0,
            Request::DrainBackend(name) => name.encoded_len(),
            Request::AddBackend { name, addr } => name.encoded_len() + addr.encoded_len(),
        }
    }
}

/// The health-state byte carried by [`BackendStatus::state`], rendered for
/// humans. The single place the byte is mapped — the router's state
/// machine, the `vfps route` output, and the bench all delegate here.
#[must_use]
pub fn health_state_name(state: u8) -> &'static str {
    match state {
        0 => "healthy",
        1 => "suspect",
        2 => "down",
        3 => "drained",
        _ => "unknown",
    }
}

/// One backend daemon's row in a [`Response::RouterStatus`] reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BackendStatus {
    /// The backend's ring name (stable across restarts; vnode positions
    /// hash from it).
    pub name: String,
    /// The backend's socket address.
    pub addr: String,
    /// Health state: 0 = healthy, 1 = suspect, 2 = down, 3 = drained (see
    /// [`health_state_name`]).
    pub state: u8,
    /// Virtual nodes this backend owns on the ring.
    pub vnodes: u64,
    /// Select requests relayed to this backend over the router's lifetime.
    pub routed: u64,
    /// Relays that failed transport-side (the client got a typed
    /// rejection carrying the taxonomy, never silence).
    pub relay_errors: u64,
}

impl Wire for BackendStatus {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.name.encode(buf);
        self.addr.encode(buf);
        self.state.encode(buf);
        self.vnodes.encode(buf);
        self.routed.encode(buf);
        self.relay_errors.encode(buf);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(BackendStatus {
            name: String::decode(input)?,
            addr: String::decode(input)?,
            state: u8::decode(input)?,
            vnodes: u64::decode(input)?,
            routed: u64::decode(input)?,
            relay_errors: u64::decode(input)?,
        })
    }

    fn encoded_len(&self) -> usize {
        self.name.encoded_len()
            + self.addr.encoded_len()
            + self.state.encoded_len()
            + self.vnodes.encoded_len()
            + self.routed.encoded_len()
            + self.relay_errors.encoded_len()
    }
}

/// The routing tier's self-description: ring parameters plus one
/// [`BackendStatus`] row per configured backend, in configuration order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouterStatusReply {
    /// Seed the ring's vnode positions hash from; two routers with the
    /// same seed, vnode count, and backend names route identically.
    pub ring_seed: u64,
    /// Virtual nodes per backend.
    pub vnodes_per_backend: u64,
    /// Every configured backend, including drained and down ones.
    pub backends: Vec<BackendStatus>,
}

impl Wire for RouterStatusReply {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.ring_seed.encode(buf);
        self.vnodes_per_backend.encode(buf);
        self.backends.encode(buf);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(RouterStatusReply {
            ring_seed: u64::decode(input)?,
            vnodes_per_backend: u64::decode(input)?,
            backends: Vec::<BackendStatus>::decode(input)?,
        })
    }

    fn encoded_len(&self) -> usize {
        self.ring_seed.encoded_len()
            + self.vnodes_per_backend.encoded_len()
            + self.backends.encoded_len()
    }
}

/// One tenant's accounting snapshot in a [`Response::Datasets`] reply.
/// Counters are lifetime totals — they survive LRU eviction of the
/// tenant's materialized world and resume when it is rebuilt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantStatus {
    /// The tenant's dataset name.
    pub dataset: String,
    /// Whether the dataset world is currently materialized in memory.
    pub resident: bool,
    /// Select requests admitted for this tenant.
    pub accepted: u64,
    /// Admitted requests completed with [`Response::Selected`].
    pub completed: u64,
    /// Admitted requests that failed (deadline expiry, panics).
    pub failed: u64,
    /// Requests refused for this tenant (busy or rejected).
    pub rejected: u64,
    /// This tenant's jobs currently queued or running.
    pub in_flight: u64,
    /// Cache hits billed across this tenant's completed requests.
    pub cache_hits: u64,
}

impl Wire for TenantStatus {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.dataset.encode(buf);
        self.resident.encode(buf);
        self.accepted.encode(buf);
        self.completed.encode(buf);
        self.failed.encode(buf);
        self.rejected.encode(buf);
        self.in_flight.encode(buf);
        self.cache_hits.encode(buf);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(TenantStatus {
            dataset: String::decode(input)?,
            resident: bool::decode(input)?,
            accepted: u64::decode(input)?,
            completed: u64::decode(input)?,
            failed: u64::decode(input)?,
            rejected: u64::decode(input)?,
            in_flight: u64::decode(input)?,
            cache_hits: u64::decode(input)?,
        })
    }

    fn encoded_len(&self) -> usize {
        self.dataset.encoded_len()
            + self.resident.encoded_len()
            + self.accepted.encoded_len()
            + self.completed.encoded_len()
            + self.failed.encoded_len()
            + self.rejected.encoded_len()
            + self.in_flight.encoded_len()
            + self.cache_hits.encoded_len()
    }
}

/// A completed selection, with enough accounting for the client to verify
/// warm-path behavior (`enc_instances == 0`, `cache_hits > 0`) without
/// access to the server's trace.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectReply {
    /// Echo of [`SelectRequest::request_id`].
    pub request_id: u64,
    /// The chosen sub-consortium, in selection order.
    pub chosen: Vec<usize>,
    /// Full-width per-party marginal-gain scores.
    pub scores: Vec<f64>,
    /// Which cache path served it (`cold`, `warm`, `churn-join(p)`,
    /// `churn-leave(p)`, `bypass`), as rendered by
    /// [`vfps_core::CacheStatus`]'s `Display`.
    pub cache_status: String,
    /// Instances encrypted while serving this request (0 on a warm hit).
    pub enc_instances: u64,
    /// Cache hits billed to this request's ledger.
    pub cache_hits: u64,
    /// Cache misses billed to this request's ledger.
    pub cache_misses: u64,
    /// Microseconds the request waited in the admission queue.
    pub queue_us: u64,
    /// Microseconds the selection itself ran.
    pub run_us: u64,
    /// Sorted-access-only accounting: random (by-id) accesses the fed-KNN
    /// runs charged while serving this request. Structurally 0 for every
    /// mode except NRA (whose refinement phase is the only random-access
    /// consumer), so clients can verify the NRA access profile from the
    /// reply alone. Trailing-optional on the wire: a frame from a build
    /// without it decodes as 0.
    pub random_accesses: u64,
}

impl Wire for SelectReply {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.request_id.encode(buf);
        self.chosen.encode(buf);
        self.scores.encode(buf);
        self.cache_status.encode(buf);
        self.enc_instances.encode(buf);
        self.cache_hits.encode(buf);
        self.cache_misses.encode(buf);
        self.queue_us.encode(buf);
        self.run_us.encode(buf);
        self.random_accesses.encode(buf);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(SelectReply {
            request_id: u64::decode(input)?,
            chosen: Vec::<usize>::decode(input)?,
            scores: Vec::<f64>::decode(input)?,
            cache_status: String::decode(input)?,
            enc_instances: u64::decode(input)?,
            cache_hits: u64::decode(input)?,
            cache_misses: u64::decode(input)?,
            queue_us: u64::decode(input)?,
            run_us: u64::decode(input)?,
            // Trailing-optional: a `Selected` payload is the frame's last
            // content, so an empty remainder means "field absent" = 0.
            random_accesses: if input.is_empty() { 0 } else { u64::decode(input)? },
        })
    }

    fn encoded_len(&self) -> usize {
        self.request_id.encoded_len()
            + self.chosen.encoded_len()
            + self.scores.encoded_len()
            + self.cache_status.encoded_len()
            + self.enc_instances.encoded_len()
            + self.cache_hits.encoded_len()
            + self.cache_misses.encoded_len()
            + self.queue_us.encoded_len()
            + self.run_us.encoded_len()
            + self.random_accesses.encoded_len()
    }
}

/// Final accounting returned by a graceful drain. After a clean drain
/// `in_flight` is 0 and `accepted == completed + failed`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct DrainReport {
    /// Select requests admitted to the queue over the server's lifetime.
    pub accepted: u64,
    /// Admitted requests that completed with a [`Response::Selected`].
    pub completed: u64,
    /// Admitted requests that failed (deadline expiry, invalid inputs).
    pub failed: u64,
    /// Requests refused at admission with [`Response::Busy`].
    pub rejected: u64,
    /// Jobs still running or queued at report time (0 after a drain).
    pub in_flight: u64,
    /// Total cache hits billed across all completed requests.
    pub cache_hits: u64,
}

impl Wire for DrainReport {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.accepted.encode(buf);
        self.completed.encode(buf);
        self.failed.encode(buf);
        self.rejected.encode(buf);
        self.in_flight.encode(buf);
        self.cache_hits.encode(buf);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        Ok(DrainReport {
            accepted: u64::decode(input)?,
            completed: u64::decode(input)?,
            failed: u64::decode(input)?,
            rejected: u64::decode(input)?,
            in_flight: u64::decode(input)?,
            cache_hits: u64::decode(input)?,
        })
    }

    fn encoded_len(&self) -> usize {
        self.accepted.encoded_len()
            + self.completed.encoded_len()
            + self.failed.encoded_len()
            + self.rejected.encoded_len()
            + self.in_flight.encoded_len()
            + self.cache_hits.encoded_len()
    }
}

/// A server-to-client frame. Every request gets exactly one response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The selection result.
    Selected(SelectReply),
    /// Admission control refused the request: the queue is full. The
    /// client may retry; nothing was enqueued.
    Busy {
        /// Echo of the request id.
        request_id: u64,
        /// Queue depth observed at rejection.
        queue_depth: u64,
        /// The server's configured queue capacity.
        capacity: u64,
    },
    /// The request was admitted but its deadline expired before a worker
    /// could finish (or start) it.
    TimedOut {
        /// Echo of the request id.
        request_id: u64,
        /// How long the request waited before expiry, in milliseconds.
        waited_ms: u64,
    },
    /// The request was malformed for this server (party id out of range,
    /// `select` out of range, unknown mode...). Not retryable as-is.
    Rejected {
        /// Echo of the request id.
        request_id: u64,
        /// Human-readable reason.
        reason: String,
    },
    /// Reply to [`Request::Shutdown`] after in-flight work finished.
    Draining(DrainReport),
    /// Reply to [`Request::Ping`].
    Pong {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Reply to [`Request::ListDatasets`].
    Datasets {
        /// The dataset a `""` request tag resolves to.
        default_dataset: String,
        /// How many tenant worlds the registry keeps materialized at once.
        /// A routing tier reports the *sum* across its healthy backends.
        max_resident: u64,
        /// Every tenant ever served, in first-seen order.
        tenants: Vec<TenantStatus>,
    },
    /// Reply to [`Request::RouterStatus`] and [`Request::DrainBackend`].
    RouterStatus(RouterStatusReply),
}

impl Wire for Response {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Response::Selected(r) => {
                buf.push(0);
                r.encode(buf);
            }
            Response::Busy { request_id, queue_depth, capacity } => {
                buf.push(1);
                request_id.encode(buf);
                queue_depth.encode(buf);
                capacity.encode(buf);
            }
            Response::TimedOut { request_id, waited_ms } => {
                buf.push(2);
                request_id.encode(buf);
                waited_ms.encode(buf);
            }
            Response::Rejected { request_id, reason } => {
                buf.push(3);
                request_id.encode(buf);
                reason.encode(buf);
            }
            Response::Draining(r) => {
                buf.push(4);
                r.encode(buf);
            }
            Response::Pong { version } => {
                buf.push(5);
                version.encode(buf);
            }
            Response::Datasets { default_dataset, max_resident, tenants } => {
                buf.push(6);
                default_dataset.encode(buf);
                max_resident.encode(buf);
                tenants.encode(buf);
            }
            Response::RouterStatus(r) => {
                buf.push(7);
                r.encode(buf);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(input)? {
            0 => Ok(Response::Selected(SelectReply::decode(input)?)),
            1 => Ok(Response::Busy {
                request_id: u64::decode(input)?,
                queue_depth: u64::decode(input)?,
                capacity: u64::decode(input)?,
            }),
            2 => Ok(Response::TimedOut {
                request_id: u64::decode(input)?,
                waited_ms: u64::decode(input)?,
            }),
            3 => Ok(Response::Rejected {
                request_id: u64::decode(input)?,
                reason: String::decode(input)?,
            }),
            4 => Ok(Response::Draining(DrainReport::decode(input)?)),
            5 => Ok(Response::Pong { version: u32::decode(input)? }),
            6 => Ok(Response::Datasets {
                default_dataset: String::decode(input)?,
                max_resident: u64::decode(input)?,
                tenants: Vec::<TenantStatus>::decode(input)?,
            }),
            7 => Ok(Response::RouterStatus(RouterStatusReply::decode(input)?)),
            t => Err(WireError::BadTag(t)),
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            Response::Selected(r) => r.encoded_len(),
            Response::Busy { request_id, queue_depth, capacity } => {
                request_id.encoded_len() + queue_depth.encoded_len() + capacity.encoded_len()
            }
            Response::TimedOut { request_id, waited_ms } => {
                request_id.encoded_len() + waited_ms.encoded_len()
            }
            Response::Rejected { request_id, reason } => {
                request_id.encoded_len() + reason.encoded_len()
            }
            Response::Draining(r) => r.encoded_len(),
            Response::Pong { version } => version.encoded_len(),
            Response::Datasets { default_dataset, max_resident, tenants } => {
                default_dataset.encoded_len() + max_resident.encoded_len() + tenants.encoded_len()
            }
            Response::RouterStatus(r) => r.encoded_len(),
        }
    }
}

/// The id a reply answers, across every response kind (`None` for the
/// connection-level [`Response::Draining`] / [`Response::Pong`]).
#[must_use]
pub fn response_request_id(r: &Response) -> Option<u64> {
    match r {
        Response::Selected(s) => Some(s.request_id),
        Response::Busy { request_id, .. }
        | Response::TimedOut { request_id, .. }
        | Response::Rejected { request_id, .. } => Some(*request_id),
        Response::Draining(_)
        | Response::Pong { .. }
        | Response::Datasets { .. }
        | Response::RouterStatus(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = v.to_bytes();
        assert_eq!(bytes.len(), v.encoded_len(), "encoded_len must be exact");
        assert_eq!(&T::from_bytes(&bytes).unwrap(), v);
    }

    fn sample_request() -> SelectRequest {
        SelectRequest {
            request_id: 7,
            dataset: "Bank".into(),
            party_set: vec![0, 1, 3],
            select: 2,
            k: 10,
            query_count: 32,
            mode: 1,
            seed: 42,
            deadline_ms: 5000,
            maximizer: 0,
        }
    }

    #[test]
    fn every_request_kind_roundtrips() {
        roundtrip(&Request::Select(sample_request()));
        roundtrip(&Request::Select(SelectRequest { dataset: String::new(), ..sample_request() }));
        roundtrip(&Request::Ping);
        roundtrip(&Request::Shutdown);
        roundtrip(&Request::ListDatasets);
        roundtrip(&Request::RouterStatus);
        roundtrip(&Request::DrainBackend("b1".into()));
        roundtrip(&Request::AddBackend { name: "b2".into(), addr: "127.0.0.1:7973".into() });
    }

    #[test]
    fn knn_mode_maps_exactly_four_bytes() {
        use vfps_vfl::fed_knn::KnnMode;
        assert_eq!(knn_mode(0), Some(KnnMode::Base));
        assert_eq!(knn_mode(1), Some(KnnMode::Fagin));
        assert_eq!(knn_mode(2), Some(KnnMode::Threshold));
        assert_eq!(knn_mode(3), Some(KnnMode::Nra));
        for bad in [4u8, 100, 250, 255] {
            assert_eq!(knn_mode(bad), None, "mode {bad} must not map");
        }
    }

    #[test]
    fn maximizer_maps_exactly_four_bytes() {
        use vfps_core::Maximizer;
        assert_eq!(maximizer(0), Some(Maximizer::Greedy));
        assert_eq!(maximizer(1), Some(Maximizer::Lazy));
        assert_eq!(maximizer(2), Some(Maximizer::Stochastic { epsilon: SERVED_MAXIMIZER_EPSILON }));
        assert_eq!(maximizer(3), Some(Maximizer::Sieve { epsilon: SERVED_MAXIMIZER_EPSILON }));
        for bad in [4u8, 100, 250, 255] {
            assert_eq!(maximizer(bad), None, "maximizer {bad} must not map");
        }
    }

    #[test]
    fn extended_requests_roundtrip_every_maximizer_byte() {
        for m in [0u8, 1, 2, 3] {
            roundtrip(&Request::Select(SelectRequest { maximizer: m, ..sample_request() }));
        }
    }

    #[test]
    fn a_reply_frame_without_the_random_accesses_field_decodes_as_zero() {
        // Re-encode a reply the way a pre-NRA build did: every field up to
        // and including run_us, nothing after.
        let want = SelectReply {
            request_id: 21,
            chosen: vec![0, 2],
            scores: vec![1.0, 0.5, 0.25],
            cache_status: "cold".into(),
            enc_instances: 64,
            cache_hits: 0,
            cache_misses: 1,
            queue_us: 80,
            run_us: 4200,
            random_accesses: 0,
        };
        let mut old_frame = Vec::new();
        want.request_id.encode(&mut old_frame);
        want.chosen.encode(&mut old_frame);
        want.scores.encode(&mut old_frame);
        want.cache_status.encode(&mut old_frame);
        want.enc_instances.encode(&mut old_frame);
        want.cache_hits.encode(&mut old_frame);
        want.cache_misses.encode(&mut old_frame);
        want.queue_us.encode(&mut old_frame);
        want.run_us.encode(&mut old_frame);
        assert_eq!(old_frame.len() + 8, want.encoded_len(), "one trailing u64");

        let got = SelectReply::from_bytes(&old_frame).unwrap();
        assert_eq!(got, want, "absent field must read as 0 random accesses");

        // And inside a tagged Response frame too (the shape on the socket).
        let mut tagged = vec![0u8];
        tagged.extend_from_slice(&old_frame);
        assert_eq!(Response::from_bytes(&tagged).unwrap(), Response::Selected(want));
    }

    #[test]
    fn an_early_v2_frame_without_the_maximizer_byte_decodes_as_greedy() {
        // Re-encode a request the way an early-v2 build did: every field
        // up to and including deadline_ms, nothing after.
        let want = sample_request();
        let mut old_frame = Vec::new();
        want.request_id.encode(&mut old_frame);
        want.dataset.encode(&mut old_frame);
        want.party_set.encode(&mut old_frame);
        want.select.encode(&mut old_frame);
        want.k.encode(&mut old_frame);
        want.query_count.encode(&mut old_frame);
        want.mode.encode(&mut old_frame);
        want.seed.encode(&mut old_frame);
        want.deadline_ms.encode(&mut old_frame);
        assert_eq!(old_frame.len() + 1, want.encoded_len(), "one trailing byte");

        let got = SelectRequest::from_bytes(&old_frame).unwrap();
        assert_eq!(got, want, "absent byte must read as 0 = greedy");

        // And inside a tagged Request frame too (the shape on the socket).
        let mut tagged = vec![0u8];
        tagged.extend_from_slice(&old_frame);
        assert_eq!(Request::from_bytes(&tagged).unwrap(), Request::Select(want));
    }

    #[test]
    fn every_response_kind_roundtrips() {
        roundtrip(&Response::Selected(SelectReply {
            request_id: 7,
            chosen: vec![1, 3],
            scores: vec![0.5, 0.25, 0.0, 0.125],
            cache_status: "warm".into(),
            enc_instances: 0,
            cache_hits: 1,
            cache_misses: 0,
            queue_us: 150,
            run_us: 9000,
            random_accesses: 12,
        }));
        roundtrip(&Response::Busy { request_id: 9, queue_depth: 32, capacity: 32 });
        roundtrip(&Response::TimedOut { request_id: 11, waited_ms: 250 });
        roundtrip(&Response::Rejected { request_id: 13, reason: "party 9 out of range".into() });
        roundtrip(&Response::Draining(DrainReport {
            accepted: 40,
            completed: 38,
            failed: 2,
            rejected: 5,
            in_flight: 0,
            cache_hits: 30,
        }));
        roundtrip(&Response::Pong { version: PROTOCOL_VERSION });
        roundtrip(&Response::Datasets {
            default_dataset: "Bank".into(),
            max_resident: 4,
            tenants: vec![
                TenantStatus {
                    dataset: "Bank".into(),
                    resident: true,
                    accepted: 12,
                    completed: 10,
                    failed: 1,
                    rejected: 2,
                    in_flight: 1,
                    cache_hits: 7,
                },
                TenantStatus {
                    dataset: "Rice".into(),
                    resident: false,
                    accepted: 3,
                    completed: 3,
                    failed: 0,
                    rejected: 0,
                    in_flight: 0,
                    cache_hits: 2,
                },
            ],
        });
    }

    #[test]
    fn router_status_replies_roundtrip() {
        roundtrip(&Response::RouterStatus(RouterStatusReply {
            ring_seed: 0xF0E1,
            vnodes_per_backend: 64,
            backends: vec![
                BackendStatus {
                    name: "b0".into(),
                    addr: "127.0.0.1:7971".into(),
                    state: 0,
                    vnodes: 64,
                    routed: 41,
                    relay_errors: 0,
                },
                BackendStatus {
                    name: "b1".into(),
                    addr: "127.0.0.1:7972".into(),
                    state: 3,
                    vnodes: 64,
                    routed: 17,
                    relay_errors: 1,
                },
            ],
        }));
    }

    #[test]
    fn health_state_bytes_have_stable_names() {
        assert_eq!(health_state_name(0), "healthy");
        assert_eq!(health_state_name(1), "suspect");
        assert_eq!(health_state_name(2), "down");
        assert_eq!(health_state_name(3), "drained");
        assert_eq!(health_state_name(250), "unknown");
    }

    #[test]
    fn unknown_tags_are_typed_errors() {
        assert!(matches!(Request::from_bytes(&[9]), Err(WireError::BadTag(9))));
        assert!(matches!(Response::from_bytes(&[250]), Err(WireError::BadTag(250))));
    }

    #[test]
    fn request_ids_are_extracted_from_every_reply_kind() {
        assert_eq!(
            response_request_id(&Response::Busy { request_id: 4, queue_depth: 1, capacity: 1 }),
            Some(4)
        );
        assert_eq!(response_request_id(&Response::Pong { version: 1 }), None);
    }
}
