//! In-process integration tests for the selection service: warm-path
//! serving, bit-identity with direct pipeline runs, admission-control
//! backpressure, per-request deadlines, and clean drain accounting.

use std::time::Duration;

use vfps_core::selectors::{SelectionContext, VfpsSmSelector};
use vfps_data::{prepared_sized, DatasetSpec, VerticalPartition};
use vfps_serve::{Client, Response, SelectRequest, ServeConfig, Server};
use vfps_vfl::fed_knn::KnnMode;

/// A small-footprint server config shared by the tests. `instances` is
/// shrunk well below the spec default so each selection takes
/// milliseconds, not seconds.
fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        dataset: "Bank".into(),
        instances: 240,
        parties: 4,
        data_seed: 42,
        max_concurrent: 2,
        queue_capacity: 4,
        default_deadline: Duration::from_secs(30),
        cache_dir: None,
        once: false,
        trace_out: None,
    }
}

fn spawn(
    cfg: ServeConfig,
) -> (std::net::SocketAddr, std::thread::JoinHandle<vfps_serve::DrainReport>) {
    let server = Server::bind(&cfg).expect("bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("run"));
    (addr, handle)
}

fn request(id: u64, seed: u64) -> SelectRequest {
    SelectRequest {
        request_id: id,
        party_set: vec![0, 1, 2, 3],
        select: 2,
        k: 10,
        query_count: 8,
        mode: 1,
        seed,
        deadline_ms: 0,
    }
}

/// The selection a direct (no service, no cache) pipeline run produces
/// for the same inputs the test server holds.
fn direct_run(
    seed: u64,
    party_set: &[usize],
    select: usize,
    query_count: usize,
) -> (Vec<usize>, Vec<f64>) {
    let spec = DatasetSpec::by_name("Bank").unwrap();
    let (ds, split) = prepared_sized(&spec, 240, 42);
    let partition = VerticalPartition::random(ds.n_features(), 4, 42);
    let ctx =
        SelectionContext { ds: &ds, split: &split, partition: &partition, cost_scale: 1.0, seed };
    let sel =
        VfpsSmSelector { k: 10, query_count, mode: KnnMode::Fagin, ..VfpsSmSelector::default() };
    let art = sel.run_over(&ctx, party_set, select, None);
    (art.selection.chosen, art.selection.scores)
}

#[test]
fn served_selection_is_bit_identical_to_a_direct_run_and_repeats_serve_warm() {
    let (addr, handle) = spawn(test_config());
    let mut client = Client::connect(addr).unwrap();

    // Cold request.
    let cold = match client.select(&request(1, 42)).unwrap() {
        Response::Selected(r) => r,
        other => panic!("expected Selected, got {other:?}"),
    };
    assert_eq!(cold.request_id, 1);
    assert_eq!(cold.cache_status, "cold");
    assert!(cold.enc_instances > 0, "a cold run must encrypt");

    // Bit-identity against the pipeline run directly, no service involved.
    let (chosen, scores) = direct_run(42, &[0, 1, 2, 3], 2, 8);
    assert_eq!(cold.chosen, chosen, "served chosen set must match a direct run");
    assert_eq!(cold.scores, scores, "served scores must be bit-identical to a direct run");

    // The same request again: warm path, zero new encryptions, same bits.
    let warm = match client.select(&request(2, 42)).unwrap() {
        Response::Selected(r) => r,
        other => panic!("expected Selected, got {other:?}"),
    };
    assert_eq!(warm.cache_status, "warm");
    assert_eq!(warm.enc_instances, 0, "warm serving must not encrypt");
    assert!(warm.cache_hits > 0);
    assert_eq!(warm.chosen, cold.chosen);
    assert_eq!(warm.scores, cold.scores);

    // Churn: the same run minus one party rides the incremental path.
    let mut churned = request(3, 42);
    churned.party_set = vec![0, 1, 2];
    let churn = match client.select(&churned).unwrap() {
        Response::Selected(r) => r,
        other => panic!("expected Selected, got {other:?}"),
    };
    assert_eq!(churn.cache_status, "churn-leave(3)");
    assert_eq!(churn.enc_instances, 0, "churn serving must not encrypt");

    let report = client.shutdown().unwrap();
    assert_eq!(report.in_flight, 0, "drain must leave nothing in flight");
    assert_eq!(report.completed, 3);
    assert_eq!(report.accepted, report.completed + report.failed);
    let final_report = handle.join().unwrap();
    assert_eq!(final_report.in_flight, 0);
}

#[test]
fn ping_reports_the_protocol_version() {
    let (addr, handle) = spawn(test_config());
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.ping().unwrap(), vfps_serve::PROTOCOL_VERSION);
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn invalid_requests_are_rejected_with_reasons_not_hangs() {
    let (addr, handle) = spawn(test_config());
    let mut client = Client::connect(addr).unwrap();

    let cases: Vec<(SelectRequest, &str)> = vec![
        (SelectRequest { party_set: vec![0, 9], ..request(10, 1) }, "out of range"),
        (SelectRequest { party_set: vec![], ..request(11, 1) }, "empty"),
        (SelectRequest { select: 5, ..request(12, 1) }, "select 5 out of range"),
        (SelectRequest { mode: 7, ..request(13, 1) }, "unknown KNN mode"),
        (SelectRequest { k: 0, ..request(14, 1) }, "must be positive"),
        (SelectRequest { party_set: vec![1, 1, 2], ..request(15, 1) }, "duplicate"),
    ];
    for (req, needle) in cases {
        let id = req.request_id;
        match client.select(&req).unwrap() {
            Response::Rejected { request_id, reason } => {
                assert_eq!(request_id, id);
                assert!(reason.contains(needle), "reason {reason:?} should mention {needle:?}");
            }
            other => panic!("expected Rejected for {needle:?}, got {other:?}"),
        }
    }

    let report = client.shutdown().unwrap();
    assert_eq!(report.completed, 0);
    assert_eq!(report.rejected, 6);
    assert_eq!(report.in_flight, 0);
    handle.join().unwrap();
}

#[test]
fn over_capacity_submits_get_busy_and_drain_accounts_for_everything() {
    // One worker and a tiny queue: with enough simultaneous clients, some
    // must be refused at admission with a typed Busy.
    let cfg = ServeConfig { max_concurrent: 1, queue_capacity: 2, instances: 300, ..test_config() };
    let (addr, handle) = spawn(cfg);

    const CLIENTS: usize = 10;
    let results: Vec<(u64, Response)> = {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    // Distinct seeds: all cold, so jobs are slow enough to
                    // pile up against capacity 1+2.
                    let id = 100 + i as u64;
                    let resp = client.select(&request(id, 1000 + i as u64)).unwrap();
                    (id, resp)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    };

    let mut selected = 0u64;
    let mut busy = 0u64;
    for (id, resp) in &results {
        match resp {
            Response::Selected(r) => {
                assert_eq!(r.request_id, *id, "responses must correlate to their requests");
                selected += 1;
            }
            Response::Busy { request_id, queue_depth, capacity } => {
                assert_eq!(request_id, id);
                assert_eq!(*capacity, 2);
                assert!(*queue_depth >= *capacity, "Busy must report a full queue");
                busy += 1;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(selected + busy, CLIENTS as u64, "every client gets exactly one response");
    assert!(busy >= 1, "10 cold jobs against capacity 1+2 must trip Busy");
    // At least the queue's capacity worth of jobs is always admitted (the
    // running job may or may not have been dequeued yet when the burst
    // lands, so 2 is the guaranteed floor).
    assert!(selected >= 2, "admitted jobs must all complete");

    let mut client = Client::connect(addr).unwrap();
    let report = client.shutdown().unwrap();
    assert_eq!(report.in_flight, 0);
    assert_eq!(report.accepted, selected);
    assert_eq!(report.completed, selected);
    assert_eq!(report.rejected, busy);
    handle.join().unwrap();
}

#[test]
fn an_already_expired_deadline_is_a_typed_timeout() {
    let (addr, handle) = spawn(test_config());
    let mut client = Client::connect(addr).unwrap();

    // A 1 ms deadline on a cold selection expires while the job sits in
    // the queue behind its own admission latency.
    let mut req = request(50, 77);
    req.deadline_ms = 1;
    match client.select(&req).unwrap() {
        Response::TimedOut { request_id, .. } => assert_eq!(request_id, 50),
        // On a fast machine the worker may dequeue within 1 ms and run it
        // to completion — that is also a correct outcome.
        Response::Selected(r) => assert_eq!(r.request_id, 50),
        other => panic!("unexpected response {other:?}"),
    }

    let report = client.shutdown().unwrap();
    assert_eq!(report.in_flight, 0);
    assert_eq!(report.accepted, report.completed + report.failed);
    handle.join().unwrap();
}

#[test]
fn draining_server_rejects_new_submits_but_answers_admitted_ones() {
    let (addr, handle) = spawn(test_config());

    // Drain via one client...
    let mut closer = Client::connect(addr).unwrap();
    let report = closer.shutdown().unwrap();
    assert_eq!(report.in_flight, 0);
    handle.join().unwrap();

    // ...after which the listener is gone entirely.
    assert!(
        Client::connect(addr).is_err() || {
            // Accept raced the drain: an accepted-but-dead connection must
            // still fail the roundtrip rather than hang.
            let mut c = Client::connect(addr).unwrap();
            c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            c.select(&request(99, 5)).is_err()
        }
    );
}
