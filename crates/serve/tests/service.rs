//! In-process integration tests for the selection service: warm-path
//! serving, bit-identity with direct pipeline runs, admission-control
//! backpressure, per-request deadlines, and clean drain accounting.

use std::time::Duration;

use vfps_core::selectors::{SelectionContext, VfpsSmSelector};
use vfps_data::{prepared_sized, DatasetSpec, VerticalPartition};
use vfps_serve::{Client, ClientError, Request, Response, SelectRequest, ServeConfig, Server};
use vfps_vfl::fed_knn::KnnMode;

/// A small-footprint server config shared by the tests. `instances` is
/// shrunk well below the spec default so each selection takes
/// milliseconds, not seconds.
fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        dataset: "Bank".into(),
        instances: 240,
        parties: 4,
        data_seed: 42,
        max_concurrent: 2,
        queue_capacity: 4,
        default_deadline: Duration::from_secs(30),
        cache_dir: None,
        once: false,
        trace_out: None,
        max_tenants: 4,
    }
}

fn spawn(
    cfg: ServeConfig,
) -> (std::net::SocketAddr, std::thread::JoinHandle<vfps_serve::DrainReport>) {
    let server = Server::bind(&cfg).expect("bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("run"));
    (addr, handle)
}

fn request(id: u64, seed: u64) -> SelectRequest {
    SelectRequest {
        request_id: id,
        dataset: String::new(),
        party_set: vec![0, 1, 2, 3],
        select: 2,
        k: 10,
        query_count: 8,
        mode: 1,
        seed,
        deadline_ms: 0,
        maximizer: 0,
    }
}

/// The selection a direct (no service, no cache) pipeline run produces
/// for the same inputs the test server holds.
fn direct_run(
    seed: u64,
    party_set: &[usize],
    select: usize,
    query_count: usize,
) -> (Vec<usize>, Vec<f64>) {
    direct_run_on("Bank", seed, party_set, select, query_count)
}

/// Like [`direct_run`] but against an arbitrary dataset world with the
/// test server's sizing (240 instances, 4 parties, data seed 42).
fn direct_run_on(
    dataset: &str,
    seed: u64,
    party_set: &[usize],
    select: usize,
    query_count: usize,
) -> (Vec<usize>, Vec<f64>) {
    let spec = DatasetSpec::by_name(dataset).unwrap();
    let (ds, split) = prepared_sized(&spec, 240, 42);
    let partition = VerticalPartition::random(ds.n_features(), 4, 42);
    let ctx =
        SelectionContext { ds: &ds, split: &split, partition: &partition, cost_scale: 1.0, seed };
    let sel =
        VfpsSmSelector { k: 10, query_count, mode: KnnMode::Fagin, ..VfpsSmSelector::default() };
    let art = sel.run_over(&ctx, party_set, select, None);
    (art.selection.chosen, art.selection.scores)
}

#[test]
fn served_selection_is_bit_identical_to_a_direct_run_and_repeats_serve_warm() {
    let (addr, handle) = spawn(test_config());
    let mut client = Client::connect(addr).unwrap();

    // Cold request.
    let cold = match client.select(&request(1, 42)).unwrap() {
        Response::Selected(r) => r,
        other => panic!("expected Selected, got {other:?}"),
    };
    assert_eq!(cold.request_id, 1);
    assert_eq!(cold.cache_status, "cold");
    assert!(cold.enc_instances > 0, "a cold run must encrypt");

    // Bit-identity against the pipeline run directly, no service involved.
    let (chosen, scores) = direct_run(42, &[0, 1, 2, 3], 2, 8);
    assert_eq!(cold.chosen, chosen, "served chosen set must match a direct run");
    assert_eq!(cold.scores, scores, "served scores must be bit-identical to a direct run");

    // The same request again: warm path, zero new encryptions, same bits.
    let warm = match client.select(&request(2, 42)).unwrap() {
        Response::Selected(r) => r,
        other => panic!("expected Selected, got {other:?}"),
    };
    assert_eq!(warm.cache_status, "warm");
    assert_eq!(warm.enc_instances, 0, "warm serving must not encrypt");
    assert!(warm.cache_hits > 0);
    assert_eq!(warm.chosen, cold.chosen);
    assert_eq!(warm.scores, cold.scores);

    // Churn: the same run minus one party rides the incremental path.
    let mut churned = request(3, 42);
    churned.party_set = vec![0, 1, 2];
    let churn = match client.select(&churned).unwrap() {
        Response::Selected(r) => r,
        other => panic!("expected Selected, got {other:?}"),
    };
    assert_eq!(churn.cache_status, "churn-leave(3)");
    assert_eq!(churn.enc_instances, 0, "churn serving must not encrypt");

    let report = client.shutdown().unwrap();
    assert_eq!(report.in_flight, 0, "drain must leave nothing in flight");
    assert_eq!(report.completed, 3);
    assert_eq!(report.accepted, report.completed + report.failed);
    let final_report = handle.join().unwrap();
    assert_eq!(final_report.in_flight, 0);
}

#[test]
fn ping_reports_the_protocol_version() {
    let (addr, handle) = spawn(test_config());
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.ping().unwrap(), vfps_serve::PROTOCOL_VERSION);
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn invalid_requests_are_rejected_with_reasons_not_hangs() {
    let (addr, handle) = spawn(test_config());
    let mut client = Client::connect(addr).unwrap();

    let cases: Vec<(SelectRequest, &str)> = vec![
        (SelectRequest { party_set: vec![0, 9], ..request(10, 1) }, "out of range"),
        (SelectRequest { party_set: vec![], ..request(11, 1) }, "empty"),
        (SelectRequest { select: 5, ..request(12, 1) }, "select 5 out of range"),
        (SelectRequest { mode: 7, ..request(13, 1) }, "unknown KNN mode"),
        (SelectRequest { k: 0, ..request(14, 1) }, "must be positive"),
        (SelectRequest { party_set: vec![1, 1, 2], ..request(15, 1) }, "duplicate"),
    ];
    for (req, needle) in cases {
        let id = req.request_id;
        // Raw frames, bypassing the client's own pre-flight: the server
        // must enforce every rule itself.
        match client.roundtrip(&Request::Select(req)).unwrap() {
            Response::Rejected { request_id, reason } => {
                assert_eq!(request_id, id);
                assert!(reason.contains(needle), "reason {reason:?} should mention {needle:?}");
            }
            other => panic!("expected Rejected for {needle:?}, got {other:?}"),
        }
    }

    let report = client.shutdown().unwrap();
    assert_eq!(report.completed, 0);
    assert_eq!(report.rejected, 6);
    assert_eq!(report.in_flight, 0);
    handle.join().unwrap();
}

#[test]
fn over_capacity_submits_get_busy_and_drain_accounts_for_everything() {
    // One worker and a tiny queue: with enough simultaneous clients, some
    // must be refused at admission with a typed Busy.
    let cfg = ServeConfig { max_concurrent: 1, queue_capacity: 2, instances: 300, ..test_config() };
    let (addr, handle) = spawn(cfg);

    const CLIENTS: usize = 10;
    let results: Vec<(u64, Response)> = {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    // Distinct seeds: all cold, so jobs are slow enough to
                    // pile up against capacity 1+2.
                    let id = 100 + i as u64;
                    let resp = client.select(&request(id, 1000 + i as u64)).unwrap();
                    (id, resp)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    };

    let mut selected = 0u64;
    let mut busy = 0u64;
    for (id, resp) in &results {
        match resp {
            Response::Selected(r) => {
                assert_eq!(r.request_id, *id, "responses must correlate to their requests");
                selected += 1;
            }
            Response::Busy { request_id, queue_depth, capacity } => {
                assert_eq!(request_id, id);
                assert_eq!(*capacity, 2);
                assert!(*queue_depth >= *capacity, "Busy must report a full queue");
                busy += 1;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(selected + busy, CLIENTS as u64, "every client gets exactly one response");
    assert!(busy >= 1, "10 cold jobs against capacity 1+2 must trip Busy");
    // At least the queue's capacity worth of jobs is always admitted (the
    // running job may or may not have been dequeued yet when the burst
    // lands, so 2 is the guaranteed floor).
    assert!(selected >= 2, "admitted jobs must all complete");

    let mut client = Client::connect(addr).unwrap();
    let report = client.shutdown().unwrap();
    assert_eq!(report.in_flight, 0);
    assert_eq!(report.accepted, selected);
    assert_eq!(report.completed, selected);
    assert_eq!(report.rejected, busy);
    handle.join().unwrap();
}

#[test]
fn an_already_expired_deadline_is_a_typed_timeout() {
    let (addr, handle) = spawn(test_config());
    let mut client = Client::connect(addr).unwrap();

    // A 1 ms deadline on a cold selection expires while the job sits in
    // the queue behind its own admission latency.
    let mut req = request(50, 77);
    req.deadline_ms = 1;
    match client.select(&req).unwrap() {
        Response::TimedOut { request_id, .. } => assert_eq!(request_id, 50),
        // On a fast machine the worker may dequeue within 1 ms and run it
        // to completion — that is also a correct outcome.
        Response::Selected(r) => assert_eq!(r.request_id, 50),
        other => panic!("unexpected response {other:?}"),
    }

    let report = client.shutdown().unwrap();
    assert_eq!(report.in_flight, 0);
    assert_eq!(report.accepted, report.completed + report.failed);
    handle.join().unwrap();
}

/// Tentpole acceptance: one server, two dataset tenants, interleaved
/// requests. Each tenant gets its own cache shard (cold → warm with zero
/// encryptions per tenant), and every served selection is bit-identical
/// to a direct single-tenant pipeline run over that tenant's world.
#[test]
fn two_tenants_serve_concurrently_with_disjoint_warm_paths_and_bit_identity() {
    let (addr, handle) = spawn(test_config());
    let mut client = Client::connect(addr).unwrap();

    let bank_req = |id: u64| request(id, 42); // "" resolves to the default (Bank)
    let rice_req = |id: u64| SelectRequest { dataset: "Rice".into(), ..request(id, 42) };

    // Interleave cold requests: Bank, Rice. Identical (party_set, k,
    // seed, ...) tuples — only the dataset tag differs.
    let bank_cold = match client.select(&bank_req(1)).unwrap() {
        Response::Selected(r) => r,
        other => panic!("expected Selected, got {other:?}"),
    };
    let rice_cold = match client.select(&rice_req(2)).unwrap() {
        Response::Selected(r) => r,
        other => panic!("expected Selected, got {other:?}"),
    };
    assert_eq!(bank_cold.cache_status, "cold");
    assert_eq!(rice_cold.cache_status, "cold", "tenants must never alias cache entries");
    assert!(bank_cold.enc_instances > 0);
    assert!(rice_cold.enc_instances > 0);

    // Each tenant's answer matches its own direct single-tenant run.
    let (bank_chosen, bank_scores) = direct_run_on("Bank", 42, &[0, 1, 2, 3], 2, 8);
    let (rice_chosen, rice_scores) = direct_run_on("Rice", 42, &[0, 1, 2, 3], 2, 8);
    assert_eq!(bank_cold.chosen, bank_chosen);
    assert_eq!(bank_cold.scores, bank_scores);
    assert_eq!(rice_cold.chosen, rice_chosen);
    assert_eq!(rice_cold.scores, rice_scores);
    assert_ne!(
        bank_cold.scores, rice_cold.scores,
        "distinct worlds should produce distinct scores"
    );

    // Warm repeats, per tenant, still interleaved: zero new encryptions
    // and bit-identical to each tenant's own cold run.
    for (req, cold) in [(rice_req(3), &rice_cold), (bank_req(4), &bank_cold)] {
        let warm = match client.select(&req).unwrap() {
            Response::Selected(r) => r,
            other => panic!("expected Selected, got {other:?}"),
        };
        assert_eq!(warm.cache_status, "warm");
        assert_eq!(warm.enc_instances, 0, "per-tenant warm serving must not encrypt");
        assert_eq!(warm.chosen, cold.chosen);
        assert_eq!(warm.scores, cold.scores);
    }

    // Per-tenant accounting via ListDatasets: both resident, two
    // completions and a cache hit each, nothing rejected.
    let (default_dataset, max_resident, tenants) = client.list_datasets().unwrap();
    assert_eq!(default_dataset, "Bank");
    assert_eq!(max_resident, 4);
    assert_eq!(tenants.len(), 2);
    for t in &tenants {
        assert!(t.resident, "tenant {} should be resident", t.dataset);
        assert_eq!(t.accepted, 2, "tenant {}", t.dataset);
        assert_eq!(t.completed, 2, "tenant {}", t.dataset);
        assert_eq!(t.failed, 0);
        assert_eq!(t.rejected, 0);
        assert_eq!(t.in_flight, 0);
        assert!(t.cache_hits >= 1, "tenant {} warm repeat must hit its cache", t.dataset);
    }

    let report = client.shutdown().unwrap();
    assert_eq!(report.completed, 4);
    assert_eq!(report.in_flight, 0);
    handle.join().unwrap();
}

#[test]
fn unknown_dataset_tags_are_rejected_with_a_reason() {
    let (addr, handle) = spawn(test_config());
    let mut client = Client::connect(addr).unwrap();

    let req = SelectRequest { dataset: "NoSuchWorld".into(), ..request(21, 1) };
    match client.select(&req).unwrap() {
        Response::Rejected { request_id, reason } => {
            assert_eq!(request_id, 21);
            assert!(reason.contains("NoSuchWorld"), "reason {reason:?} should name the dataset");
        }
        other => panic!("expected Rejected, got {other:?}"),
    }

    let report = client.shutdown().unwrap();
    assert_eq!(report.rejected, 1);
    assert_eq!(report.completed, 0);
    handle.join().unwrap();
}

/// Satellite: an unknown `mode` byte must die at admission with a typed
/// `Rejected`, pinned at the wire level (raw `Request::Select` frame, no
/// client-side pre-flight in the way) with the hostile byte 250.
#[test]
fn a_raw_mode_250_frame_is_rejected_at_admission_not_mapped_or_hung() {
    let (addr, handle) = spawn(test_config());
    let mut client = Client::connect(addr).unwrap();

    // The convenience path refuses to even send it...
    let bad = SelectRequest { mode: 250, ..request(30, 1) };
    match client.select(&bad) {
        Err(ClientError::InvalidRequest(msg)) => {
            assert!(msg.contains("250"), "pre-flight message should name the byte: {msg}");
        }
        other => panic!("expected InvalidRequest pre-flight, got {other:?}"),
    }

    // ...so put the frame on the wire ourselves. The server must answer
    // with a typed Rejected naming the byte — not panic, not silently
    // coerce it to some valid mode.
    let bad = SelectRequest { mode: 250, ..request(31, 1) };
    match client.roundtrip(&Request::Select(bad)).unwrap() {
        Response::Rejected { request_id, reason } => {
            assert_eq!(request_id, 31);
            assert!(reason.contains("unknown KNN mode 250"), "got reason {reason:?}");
        }
        other => panic!("expected Rejected, got {other:?}"),
    }

    // The connection and server survive: a valid request still serves.
    match client.select(&request(32, 1)).unwrap() {
        Response::Selected(r) => assert_eq!(r.request_id, 32),
        other => panic!("expected Selected, got {other:?}"),
    }

    let report = client.shutdown().unwrap();
    assert_eq!(report.rejected, 1, "only the raw frame reaches the server's rejection path");
    assert_eq!(report.completed, 1);
    handle.join().unwrap();
}

/// Satellite: an unknown `maximizer` byte dies exactly like an unknown
/// mode byte — client pre-flight refuses it, and a raw frame bypassing
/// the pre-flight gets a typed `Rejected` at admission naming the byte.
#[test]
fn a_raw_maximizer_250_frame_is_rejected_at_admission_not_coerced_to_greedy() {
    let (addr, handle) = spawn(test_config());
    let mut client = Client::connect(addr).unwrap();

    // The convenience path refuses to even send it...
    let bad = SelectRequest { maximizer: 250, ..request(40, 1) };
    match client.select(&bad) {
        Err(ClientError::InvalidRequest(msg)) => {
            assert!(msg.contains("250"), "pre-flight message should name the byte: {msg}");
            assert!(msg.contains("maximizer"), "pre-flight message should name the field: {msg}");
        }
        other => panic!("expected InvalidRequest pre-flight, got {other:?}"),
    }

    // ...so put the frame on the wire ourselves. The server must answer
    // with a typed Rejected naming the byte — not panic, not silently
    // fall back to greedy.
    let bad = SelectRequest { maximizer: 250, ..request(41, 1) };
    match client.roundtrip(&Request::Select(bad)).unwrap() {
        Response::Rejected { request_id, reason } => {
            assert_eq!(request_id, 41);
            assert!(reason.contains("unknown maximizer 250"), "got reason {reason:?}");
        }
        other => panic!("expected Rejected, got {other:?}"),
    }

    // Every known byte still serves, returning a full-size selection.
    for (id, m) in [(42u64, 0u8), (43, 1), (44, 2), (45, 3)] {
        match client.select(&SelectRequest { maximizer: m, ..request(id, 1) }).unwrap() {
            Response::Selected(r) => {
                assert_eq!(r.request_id, id);
                assert_eq!(r.chosen.len(), 2, "maximizer {m} must fill the budget");
            }
            other => panic!("expected Selected for maximizer {m}, got {other:?}"),
        }
    }

    let report = client.shutdown().unwrap();
    assert_eq!(report.rejected, 1, "only the raw frame reaches the server's rejection path");
    assert_eq!(report.completed, 4);
    handle.join().unwrap();
}

/// Satellite: `deadline_ms == 0` is the documented "use the server
/// default" sentinel — it must never be read as "already expired".
#[test]
fn deadline_zero_means_server_default_not_already_expired() {
    // A server whose default deadline is generous; if 0 were treated as
    // an instant deadline every request here would come back TimedOut.
    let cfg = ServeConfig { default_deadline: Duration::from_secs(60), ..test_config() };
    let (addr, handle) = spawn(cfg);
    let mut client = Client::connect(addr).unwrap();

    let req = request(40, 7);
    assert_eq!(req.deadline_ms, 0, "fixture must exercise the sentinel");
    match client.select(&req).unwrap() {
        Response::Selected(r) => assert_eq!(r.request_id, 40),
        Response::TimedOut { .. } => {
            panic!("deadline_ms == 0 was treated as already expired; it is the default sentinel")
        }
        other => panic!("unexpected response {other:?}"),
    }

    let report = client.shutdown().unwrap();
    assert_eq!(report.completed, 1);
    assert_eq!(report.failed, 0);
    handle.join().unwrap();
}

/// With `max_tenants: 1`, requesting a second dataset evicts the first
/// world — but its stats survive, and its per-tenant cache shard is on
/// disk, so a re-materialized world still serves warm.
#[test]
fn lru_eviction_keeps_stats_and_warm_paths_across_rematerialization() {
    let dir = std::env::temp_dir().join(format!("vfps-serve-lru-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ServeConfig { max_tenants: 1, cache_dir: Some(dir.clone()), ..test_config() };
    let (addr, handle) = spawn(cfg);
    let mut client = Client::connect(addr).unwrap();

    // Cold run on the default (Bank) world.
    let bank_cold = match client.select(&request(1, 42)).unwrap() {
        Response::Selected(r) => r,
        other => panic!("expected Selected, got {other:?}"),
    };
    assert_eq!(bank_cold.cache_status, "cold");

    // Rice displaces Bank (residency cap 1).
    let rice = SelectRequest { dataset: "Rice".into(), ..request(2, 42) };
    match client.select(&rice).unwrap() {
        Response::Selected(r) => assert_eq!(r.request_id, 2),
        other => panic!("expected Selected, got {other:?}"),
    }
    let (_, max_resident, tenants) = client.list_datasets().unwrap();
    assert_eq!(max_resident, 1);
    let bank = tenants.iter().find(|t| t.dataset == "Bank").unwrap();
    assert!(!bank.resident, "Bank must have been evicted");
    assert_eq!(bank.completed, 1, "eviction must not lose accounting");
    assert!(tenants.iter().find(|t| t.dataset == "Rice").unwrap().resident);

    // Re-requesting Bank re-materializes the world; its tenant-sharded
    // cache is content-addressed on disk, so the repeat serves warm and
    // bit-identical even though the in-memory world was rebuilt.
    let bank_back = match client.select(&request(3, 42)).unwrap() {
        Response::Selected(r) => r,
        other => panic!("expected Selected, got {other:?}"),
    };
    assert_eq!(bank_back.cache_status, "warm");
    assert_eq!(bank_back.enc_instances, 0);
    assert_eq!(bank_back.chosen, bank_cold.chosen);
    assert_eq!(bank_back.scores, bank_cold.scores);

    let report = client.shutdown().unwrap();
    assert_eq!(report.in_flight, 0);
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn draining_server_rejects_new_submits_but_answers_admitted_ones() {
    let (addr, handle) = spawn(test_config());

    // Drain via one client...
    let mut closer = Client::connect(addr).unwrap();
    let report = closer.shutdown().unwrap();
    assert_eq!(report.in_flight, 0);
    handle.join().unwrap();

    // ...after which the listener is gone entirely.
    assert!(
        Client::connect(addr).is_err() || {
            // Accept raced the drain: an accepted-but-dead connection must
            // still fail the roundtrip rather than hang.
            let mut c = Client::connect(addr).unwrap();
            c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            c.select(&request(99, 5)).is_err()
        }
    );
}

/// Satellite: mode byte 3 (NRA) serves end-to-end, is bit-identical to a
/// direct NRA pipeline run, and the reply's per-mode `random_accesses`
/// counter is real accounting: structurally zero for NRA (that is the
/// algorithm's defining property) and strictly positive for the
/// Threshold variant served by the very same server.
#[test]
fn nra_mode_serves_with_random_access_accounting_in_the_reply() {
    let (addr, handle) = spawn(test_config());
    let mut client = Client::connect(addr).unwrap();

    let nra = match client.select(&SelectRequest { mode: 3, ..request(40, 9) }).unwrap() {
        Response::Selected(r) => r,
        other => panic!("expected Selected, got {other:?}"),
    };
    assert_eq!(nra.random_accesses, 0, "No-Random-Access must bill zero random accesses");

    // Bit-identity against the pipeline run directly with the NRA variant.
    let spec = DatasetSpec::by_name("Bank").unwrap();
    let (ds, split) = prepared_sized(&spec, 240, 42);
    let partition = VerticalPartition::random(ds.n_features(), 4, 42);
    let ctx = SelectionContext {
        ds: &ds,
        split: &split,
        partition: &partition,
        cost_scale: 1.0,
        seed: 9,
    };
    let sel =
        VfpsSmSelector { k: 10, query_count: 8, mode: KnnMode::Nra, ..VfpsSmSelector::default() };
    let art = sel.run_over(&ctx, &[0, 1, 2, 3], 2, None);
    assert_eq!(nra.chosen, art.selection.chosen, "served NRA run must match a direct run");
    assert_eq!(nra.scores, art.selection.scores, "served NRA scores must be bit-identical");
    assert_eq!(
        nra.random_accesses, art.selection.ledger.random_accesses,
        "the reply's charge must be the ledger's, not an approximation"
    );

    // The Threshold variant through the very same server pays for its
    // encrypted point queries — so the field is live accounting, not a
    // constant the reply always carries.
    let ta = match client.select(&SelectRequest { mode: 2, ..request(41, 9) }).unwrap() {
        Response::Selected(r) => r,
        other => panic!("expected Selected, got {other:?}"),
    };
    assert!(ta.random_accesses > 0, "Threshold must bill its random accesses in the reply");

    let report = client.shutdown().unwrap();
    assert_eq!(report.completed, 2);
    handle.join().unwrap();
}
