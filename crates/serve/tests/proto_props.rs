//! Protocol encoding properties: for *every* message kind on the wire,
//! `encode()` produces exactly `encoded_len()` bytes and decodes back to
//! an equal value. This pins the bugfix for `SelectRequest::encoded_len`
//! hardcoding `8` per `usize` field — lengths are now delegated per field,
//! and this suite fails on any future drift between the three methods.

use proptest::prelude::*;
use vfps_net::wire::Wire;
use vfps_serve::{
    BackendStatus, DrainReport, Request, Response, RouterStatusReply, SelectReply, SelectRequest,
    TenantStatus,
};

/// The one property under test: exact length, exact roundtrip.
fn exact<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
    let bytes = v.to_bytes();
    assert_eq!(
        bytes.len(),
        v.encoded_len(),
        "encoded_len must equal the actual encoding length for {v:?}"
    );
    assert_eq!(&T::from_bytes(&bytes).unwrap(), v, "decode(encode(v)) must equal v");
}

/// A deterministic string of `seed % 24` chars drawn from a mixed
/// alphabet (including multi-byte UTF-8, so byte length ≠ char count).
fn string_from(seed: u64) -> String {
    const ALPHABET: [char; 12] = ['a', 'B', '0', '_', '-', ' ', '/', '.', 'é', 'µ', '✓', '雨'];
    let len = (seed % 24) as usize;
    (0..len).map(|i| ALPHABET[((seed >> (i % 16)) as usize + i) % ALPHABET.len()]).collect()
}

fn request_from(ids: (u64, u64, u64), party_set: Vec<usize>, sizes: Vec<usize>) -> SelectRequest {
    SelectRequest {
        request_id: ids.0,
        dataset: string_from(ids.1),
        party_set,
        select: sizes[0],
        k: sizes[1],
        query_count: sizes[2],
        mode: (ids.2 % 256) as u8,
        seed: ids.2,
        deadline_ms: ids.0 ^ ids.1,
        maximizer: ((ids.2 >> 8) % 256) as u8,
    }
}

fn reply_from(ids: (u64, u64, u64), chosen: Vec<usize>, scores: Vec<f64>) -> SelectReply {
    SelectReply {
        request_id: ids.0,
        chosen,
        scores,
        cache_status: string_from(ids.1),
        enc_instances: ids.2,
        cache_hits: ids.0 % 97,
        cache_misses: ids.1 % 89,
        queue_us: ids.2 % 83,
        run_us: ids.0 ^ ids.2,
        random_accesses: ids.1 % 79,
    }
}

fn backend_from(seed: u64) -> BackendStatus {
    BackendStatus {
        name: string_from(seed),
        addr: string_from(seed.rotate_left(17)),
        state: (seed % 5) as u8, // exercises the unknown byte 4 too
        vnodes: seed % 257,
        routed: seed.rotate_right(9),
        relay_errors: seed % 31,
    }
}

fn status_from(seed: u64) -> TenantStatus {
    TenantStatus {
        dataset: string_from(seed),
        resident: seed.is_multiple_of(2),
        accepted: seed,
        completed: seed % 101,
        failed: seed % 7,
        rejected: seed % 11,
        in_flight: seed % 3,
        cache_hits: seed % 13,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_request_kind_encodes_to_exactly_encoded_len_bytes(
        ids in (any::<u64>(), any::<u64>(), any::<u64>()),
        party_set in proptest::collection::vec(0usize..1_000_000, 0..12),
        sizes in proptest::collection::vec(0usize..usize::MAX / 2, 3..=3),
    ) {
        let req = request_from(ids, party_set, sizes);
        exact(&req);
        exact(&Request::Select(req));
        exact(&Request::Ping);
        exact(&Request::Shutdown);
        exact(&Request::ListDatasets);
        exact(&Request::RouterStatus);
        exact(&Request::DrainBackend(string_from(ids.1 ^ ids.2)));
    }

    #[test]
    fn every_response_kind_encodes_to_exactly_encoded_len_bytes(
        ids in (any::<u64>(), any::<u64>(), any::<u64>()),
        chosen in proptest::collection::vec(0usize..1_000_000, 0..8),
        scores in proptest::collection::vec(-1.0e9f64..1.0e9, 0..8),
        tenant_seeds in proptest::collection::vec(any::<u64>(), 0..5),
    ) {
        exact(&Response::Selected(reply_from(ids, chosen, scores)));
        exact(&Response::Busy { request_id: ids.0, queue_depth: ids.1, capacity: ids.2 });
        exact(&Response::TimedOut { request_id: ids.0, waited_ms: ids.1 });
        exact(&Response::Rejected { request_id: ids.0, reason: string_from(ids.1) });
        exact(&Response::Draining(DrainReport {
            accepted: ids.0,
            completed: ids.1,
            failed: ids.2,
            rejected: ids.0 % 19,
            in_flight: ids.1 % 17,
            cache_hits: ids.2 % 23,
        }));
        exact(&Response::Pong { version: (ids.0 % u64::from(u32::MAX)) as u32 });

        let tenants: Vec<TenantStatus> = tenant_seeds.iter().map(|&s| status_from(s)).collect();
        for t in &tenants {
            exact(t);
        }
        exact(&Response::Datasets {
            default_dataset: string_from(ids.2),
            max_resident: ids.0 % 64,
            tenants,
        });

        let backends: Vec<BackendStatus> = tenant_seeds.iter().map(|&s| backend_from(s)).collect();
        for b in &backends {
            exact(b);
        }
        exact(&Response::RouterStatus(RouterStatusReply {
            ring_seed: ids.0,
            vnodes_per_backend: ids.1 % 1024,
            backends,
        }));
    }
}
