//! Process-level cluster tests: real `vfps party` daemons — separate OS
//! processes spawned from the built binary — driven by the in-process
//! coordinator transport.
//!
//! Two properties are pinned here that the in-process cluster suite
//! cannot reach:
//!
//! 1. **Bit-identity across real process boundaries.** Three daemon
//!    processes each derive their own dataset world from CLI flags alone
//!    (no shared memory with the coordinator), and the selection computed
//!    over their wire outcomes is bit-identical to the simulated
//!    (thread-backed) run with the same seeds.
//! 2. **The kill matrix with real `SIGKILL`s.** `Child::kill` delivers
//!    SIGKILL on Unix. Kills are *progress-gated*: a watcher thread polls
//!    a [`StatsProbe`] and fires once the victim's observed frame count
//!    crosses a phase threshold, so each cell deterministically lands in
//!    its phase (setup / Fagin stream / late batch) without wall-clock
//!    guessing. Each cell must produce the same typed outcome the
//!    in-process fault suite pins.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use vfps_cluster::{
    outcome_memo, run_cluster_knn, run_cluster_knn_supervised, ClusterKnnReport, HubOptions,
    SchemeSpec, StatsProbe,
};
use vfps_core::selectors::{SelectionContext, VfpsSmSelector};
use vfps_data::{prepared_sized, Dataset, DatasetSpec, Split, VerticalPartition};
use vfps_he::scheme::{AdditiveHe, PaillierHe, PlainHe};
use vfps_net::FaultPlan;
use vfps_vfl::fed_knn::{FedKnnConfig, KnnMode};
use vfps_vfl::{run_threaded_knn_faulted, FaultedRun, KnnSession};

/// The consortium world every daemon process rebuilds from flags alone.
/// Must match [`world`] below — that shared derivation, not any shared
/// state, is what makes the cluster bit-identical to the sim.
const DATASET: &str = "Rice";
const INSTANCES: usize = 96;
const PARTIES: usize = 3;
const DATA_SEED: u64 = 7;

fn world() -> (Dataset, Split, VerticalPartition) {
    let spec = DatasetSpec::by_name(DATASET).expect("dataset");
    let (ds, split) = prepared_sized(&spec, INSTANCES, DATA_SEED);
    let partition = VerticalPartition::random(ds.n_features(), PARTIES, DATA_SEED);
    (ds, split, partition)
}

fn fast_opts() -> HubOptions {
    HubOptions {
        connect_timeout: Duration::from_millis(500),
        connect_budget: 10,
        connect_backoff: Duration::from_millis(20),
        io_timeout: Duration::from_secs(30),
        result_timeout: Duration::from_secs(30),
    }
}

/// A spawned daemon process. The `Child` sits behind a mutex so a
/// progress-gated killer thread and the fleet's drop guard can race for
/// it safely; whoever takes it reaps it.
type Proc = Arc<Mutex<Option<Child>>>;

fn kill_proc(p: &Proc) {
    if let Some(mut child) = p.lock().unwrap().take() {
        let _ = child.kill(); // SIGKILL on Unix — no chance to flush or say goodbye
        let _ = child.wait();
    }
}

/// Three real daemon processes, one per consortium slot, with a drop
/// guard so no test leaves orphans behind even on panic.
struct Fleet {
    procs: Vec<Proc>,
    addrs: Vec<String>,
}

impl Fleet {
    fn spawn(max_sessions: usize) -> Fleet {
        let mut procs = Vec::new();
        let mut addrs = Vec::new();
        for party_id in 0..PARTIES {
            let (child, addr) = spawn_party_proc(party_id, max_sessions);
            procs.push(Arc::new(Mutex::new(Some(child))));
            addrs.push(addr);
        }
        Fleet { procs, addrs }
    }

    fn victim(&self, slot: usize) -> Proc {
        Arc::clone(&self.procs[slot])
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        for p in &self.procs {
            kill_proc(p);
        }
    }
}

/// Spawns `vfps party` as a real OS process and parses its readiness
/// banner for the bound address. Stdout stays drained by a detached
/// thread so the daemon can never block on a full pipe.
fn spawn_party_proc(party_id: usize, max_sessions: usize) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_vfps"))
        .args([
            "party",
            "--party-id",
            &party_id.to_string(),
            "--parties",
            &PARTIES.to_string(),
            "--synthetic",
            DATASET,
            "--instances",
            &INSTANCES.to_string(),
            "--seed",
            &DATA_SEED.to_string(),
            "--addr",
            "127.0.0.1:0",
            "--max-sessions",
            &max_sessions.to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn vfps party");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = loop {
        let line = lines
            .next()
            .expect("daemon exited before announcing its address")
            .expect("read daemon banner");
        if line.contains("listening on ") {
            break line;
        }
    };
    let addr = banner
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("unparseable banner {banner:?}"))
        .to_string();
    std::thread::spawn(move || for _line in lines {});
    (child, addr)
}

/// Spawns a watcher that SIGKILLs `victim` once the hub has seen at least
/// `frames_at_least` protocol frames from consortium slot `slot` — the
/// progress gate that pins which protocol phase the death lands in.
fn kill_at_progress(probe: StatsProbe, slot: usize, frames_at_least: u64, victim: Proc) {
    std::thread::spawn(move || {
        let deadline = Instant::now() + Duration::from_secs(60);
        while Instant::now() < deadline {
            let frames = probe.stats().per_party.get(slot).map_or(0, |l| l.frames_in);
            if frames >= frames_at_least {
                kill_proc(&victim);
                return;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    });
}

/// Drives one cluster session over the fleet, with an optional
/// progress-gated kill installed before the first protocol frame.
fn run_session<H: AdditiveHe>(
    he: &Arc<H>,
    session: &KnnSession,
    shuffle_seed: u64,
    scheme: SchemeSpec,
    fleet: &Fleet,
    kill: Option<(usize, u64)>,
) -> ClusterKnnReport {
    run_cluster_knn_supervised(
        he,
        session,
        shuffle_seed,
        scheme,
        &fleet.addrs,
        &fast_opts(),
        |probe| {
            if let Some((slot, frames)) = kill {
                kill_at_progress(probe, slot, frames, fleet.victim(slot));
            }
        },
    )
    .expect("cluster setup")
}

/// **The acceptance pin.** Selection inputs computed over three real
/// daemon *processes* — each rebuilding its world from CLI flags, no
/// shared memory — are bit-identical to the simulated thread-backed run,
/// and so is the selection served from either run's memo. Paillier's
/// modular aggregation is arrival-order-exact, which is what makes the
/// pin safe at three parties (f64 addition would not be).
#[test]
fn selection_over_three_real_daemons_is_bit_identical_to_the_sim() {
    let (ds, split, partition) = world();
    let ctx = SelectionContext {
        ds: &ds,
        split: &split,
        partition: &partition,
        cost_scale: 1.0,
        seed: 21,
    };
    let sel = VfpsSmSelector {
        k: 4,
        query_count: 6,
        mode: KnnMode::Fagin,
        batch: 8,
        ..VfpsSmSelector::default()
    };
    let queries = sel.query_rows(&ctx);
    let parties: Vec<usize> = (0..PARTIES).collect();
    let cfg = FedKnnConfig { k: sel.k, mode: sel.mode, batch: sel.batch, cost_scale: 1.0 };
    let he = Arc::new(PaillierHe::generate(128, sel.batch, 5).unwrap());

    // The simulated backend: threads + in-process channels.
    let sim = run_threaded_knn_faulted(
        &he,
        &ds.x,
        &partition,
        &parties,
        &split.train,
        &queries,
        cfg,
        42,
        &FaultPlan::default(),
    );
    let FaultedRun::Complete(sim) = sim else { panic!("sim run must complete, got {sim:?}") };

    // The real backend: three OS processes, one TCP socket each.
    let fleet = Fleet::spawn(1);
    let session = KnnSession::new(&parties, &split.train, &queries, cfg, 42);
    let report =
        run_session(&he, &session, 42, SchemeSpec::paillier(128, sel.batch, 5), &fleet, None);
    let FaultedRun::Complete(tcp) = report.run else {
        panic!("tcp run must complete, got {:?}", report.run)
    };

    assert_eq!(tcp.outcomes, sim.outcomes, "per-query outcomes must be bit-identical");
    assert_eq!(
        tcp.total_messages, sim.total_messages,
        "logical message totals must match the sim ledger"
    );
    assert_eq!(report.stats.kills_observed, 0);
    assert_eq!(report.stats.connects, PARTIES as u64);

    // And the selection layer sees no difference: a selection served from
    // either run's memo picks the same parties with the same scores.
    let from_sim = sel.run_over(&ctx, &parties, 2, Some(&outcome_memo(&queries, &sim.outcomes)));
    let from_tcp = sel.run_over(&ctx, &parties, 2, Some(&outcome_memo(&queries, &tcp.outcomes)));
    assert_eq!(from_tcp.selection.chosen, from_sim.selection.chosen);
    assert_eq!(from_tcp.selection.scores, from_sim.selection.scores);
}

/// Shared shape for the kill-matrix cells: a 12-query Fagin batch over
/// the plaintext scheme (the matrix pins fault semantics, not ciphertext
/// bits), leaving plenty of protocol frames for the progress gates.
fn kill_matrix_shape(
    split: &Split,
) -> (Vec<usize>, Vec<usize>, FedKnnConfig, Arc<PlainHe>, SchemeSpec) {
    let parties: Vec<usize> = (0..PARTIES).collect();
    let queries: Vec<usize> = split.train.iter().copied().take(12).collect();
    let cfg = FedKnnConfig { k: 4, mode: KnnMode::Fagin, batch: 8, cost_scale: 1.0 };
    (parties, queries, cfg, Arc::new(PlainHe::new(8)), SchemeSpec::plain(8))
}

/// Kill matrix, setup phase: a daemon SIGKILLed before the coordinator
/// dials is a typed *setup* failure (`Err`), never a protocol outcome —
/// the same admission/protocol split the in-process suite pins.
#[test]
fn kill_matrix_setup_phase_daemon_death_is_a_typed_connect_error() {
    let (_ds, split, _partition) = world();
    let (parties, queries, cfg, he, scheme) = kill_matrix_shape(&split);

    let fleet = Fleet::spawn(1);
    kill_proc(&fleet.victim(2)); // dead before the first dial
    let session = KnnSession::new(&parties, &split.train, &queries, cfg, 11);
    let tight = HubOptions {
        connect_budget: 3,
        connect_backoff: Duration::from_millis(10),
        connect_timeout: Duration::from_millis(300),
        ..fast_opts()
    };
    let err = run_cluster_knn(&he, &session, 11, scheme, &fleet.addrs, &tight);
    assert!(err.is_err(), "a dead daemon at setup must be an Err, got {err:?}");
}

/// Kill matrix, Fagin stream × leader: SIGKILL on the leader process
/// early in the stream aborts the run with a hangup of node 1 — nothing
/// can be decrypted without the leader, exactly as in-process.
#[test]
fn kill_matrix_stream_phase_leader_sigkill_aborts_with_typed_hangup() {
    let (_ds, split, _partition) = world();
    let (parties, queries, cfg, he, scheme) = kill_matrix_shape(&split);

    let fleet = Fleet::spawn(1);
    let session = KnnSession::new(&parties, &split.train, &queries, cfg, 17);
    let report = run_session(&he, &session, 17, scheme, &fleet, Some((0, 4)));

    let FaultedRun::Aborted { error, dropouts } = report.run else {
        panic!("expected aborted run, got {:?}", report.run)
    };
    assert!(error.is_hangup_of(1), "leader SIGKILL is a hangup of node 1, got {error}");
    assert!(dropouts.contains(&1), "dropouts {dropouts:?} name the leader");
    assert!(report.stats.kills_observed >= 1, "the abrupt death must be counted as a kill");
}

/// Kill matrix, Fagin stream × participant: SIGKILL on a non-leader
/// process early in the stream degrades the run over the survivors, with
/// the dead slot's `d_t` zero-filled from the death onward.
#[test]
fn kill_matrix_stream_phase_participant_sigkill_degrades_over_survivors() {
    let (_ds, split, _partition) = world();
    let (parties, queries, cfg, he, scheme) = kill_matrix_shape(&split);

    let fleet = Fleet::spawn(1);
    let session = KnnSession::new(&parties, &split.train, &queries, cfg, 23);
    let report = run_session(&he, &session, 23, scheme, &fleet, Some((2, 4)));

    let FaultedRun::Degraded(run) = report.run else {
        panic!("expected degraded run, got {:?}", report.run)
    };
    assert_eq!(run.dropouts, vec![3], "only node 3 (slot 2) died");
    assert_eq!(run.outcomes.len(), queries.len(), "leader finished the whole batch");
    let last = run.outcomes.last().unwrap();
    assert_eq!(last.d_t[2], 0.0, "dead slot's d_t is zero-filled after the death");
    assert!(last.d_t[0] > 0.0 || last.d_t[1] > 0.0, "survivors keep contributing");
    assert!(report.stats.kills_observed >= 1);
}

/// Kill matrix, aggregation phase: the same participant SIGKILL landing
/// *late* in the batch (past half the victim's fault-free frame volume,
/// measured by a calibration run) leaves the early queries' aggregates
/// intact and zero-fills only from the death onward.
#[test]
fn kill_matrix_aggregation_phase_participant_sigkill_keeps_early_aggregates() {
    let (_ds, split, _partition) = world();
    let (parties, queries, cfg, he, scheme) = kill_matrix_shape(&split);

    // Two sessions per daemon: one fault-free calibration run measuring
    // the victim's total frame volume, then the kill run gated on it.
    let fleet = Fleet::spawn(2);
    let session = KnnSession::new(&parties, &split.train, &queries, cfg, 29);

    let calibration = run_session(&he, &session, 29, scheme, &fleet, None);
    assert!(
        matches!(calibration.run, FaultedRun::Complete(_)),
        "calibration run must complete, got {:?}",
        calibration.run
    );
    let total = calibration.stats.per_party[2].frames_in;
    assert!(total >= 8, "12 Fagin queries must produce a real frame volume, got {total}");

    let report = run_session(&he, &session, 29, scheme, &fleet, Some((2, total / 2)));
    let FaultedRun::Degraded(run) = report.run else {
        panic!("expected degraded run, got {:?}", report.run)
    };
    assert_eq!(run.dropouts, vec![3]);
    assert_eq!(run.outcomes.len(), queries.len());
    assert!(
        run.outcomes[0].d_t[2] > 0.0,
        "queries aggregated before the death keep the victim's contribution"
    );
    assert_eq!(run.outcomes.last().unwrap().d_t[2], 0.0, "post-death queries zero-fill it");
    assert!(report.stats.kills_observed >= 1);
}
