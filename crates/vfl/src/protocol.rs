//! The thread-per-node federated KNN protocol with real homomorphic
//! encryption.
//!
//! Node layout mirrors the paper's deployment: node 0 is the aggregation
//! server, nodes `1..=P` are participants, node 1 doubles as the leader
//! (label and secret-key holder). The key server is modeled as the setup
//! step that hands every node the scheme handle before the protocol runs;
//! role separation is structural — participants only ever call `encrypt`,
//! the server only `add`s serialized ciphertexts, and only the leader
//! decrypts.
//!
//! Identity security: participants apply a shared seeded permutation to
//! instance ids before streaming them, so the server only ever sees pseudo
//! IDs (paper §IV-B step ①).

use crate::fed_knn::{FedKnnConfig, KnnMode, QueryOutcome};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Arc;
use vfps_data::VerticalPartition;
use vfps_he::scheme::AdditiveHe;
use vfps_ml::linalg::{squared_distance, Matrix};
use vfps_net::cluster::{run_cluster, NodeCtx};
use vfps_net::wire::{take, Wire, WireError};

/// Stand-in distance for a query's own database entry: large enough never
/// to win a top-k, small enough to stay representable in every scheme's
/// fixed-point plaintext space.
const SELF_EXCLUDE_SENTINEL: f64 = 1e9;

/// Protocol messages. Ciphertexts travel as opaque scheme-serialized blobs.
#[derive(Clone, Debug, PartialEq)]
pub enum ProtoMsg {
    /// Server → participant: request the next rank mini-batch.
    NeedBatch,
    /// Participant → server: the next mini-batch of pseudo IDs.
    RankBatch(Vec<usize>),
    /// Server → participants: Fagin finished; encrypt these pseudo IDs.
    Candidates(Vec<usize>),
    /// Participant → server: encrypted partial distances, chunked.
    EncPartials(Vec<Vec<u8>>),
    /// Server → leader: homomorphically aggregated chunks.
    Aggregated(Vec<Vec<u8>>),
    /// Leader → participants: the selected top-k pseudo IDs.
    TopkIds(Vec<usize>),
    /// Participant → leader: its `d_T^p` sum.
    DtSum(f64),
    /// Leader → server: the query is fully processed; start the next one.
    /// This barrier prevents a fast participant's next-query messages from
    /// interleaving with the current query's aggregation.
    QueryDone,
}

impl Wire for ProtoMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ProtoMsg::NeedBatch => buf.push(0),
            ProtoMsg::RankBatch(ids) => {
                buf.push(1);
                ids.encode(buf);
            }
            ProtoMsg::Candidates(ids) => {
                buf.push(2);
                ids.encode(buf);
            }
            ProtoMsg::EncPartials(blobs) => {
                buf.push(3);
                blobs.encode(buf);
            }
            ProtoMsg::Aggregated(blobs) => {
                buf.push(4);
                blobs.encode(buf);
            }
            ProtoMsg::TopkIds(ids) => {
                buf.push(5);
                ids.encode(buf);
            }
            ProtoMsg::DtSum(v) => {
                buf.push(6);
                v.encode(buf);
            }
            ProtoMsg::QueryDone => buf.push(7),
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let tag = take(input, 1)?[0];
        Ok(match tag {
            0 => ProtoMsg::NeedBatch,
            1 => ProtoMsg::RankBatch(Vec::decode(input)?),
            2 => ProtoMsg::Candidates(Vec::decode(input)?),
            3 => ProtoMsg::EncPartials(Vec::decode(input)?),
            4 => ProtoMsg::Aggregated(Vec::decode(input)?),
            5 => ProtoMsg::TopkIds(Vec::decode(input)?),
            6 => ProtoMsg::DtSum(f64::decode(input)?),
            7 => ProtoMsg::QueryDone,
            t => return Err(WireError::BadTag(t)),
        })
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            ProtoMsg::NeedBatch | ProtoMsg::QueryDone => 0,
            ProtoMsg::RankBatch(ids) | ProtoMsg::Candidates(ids) | ProtoMsg::TopkIds(ids) => {
                ids.encoded_len()
            }
            ProtoMsg::EncPartials(blobs) | ProtoMsg::Aggregated(blobs) => blobs.encoded_len(),
            ProtoMsg::DtSum(v) => v.encoded_len(),
        }
    }
}

/// Result of a threaded run.
#[derive(Debug)]
pub struct ThreadedKnnRun {
    /// Per-query outcomes (as observed by the leader).
    pub outcomes: Vec<QueryOutcome>,
    /// Total bytes moved between nodes.
    pub total_bytes: u64,
    /// Total messages between nodes.
    pub total_messages: u64,
}

/// Shared, read-only inputs handed to every node.
struct Shared {
    parties: Vec<usize>,
    db_rows: Vec<usize>,
    queries: Vec<usize>,
    cfg: FedKnnConfig,
    /// Shared pseudo-ID permutation: `perm[pos]` is the pseudo ID of
    /// database position `pos`; `inv[pseudo]` maps back.
    perm: Vec<usize>,
    inv: Vec<usize>,
}

/// Runs the full federated KNN protocol over `queries` with real HE.
///
/// # Panics
/// Panics on inconsistent inputs or if a node thread fails.
#[must_use]
pub fn run_threaded_knn<H>(
    he: &Arc<H>,
    x: &Matrix,
    partition: &VerticalPartition,
    parties: &[usize],
    db_rows: &[usize],
    queries: &[usize],
    cfg: FedKnnConfig,
    shuffle_seed: u64,
) -> ThreadedKnnRun
where
    H: AdditiveHe + 'static,
{
    assert!(!parties.is_empty(), "empty consortium");
    assert!(!db_rows.is_empty(), "empty database");
    assert!(
        cfg.mode != KnnMode::Threshold,
        "the threaded protocol implements Base and Fagin; the Threshold \
         oracle is available in the logical engine (fed_knn)"
    );
    let p = parties.len();
    let n = db_rows.len();

    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(&mut StdRng::seed_from_u64(shuffle_seed));
    let mut inv = vec![0usize; n];
    for (pos, &pseudo) in perm.iter().enumerate() {
        inv[pseudo] = pos;
    }

    let shared = Arc::new(Shared {
        parties: parties.to_vec(),
        db_rows: db_rows.to_vec(),
        queries: queries.to_vec(),
        cfg,
        perm,
        inv,
    });

    // Node-local feature views (party slot s holds X^{parties[s]}).
    let db = x.select_rows(db_rows);
    let views: Vec<Matrix> =
        parties.iter().map(|&party| partition.local_view(&db, party)).collect();
    let query_feats: Vec<Vec<Vec<f64>>> = parties
        .iter()
        .map(|&party| {
            let cols = partition.columns(party);
            queries.iter().map(|&q| cols.iter().map(|&c| x.get(q, c)).collect()).collect()
        })
        .collect();

    type NodeFn = Box<dyn FnOnce(NodeCtx<ProtoMsg>) -> Vec<QueryOutcome> + Send>;
    let mut fns: Vec<NodeFn> = Vec::with_capacity(p + 1);

    // Node 0: aggregation server.
    {
        let he = Arc::clone(he);
        let shared = Arc::clone(&shared);
        fns.push(Box::new(move |ctx| {
            server_node(&ctx, &he, &shared);
            Vec::new()
        }));
    }

    // Nodes 1..=P: participants (node 1 is the leader).
    for slot in 0..p {
        let he = Arc::clone(he);
        let shared = Arc::clone(&shared);
        let view = views[slot].clone();
        let qfeats = query_feats[slot].clone();
        fns.push(Box::new(move |ctx| participant_node(&ctx, &he, &shared, slot, &view, &qfeats)));
    }

    let (mut results, ledger) = run_cluster(fns);
    let outcomes = results.remove(1); // the leader's view
    ThreadedKnnRun {
        outcomes,
        total_bytes: ledger.total_bytes(),
        total_messages: ledger.total_messages(),
    }
}

/// The aggregation server: per query, gathers (or Fagin-selects) encrypted
/// partials, sums them homomorphically, and forwards to the leader.
fn server_node<H: AdditiveHe>(ctx: &NodeCtx<ProtoMsg>, he: &Arc<H>, shared: &Shared) {
    let p = shared.parties.len();
    let n = shared.db_rows.len();
    for _q in 0..shared.queries.len() {
        let candidate_count = match shared.cfg.mode {
            // Threshold is rejected at entry; grouped with Base to keep the
            // match exhaustive.
            KnnMode::Base | KnnMode::Threshold => {
                // Announce the (full) candidate list so participants only
                // ever encrypt when the server is ready to aggregate —
                // without this, a fast participant's next-query ciphertexts
                // could interleave with this query's.
                let all: Vec<usize> = (0..n).collect();
                for slot in 0..p {
                    ctx.send(1 + slot, ProtoMsg::Candidates(all.clone()));
                }
                n
            }
            KnnMode::Fagin => {
                // Drive the streaming phase round-robin.
                let mut sf = vfps_topk::stream::StreamingFagin::new(p, n, shared.cfg.k.min(n));
                let mut exhausted = vec![false; p];
                while !sf.is_complete() && !exhausted.iter().all(|&e| e) {
                    for slot in 0..p {
                        if sf.is_complete() || exhausted[slot] {
                            continue;
                        }
                        ctx.send(1 + slot, ProtoMsg::NeedBatch);
                        match ctx.recv_from(1 + slot) {
                            ProtoMsg::RankBatch(ids) => {
                                if ids.is_empty() {
                                    exhausted[slot] = true;
                                } else {
                                    sf.feed(slot, &ids);
                                }
                            }
                            other => panic!("expected RankBatch, got {other:?}"),
                        }
                    }
                }
                let cands = sf.candidates().to_vec();
                for slot in 0..p {
                    ctx.send(1 + slot, ProtoMsg::Candidates(cands.clone()));
                }
                cands.len()
            }
        };

        // Gather encrypted chunks from every participant and sum.
        let mut agg: Option<Vec<H::Ciphertext>> = None;
        for _ in 0..p {
            let env = ctx.recv();
            let ProtoMsg::EncPartials(blobs) = env.msg else {
                panic!("expected EncPartials");
            };
            let cts: Vec<H::Ciphertext> = blobs
                .iter()
                .map(|b| he.ct_from_bytes(b).expect("well-formed ciphertext"))
                .collect();
            agg = Some(match agg {
                None => cts,
                Some(prev) => prev.iter().zip(&cts).map(|(a, b)| he.add(a, b)).collect(),
            });
        }
        let agg = agg.expect("at least one participant");
        debug_assert!(candidate_count > 0);
        let blobs: Vec<Vec<u8>> = agg.iter().map(|c| he.ct_to_bytes(c)).collect();
        ctx.send(1, ProtoMsg::Aggregated(blobs));
        // Barrier: wait for the leader to finish the whole query before
        // starting the next one.
        match ctx.recv_from(1) {
            ProtoMsg::QueryDone => {}
            other => panic!("expected QueryDone, got {other:?}"),
        }
    }
}

/// A participant: computes partial distances, streams rankings (Fagin),
/// encrypts what the server asks for, and reports `d_T^p` to the leader.
/// Slot 0 (node 1) additionally acts as the leader.
fn participant_node<H: AdditiveHe>(
    ctx: &NodeCtx<ProtoMsg>,
    he: &Arc<H>,
    shared: &Shared,
    slot: usize,
    view: &Matrix,
    query_feats: &[Vec<f64>],
) -> Vec<QueryOutcome> {
    let p = shared.parties.len();
    let n = shared.db_rows.len();
    let is_leader = slot == 0;
    let mut outcomes = Vec::new();

    for (qi, qfeat) in query_feats.iter().enumerate() {
        let query_row = shared.queries[qi];
        // Partial distances by database position; self excluded via +inf.
        let self_pos = shared.db_rows.iter().position(|&r| r == query_row);
        let partials: Vec<f64> = (0..n)
            .map(|i| {
                if Some(i) == self_pos {
                    f64::INFINITY
                } else {
                    squared_distance(qfeat, view.row(i))
                }
            })
            .collect();

        // Which pseudo IDs to encrypt.
        let candidate_pseudos: Vec<usize> = match shared.cfg.mode {
            KnnMode::Base | KnnMode::Threshold => match ctx.recv_from(0) {
                ProtoMsg::Candidates(_) => (0..n).map(|pos| shared.perm[pos]).collect(),
                other => panic!("expected Candidates, got {other:?}"),
            },
            KnnMode::Fagin => {
                // Sorted pseudo-ID ranking, streamed on demand.
                let mut ranking: Vec<usize> = (0..n).collect();
                ranking.sort_by(|&a, &b| partials[a].total_cmp(&partials[b]).then(a.cmp(&b)));
                let pseudo_ranking: Vec<usize> =
                    ranking.iter().map(|&pos| shared.perm[pos]).collect();
                let mut cursor = 0usize;
                loop {
                    match ctx.recv_from(0) {
                        ProtoMsg::NeedBatch => {
                            let end = (cursor + shared.cfg.batch).min(n);
                            ctx.send(0, ProtoMsg::RankBatch(pseudo_ranking[cursor..end].to_vec()));
                            cursor = end;
                        }
                        ProtoMsg::Candidates(c) => break c,
                        other => panic!("expected NeedBatch/Candidates, got {other:?}"),
                    }
                }
            }
        };

        // Encrypt candidate partial distances in candidate order, chunked.
        // Infinite self-distance is clamped to a large sentinel the codec
        // can represent; it can never win the top-k.
        let values: Vec<f64> = candidate_pseudos
            .iter()
            .map(|&pseudo| {
                let v = partials[shared.inv[pseudo]];
                if v.is_finite() {
                    v
                } else {
                    SELF_EXCLUDE_SENTINEL
                }
            })
            .collect();
        let chunk = he.max_batch().max(1);
        let chunks: Vec<&[f64]> = values.chunks(chunk).collect();
        let blobs: Vec<Vec<u8>> = he
            .encrypt_many(&chunks)
            .expect("encryptable batches")
            .iter()
            .map(|ct| he.ct_to_bytes(ct))
            .collect();
        ctx.send(0, ProtoMsg::EncPartials(blobs));

        // Leader: decrypt aggregate, pick top-k, broadcast.
        let topk_pseudos: Vec<usize> = if is_leader {
            let ProtoMsg::Aggregated(blobs) = ctx.recv_from(0) else {
                panic!("expected Aggregated");
            };
            let mut complete = Vec::with_capacity(candidate_pseudos.len());
            let mut remaining = candidate_pseudos.len();
            for blob in &blobs {
                let ct = he.ct_from_bytes(blob).expect("well-formed ciphertext");
                let count = remaining.min(chunk);
                complete.extend(he.decrypt(&ct, count));
                remaining -= count;
            }
            let mut scored: Vec<(usize, f64)> =
                candidate_pseudos.iter().copied().zip(complete).collect();
            scored.sort_by(|a, b| a.1.total_cmp(&b.1).then(shared.inv[a.0].cmp(&shared.inv[b.0])));
            let k = shared.cfg.k.min(scored.len());
            let top: Vec<usize> = scored[..k].iter().map(|e| e.0).collect();
            for peer in 0..p {
                if peer != slot {
                    ctx.send(1 + peer, ProtoMsg::TopkIds(top.clone()));
                }
            }
            top
        } else {
            let env = ctx.recv();
            let ProtoMsg::TopkIds(ids) = env.msg else {
                panic!("expected TopkIds");
            };
            ids
        };

        // Everyone computes d_T^p and reports to the leader.
        let d_t_own: f64 = topk_pseudos.iter().map(|&pseudo| partials[shared.inv[pseudo]]).sum();
        if is_leader {
            let mut d_t = vec![0.0f64; p];
            d_t[0] = d_t_own;
            for _ in 1..p {
                let env = ctx.recv();
                let ProtoMsg::DtSum(v) = env.msg else {
                    panic!("expected DtSum");
                };
                d_t[env.from - 1] = v;
            }
            let d_t_total = d_t.iter().sum();
            ctx.send(0, ProtoMsg::QueryDone);
            outcomes.push(QueryOutcome {
                topk_rows: topk_pseudos
                    .iter()
                    .map(|&pseudo| shared.db_rows[shared.inv[pseudo]])
                    .collect(),
                d_t,
                d_t_total,
                candidates: candidate_pseudos.len(),
            });
        } else {
            ctx.send(1, ProtoMsg::DtSum(d_t_own));
        }
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fed_knn::FedKnn;
    use vfps_he::scheme::{PaillierHe, PlainHe};

    fn toy() -> (Matrix, VerticalPartition) {
        let x = Matrix::from_rows(&[
            vec![0.0, 0.0, 0.0, 0.0],
            vec![0.1, 0.0, 0.1, 0.0],
            vec![0.0, 0.2, 0.0, 0.1],
            vec![5.0, 5.0, 5.0, 5.0],
            vec![5.1, 5.0, 4.9, 5.0],
            vec![5.0, 5.2, 5.0, 5.1],
            vec![2.5, 2.5, 2.5, 2.5],
            vec![9.0, 9.0, 9.0, 9.0],
        ]);
        (x, VerticalPartition::even(4, 2))
    }

    #[test]
    fn threaded_plain_matches_logical_engine() {
        let (x, part) = toy();
        let db: Vec<usize> = (0..8).collect();
        let queries = vec![0usize, 3, 6];
        for mode in [KnnMode::Base, KnnMode::Fagin] {
            let cfg = FedKnnConfig { k: 3, mode, batch: 2, cost_scale: 1.0 };
            let he = Arc::new(PlainHe::new(4));
            let run = run_threaded_knn(&he, &x, &part, &[0, 1], &db, &queries, cfg, 77);
            let engine = FedKnn::new(&x, &part, &[0, 1], &db, cfg);
            let mut ledger = vfps_net::cost::OpLedger::default();
            for (qi, &q) in queries.iter().enumerate() {
                let expect = engine.query(q, &mut ledger);
                let got = &run.outcomes[qi];
                let mut a = expect.topk_rows.clone();
                let mut b = got.topk_rows.clone();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "{mode:?} query {q}");
                for (x1, x2) in expect.d_t.iter().zip(&got.d_t) {
                    assert!((x1 - x2).abs() < 1e-6, "{mode:?} d_t mismatch");
                }
            }
            assert!(run.total_bytes > 0);
        }
    }

    #[test]
    fn threaded_paillier_end_to_end() {
        let (x, part) = toy();
        let db: Vec<usize> = (0..8).collect();
        let queries = vec![0usize, 4];
        let cfg = FedKnnConfig { k: 2, mode: KnnMode::Fagin, batch: 3, cost_scale: 1.0 };
        let he = Arc::new(PaillierHe::generate(128, 8, 5).unwrap());
        let run = run_threaded_knn(&he, &x, &part, &[0, 1], &db, &queries, cfg, 3);
        // Query 0's nearest two are rows 1 and 2; query 4's are 3 and 5.
        let mut q0 = run.outcomes[0].topk_rows.clone();
        q0.sort_unstable();
        assert_eq!(q0, vec![1, 2]);
        let mut q4 = run.outcomes[1].topk_rows.clone();
        q4.sort_unstable();
        assert_eq!(q4, vec![3, 5]);
    }

    #[test]
    fn fagin_moves_fewer_bytes_than_base_with_real_ciphertexts() {
        let (x, part) = toy();
        let db: Vec<usize> = (0..8).collect();
        let queries = vec![0usize];
        let he = Arc::new(PaillierHe::generate(128, 8, 6).unwrap());
        let base_cfg = FedKnnConfig { k: 2, mode: KnnMode::Base, batch: 2, cost_scale: 1.0 };
        let fagin_cfg = FedKnnConfig { k: 2, mode: KnnMode::Fagin, batch: 2, cost_scale: 1.0 };
        let base = run_threaded_knn(&he, &x, &part, &[0, 1], &db, &queries, base_cfg, 9);
        let fagin = run_threaded_knn(&he, &x, &part, &[0, 1], &db, &queries, fagin_cfg, 9);
        assert!(
            fagin.outcomes[0].candidates < base.outcomes[0].candidates,
            "fagin candidates {} vs base {}",
            fagin.outcomes[0].candidates,
            base.outcomes[0].candidates
        );
    }

    #[test]
    fn proto_messages_roundtrip() {
        let msgs = vec![
            ProtoMsg::NeedBatch,
            ProtoMsg::RankBatch(vec![1, 2, 3]),
            ProtoMsg::Candidates(vec![]),
            ProtoMsg::EncPartials(vec![vec![1, 2], vec![]]),
            ProtoMsg::Aggregated(vec![vec![0xff; 10]]),
            ProtoMsg::TopkIds(vec![7]),
            ProtoMsg::DtSum(-1.25),
            ProtoMsg::QueryDone,
        ];
        for m in msgs {
            let bytes = m.to_bytes();
            assert_eq!(bytes.len(), m.encoded_len());
            assert_eq!(ProtoMsg::from_bytes(&bytes).unwrap(), m);
        }
    }
}
