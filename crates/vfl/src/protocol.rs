//! The thread-per-node federated KNN protocol with real homomorphic
//! encryption.
//!
//! Node layout mirrors the paper's deployment: node 0 is the aggregation
//! server, nodes `1..=P` are participants, node 1 doubles as the leader
//! (label and secret-key holder). The key server is modeled as the setup
//! step that hands every node the scheme handle before the protocol runs;
//! role separation is structural — participants only ever call `encrypt`,
//! the server only `add`s serialized ciphertexts, and only the leader
//! decrypts.
//!
//! Identity security: participants apply a shared seeded permutation to
//! instance ids before streaming them, so the server only ever sees pseudo
//! IDs (paper §IV-B step ①).
//!
//! ## Fault tolerance
//!
//! Every node body is fallible and the run degrades instead of hanging
//! when a participant dies (see DESIGN.md §7): the server marks dead
//! slots as exhausted in the Fagin stream, aggregates over the survivors,
//! and flags the reduced contributor set to the leader with
//! [`ProtoMsg::AggregatedPartial`]; the leader zero-fills dead entries of
//! `d_t` and completes the query batch over the surviving sub-consortium.
//! Death of node 0 (server) or node 1 (leader) aborts the run with a
//! typed error — there is no one left to aggregate, or to decrypt.
//! With an empty [`FaultPlan`] the message sequence is exactly the
//! pre-fault-tolerance protocol: same sends, same bytes, same ledger.

use crate::fed_knn::{FedKnnConfig, KnnMode, QueryOutcome};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Arc;
use vfps_data::VerticalPartition;
use vfps_he::scheme::AdditiveHe;
use vfps_ml::linalg::{squared_distance, Matrix};
use vfps_net::channel::Channel;
use vfps_net::cluster::{run_cluster_fallible, ClusterOptions, NodeCtx};
use vfps_net::wire::{take, Wire, WireError};
use vfps_net::{Error, FaultPlan, NodeId, TrafficLedger};

/// Stand-in distance for a query's own database entry: large enough never
/// to win a top-k, small enough to stay representable in every scheme's
/// fixed-point plaintext space.
const SELF_EXCLUDE_SENTINEL: f64 = 1e9;

/// Deadline for every blocking receive in the protocol. A dropped frame
/// leaves its sender alive but silent, so peer death alone cannot unblock
/// the receiver — only a deadline can. One phase of in-process work
/// (encrypting or decrypting a single query's candidates) is
/// milliseconds even with real Paillier/CKKS, so ten seconds cannot fire
/// spuriously, while still bounding every fault-injected run.
pub(crate) const PHASE_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(10);

/// Protocol messages. Ciphertexts travel as opaque scheme-serialized blobs.
#[derive(Clone, Debug, PartialEq)]
pub enum ProtoMsg {
    /// Server → participant: request the next rank mini-batch.
    NeedBatch,
    /// Participant → server: the next mini-batch of pseudo IDs.
    RankBatch(Vec<usize>),
    /// Server → participants: Fagin finished; encrypt these pseudo IDs.
    Candidates(Vec<usize>),
    /// Participant → server: encrypted partial distances, chunked.
    EncPartials(Vec<Vec<u8>>),
    /// Server → leader: homomorphically aggregated chunks.
    Aggregated(Vec<Vec<u8>>),
    /// Server → leader: aggregated chunks from a *reduced* contributor
    /// set (second field: the participant slots that contributed, sorted).
    /// Sent instead of [`ProtoMsg::Aggregated`] only when at least one
    /// participant has dropped out, so fault-free runs stay byte-identical.
    AggregatedPartial(Vec<Vec<u8>>, Vec<usize>),
    /// Leader → participants: the selected top-k pseudo IDs.
    TopkIds(Vec<usize>),
    /// Participant → leader: its `d_T^p` sum.
    DtSum(f64),
    /// Leader → server: the query is fully processed; start the next one.
    /// This barrier prevents a fast participant's next-query messages from
    /// interleaving with the current query's aggregation.
    QueryDone,
}

impl Wire for ProtoMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ProtoMsg::NeedBatch => buf.push(0),
            ProtoMsg::RankBatch(ids) => {
                buf.push(1);
                ids.encode(buf);
            }
            ProtoMsg::Candidates(ids) => {
                buf.push(2);
                ids.encode(buf);
            }
            ProtoMsg::EncPartials(blobs) => {
                buf.push(3);
                blobs.encode(buf);
            }
            ProtoMsg::Aggregated(blobs) => {
                buf.push(4);
                blobs.encode(buf);
            }
            ProtoMsg::TopkIds(ids) => {
                buf.push(5);
                ids.encode(buf);
            }
            ProtoMsg::DtSum(v) => {
                buf.push(6);
                v.encode(buf);
            }
            ProtoMsg::QueryDone => buf.push(7),
            ProtoMsg::AggregatedPartial(blobs, slots) => {
                buf.push(8);
                blobs.encode(buf);
                slots.encode(buf);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, WireError> {
        let tag = take(input, 1)?[0];
        Ok(match tag {
            0 => ProtoMsg::NeedBatch,
            1 => ProtoMsg::RankBatch(Vec::decode(input)?),
            2 => ProtoMsg::Candidates(Vec::decode(input)?),
            3 => ProtoMsg::EncPartials(Vec::decode(input)?),
            4 => ProtoMsg::Aggregated(Vec::decode(input)?),
            5 => ProtoMsg::TopkIds(Vec::decode(input)?),
            6 => ProtoMsg::DtSum(f64::decode(input)?),
            7 => ProtoMsg::QueryDone,
            8 => ProtoMsg::AggregatedPartial(Vec::decode(input)?, Vec::decode(input)?),
            t => return Err(WireError::BadTag(t)),
        })
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            ProtoMsg::NeedBatch | ProtoMsg::QueryDone => 0,
            ProtoMsg::RankBatch(ids) | ProtoMsg::Candidates(ids) | ProtoMsg::TopkIds(ids) => {
                ids.encoded_len()
            }
            ProtoMsg::EncPartials(blobs) | ProtoMsg::Aggregated(blobs) => blobs.encoded_len(),
            ProtoMsg::AggregatedPartial(blobs, slots) => blobs.encoded_len() + slots.encoded_len(),
            ProtoMsg::DtSum(v) => v.encoded_len(),
        }
    }
}

/// Result of a threaded run.
#[derive(Debug)]
pub struct ThreadedKnnRun {
    /// Per-query outcomes (as observed by the leader).
    pub outcomes: Vec<QueryOutcome>,
    /// Total bytes moved between nodes.
    pub total_bytes: u64,
    /// Total messages between nodes.
    pub total_messages: u64,
    /// Node ids that dropped out during the run (empty when fault-free).
    pub dropouts: Vec<NodeId>,
}

/// Outcome of a fault-injected threaded run: the protocol always returns
/// one of these instead of hanging.
#[derive(Debug)]
pub enum FaultedRun {
    /// Every node completed; the result is exactly a fault-free run's.
    Complete(ThreadedKnnRun),
    /// One or more participants died; the leader finished the batch over
    /// the survivors (dead slots carry `d_t = 0.0`).
    Degraded(ThreadedKnnRun),
    /// The server or the leader died — no usable result exists.
    Aborted {
        /// The failure the leader (or server) observed.
        error: Error,
        /// Node ids that went down during the run.
        dropouts: Vec<NodeId>,
    },
}

impl FaultedRun {
    /// The completed or degraded run, if one exists.
    #[must_use]
    pub fn run(&self) -> Option<&ThreadedKnnRun> {
        match self {
            FaultedRun::Complete(r) | FaultedRun::Degraded(r) => Some(r),
            FaultedRun::Aborted { .. } => None,
        }
    }
}

/// Shared, read-only inputs handed to every node of a KNN protocol run —
/// the session description a coordinator ships to every party daemon, and
/// what the simulated cluster clones into every node thread. Two nodes
/// built from equal sessions execute bit-identical protocol logic,
/// whichever transport carries their messages.
#[derive(Clone, Debug)]
pub struct KnnSession {
    /// Party ids of the consortium, in slot order (slot `s` ⇔ node `1+s`).
    pub parties: Vec<usize>,
    /// Database row indices (into the full dataset) the run queries over.
    pub db_rows: Vec<usize>,
    /// Query row indices.
    pub queries: Vec<usize>,
    /// Engine configuration (k, mode, batch, cost scale).
    pub cfg: FedKnnConfig,
    /// Shared pseudo-ID permutation: `perm[pos]` is the pseudo ID of
    /// database position `pos`; `inv[pseudo]` maps back.
    pub perm: Vec<usize>,
    /// Inverse of `perm`.
    pub inv: Vec<usize>,
}

impl KnnSession {
    /// Builds a session, deriving the pseudo-ID permutation from
    /// `shuffle_seed` (paper §IV-B step ①) — the one deterministic input
    /// every node must agree on.
    ///
    /// # Panics
    /// Panics on an empty consortium or database, or a mode the threaded
    /// protocol does not implement (only Base and Fagin have message
    /// flows; Threshold/NRA are logical-engine oracles).
    #[must_use]
    pub fn new(
        parties: &[usize],
        db_rows: &[usize],
        queries: &[usize],
        cfg: FedKnnConfig,
        shuffle_seed: u64,
    ) -> KnnSession {
        assert!(!parties.is_empty(), "empty consortium");
        assert!(!db_rows.is_empty(), "empty database");
        assert!(
            matches!(cfg.mode, KnnMode::Base | KnnMode::Fagin),
            "the threaded protocol implements Base and Fagin; the Threshold \
             and NRA oracles are available in the logical engine (fed_knn)"
        );
        let n = db_rows.len();
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(&mut StdRng::seed_from_u64(shuffle_seed));
        let mut inv = vec![0usize; n];
        for (pos, &pseudo) in perm.iter().enumerate() {
            inv[pseudo] = pos;
        }
        KnnSession {
            parties: parties.to_vec(),
            db_rows: db_rows.to_vec(),
            queries: queries.to_vec(),
            cfg,
            perm,
            inv,
        }
    }

    /// One party's node-local inputs: its feature view of the database
    /// rows and its per-query feature slices. What a real daemon computes
    /// from its own dataset slice before entering the protocol.
    #[must_use]
    pub fn local_inputs(
        &self,
        x: &Matrix,
        partition: &VerticalPartition,
        slot: usize,
    ) -> (Matrix, Vec<Vec<f64>>) {
        let party = self.parties[slot];
        let db = x.select_rows(&self.db_rows);
        let view = partition.local_view(&db, party);
        let cols = partition.columns(party);
        let qfeats =
            self.queries.iter().map(|&q| cols.iter().map(|&c| x.get(q, c)).collect()).collect();
        (view, qfeats)
    }
}

/// What each node reports back: the leader's per-query outcomes (empty
/// elsewhere) and the participant slots it observed dropping out.
pub type KnnNodeOut = (Vec<QueryOutcome>, Vec<usize>);
type NodeResult = Result<KnnNodeOut, Error>;

/// Runs the full federated KNN protocol over `queries` with real HE.
///
/// # Panics
/// Panics on inconsistent inputs or if a node thread fails (without fault
/// injection a node failure is a protocol bug, not an operational event).
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn run_threaded_knn<H>(
    he: &Arc<H>,
    x: &Matrix,
    partition: &VerticalPartition,
    parties: &[usize],
    db_rows: &[usize],
    queries: &[usize],
    cfg: FedKnnConfig,
    shuffle_seed: u64,
) -> ThreadedKnnRun
where
    H: AdditiveHe + 'static,
{
    match run_threaded_knn_faulted(
        he,
        x,
        partition,
        parties,
        db_rows,
        queries,
        cfg,
        shuffle_seed,
        &FaultPlan::default(),
    ) {
        FaultedRun::Complete(run) => run,
        FaultedRun::Degraded(run) => {
            panic!("fault-free run degraded: dropouts {:?}", run.dropouts)
        }
        FaultedRun::Aborted { error, .. } => panic!("fault-free run aborted: {error}"),
    }
}

/// As [`run_threaded_knn`] under a deterministic [`FaultPlan`]. Never
/// hangs and never panics on node death: the result is always a typed
/// [`FaultedRun`]. With an empty plan the protocol transcript (messages,
/// bytes, outcomes) is bit-identical to [`run_threaded_knn`].
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn run_threaded_knn_faulted<H>(
    he: &Arc<H>,
    x: &Matrix,
    partition: &VerticalPartition,
    parties: &[usize],
    db_rows: &[usize],
    queries: &[usize],
    cfg: FedKnnConfig,
    shuffle_seed: u64,
    faults: &FaultPlan,
) -> FaultedRun
where
    H: AdditiveHe + 'static,
{
    let shared = Arc::new(KnnSession::new(parties, db_rows, queries, cfg, shuffle_seed));
    let p = parties.len();

    // Node-local feature views (party slot s holds X^{parties[s]}).
    let locals: Vec<(Matrix, Vec<Vec<f64>>)> =
        (0..p).map(|slot| shared.local_inputs(x, partition, slot)).collect();

    type NodeFn = Box<dyn FnOnce(NodeCtx<ProtoMsg>) -> NodeResult + Send>;
    let mut fns: Vec<NodeFn> = Vec::with_capacity(p + 1);

    // Node 0: aggregation server.
    {
        let he = Arc::clone(he);
        let shared = Arc::clone(&shared);
        fns.push(Box::new(move |ctx| {
            let dead = knn_server_node(&ctx, &he, &shared)?;
            Ok((Vec::new(), dead))
        }));
    }

    // Nodes 1..=P: participants (node 1 is the leader).
    for (slot, (view, qfeats)) in locals.into_iter().enumerate() {
        let he = Arc::clone(he);
        let shared = Arc::clone(&shared);
        fns.push(Box::new(move |ctx| {
            knn_participant_node(&ctx, &he, &shared, slot, &view, &qfeats)
        }));
    }

    let opts = ClusterOptions { ledger: TrafficLedger::new(), faults: faults.clone() };
    let (mut results, ledger) = {
        vfps_obs::span!("protocol.run");
        run_cluster_fallible(fns, opts)
    };
    vfps_obs::gauge_set("protocol.run.total_bytes", ledger.total_bytes() as f64);
    vfps_obs::gauge_set("protocol.run.total_messages", ledger.total_messages() as f64);

    // Every node that errored is down; the leader and server additionally
    // report slots they observed dropping (a killed slot's own result and
    // its peers' observations agree, but union them to be safe).
    let mut dropped = vec![false; p + 1];
    for (node, r) in results.iter().enumerate() {
        match r {
            Err(_) => dropped[node] = true,
            Ok((_, dead_slots)) => {
                for &slot in dead_slots {
                    dropped[1 + slot] = true;
                }
            }
        }
    }
    let dropouts: Vec<NodeId> = (0..=p).filter(|&i| dropped[i]).collect();

    let leader = results.remove(1);
    match leader {
        Err(error) => FaultedRun::Aborted { error, dropouts },
        Ok((outcomes, _)) => {
            let run = ThreadedKnnRun {
                outcomes,
                total_bytes: ledger.total_bytes(),
                total_messages: ledger.total_messages(),
                dropouts: dropouts.clone(),
            };
            if dropouts.is_empty() {
                FaultedRun::Complete(run)
            } else {
                FaultedRun::Degraded(run)
            }
        }
    }
}

/// Marks `slot` dead, or aborts the whole node if the dead slot is the
/// leader (slot 0) — without the leader nothing can be decrypted.
fn mark_dead(dead: &mut [bool], slot: usize) -> Result<(), Error> {
    if slot == 0 {
        return Err(Error::Hangup { peer: 1 });
    }
    dead[slot] = true;
    Ok(())
}

/// Sends, mapping a destination hangup to `Ok(false)` (peer is dead,
/// caller degrades) while letting the sender's own faults — e.g.
/// [`Error::Killed`] — propagate.
fn send_or_gone<C: Channel<ProtoMsg>>(ctx: &C, to: usize, msg: ProtoMsg) -> Result<bool, Error> {
    match ctx.send(to, msg) {
        Ok(()) => Ok(true),
        Err(Error::Hangup { .. }) => Ok(false),
        Err(e) => Err(e),
    }
}

/// The aggregation server: per query, gathers (or Fagin-selects) encrypted
/// partials, sums them homomorphically, and forwards to the leader.
/// Participant death marks the slot dead and the round continues over the
/// survivors; leader death aborts. Returns the dead slots it observed.
///
/// Generic over the transport: the simulated cluster's [`NodeCtx`] and
/// `vfps-cluster`'s real-socket hub run this exact function.
///
/// # Errors
/// Typed [`Error`] when the leader dies, the transport fails, or a peer
/// violates the protocol state machine.
pub fn knn_server_node<H: AdditiveHe, C: Channel<ProtoMsg>>(
    ctx: &C,
    he: &Arc<H>,
    shared: &KnnSession,
) -> Result<Vec<usize>, Error> {
    let p = shared.parties.len();
    let n = shared.db_rows.len();
    let mut dead = vec![false; p];
    for _q in 0..shared.queries.len() {
        vfps_obs::span!("protocol.server.query");
        match shared.cfg.mode {
            // Threshold/NRA are rejected at session construction; grouped
            // with Base to keep the match exhaustive.
            KnnMode::Base | KnnMode::Threshold | KnnMode::Nra => {
                // Announce the (full) candidate list so participants only
                // ever encrypt when the server is ready to aggregate —
                // without this, a fast participant's next-query ciphertexts
                // could interleave with this query's.
                let all: Vec<usize> = (0..n).collect();
                for slot in 0..p {
                    if dead[slot] {
                        continue;
                    }
                    if !send_or_gone(ctx, 1 + slot, ProtoMsg::Candidates(all.clone()))? {
                        mark_dead(&mut dead, slot)?;
                    }
                }
            }
            KnnMode::Fagin => {
                // Drive the streaming phase round-robin, lock-step per
                // slot — kept lock-step (not pipelined) deliberately: the
                // server stops requesting the moment Fagin completes, and
                // pipelining would change the fault-free transcript. A
                // dead slot counts as exhausted from the start: Fagin
                // completion needs every list, so with a dead slot the
                // stream instead terminates when the survivors have fed
                // every id.
                vfps_obs::span!("protocol.server.fagin_stream");
                let mut sf = vfps_topk::stream::StreamingFagin::new(p, n, shared.cfg.k.min(n));
                let mut exhausted: Vec<bool> = dead.clone();
                while !sf.is_complete() && !exhausted.iter().all(|&e| e) {
                    for slot in 0..p {
                        if sf.is_complete() || exhausted[slot] || dead[slot] {
                            continue;
                        }
                        if ctx.is_departed(1 + slot)
                            || !send_or_gone(ctx, 1 + slot, ProtoMsg::NeedBatch)?
                        {
                            mark_dead(&mut dead, slot)?;
                            exhausted[slot] = true;
                            continue;
                        }
                        match ctx.recv_from_timeout(1 + slot, PHASE_TIMEOUT) {
                            Ok(ProtoMsg::RankBatch(ids)) => {
                                if ids.is_empty() {
                                    exhausted[slot] = true;
                                } else {
                                    sf.feed(slot, &ids);
                                }
                            }
                            Ok(other) => {
                                return Err(Error::violation(format!(
                                    "expected RankBatch, got {other:?}"
                                )))
                            }
                            // A hangup of this slot, or silence past the
                            // deadline (its frame was lost in flight):
                            // either way the slot will never answer.
                            Err(e) if e.is_hangup_of(1 + slot) => {
                                mark_dead(&mut dead, slot)?;
                                exhausted[slot] = true;
                            }
                            Err(Error::Timeout { .. }) => {
                                mark_dead(&mut dead, slot)?;
                                exhausted[slot] = true;
                            }
                            Err(e) => return Err(e),
                        }
                    }
                }
                let cands = sf.candidates().to_vec();
                for slot in 0..p {
                    if dead[slot] {
                        continue;
                    }
                    if !send_or_gone(ctx, 1 + slot, ProtoMsg::Candidates(cands.clone()))? {
                        mark_dead(&mut dead, slot)?;
                    }
                }
            }
        }

        // Gather encrypted chunks from every live participant and sum in
        // arrival order (HE addition commutes, so arrival order does not
        // change the aggregate).
        vfps_obs::span!("protocol.server.aggregate");
        let mut agg: Option<Vec<H::Ciphertext>> = None;
        let mut contributors: Vec<usize> = Vec::new();
        let mut got = vec![false; p];
        loop {
            // Slots whose departure was already consumed (e.g. noted
            // silently during the stream phase) will never deliver.
            for slot in 0..p {
                if !dead[slot] && !got[slot] && ctx.is_departed(1 + slot) {
                    mark_dead(&mut dead, slot)?;
                }
            }
            if (0..p).all(|s| got[s] || dead[s]) {
                break;
            }
            match ctx.recv_timeout(PHASE_TIMEOUT) {
                Ok(env) => {
                    let slot = env.from - 1;
                    let ProtoMsg::EncPartials(blobs) = env.msg else {
                        return Err(Error::violation(format!(
                            "expected EncPartials from node {}, got {:?}",
                            env.from, env.msg
                        )));
                    };
                    let mut cts = Vec::with_capacity(blobs.len());
                    for b in &blobs {
                        cts.push(
                            he.ct_from_bytes(b)
                                .map_err(|_| Error::violation("malformed ciphertext"))?,
                        );
                    }
                    agg = Some(match agg {
                        None => cts,
                        Some(prev) => prev.iter().zip(&cts).map(|(a, b)| he.add(a, b)).collect(),
                    });
                    got[slot] = true;
                    contributors.push(slot);
                }
                Err(Error::Hangup { peer }) if peer >= 1 => {
                    mark_dead(&mut dead, peer - 1)?;
                }
                // Silence past the deadline: every slot still owing a
                // contribution lost its frame — count them all out (dead
                // leader ⇒ abort via `mark_dead`).
                Err(Error::Timeout { .. }) => {
                    for slot in 0..p {
                        if !dead[slot] && !got[slot] {
                            mark_dead(&mut dead, slot)?;
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
        let Some(agg) = agg else {
            // Unreachable in practice: losing every contributor implies
            // losing the leader, which aborts above.
            return Err(Error::violation("no participant contributed partials"));
        };
        let blobs: Vec<Vec<u8>> = agg.iter().map(|c| he.ct_to_bytes(c)).collect();
        let msg = if dead.iter().any(|&d| d) {
            contributors.sort_unstable();
            ProtoMsg::AggregatedPartial(blobs, contributors)
        } else {
            ProtoMsg::Aggregated(blobs)
        };
        ctx.send(1, msg)?;
        // Barrier: wait for the leader to finish the whole query before
        // starting the next one. An unresponsive leader is as fatal as a
        // dead one.
        match ctx.recv_from_timeout(1, PHASE_TIMEOUT)? {
            ProtoMsg::QueryDone => {}
            other => return Err(Error::violation(format!("expected QueryDone, got {other:?}"))),
        }
    }
    Ok((0..p).filter(|&s| dead[s]).collect())
}

/// A participant: computes partial distances, streams rankings (Fagin),
/// encrypts what the server asks for, and reports `d_T^p` to the leader.
/// Slot 0 (node 1) additionally acts as the leader: it tolerates peer
/// participants dying (their `d_t` entries become `0.0`), but errors out
/// if the server goes away.
///
/// Generic over the transport: the simulated cluster's [`NodeCtx`] and
/// `vfps-cluster`'s daemon-side socket channel run this exact function.
///
/// # Errors
/// Typed [`Error`] when the server (or, for a non-leader, the leader)
/// dies, the transport fails, or a peer violates the protocol state
/// machine.
pub fn knn_participant_node<H: AdditiveHe, C: Channel<ProtoMsg>>(
    ctx: &C,
    he: &Arc<H>,
    shared: &KnnSession,
    slot: usize,
    view: &Matrix,
    query_feats: &[Vec<f64>],
) -> Result<KnnNodeOut, Error> {
    let p = shared.parties.len();
    let n = shared.db_rows.len();
    let is_leader = slot == 0;
    let mut outcomes = Vec::new();
    // Leader-observed dead slots, persistent across queries.
    let mut dead = vec![false; p];

    for (qi, qfeat) in query_feats.iter().enumerate() {
        let query_row = shared.queries[qi];
        // Partial distances by database position; self excluded via +inf.
        let self_pos = shared.db_rows.iter().position(|&r| r == query_row);
        let partials: Vec<f64> = (0..n)
            .map(|i| {
                if Some(i) == self_pos {
                    f64::INFINITY
                } else {
                    squared_distance(qfeat, view.row(i))
                }
            })
            .collect();

        // Which pseudo IDs to encrypt.
        let candidate_pseudos: Vec<usize> = match shared.cfg.mode {
            KnnMode::Base | KnnMode::Threshold | KnnMode::Nra => {
                match ctx.recv_from_timeout(0, PHASE_TIMEOUT)? {
                    ProtoMsg::Candidates(_) => (0..n).map(|pos| shared.perm[pos]).collect(),
                    other => {
                        return Err(Error::violation(format!("expected Candidates, got {other:?}")))
                    }
                }
            }
            KnnMode::Fagin => {
                // Sorted pseudo-ID ranking, streamed on demand.
                let mut ranking: Vec<usize> = (0..n).collect();
                ranking.sort_by(|&a, &b| partials[a].total_cmp(&partials[b]).then(a.cmp(&b)));
                let pseudo_ranking: Vec<usize> =
                    ranking.iter().map(|&pos| shared.perm[pos]).collect();
                let mut cursor = 0usize;
                loop {
                    match ctx.recv_from_timeout(0, PHASE_TIMEOUT)? {
                        ProtoMsg::NeedBatch => {
                            let end = (cursor + shared.cfg.batch).min(n);
                            ctx.send(0, ProtoMsg::RankBatch(pseudo_ranking[cursor..end].to_vec()))?;
                            cursor = end;
                        }
                        ProtoMsg::Candidates(c) => break c,
                        other => {
                            return Err(Error::violation(format!(
                                "expected NeedBatch/Candidates, got {other:?}"
                            )))
                        }
                    }
                }
            }
        };

        // Encrypt candidate partial distances in candidate order, chunked.
        // Infinite self-distance is clamped to a large sentinel the codec
        // can represent; it can never win the top-k.
        let values: Vec<f64> = candidate_pseudos
            .iter()
            .map(|&pseudo| {
                let v = partials[shared.inv[pseudo]];
                if v.is_finite() {
                    v
                } else {
                    SELF_EXCLUDE_SENTINEL
                }
            })
            .collect();
        let chunk = he.max_batch().max(1);
        let chunks: Vec<&[f64]> = values.chunks(chunk).collect();
        let blobs: Vec<Vec<u8>> = {
            vfps_obs::span!("protocol.participant.encrypt_candidates");
            vfps_obs::counter_add("protocol.encrypted_values", values.len() as u64);
            he.encrypt_many(&chunks)
                .map_err(|_| Error::violation("unencryptable batch"))?
                .iter()
                .map(|ct| he.ct_to_bytes(ct))
                .collect()
        };
        ctx.send(0, ProtoMsg::EncPartials(blobs))?;

        // Leader: decrypt aggregate, pick top-k, broadcast.
        let topk_pseudos: Vec<usize> = if is_leader {
            let (blobs, contributors): (Vec<Vec<u8>>, Vec<usize>) =
                match ctx.recv_from_timeout(0, PHASE_TIMEOUT)? {
                    ProtoMsg::Aggregated(b) => (b, (0..p).collect()),
                    ProtoMsg::AggregatedPartial(b, c) => (b, c),
                    other => {
                        return Err(Error::violation(format!("expected Aggregated, got {other:?}")))
                    }
                };
            for s in 0..p {
                if !contributors.contains(&s) {
                    dead[s] = true;
                }
            }
            let decrypt_span = vfps_obs::span("protocol.leader.decrypt");
            let mut complete = Vec::with_capacity(candidate_pseudos.len());
            let mut remaining = candidate_pseudos.len();
            for blob in &blobs {
                let ct = he
                    .ct_from_bytes(blob)
                    .map_err(|_| Error::violation("malformed aggregate ciphertext"))?;
                let count = remaining.min(chunk);
                complete.extend(he.decrypt(&ct, count));
                remaining -= count;
            }
            drop(decrypt_span);
            let mut scored: Vec<(usize, f64)> =
                candidate_pseudos.iter().copied().zip(complete).collect();
            scored.sort_by(|a, b| a.1.total_cmp(&b.1).then(shared.inv[a.0].cmp(&shared.inv[b.0])));
            let k = shared.cfg.k.min(scored.len());
            let top: Vec<usize> = scored[..k].iter().map(|e| e.0).collect();
            for peer in 0..p {
                if peer != slot
                    && !dead[peer]
                    && !ctx.is_departed(1 + peer)
                    && !send_or_gone(ctx, 1 + peer, ProtoMsg::TopkIds(top.clone()))?
                {
                    dead[peer] = true;
                }
            }
            top
        } else {
            match ctx.recv_from_timeout(1, PHASE_TIMEOUT)? {
                ProtoMsg::TopkIds(ids) => ids,
                other => return Err(Error::violation(format!("expected TopkIds, got {other:?}"))),
            }
        };

        // Everyone computes d_T^p and reports to the leader.
        let d_t_own: f64 = topk_pseudos.iter().map(|&pseudo| partials[shared.inv[pseudo]]).sum();
        if is_leader {
            let mut d_t = vec![0.0f64; p];
            d_t[0] = d_t_own;
            let mut got = vec![false; p];
            got[0] = true;
            loop {
                for s in 1..p {
                    if !dead[s] && !got[s] && ctx.is_departed(1 + s) {
                        dead[s] = true;
                    }
                }
                if (0..p).all(|s| got[s] || dead[s]) {
                    break;
                }
                match ctx.recv_timeout(PHASE_TIMEOUT) {
                    Ok(env) => {
                        let ProtoMsg::DtSum(v) = env.msg else {
                            return Err(Error::violation(format!(
                                "expected DtSum from node {}, got {:?}",
                                env.from, env.msg
                            )));
                        };
                        d_t[env.from - 1] = v;
                        got[env.from - 1] = true;
                    }
                    // A dying peer participant zero-fills its entry; the
                    // server hanging up is fatal (the QueryDone barrier
                    // and all later queries need it).
                    Err(Error::Hangup { peer }) if peer >= 2 => dead[peer - 1] = true,
                    // Silence past the deadline: whoever still owes a sum
                    // lost its frame; zero-fill them all.
                    Err(Error::Timeout { .. }) => {
                        for s in 1..p {
                            if !dead[s] && !got[s] {
                                dead[s] = true;
                            }
                        }
                    }
                    Err(e) => return Err(e),
                }
            }
            let d_t_total = d_t.iter().sum();
            ctx.send(0, ProtoMsg::QueryDone)?;
            outcomes.push(QueryOutcome {
                topk_rows: topk_pseudos
                    .iter()
                    .map(|&pseudo| shared.db_rows[shared.inv[pseudo]])
                    .collect(),
                d_t,
                d_t_total,
                candidates: candidate_pseudos.len(),
            });
        } else {
            ctx.send(1, ProtoMsg::DtSum(d_t_own))?;
        }
    }
    Ok((outcomes, (0..p).filter(|&s| dead[s]).collect()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fed_knn::FedKnn;
    use vfps_he::scheme::{PaillierHe, PlainHe};

    fn toy() -> (Matrix, VerticalPartition) {
        let x = Matrix::from_rows(&[
            vec![0.0, 0.0, 0.0, 0.0],
            vec![0.1, 0.0, 0.1, 0.0],
            vec![0.0, 0.2, 0.0, 0.1],
            vec![5.0, 5.0, 5.0, 5.0],
            vec![5.1, 5.0, 4.9, 5.0],
            vec![5.0, 5.2, 5.0, 5.1],
            vec![2.5, 2.5, 2.5, 2.5],
            vec![9.0, 9.0, 9.0, 9.0],
        ]);
        (x, VerticalPartition::even(4, 2))
    }

    #[test]
    fn threaded_plain_matches_logical_engine() {
        let (x, part) = toy();
        let db: Vec<usize> = (0..8).collect();
        let queries = vec![0usize, 3, 6];
        for mode in [KnnMode::Base, KnnMode::Fagin] {
            let cfg = FedKnnConfig { k: 3, mode, batch: 2, cost_scale: 1.0 };
            let he = Arc::new(PlainHe::new(4));
            let run = run_threaded_knn(&he, &x, &part, &[0, 1], &db, &queries, cfg, 77);
            assert!(run.dropouts.is_empty());
            let engine = FedKnn::new(&x, &part, &[0, 1], &db, cfg);
            let mut ledger = vfps_net::cost::OpLedger::default();
            for (qi, &q) in queries.iter().enumerate() {
                let expect = engine.query(q, &mut ledger);
                let got = &run.outcomes[qi];
                let mut a = expect.topk_rows.clone();
                let mut b = got.topk_rows.clone();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "{mode:?} query {q}");
                for (x1, x2) in expect.d_t.iter().zip(&got.d_t) {
                    assert!((x1 - x2).abs() < 1e-6, "{mode:?} d_t mismatch");
                }
            }
            assert!(run.total_bytes > 0);
        }
    }

    #[test]
    fn threaded_paillier_end_to_end() {
        let (x, part) = toy();
        let db: Vec<usize> = (0..8).collect();
        let queries = vec![0usize, 4];
        let cfg = FedKnnConfig { k: 2, mode: KnnMode::Fagin, batch: 3, cost_scale: 1.0 };
        let he = Arc::new(PaillierHe::generate(128, 8, 5).unwrap());
        let run = run_threaded_knn(&he, &x, &part, &[0, 1], &db, &queries, cfg, 3);
        // Query 0's nearest two are rows 1 and 2; query 4's are 3 and 5.
        let mut q0 = run.outcomes[0].topk_rows.clone();
        q0.sort_unstable();
        assert_eq!(q0, vec![1, 2]);
        let mut q4 = run.outcomes[1].topk_rows.clone();
        q4.sort_unstable();
        assert_eq!(q4, vec![3, 5]);
    }

    #[test]
    fn fagin_moves_fewer_bytes_than_base_with_real_ciphertexts() {
        let (x, part) = toy();
        let db: Vec<usize> = (0..8).collect();
        let queries = vec![0usize];
        let he = Arc::new(PaillierHe::generate(128, 8, 6).unwrap());
        let base_cfg = FedKnnConfig { k: 2, mode: KnnMode::Base, batch: 2, cost_scale: 1.0 };
        let fagin_cfg = FedKnnConfig { k: 2, mode: KnnMode::Fagin, batch: 2, cost_scale: 1.0 };
        let base = run_threaded_knn(&he, &x, &part, &[0, 1], &db, &queries, base_cfg, 9);
        let fagin = run_threaded_knn(&he, &x, &part, &[0, 1], &db, &queries, fagin_cfg, 9);
        assert!(
            fagin.outcomes[0].candidates < base.outcomes[0].candidates,
            "fagin candidates {} vs base {}",
            fagin.outcomes[0].candidates,
            base.outcomes[0].candidates
        );
    }

    #[test]
    fn proto_messages_roundtrip() {
        let msgs = vec![
            ProtoMsg::NeedBatch,
            ProtoMsg::RankBatch(vec![1, 2, 3]),
            ProtoMsg::Candidates(vec![]),
            ProtoMsg::EncPartials(vec![vec![1, 2], vec![]]),
            ProtoMsg::Aggregated(vec![vec![0xff; 10]]),
            ProtoMsg::AggregatedPartial(vec![vec![0xaa; 4]], vec![0, 2]),
            ProtoMsg::TopkIds(vec![7]),
            ProtoMsg::DtSum(-1.25),
            ProtoMsg::QueryDone,
        ];
        for m in msgs {
            let bytes = m.to_bytes();
            assert_eq!(bytes.len(), m.encoded_len());
            assert_eq!(ProtoMsg::from_bytes(&bytes).unwrap(), m);
        }
    }
}
