//! # vfps-vfl — vertical federated learning protocols
//!
//! The protocol layer between the substrates (HE, top-k, data, ML, net) and
//! the VFPS-SM selection logic:
//!
//! * [`fed_knn`] — vertical federated KNN, both `VFPS-SM-BASE` (encrypt all
//!   N partial distances) and the Fagin-optimized variant, as a logical
//!   engine with exact operation/byte billing;
//! * [`protocol`] — the same protocol run thread-per-node over the
//!   simulated cluster with *real* homomorphic encryption and pseudo-ID
//!   shuffling (tests assert it matches the logical engine);
//! * [`split_train`] — downstream KNN/LR/MLP training over a selected
//!   sub-consortium with split-learning cost billing.
//!
//! ```
//! use vfps_data::{prepared_sized, DatasetSpec, VerticalPartition};
//! use vfps_vfl::fed_knn::{FedKnn, FedKnnConfig};
//! use vfps_net::cost::OpLedger;
//!
//! let spec = DatasetSpec::by_name("Rice").unwrap();
//! let (ds, split) = prepared_sized(&spec, 200, 1);
//! let partition = VerticalPartition::random(ds.n_features(), 4, 1);
//! let engine = FedKnn::new(&ds.x, &partition, &[0, 1, 2, 3], &split.train,
//!                          FedKnnConfig::default());
//! let mut ledger = OpLedger::default();
//! let outcome = engine.query(split.train[0], &mut ledger);
//! assert_eq!(outcome.d_t.len(), 4);
//! ```

#![warn(missing_docs)]

pub mod fed_knn;
pub mod protocol;
pub mod split_protocol;
pub mod split_train;

pub use fed_knn::{Dropout, FedKnn, FedKnnConfig, KnnMode, QueryOutcome, ResilientBatch};
pub use protocol::{
    knn_participant_node, knn_server_node, run_threaded_knn, run_threaded_knn_faulted, FaultedRun,
    KnnNodeOut, KnnSession, ProtoMsg, ThreadedKnnRun,
};
pub use split_protocol::{
    run_split_training, run_split_training_faulted, SplitTrainConfig, SplitTrainRun,
};
pub use split_train::{train_downstream, Downstream, DownstreamReport};
