//! Thread-per-node split-learning training with real homomorphic
//! encryption — the paper's downstream LR architecture run as an actual
//! protocol (§V-A: "each participant maintains a single linear layer, and
//! the server aggregates the outputs of the participants by summing them";
//! transmitted outputs are HE-protected).
//!
//! Data flow per mini-batch:
//!
//! 1. every participant computes its partial logits `Z_p = X_p · W_p`,
//!    encrypts them, and sends them to the aggregation server;
//! 2. the server homomorphically sums the `P` ciphertext blocks and
//!    forwards the aggregate to the leader;
//! 3. the leader (label holder) decrypts the logits, computes the softmax
//!    cross-entropy gradient `dZ`, and broadcasts it to the participants;
//! 4. each participant updates its own `W_p` with `dW_p = X_pᵀ·dZ / B`
//!    using a local Adam state.
//!
//! Because a linear layer over concatenated features *is* the sum of
//! per-party linear layers, the protocol computes exactly the same model
//! as centralized logistic regression — which the tests verify gradient
//! by gradient.

use crate::protocol::{ProtoMsg, PHASE_TIMEOUT};
use std::sync::Arc;
use vfps_data::VerticalPartition;
use vfps_he::scheme::AdditiveHe;
use vfps_ml::linalg::Matrix;
use vfps_ml::nn::{cross_entropy, softmax, softmax_ce_grad};
use vfps_ml::optim::Adam;
use vfps_net::cluster::{run_cluster_fallible, ClusterOptions, NodeCtx};
use vfps_net::{Error, FaultPlan};

/// Configuration for a threaded split-LR training run.
#[derive(Clone, Debug)]
pub struct SplitTrainConfig {
    /// Mini-batch size.
    pub batch_size: usize,
    /// Number of epochs (no early stopping in the protocol demo).
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl Default for SplitTrainConfig {
    fn default() -> Self {
        SplitTrainConfig { batch_size: 32, epochs: 10, lr: 0.05, seed: 7 }
    }
}

/// Result of a threaded split-training run (as seen by the leader).
#[derive(Debug)]
pub struct SplitTrainRun {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f64>,
    /// Test predictions from the final model (computed by one last
    /// federated forward pass).
    pub test_predictions: Vec<usize>,
    /// Total bytes moved between nodes.
    pub total_bytes: u64,
}

/// Runs threaded split-LR training, returning the leader's view.
///
/// `train_rows`/`test_rows` index into `x`; labels live only on the leader
/// (node 1). Ciphertexts are chunked by the scheme's batch capacity.
///
/// # Panics
/// Panics on empty inputs or a node failure.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn run_split_training<H>(
    he: &Arc<H>,
    x: &Matrix,
    labels: &[usize],
    n_classes: usize,
    partition: &VerticalPartition,
    parties: &[usize],
    train_rows: &[usize],
    test_rows: &[usize],
    cfg: &SplitTrainConfig,
) -> SplitTrainRun
where
    H: AdditiveHe + 'static,
{
    run_split_training_faulted(
        he,
        x,
        labels,
        n_classes,
        partition,
        parties,
        train_rows,
        test_rows,
        cfg,
        &FaultPlan::default(),
    )
    .expect("fault-free split training failed")
}

/// As [`run_split_training`] under a deterministic [`FaultPlan`].
///
/// Unlike the KNN protocol, split training does **not** degrade on
/// dropout: a participant's weight block is load-bearing for every later
/// batch, so losing any node makes the model unrecoverable and the run
/// returns the typed error the leader observed instead of a partial model.
///
/// # Panics
/// Panics on empty inputs.
#[allow(clippy::too_many_arguments)]
pub fn run_split_training_faulted<H>(
    he: &Arc<H>,
    x: &Matrix,
    labels: &[usize],
    n_classes: usize,
    partition: &VerticalPartition,
    parties: &[usize],
    train_rows: &[usize],
    test_rows: &[usize],
    cfg: &SplitTrainConfig,
    faults: &FaultPlan,
) -> Result<SplitTrainRun, Error>
where
    H: AdditiveHe + 'static,
{
    assert!(!train_rows.is_empty(), "empty training set");
    assert!(!parties.is_empty(), "empty consortium");
    let p = parties.len();
    let n_train = train_rows.len();
    let batches: Vec<(usize, usize)> = {
        let mut v = Vec::new();
        let mut start = 0;
        while start < n_train {
            let end = (start + cfg.batch_size).min(n_train);
            v.push((start, end));
            start = end;
        }
        v
    };

    // Per-party local views of train and test rows.
    let train_views: Vec<Matrix> = parties
        .iter()
        .map(|&party| partition.local_view(&x.select_rows(train_rows), party))
        .collect();
    let test_views: Vec<Matrix> = parties
        .iter()
        .map(|&party| partition.local_view(&x.select_rows(test_rows), party))
        .collect();
    let train_labels: Vec<usize> = train_rows.iter().map(|&r| labels[r]).collect();

    let batches = Arc::new(batches);
    type SplitNodeFn = Box<dyn FnOnce(NodeCtx<ProtoMsg>) -> Result<SplitTrainRun, Error> + Send>;
    let mut fns: Vec<SplitNodeFn> = Vec::with_capacity(p + 1);

    // Node 0: aggregation server — sums encrypted logit blocks.
    {
        let he = Arc::clone(he);
        let batches = Arc::clone(&batches);
        let epochs = cfg.epochs;
        let test_len = test_rows.len();
        fns.push(Box::new(move |ctx| {
            let rounds = epochs * batches.len() + usize::from(test_len > 0);
            // A fast participant may send round r+1's block before a slow
            // one sends round r's, so contributions are buffered per
            // sender and each round pops exactly one block from every
            // participant (per-sender channel order guarantees blocks
            // arrive in round order).
            let mut pending: Vec<std::collections::VecDeque<Vec<H::Ciphertext>>> =
                (0..p).map(|_| std::collections::VecDeque::new()).collect();
            for _ in 0..rounds {
                // Deadline-based: a lost frame must abort the round, not
                // wedge it (split training never degrades — see DESIGN.md
                // §7 — so any silence is fatal).
                while pending.iter().any(std::collections::VecDeque::is_empty) {
                    let env = ctx.recv_timeout(PHASE_TIMEOUT)?;
                    let ProtoMsg::EncPartials(blobs) = env.msg else {
                        return Err(Error::violation("expected EncPartials"));
                    };
                    let mut cts = Vec::with_capacity(blobs.len());
                    for b in &blobs {
                        cts.push(
                            he.ct_from_bytes(b)
                                .map_err(|_| Error::violation("malformed ciphertext"))?,
                        );
                    }
                    pending[env.from - 1].push_back(cts);
                }
                let mut agg: Option<Vec<H::Ciphertext>> = None;
                for queue in pending.iter_mut() {
                    let cts = queue.pop_front().expect("one block per participant");
                    agg = Some(match agg {
                        None => cts,
                        Some(prev) => prev.iter().zip(&cts).map(|(a, b)| he.add(a, b)).collect(),
                    });
                }
                let blobs: Vec<Vec<u8>> = agg
                    .expect("at least one participant")
                    .iter()
                    .map(|c| he.ct_to_bytes(c))
                    .collect();
                ctx.send(1, ProtoMsg::Aggregated(blobs))?;
            }
            Ok(SplitTrainRun {
                epoch_losses: Vec::new(),
                test_predictions: Vec::new(),
                total_bytes: 0,
            })
        }));
    }

    // Nodes 1..=P: participants; node 1 is the leader with the labels.
    for slot in 0..p {
        let he = Arc::clone(he);
        let batches = Arc::clone(&batches);
        let train_view = train_views[slot].clone();
        let test_view = test_views[slot].clone();
        let train_labels = train_labels.clone();
        let cfg = cfg.clone();
        fns.push(Box::new(move |ctx| {
            participant_train(
                &ctx,
                &he,
                slot,
                p,
                &train_view,
                &test_view,
                &train_labels,
                n_classes,
                &batches,
                &cfg,
            )
        }));
    }

    let opts = ClusterOptions { ledger: vfps_net::TrafficLedger::new(), faults: faults.clone() };
    let (mut results, ledger) = run_cluster_fallible(fns, opts);
    let mut leader = results.remove(1)?;
    leader.total_bytes = ledger.total_bytes();
    Ok(leader)
}

/// One participant's training loop; the leader (slot 0) additionally owns
/// decryption, loss, and the gradient broadcast.
#[allow(clippy::too_many_arguments)]
fn participant_train<H: AdditiveHe>(
    ctx: &NodeCtx<ProtoMsg>,
    he: &Arc<H>,
    slot: usize,
    p: usize,
    train_view: &Matrix,
    test_view: &Matrix,
    train_labels: &[usize],
    n_classes: usize,
    batches: &[(usize, usize)],
    cfg: &SplitTrainConfig,
) -> Result<SplitTrainRun, Error> {
    let is_leader = slot == 0;
    let f_local = train_view.cols();
    // Xavier-ish init, seeded per slot so runs are reproducible.
    let mut w = {
        let mut rng = vfps_he::scheme::seeded_rng(cfg.seed.wrapping_add(slot as u64 * 31));
        use rand::Rng;
        let bound = (6.0 / (f_local + n_classes) as f64).sqrt();
        let mut m = Matrix::zeros(f_local, n_classes);
        for r in 0..f_local {
            for c in 0..n_classes {
                m.set(r, c, rng.gen_range(-bound..bound));
            }
        }
        m
    };
    let mut adam = Adam::new(f_local * n_classes, cfg.lr);
    let chunk = he.max_batch().max(1);
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);

    let forward_send = |w: &Matrix,
                        view: &Matrix,
                        rows: (usize, usize),
                        ctx: &NodeCtx<ProtoMsg>|
     -> Result<Matrix, Error> {
        let idx: Vec<usize> = (rows.0..rows.1).collect();
        let xb = view.select_rows(&idx);
        let z = xb.matmul(w);
        let mut blobs = Vec::new();
        for c in z.as_slice().chunks(chunk) {
            let ct = he.encrypt(c).map_err(|_| Error::violation("unencryptable batch"))?;
            blobs.push(he.ct_to_bytes(&ct));
        }
        ctx.send(0, ProtoMsg::EncPartials(blobs))?;
        Ok(xb)
    };

    // Non-leaders receive the gradient as encrypted chunks from the leader.
    // (In a deployment the leader would encrypt under each participant's
    // key; the simulation shares one scheme handle — see the module docs.)
    let recv_grad = |ctx: &NodeCtx<ProtoMsg>| -> Result<Vec<f64>, Error> {
        match ctx.recv_from_timeout(1, PHASE_TIMEOUT)? {
            ProtoMsg::EncPartials(blobs) => {
                let mut flat = Vec::new();
                for b in &blobs {
                    let ct = he
                        .ct_from_bytes(b)
                        .map_err(|_| Error::violation("malformed gradient ciphertext"))?;
                    flat.extend(he.decrypt(&ct, chunk));
                }
                Ok(flat)
            }
            other => Err(Error::violation(format!("expected gradient frame, got {other:?}"))),
        }
    };

    for _epoch in 0..cfg.epochs {
        vfps_obs::span!("split.epoch");
        let mut loss_sum = 0.0;
        for &(start, end) in batches {
            let xb = {
                vfps_obs::span!("split.forward");
                forward_send(&w, train_view, (start, end), ctx)?
            };
            let b = end - start;

            // Leader decrypts the aggregate, computes the gradient, and
            // broadcasts it encrypted.
            let grad_span = vfps_obs::span("split.gradient");
            let dz: Matrix = if is_leader {
                let ProtoMsg::Aggregated(blobs) = ctx.recv_from_timeout(0, PHASE_TIMEOUT)? else {
                    return Err(Error::violation("expected Aggregated"));
                };
                let mut flat = Vec::with_capacity(b * n_classes);
                let mut remaining = b * n_classes;
                for blob in &blobs {
                    let ct = he
                        .ct_from_bytes(blob)
                        .map_err(|_| Error::violation("malformed aggregate ciphertext"))?;
                    let take = remaining.min(chunk);
                    flat.extend(he.decrypt(&ct, take));
                    remaining -= take;
                }
                let logits = Matrix::from_vec(b, n_classes, flat);
                let probs = softmax(&logits);
                let yb = &train_labels[start..end];
                loss_sum += cross_entropy(&probs, yb) * b as f64;
                let dz = softmax_ce_grad(&probs, yb);
                // Broadcast (encrypted — participants share the scheme).
                let mut blobs = Vec::new();
                for c in dz.as_slice().chunks(chunk) {
                    let ct =
                        he.encrypt(c).map_err(|_| Error::violation("unencryptable gradient"))?;
                    blobs.push(he.ct_to_bytes(&ct));
                }
                for peer in 1..p {
                    ctx.send(1 + peer, ProtoMsg::EncPartials(blobs.clone()))?;
                }
                dz
            } else {
                let flat = recv_grad(ctx)?;
                Matrix::from_vec(b, n_classes, flat[..b * n_classes].to_vec())
            };
            drop(grad_span);

            // Local backward + Adam step.
            vfps_obs::span!("split.backward_update");
            let mut dw = xb.t_matmul(&dz);
            dw.scale_inplace(1.0 / b as f64);
            adam.step(w.as_mut_slice(), dw.as_slice());
        }
        if is_leader {
            epoch_losses.push(loss_sum / train_labels.len() as f64);
        }
    }

    // Final federated forward pass over the test set.
    let mut test_predictions = Vec::new();
    if test_view.rows() > 0 {
        let _ = forward_send(&w, test_view, (0, test_view.rows()), ctx)?;
        if is_leader {
            let ProtoMsg::Aggregated(blobs) = ctx.recv_from_timeout(0, PHASE_TIMEOUT)? else {
                return Err(Error::violation("expected Aggregated"));
            };
            let b = test_view.rows();
            let mut flat = Vec::with_capacity(b * n_classes);
            let mut remaining = b * n_classes;
            for blob in &blobs {
                let ct = he
                    .ct_from_bytes(blob)
                    .map_err(|_| Error::violation("malformed aggregate ciphertext"))?;
                let take = remaining.min(chunk);
                flat.extend(he.decrypt(&ct, take));
                remaining -= take;
            }
            let logits = Matrix::from_vec(b, n_classes, flat);
            let probs = softmax(&logits);
            test_predictions = (0..b)
                .map(|r| {
                    probs
                        .row(r)
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
                        .map(|(c, _)| c)
                        .unwrap_or(0)
                })
                .collect();
        }
    }

    Ok(SplitTrainRun { epoch_losses, test_predictions, total_bytes: 0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfps_he::scheme::{PaillierHe, PlainHe};
    use vfps_ml::metrics::accuracy;

    /// Two separable blobs over four features split across two parties.
    fn blob_data(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = vfps_he::scheme::seeded_rng(seed);
        use rand::Rng;
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let mu = if c == 0 { -1.5 } else { 1.5 };
            rows.push(vec![
                mu + rng.gen_range(-1.0..1.0),
                mu + rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
                mu + rng.gen_range(-1.0..1.0),
            ]);
            ys.push(c);
        }
        (Matrix::from_rows(&rows), ys)
    }

    #[test]
    fn split_training_learns_with_plain_scheme() {
        let (x, y) = blob_data(160, 1);
        let partition = VerticalPartition::even(4, 2);
        let train: Vec<usize> = (0..128).collect();
        let test: Vec<usize> = (128..160).collect();
        let he = Arc::new(PlainHe::new(64));
        let run = run_split_training(
            &he,
            &x,
            &y,
            2,
            &partition,
            &[0, 1],
            &train,
            &test,
            &SplitTrainConfig::default(),
        );
        assert_eq!(run.epoch_losses.len(), 10);
        assert!(
            run.epoch_losses.last().unwrap() < &run.epoch_losses[0],
            "loss must decrease: {:?}",
            run.epoch_losses
        );
        let test_y: Vec<usize> = test.iter().map(|&r| y[r]).collect();
        let acc = accuracy(&run.test_predictions, &test_y);
        assert!(acc > 0.85, "acc={acc}");
        assert!(run.total_bytes > 0);
    }

    #[test]
    fn split_training_with_real_paillier() {
        // Smaller run: every logits/gradient block is genuinely encrypted.
        let (x, y) = blob_data(60, 2);
        let partition = VerticalPartition::even(4, 2);
        let train: Vec<usize> = (0..48).collect();
        let test: Vec<usize> = (48..60).collect();
        let he = Arc::new(PaillierHe::generate(128, 64, 3).unwrap());
        let cfg = SplitTrainConfig { batch_size: 16, epochs: 4, lr: 0.1, seed: 5 };
        let run = run_split_training(&he, &x, &y, 2, &partition, &[0, 1], &train, &test, &cfg);
        let test_y: Vec<usize> = test.iter().map(|&r| y[r]).collect();
        let acc = accuracy(&run.test_predictions, &test_y);
        assert!(acc > 0.7, "acc={acc}");
    }

    #[test]
    fn split_gradients_match_centralized_lr() {
        // One batch, lr so small the update is ~pure gradient: the split
        // protocol's logits must equal a centralized X·W with W the
        // concatenation of the per-party blocks.
        let (x, y) = blob_data(32, 3);
        let partition = VerticalPartition::even(4, 2);
        let train: Vec<usize> = (0..32).collect();
        let he = Arc::new(PlainHe::new(64));
        let cfg = SplitTrainConfig { batch_size: 32, epochs: 1, lr: 1e-9, seed: 11 };
        let run = run_split_training(&he, &x, &y, 2, &partition, &[0, 1], &train, &[], &cfg);
        // Rebuild the initial concatenated weights exactly as the nodes do.
        let mut w_full = Matrix::zeros(4, 2);
        for slot in 0..2usize {
            let cols = partition.columns(slot);
            let mut rng = vfps_he::scheme::seeded_rng(11u64.wrapping_add(slot as u64 * 31));
            use rand::Rng;
            let bound = (6.0 / (cols.len() + 2) as f64).sqrt();
            for (local, &global) in cols.iter().enumerate() {
                let _ = local;
                for c in 0..2 {
                    w_full.set(global, c, rng.gen_range(-bound..bound));
                }
            }
        }
        let logits = x.matmul(&w_full);
        let expect = cross_entropy(&softmax(&logits), &y);
        assert!(
            (run.epoch_losses[0] - expect).abs() < 1e-9,
            "split loss {} vs centralized {}",
            run.epoch_losses[0],
            expect
        );
    }
}
