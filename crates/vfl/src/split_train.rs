//! Downstream federated training over a selected sub-consortium.
//!
//! The paper trains three models split-learning style (§V-A): each
//! participant holds a bottom layer; the server aggregates participant
//! outputs (LR: a sum of per-party linear layers, MLP: summed bottom
//! activations into a 2-layer top model); transmitted activations and
//! gradients are HE-protected.
//!
//! **Substitution note (DESIGN.md §3):** the split-sum architecture
//! computes exactly the same function as a centralized model on the joint
//! feature matrix (a linear layer over concatenated features *is* a sum of
//! per-party linear layers). We therefore train the centralized equivalent
//! for accuracy and *bill* the federated protocol — per batch: per-party
//! forward, activation encryption, homomorphic aggregation, decryption,
//! and the encrypted gradient round-trip — at paper-scale instance counts.

use crate::fed_knn::{FedKnn, FedKnnConfig, KnnMode};
use vfps_data::{Dataset, Split, SplitPart, VerticalPartition};
use vfps_ml::linalg::Matrix;
use vfps_ml::metrics::accuracy;
use vfps_ml::mlp::{Mlp, TrainConfig};
use vfps_ml::LogisticRegression;
use vfps_net::cost::{CostModel, OpLedger};

/// Downstream model choice (the paper's three tasks).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Downstream {
    /// Vertical federated KNN with the given `k`.
    Knn {
        /// Neighbor count.
        k: usize,
    },
    /// Split logistic regression.
    Lr,
    /// Split 3-layer MLP.
    Mlp,
}

impl Downstream {
    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Downstream::Knn { .. } => "KNN",
            Downstream::Lr => "LR",
            Downstream::Mlp => "MLP",
        }
    }
}

/// Outcome of a downstream training + evaluation run.
#[derive(Clone, Debug)]
pub struct DownstreamReport {
    /// Test accuracy.
    pub accuracy: f64,
    /// Epochs executed (0 for KNN).
    pub epochs: usize,
    /// Billed federated cost of the training (and, for KNN, inference).
    pub ledger: OpLedger,
}

/// Trains `model` on the joint features of `parties` and evaluates on the
/// test split, billing federated costs at `cost_scale × sim` instance
/// counts.
///
/// # Panics
/// Panics on an empty consortium or malformed split.
#[must_use]
pub fn train_downstream(
    ds: &Dataset,
    split: &Split,
    partition: &VerticalPartition,
    parties: &[usize],
    model: Downstream,
    cfg: &TrainConfig,
    cost_scale: f64,
    seed: u64,
) -> DownstreamReport {
    assert!(!parties.is_empty(), "empty consortium");
    let mut ledger = OpLedger::default();
    let cols = partition.joint_columns(parties);
    let joint = ds.x.select_columns(&cols);

    let (train_x, train_y) = take(&joint, ds, split, SplitPart::Train);
    let (val_x, val_y) = take(&joint, ds, split, SplitPart::Val);
    let (test_x, test_y) = take(&joint, ds, split, SplitPart::Test);

    match model {
        Downstream::Knn { k } => {
            // Federated KNN inference over the test set (no training phase).
            let engine = FedKnn::new(
                &ds.x,
                partition,
                parties,
                &split.train,
                FedKnnConfig { k, mode: KnnMode::Base, batch: 100, cost_scale },
            );
            let preds: Vec<usize> = split
                .test
                .iter()
                .map(|&row| engine.classify(row, &ds.y, ds.n_classes, &mut ledger))
                .collect();
            let acc = accuracy(&preds, &test_y);
            DownstreamReport { accuracy: acc, epochs: 0, ledger }
        }
        Downstream::Lr => {
            let mut lr = LogisticRegression::new(joint.cols(), ds.n_classes, cfg.lr, seed);
            let report = lr.fit(&train_x, &train_y, &val_x, &val_y, cfg);
            bill_split_epochs(
                &mut ledger,
                partition,
                parties,
                &[ds.n_classes],
                train_x.rows(),
                cfg.batch_size,
                report.epochs_run,
                cost_scale,
            );
            DownstreamReport {
                accuracy: lr.accuracy(&test_x, &test_y),
                epochs: report.epochs_run,
                ledger,
            }
        }
        Downstream::Mlp => {
            let f = joint.cols();
            let mut mlp = Mlp::paper_architecture(f, ds.n_classes, cfg.lr, seed);
            let report = mlp.fit(&train_x, &train_y, &val_x, &val_y, cfg);
            // Bottom layer emits per-party activations of its local width.
            let widths: Vec<usize> = parties.iter().map(|&p| partition.columns(p).len()).collect();
            bill_split_epochs(
                &mut ledger,
                partition,
                parties,
                &widths,
                train_x.rows(),
                cfg.batch_size,
                report.epochs_run,
                cost_scale,
            );
            DownstreamReport {
                accuracy: mlp.accuracy(&test_x, &test_y),
                epochs: report.epochs_run,
                ledger,
            }
        }
    }
}

fn take(joint: &Matrix, ds: &Dataset, split: &Split, part: SplitPart) -> (Matrix, Vec<usize>) {
    let rows = match part {
        SplitPart::Train => &split.train,
        SplitPart::Val => &split.val,
        SplitPart::Test => &split.test,
    };
    (joint.select_rows(rows), rows.iter().map(|&r| ds.y[r]).collect())
}

/// Bills `epochs` of split training: per batch, every party encrypts its
/// activation block (`out_widths[slot]` values per sample), the server
/// aggregates homomorphically, the leader decrypts, and an encrypted
/// gradient of the same shape flows back.
#[allow(clippy::too_many_arguments)]
fn bill_split_epochs(
    ledger: &mut OpLedger,
    partition: &VerticalPartition,
    parties: &[usize],
    out_widths: &[usize],
    sim_train_rows: usize,
    batch_size: usize,
    epochs: usize,
    cost_scale: f64,
) {
    let model = CostModel::default();
    let p = parties.len() as u64;
    let paper_rows = (sim_train_rows as f64 * cost_scale).round().max(1.0) as u64;
    let batches = paper_rows.div_ceil(batch_size as u64).max(1);
    let bs = batch_size as u64;

    // Per-party activation width: LR passes a single shared width (C);
    // MLP passes one width per party.
    let widths: Vec<u64> = if out_widths.len() == 1 {
        vec![out_widths[0] as u64; parties.len()]
    } else {
        out_widths.iter().map(|&w| w as u64).collect()
    };
    let max_w = widths.iter().copied().max().unwrap_or(1);
    let sum_w: u64 = widths.iter().sum();

    // Per-party local compute: forward + backward ≈ 2 × batch × F_p × w_p.
    let compute_path: u64 = parties
        .iter()
        .zip(&widths)
        .map(|(&party, &w)| 2 * bs * partition.columns(party).len() as u64 * w)
        .max()
        .unwrap_or(0);
    let compute_work: u64 = parties
        .iter()
        .zip(&widths)
        .map(|(&party, &w)| 2 * bs * partition.columns(party).len() as u64 * w)
        .sum();

    for _ in 0..epochs {
        for _ in 0..batches {
            ledger.record_plain_hetero(compute_path, compute_work);
            // Forward: activations up. The synchronous round is gated on
            // the server receiving and merging ALL P encrypted streams, so
            // the round's critical path carries the summed volume — this
            // is what makes training time scale with the party count, the
            // effect the paper's Fig. 5 measures (~2× faster with 2 of 4
            // parties).
            ledger.record_enc_hetero(bs * sum_w, bs * sum_w);
            ledger.record_traffic(bs * sum_w * model.cipher_bytes as u64, p);
            ledger.record_he_add(bs * max_w * (p.saturating_sub(1)));
            ledger.record_dec(bs * max_w);
            ledger.record_round();
            // Backward: gradients down (encrypted, same shape).
            ledger.record_enc_hetero(bs * sum_w, bs * sum_w);
            ledger.record_traffic(bs * sum_w * model.cipher_bytes as u64, p);
            ledger.record_dec(bs * max_w);
            ledger.record_round();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfps_data::{prepared_sized, DatasetSpec};

    fn setup() -> (Dataset, Split, VerticalPartition) {
        let spec = DatasetSpec::by_name("Rice").unwrap();
        let (ds, split) = prepared_sized(&spec, 300, 7);
        let partition = VerticalPartition::random(ds.n_features(), 4, 7);
        (ds, split, partition)
    }

    #[test]
    fn knn_downstream_reports_accuracy_and_cost() {
        let (ds, split, partition) = setup();
        let report = train_downstream(
            &ds,
            &split,
            &partition,
            &[0, 1, 2, 3],
            Downstream::Knn { k: 5 },
            &TrainConfig::fast(),
            1.0,
            1,
        );
        assert!(report.accuracy > 0.7, "acc={}", report.accuracy);
        assert_eq!(report.epochs, 0);
        assert!(report.ledger.enc.work > 0);
    }

    #[test]
    fn lr_downstream_trains() {
        let (ds, split, partition) = setup();
        let report = train_downstream(
            &ds,
            &split,
            &partition,
            &[0, 1, 2, 3],
            Downstream::Lr,
            &TrainConfig::fast(),
            1.0,
            2,
        );
        assert!(report.accuracy > 0.75, "acc={}", report.accuracy);
        assert!(report.epochs >= 1);
        assert!(report.ledger.rounds >= 2);
    }

    #[test]
    fn mlp_downstream_trains() {
        let (ds, split, partition) = setup();
        let report = train_downstream(
            &ds,
            &split,
            &partition,
            &[0, 1, 2, 3],
            Downstream::Mlp,
            &TrainConfig::fast(),
            1.0,
            3,
        );
        assert!(report.accuracy > 0.75, "acc={}", report.accuracy);
        assert!(report.ledger.enc.work > 0);
    }

    #[test]
    fn fewer_parties_cost_less() {
        let (ds, split, partition) = setup();
        let full = train_downstream(
            &ds,
            &split,
            &partition,
            &[0, 1, 2, 3],
            Downstream::Lr,
            &TrainConfig::fast(),
            1.0,
            4,
        );
        let half = train_downstream(
            &ds,
            &split,
            &partition,
            &[0, 1],
            Downstream::Lr,
            &TrainConfig::fast(),
            1.0,
            4,
        );
        let m = CostModel::default();
        // Same model class but half the parties: bytes per batch halve.
        let full_per_epoch = full.ledger.bytes as f64 / full.epochs.max(1) as f64;
        let half_per_epoch = half.ledger.bytes as f64 / half.epochs.max(1) as f64;
        assert!(half_per_epoch < full_per_epoch, "{half_per_epoch} vs {full_per_epoch}");
        assert!(full.ledger.simulated_seconds(&m) > 0.0);
    }

    #[test]
    fn cost_scale_amplifies_training_cost() {
        let (ds, split, partition) = setup();
        let small = train_downstream(
            &ds,
            &split,
            &partition,
            &[0, 1],
            Downstream::Lr,
            &TrainConfig::fast(),
            1.0,
            5,
        );
        let big = train_downstream(
            &ds,
            &split,
            &partition,
            &[0, 1],
            Downstream::Lr,
            &TrainConfig::fast(),
            50.0,
            5,
        );
        assert_eq!(small.accuracy, big.accuracy, "scale is billing-only");
        assert!(big.ledger.bytes > 10 * small.ledger.bytes);
    }

    #[test]
    fn good_subset_beats_bad_subset() {
        // Build a partition where parties {0,1} hold the informative
        // features and {2,3} mostly noise, then compare downstream KNN.
        let spec = DatasetSpec::by_name("Phishing").unwrap();
        let (ds, split) = prepared_sized(&spec, 400, 13);
        let mut informative: Vec<usize> = Vec::new();
        let mut rest: Vec<usize> = Vec::new();
        for (i, k) in ds.feature_kinds.iter().enumerate() {
            if *k == vfps_data::FeatureKind::Informative {
                informative.push(i);
            } else {
                rest.push(i);
            }
        }
        let half = informative.len() / 2;
        let quarter = rest.len() / 2;
        let groups = vec![
            informative[..half].to_vec(),
            informative[half..].to_vec(),
            rest[..quarter].to_vec(),
            rest[quarter..].to_vec(),
        ];
        let partition = VerticalPartition::from_groups(ds.n_features(), groups);
        let good = train_downstream(
            &ds,
            &split,
            &partition,
            &[0, 1],
            Downstream::Knn { k: 5 },
            &TrainConfig::fast(),
            1.0,
            6,
        );
        let bad = train_downstream(
            &ds,
            &split,
            &partition,
            &[2, 3],
            Downstream::Knn { k: 5 },
            &TrainConfig::fast(),
            1.0,
            6,
        );
        assert!(good.accuracy > bad.accuracy + 0.05, "good={} bad={}", good.accuracy, bad.accuracy);
    }
}
