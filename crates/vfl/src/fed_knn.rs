//! Vertical federated KNN — the oracle at the heart of VFPS-SM.
//!
//! Four implementations — the paper's two (§IV) plus the Threshold and
//! No-Random-Access algorithms it names as supported alternatives:
//!
//! * [`KnnMode::Base`] (`VFPS-SM-BASE`): every participant encrypts the
//!   partial distances of *all* `N` database instances per query; the
//!   aggregation server homomorphically sums them; the leader decrypts and
//!   picks the `k` nearest.
//! * [`KnnMode::Fagin`] (`VFPS-SM`): participants stream locally sorted
//!   pseudo-ID mini-batches; the server runs Fagin's algorithm to find a
//!   candidate set; only candidates' partial distances are encrypted.
//! * [`KnnMode::Threshold`] (`VFPS-SM-TA`): the Threshold Algorithm —
//!   earlier stopping, but every surfaced instance costs an encrypted
//!   point query (recorded in [`OpLedger::random_accesses`]).
//! * [`KnnMode::Nra`] (`VFPS-SM-NRA`): No-Random-Access — sorted streams
//!   only, zero random accesses, deeper scan; only the `k` winners are
//!   ever encrypted.
//!
//! This module is the *logical* engine: it executes the exact protocol data
//! flow and bills every operation and byte to an [`OpLedger`], optionally
//! scaled to the paper's instance counts. Queries are independent, so
//! [`FedKnn::query_batch`] runs them on a [`vfps_par::Pool`] with per-query
//! ledgers merged back in query order — bit-identical to the sequential
//! loop at any thread count. The thread-per-node implementation with real
//! HE lives in [`crate::protocol`]; tests assert the two produce identical
//! neighbor sets.

use std::collections::HashMap;

use vfps_data::VerticalPartition;
use vfps_ml::linalg::{squared_distance, Matrix};
use vfps_net::cost::OpLedger;
use vfps_topk::stream::StreamingFagin;

/// Which federated KNN protocol to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KnnMode {
    /// Encrypt all `N` partial distances per query (the baseline).
    Base,
    /// Fagin's algorithm over streamed sub-rankings, then encrypt only the
    /// candidates.
    Fagin,
    /// The Threshold Algorithm: each surfaced instance is random-accessed
    /// (one encrypted point query per party) immediately; stops earlier
    /// than Fagin but pays `P` encryptions per surfaced candidate. The
    /// paper notes VFPS-SM "also supports other top-k query algorithms" —
    /// this is that support.
    Threshold,
    /// No-Random-Access: maintains best/worst-case score bounds from the
    /// sorted streams alone and stops when no unseen object can beat the
    /// k-th worst case — zero random accesses (the ledger counter this
    /// mode exists to minimize), at the price of a deeper sorted scan.
    /// Guarantees the correct top-k *set*; exact ordering is recovered by
    /// the leader tail, as for Fagin.
    Nra,
}

/// Federated KNN configuration.
#[derive(Clone, Copy, Debug)]
pub struct FedKnnConfig {
    /// Number of nearest neighbors.
    pub k: usize,
    /// Protocol variant.
    pub mode: KnnMode,
    /// Mini-batch size `b` for the Fagin streaming phase.
    pub batch: usize,
    /// Instance-count multiplier for cost billing: 1.0 bills at simulation
    /// scale; `paper_instances / sim_instances` bills at the paper's scale.
    pub cost_scale: f64,
}

impl Default for FedKnnConfig {
    fn default() -> Self {
        FedKnnConfig { k: 10, mode: KnnMode::Fagin, batch: 100, cost_scale: 1.0 }
    }
}

/// How Fagin's scan depth and candidate count extrapolate from the
/// simulated instance count to the paper's: Fagin's expected sequential
/// cost on P independent rankings is `Θ(k^{1/P} · N^{(P-1)/P})`
/// (Fagin 1996), i.e. *sublinear* in N. Billing the candidate phase with
/// a linear multiplier would erase the paper's 24–46× Fig. 9 reductions,
/// so instance-count scaling `s` is applied as `s^{(P-1)/P}` to all
/// Fagin-phase quantities.
#[must_use]
pub fn fagin_cost_scale(cost_scale: f64, parties: usize) -> f64 {
    let p = parties.max(1) as f64;
    cost_scale.max(1e-12).powf((p - 1.0) / p)
}

/// A scheduled participant failure for [`FedKnn::query_batch_resilient`]:
/// party `slot` (an index into the engine's party list) drops out of the
/// consortium immediately before query `at_query` of the batch executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Dropout {
    /// Batch position before which the party disappears (`0` = before the
    /// first query; `>= batch len` = after the batch completes).
    pub at_query: usize,
    /// Index of the dying party within the engine's party list.
    pub slot: usize,
}

/// Outcome of a dropout-degraded batch run.
#[derive(Clone, Debug)]
pub struct ResilientBatch {
    /// Per query (in batch order): the outcome plus the slots — indices
    /// into the engine's original party list — that were still alive when
    /// the query ran. `outcome.d_t[i]` belongs to original slot
    /// `alive[i]`.
    pub outcomes: Vec<(QueryOutcome, Vec<usize>)>,
    /// Slots still alive after the whole batch.
    pub survivors: Vec<usize>,
    /// The dropout events that actually took effect, in schedule order.
    pub dropouts: Vec<Dropout>,
}

/// Result of one federated KNN query.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryOutcome {
    /// Absolute row ids of the k nearest database instances, nearest first.
    pub topk_rows: Vec<usize>,
    /// Per-party sums of partial distances over the top-k set (`d_T^p`),
    /// indexed like the engine's party list.
    pub d_t: Vec<f64>,
    /// Total `d_T = Σ_p d_T^p`.
    pub d_t_total: f64,
    /// Instances whose partial distances were encrypted for this query
    /// (at simulation scale — the Fig. 9 metric).
    pub candidates: usize,
}

impl vfps_net::wire::Wire for QueryOutcome {
    fn encode(&self, out: &mut Vec<u8>) {
        self.topk_rows.encode(out);
        self.d_t.encode(out);
        self.d_t_total.encode(out);
        self.candidates.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, vfps_net::wire::WireError> {
        Ok(QueryOutcome {
            topk_rows: Vec::<usize>::decode(input)?,
            d_t: Vec::<f64>::decode(input)?,
            d_t_total: f64::decode(input)?,
            candidates: usize::decode(input)?,
        })
    }

    fn encoded_len(&self) -> usize {
        self.topk_rows.encoded_len() + self.d_t.encoded_len() + 8 + 8
    }
}

/// The logical federated KNN engine for a fixed database and consortium.
pub struct FedKnn<'a> {
    x: &'a Matrix,
    partition: &'a VerticalPartition,
    parties: Vec<usize>,
    /// Per party: the `n_db × F_p` local feature view over database rows.
    db_views: Vec<Matrix>,
    db_rows: Vec<usize>,
    row_pos: HashMap<usize, usize>,
    cfg: FedKnnConfig,
}

impl<'a> FedKnn<'a> {
    /// Builds an engine over `db_rows` of `x`, vertically partitioned, with
    /// the given consortium `parties`.
    ///
    /// # Panics
    /// Panics on an empty database or empty consortium.
    #[must_use]
    pub fn new(
        x: &'a Matrix,
        partition: &'a VerticalPartition,
        parties: &[usize],
        db_rows: &[usize],
        cfg: FedKnnConfig,
    ) -> Self {
        assert!(!db_rows.is_empty(), "empty database");
        assert!(!parties.is_empty(), "empty consortium");
        let db = x.select_rows(db_rows);
        let db_views = parties.iter().map(|&p| partition.local_view(&db, p)).collect();
        let row_pos = db_rows.iter().enumerate().map(|(i, &r)| (r, i)).collect();
        FedKnn {
            x,
            partition,
            parties: parties.to_vec(),
            db_views,
            db_rows: db_rows.to_vec(),
            row_pos,
            cfg,
        }
    }

    /// Database size.
    #[must_use]
    pub fn db_len(&self) -> usize {
        self.db_rows.len()
    }

    /// Number of participating parties.
    #[must_use]
    pub fn parties(&self) -> usize {
        self.parties.len()
    }

    /// Per-party partial distances from row `query_row` of the full matrix
    /// to every database instance. The query's own database entry (if
    /// present) is excluded by giving it an infinite distance.
    fn partial_distances(&self, query_row: usize) -> Vec<Vec<f64>> {
        let self_pos = self.row_pos.get(&query_row).copied();
        self.parties
            .iter()
            .enumerate()
            .map(|(slot, &party)| {
                let cols = self.partition.columns(party);
                let q: Vec<f64> = cols.iter().map(|&c| self.x.get(query_row, c)).collect();
                let view = &self.db_views[slot];
                (0..view.rows())
                    .map(|i| {
                        if Some(i) == self_pos {
                            f64::INFINITY
                        } else {
                            squared_distance(&q, view.row(i))
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Runs one federated KNN query, billing `ledger`.
    ///
    /// # Panics
    /// Panics if `query_row` is out of range of the underlying matrix.
    pub fn query(&self, query_row: usize, ledger: &mut OpLedger) -> QueryOutcome {
        vfps_obs::span!("fed_knn.query");
        let n = self.db_len();
        let p = self.parties() as u64;
        let scale = self.cfg.cost_scale;
        let bill = |count: usize| -> u64 { (count as f64 * scale).round() as u64 };

        let partials =
            vfps_obs::time_us("fed_knn.local_distances_us", || self.partial_distances(query_row));
        // Every party computes N partial distances locally, in parallel.
        ledger.record_dist(bill(n), p);

        let (candidate_positions, candidates) = match self.cfg.mode {
            KnnMode::Base => {
                vfps_obs::span!("fed_knn.base.encrypt_all");
                // Everyone encrypts everything. The obs counter mirrors the
                // ledger's `enc.work` accounting (per-party x parties).
                vfps_obs::counter_add("fed_knn.base.enc_instances", bill(n) * p);
                ledger.record_enc(bill(n), p);
                let cipher = vfps_net::cost::CostModel::default().cipher_bytes as u64;
                ledger.record_traffic(p * bill(n) * cipher, p);
                ledger.record_round();
                // Server sums P encrypted vectors of length N.
                ledger.record_he_add((p - 1) * bill(n));
                ledger.record_traffic(bill(n) * cipher, 1);
                ledger.record_round();
                // Leader decrypts all N complete distances.
                ledger.record_dec(bill(n));
                ((0..n).collect::<Vec<_>>(), n)
            }
            KnnMode::Threshold => {
                vfps_obs::span!("fed_knn.ta.scan");
                // TA interleaves sorted and random access; in the federated
                // setting every random access is an encrypted point query
                // answered by all P parties. Run the plaintext TA to learn
                // the true depth/candidate counts, then bill the encrypted
                // equivalents (sublinear extrapolation as for Fagin).
                let fscale = fagin_cost_scale(scale, self.parties());
                let fbill = |count: usize| -> u64 { (count as f64 * fscale).round() as u64 };
                let scaled_n = bill(n).max(2);
                let sort_ops = (scaled_n as f64 * (scaled_n as f64).log2()).round() as u64;
                ledger.record_plain(sort_ops, p);

                let mut lists: Vec<vfps_topk::RankedList> = partials
                    .iter()
                    .map(|d| {
                        vfps_topk::RankedList::from_scores(
                            d.clone(),
                            vfps_topk::Direction::Ascending,
                        )
                    })
                    .collect();
                let out = vfps_topk::threshold::threshold_topk(&mut lists, self.cfg.k.min(n));
                let c = out.candidates_examined;
                let depth = out.depth;

                // Sequential id streaming up to the stop depth.
                let scaled_depth = fbill(depth).max(1);
                let rounds = scaled_depth.div_ceil(self.cfg.batch as u64).max(1);
                let model = vfps_net::cost::CostModel::default();
                for _ in 0..rounds {
                    ledger.record_round();
                }
                ledger.record_traffic(fbill(depth) * p * model.id_bytes as u64, rounds * p);

                // Random-access phase: every surfaced candidate is an
                // encrypted point query across all P parties.
                vfps_obs::counter_add("fed_knn.ta.enc_instances", fbill(c) * p);
                vfps_obs::counter_add("fed_knn.ta.candidates", c as u64);
                ledger.record_random_access(fbill(c) * p);
                ledger.record_enc(fbill(c), p);
                ledger.record_traffic(p * fbill(c) * model.cipher_bytes as u64, fbill(c).max(1));
                ledger.record_he_add((p - 1) * fbill(c));
                ledger.record_traffic(fbill(c) * model.cipher_bytes as u64, 1);
                ledger.record_round();
                ledger.record_dec(fbill(c));
                // TA already identified the exact top-k among the scored
                // candidates, so the shared tail only needs those.
                let cands: Vec<usize> = out.topk.iter().map(|e| e.0).collect();
                (cands, c)
            }
            KnnMode::Fagin => {
                // Fagin-phase quantities scale sublinearly with N; see
                // `fagin_cost_scale`.
                let fscale = fagin_cost_scale(scale, self.parties());
                let fbill = |count: usize| -> u64 { (count as f64 * fscale).round() as u64 };
                // Local sorts (plaintext, on each participant in parallel).
                let scaled_n = bill(n).max(2);
                let sort_ops = (scaled_n as f64 * (scaled_n as f64).log2()).round() as u64;
                ledger.record_plain(sort_ops, p);

                // Streaming phase: mini-batches of pseudo IDs, round-robin.
                let stream_span = vfps_obs::span("fed_knn.fagin.stream");
                let rankings: Vec<Vec<usize>> = partials
                    .iter()
                    .map(|d| {
                        let mut idx: Vec<usize> = (0..n).collect();
                        idx.sort_by(|&a, &b| d[a].total_cmp(&d[b]).then(a.cmp(&b)));
                        idx
                    })
                    .collect();
                let mut sf = StreamingFagin::new(self.parties(), n, self.cfg.k.min(n));
                let mut pos = vec![0usize; self.parties()];
                'stream: while !sf.is_complete() {
                    for (party, ranking) in rankings.iter().enumerate() {
                        let end = (pos[party] + self.cfg.batch).min(n);
                        if pos[party] < end {
                            sf.feed(party, &ranking[pos[party]..end]);
                            pos[party] = end;
                        }
                        if sf.is_complete() {
                            break 'stream;
                        }
                    }
                    if pos.iter().all(|&x| x >= n) {
                        break;
                    }
                }
                drop(stream_span);
                let depth = pos.iter().copied().max().unwrap_or(0);
                let scaled_depth = fbill(depth).max(1);
                let rounds = scaled_depth.div_ceil(self.cfg.batch as u64).max(1);
                let id_bytes = vfps_net::cost::CostModel::default().id_bytes as u64;
                for _ in 0..rounds {
                    ledger.record_round();
                }
                ledger.record_traffic(fbill(sf.ids_received()) * id_bytes, rounds * p);

                // Candidate phase: encrypt only surfaced instances. The obs
                // counter uses the same sublinear `fbill` scaling as the
                // ledger, so Fagin-vs-Base comparisons in the exported
                // metrics reproduce the ledger's accounting exactly.
                vfps_obs::span!("fed_knn.fagin.encrypt_candidates");
                let cands = sf.candidates().to_vec();
                let c = cands.len();
                vfps_obs::counter_add("fed_knn.fagin.enc_instances", fbill(c) * p);
                vfps_obs::counter_add("fed_knn.fagin.candidates", c as u64);
                vfps_obs::counter_add("fed_knn.fagin.depth", depth as u64);
                // Fagin's phase 2 random-accesses every surfaced candidate
                // in every party's list (the encrypted point fetches the
                // candidate encryption round answers).
                ledger.record_random_access(fbill(c) * p);
                ledger.record_enc(fbill(c), p);
                let cipher = vfps_net::cost::CostModel::default().cipher_bytes as u64;
                ledger.record_traffic(p * fbill(c) * cipher, p);
                ledger.record_round();
                ledger.record_he_add((p - 1) * fbill(c));
                ledger.record_traffic(fbill(c) * cipher, 1);
                ledger.record_round();
                ledger.record_dec(fbill(c));
                (cands, c)
            }
            KnnMode::Nra => {
                vfps_obs::span!("fed_knn.nra.scan");
                // NRA never leaves the sorted streams: the server keeps
                // best/worst-case bounds per surfaced id and stops once no
                // unseen object can beat the k-th worst case. Run the
                // plaintext NRA to learn the true stop depth and top-k
                // set, then bill the encrypted equivalents (sublinear
                // extrapolation as for Fagin).
                let fscale = fagin_cost_scale(scale, self.parties());
                let fbill = |count: usize| -> u64 { (count as f64 * fscale).round() as u64 };
                let scaled_n = bill(n).max(2);
                let sort_ops = (scaled_n as f64 * (scaled_n as f64).log2()).round() as u64;
                ledger.record_plain(sort_ops, p);

                let mut lists: Vec<vfps_topk::RankedList> = partials
                    .iter()
                    .map(|d| {
                        vfps_topk::RankedList::from_scores(
                            d.clone(),
                            vfps_topk::Direction::Ascending,
                        )
                    })
                    .collect();
                let out = vfps_topk::nra::nra_topk(&mut lists, self.cfg.k.min(n));
                debug_assert_eq!(out.random_accesses, 0, "NRA made a random access");
                let depth = out.depth;

                // Sorted-access streaming of (pseudo id, partial score)
                // pairs up to the stop depth — NRA needs the scores, not
                // just the ids, to maintain its bounds — plus the bound
                // bookkeeping at the server.
                let scaled_depth = fbill(depth).max(1);
                let rounds = scaled_depth.div_ceil(self.cfg.batch as u64).max(1);
                let model = vfps_net::cost::CostModel::default();
                for _ in 0..rounds {
                    ledger.record_round();
                }
                ledger.record_traffic(
                    fbill(depth) * p * (model.id_bytes as u64 + model.scalar_bytes as u64),
                    rounds * p,
                );
                ledger.record_plain(fbill(depth) * p, 1);

                // Exact-distance pass over the k winners only: NRA already
                // guarantees the correct top-k *set*, so only those
                // instances are ever encrypted — and zero random accesses
                // are recorded, which is the mode's whole selling point.
                let cands: Vec<usize> = out.topk.iter().map(|e| e.0).collect();
                let c = cands.len();
                vfps_obs::counter_add("fed_knn.nra.enc_instances", fbill(c) * p);
                vfps_obs::counter_add("fed_knn.nra.candidates", out.candidates_examined as u64);
                vfps_obs::counter_add("fed_knn.nra.depth", depth as u64);
                ledger.record_enc(fbill(c), p);
                let cipher = model.cipher_bytes as u64;
                ledger.record_traffic(p * fbill(c) * cipher, p);
                ledger.record_round();
                ledger.record_he_add((p - 1) * fbill(c));
                ledger.record_traffic(fbill(c) * cipher, 1);
                ledger.record_round();
                ledger.record_dec(fbill(c));
                (cands, c)
            }
        };

        // Leader: complete distances of candidates, take k smallest.
        vfps_obs::span!("fed_knn.leader_tail");
        let mut complete: Vec<(usize, f64)> = candidate_positions
            .iter()
            .map(|&i| (i, partials.iter().map(|d| d[i]).sum::<f64>()))
            .collect();
        ledger.record_plain(bill(complete.len()), 1);
        complete.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        // The query's own database entry carries an infinite distance; for
        // k >= N it would otherwise slip into the top-k.
        complete.retain(|e| e.1.is_finite());
        let k = self.cfg.k.min(complete.len());
        let topk_pos: Vec<usize> = complete[..k].iter().map(|e| e.0).collect();

        // Leader → participants: the top-k ids; participants return d_T^p.
        let model = vfps_net::cost::CostModel::default();
        ledger.record_traffic(p * k as u64 * model.id_bytes as u64, p);
        ledger.record_round();
        ledger.record_plain(k as u64, p);
        ledger.record_traffic(p * model.scalar_bytes as u64, p);
        ledger.record_round();

        let d_t: Vec<f64> = partials.iter().map(|d| topk_pos.iter().map(|&i| d[i]).sum()).collect();
        let d_t_total = d_t.iter().sum();

        QueryOutcome {
            topk_rows: topk_pos.iter().map(|&i| self.db_rows[i]).collect(),
            d_t,
            d_t_total,
            candidates,
        }
    }

    /// Runs a batch of independent queries on `pool`, returning outcomes in
    /// query order.
    ///
    /// Each query bills a private [`OpLedger`]; the per-query ledgers are
    /// merged into `ledger` in query order. Ledger counters are integer
    /// sums, so the merged totals are byte-exact equal to what the
    /// sequential `for q in rows { self.query(q, ledger) }` loop records,
    /// at any thread count.
    ///
    /// # Panics
    /// Panics if any query row is out of range of the underlying matrix.
    pub fn query_batch(
        &self,
        query_rows: &[usize],
        pool: &vfps_par::Pool,
        ledger: &mut OpLedger,
    ) -> Vec<QueryOutcome> {
        let per_query = pool.par_map_indexed(query_rows, |_, &q| {
            let mut local = OpLedger::default();
            let outcome = self.query(q, &mut local);
            (outcome, local)
        });
        let mut outcomes = Vec::with_capacity(per_query.len());
        for (outcome, local) in per_query {
            ledger.merge(&local);
            outcomes.push(outcome);
        }
        outcomes
    }

    /// As [`FedKnn::query_batch`], but with a warm-start memo: queries whose
    /// row appears in `memo` are served from it verbatim — no local
    /// distances, no encryption, no traffic, nothing billed to `ledger` —
    /// while the remaining queries run the real protocol on `pool`.
    /// Outcomes come back in query order regardless of the hit pattern.
    ///
    /// Each served query increments the `fed_knn.memo.served` obs counter;
    /// this is the engine-level hook behind the selection-artifact cache
    /// (DESIGN.md §9). With an empty memo this is exactly
    /// [`FedKnn::query_batch`]: bit-identical outcomes and billing.
    ///
    /// # Panics
    /// Panics if any non-memoized query row is out of range of the
    /// underlying matrix.
    pub fn query_batch_memo(
        &self,
        query_rows: &[usize],
        memo: &HashMap<usize, QueryOutcome>,
        pool: &vfps_par::Pool,
        ledger: &mut OpLedger,
    ) -> Vec<QueryOutcome> {
        if memo.is_empty() {
            return self.query_batch(query_rows, pool, ledger);
        }
        let missing: Vec<usize> =
            query_rows.iter().copied().filter(|q| !memo.contains_key(q)).collect();
        let mut computed = self.query_batch(&missing, pool, ledger).into_iter();
        let mut served = 0u64;
        let outcomes = query_rows
            .iter()
            .map(|q| match memo.get(q) {
                Some(hit) => {
                    served += 1;
                    hit.clone()
                }
                None => computed.next().expect("one computed outcome per missing query"),
            })
            .collect();
        vfps_obs::counter_add("fed_knn.memo.served", served);
        outcomes
    }

    /// As [`FedKnn::query_batch`], but tolerant of a deterministic dropout
    /// schedule: at each [`Dropout`] boundary the dead party leaves the
    /// consortium and the remaining queries run over the survivors only
    /// (shrunk similarity vectors, reduced encryption billing — the
    /// degraded-mode semantics of DESIGN.md §7).
    ///
    /// Each effective dropout bills one [`OpLedger::record_dropout`].
    /// Dropouts that would empty the consortium are ignored (the last
    /// survivor always answers), as are duplicate deaths of the same slot.
    /// With an empty schedule this is exactly [`FedKnn::query_batch`]:
    /// bit-identical outcomes and billing.
    ///
    /// # Panics
    /// Panics if any query row is out of range, or a `slot` is out of range
    /// of the party list.
    pub fn query_batch_resilient(
        &self,
        query_rows: &[usize],
        dropouts: &[Dropout],
        pool: &vfps_par::Pool,
        ledger: &mut OpLedger,
    ) -> ResilientBatch {
        if dropouts.is_empty() {
            let all: Vec<usize> = (0..self.parties()).collect();
            let outcomes = self
                .query_batch(query_rows, pool, ledger)
                .into_iter()
                .map(|o| (o, all.clone()))
                .collect();
            return ResilientBatch { outcomes, survivors: all, dropouts: Vec::new() };
        }
        let mut schedule: Vec<Dropout> = dropouts.to_vec();
        schedule.sort_by_key(|d| (d.at_query, d.slot));
        for d in &schedule {
            assert!(d.slot < self.parties(), "dropout slot {} out of range", d.slot);
        }

        let mut alive: Vec<usize> = (0..self.parties()).collect();
        let mut applied = Vec::new();
        let mut outcomes = Vec::with_capacity(query_rows.len());
        let mut next_query = 0usize;
        let mut schedule = schedule.into_iter().peekable();
        // The engine over the current survivor set; `None` means "all
        // parties alive" and the original engine is used directly, so the
        // pre-dropout prefix is bit-identical to the fault-free run.
        let mut reduced: Option<FedKnn<'_>> = None;

        loop {
            // Segment end: the next dropout boundary (or end of batch).
            let seg_end =
                schedule.peek().map_or(query_rows.len(), |d| d.at_query.min(query_rows.len()));
            if next_query < seg_end {
                let engine = reduced.as_ref().unwrap_or(self);
                let seg = engine.query_batch(&query_rows[next_query..seg_end], pool, ledger);
                outcomes.extend(seg.into_iter().map(|o| (o, alive.clone())));
                next_query = seg_end;
            }
            let Some(d) = schedule.next() else { break };
            if alive.len() > 1 && alive.contains(&d.slot) {
                alive.retain(|&s| s != d.slot);
                applied.push(d);
                vfps_obs::counter_add("fed_knn.dropouts", 1);
                ledger.record_dropout();
                let parties: Vec<usize> = alive.iter().map(|&s| self.parties[s]).collect();
                reduced =
                    Some(FedKnn::new(self.x, self.partition, &parties, &self.db_rows, self.cfg));
            }
        }

        ResilientBatch { outcomes, survivors: alive, dropouts: applied }
    }

    /// Classifies `query_row` by majority vote over its federated top-k
    /// neighbors' labels (ties → smaller class id).
    pub fn classify(
        &self,
        query_row: usize,
        labels: &[usize],
        n_classes: usize,
        ledger: &mut OpLedger,
    ) -> usize {
        let outcome = self.query(query_row, ledger);
        let mut votes = vec![0usize; n_classes];
        for &row in &outcome.topk_rows {
            votes[labels[row]] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(c, _)| c)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfps_ml::knn::KnnClassifier;

    fn toy() -> (Matrix, VerticalPartition) {
        // 8 rows, 4 features, 2 parties of 2 features each.
        let x = Matrix::from_rows(&[
            vec![0.0, 0.0, 0.0, 0.0],
            vec![0.1, 0.0, 0.1, 0.0],
            vec![0.0, 0.2, 0.0, 0.1],
            vec![5.0, 5.0, 5.0, 5.0],
            vec![5.1, 5.0, 4.9, 5.0],
            vec![5.0, 5.2, 5.0, 5.1],
            vec![2.5, 2.5, 2.5, 2.5],
            vec![9.0, 9.0, 9.0, 9.0],
        ]);
        (x, VerticalPartition::even(4, 2))
    }

    #[test]
    fn threshold_mode_matches_base() {
        let (x, part) = toy();
        let db: Vec<usize> = (0..8).collect();
        for q in 0..8usize {
            let mut lb = OpLedger::default();
            let mut lt = OpLedger::default();
            let base = FedKnn::new(
                &x,
                &part,
                &[0, 1],
                &db,
                FedKnnConfig { k: 3, mode: KnnMode::Base, batch: 2, cost_scale: 1.0 },
            );
            let ta = FedKnn::new(
                &x,
                &part,
                &[0, 1],
                &db,
                FedKnnConfig { k: 3, mode: KnnMode::Threshold, batch: 2, cost_scale: 1.0 },
            );
            let ob = base.query(q, &mut lb);
            let ot = ta.query(q, &mut lt);
            let mut a = ob.topk_rows.clone();
            let mut b = ot.topk_rows.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "query {q}");
            assert!(
                lt.enc.work <= lb.enc.work,
                "TA must not encrypt more than base: {} vs {}",
                lt.enc.work,
                lb.enc.work
            );
        }
    }

    #[test]
    fn nra_mode_matches_base_with_zero_random_accesses() {
        let (x, part) = toy();
        let db: Vec<usize> = (0..8).collect();
        for q in 0..8usize {
            let mut lb = OpLedger::default();
            let mut ln = OpLedger::default();
            let mut lt = OpLedger::default();
            let mk = |mode| FedKnnConfig { k: 3, mode, batch: 2, cost_scale: 1.0 };
            let base = FedKnn::new(&x, &part, &[0, 1], &db, mk(KnnMode::Base));
            let nra = FedKnn::new(&x, &part, &[0, 1], &db, mk(KnnMode::Nra));
            let ta = FedKnn::new(&x, &part, &[0, 1], &db, mk(KnnMode::Threshold));
            let ob = base.query(q, &mut lb);
            let on = nra.query(q, &mut ln);
            ta.query(q, &mut lt);
            let mut a = ob.topk_rows.clone();
            let mut b = on.topk_rows.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "query {q}");
            assert_eq!(ln.random_accesses, 0, "NRA made a random access");
            assert!(lt.random_accesses > 0, "TA must record its random accesses");
            assert_eq!(lb.random_accesses, 0, "Base is a scan, not random access");
            assert!(
                ln.enc.work <= lb.enc.work,
                "NRA must not encrypt more than base: {} vs {}",
                ln.enc.work,
                lb.enc.work
            );
        }
    }

    #[test]
    fn base_and_fagin_agree_with_centralized_knn() {
        let (x, part) = toy();
        let db: Vec<usize> = (0..8).collect();
        for mode in [KnnMode::Base, KnnMode::Fagin] {
            let cfg = FedKnnConfig { k: 3, mode, batch: 2, cost_scale: 1.0 };
            let engine = FedKnn::new(&x, &part, &[0, 1], &db, cfg);
            let mut ledger = OpLedger::default();
            let out = engine.query(0, &mut ledger);
            // Centralized oracle (excluding the query row itself).
            let oracle = KnnClassifier::fit(3, x.select_rows(&db[1..]), vec![0; 7], 1);
            let mut expect: Vec<usize> = oracle
                .nearest(x.row(0))
                .iter()
                .map(|&(i, _)| i + 1) // shifted by the removed row 0
                .collect();
            expect.sort_unstable();
            let mut got = out.topk_rows.clone();
            got.sort_unstable();
            assert_eq!(got, expect, "{mode:?}");
        }
    }

    #[test]
    fn fagin_encrypts_fewer_candidates_than_base() {
        let (x, part) = toy();
        let db: Vec<usize> = (0..8).collect();
        let mut base_ledger = OpLedger::default();
        let mut fagin_ledger = OpLedger::default();
        let base = FedKnn::new(
            &x,
            &part,
            &[0, 1],
            &db,
            FedKnnConfig { k: 2, mode: KnnMode::Base, batch: 1, cost_scale: 1.0 },
        );
        let fagin = FedKnn::new(
            &x,
            &part,
            &[0, 1],
            &db,
            FedKnnConfig { k: 2, mode: KnnMode::Fagin, batch: 1, cost_scale: 1.0 },
        );
        let ob = base.query(0, &mut base_ledger);
        let of = fagin.query(0, &mut fagin_ledger);
        assert_eq!(ob.topk_rows, of.topk_rows);
        assert!(of.candidates < ob.candidates, "{} vs {}", of.candidates, ob.candidates);
        assert!(fagin_ledger.enc.work < base_ledger.enc.work);
    }

    #[test]
    fn self_row_is_excluded_from_neighbors() {
        let (x, part) = toy();
        let db: Vec<usize> = (0..8).collect();
        let engine = FedKnn::new(&x, &part, &[0, 1], &db, FedKnnConfig::default());
        let mut ledger = OpLedger::default();
        let out = engine.query(3, &mut ledger);
        assert!(!out.topk_rows.contains(&3), "query must not be its own neighbor");
    }

    #[test]
    fn queries_not_in_db_are_fine() {
        let (x, part) = toy();
        let db: Vec<usize> = (0..6).collect(); // rows 6, 7 are external queries
        let engine = FedKnn::new(
            &x,
            &part,
            &[0, 1],
            &db,
            FedKnnConfig { k: 2, mode: KnnMode::Fagin, batch: 2, cost_scale: 1.0 },
        );
        let mut ledger = OpLedger::default();
        let out = engine.query(7, &mut ledger);
        // Row 7 = all 9s: nearest are the 5-cluster rows.
        assert!(out.topk_rows.iter().all(|&r| (3..6).contains(&r)));
    }

    #[test]
    fn d_t_sums_are_consistent() {
        let (x, part) = toy();
        let db: Vec<usize> = (0..8).collect();
        let engine = FedKnn::new(&x, &part, &[0, 1], &db, FedKnnConfig::default());
        let mut ledger = OpLedger::default();
        let out = engine.query(1, &mut ledger);
        assert_eq!(out.d_t.len(), 2);
        assert!((out.d_t.iter().sum::<f64>() - out.d_t_total).abs() < 1e-9);
        assert!(out.d_t.iter().all(|&d| d >= 0.0));
    }

    #[test]
    fn fagin_cost_scale_is_sublinear() {
        // s^{(P-1)/P}: grows with s but strictly below linear for P >= 2.
        for p in [2usize, 4, 8] {
            let s1 = fagin_cost_scale(1.0, p);
            assert!((s1 - 1.0).abs() < 1e-12, "identity at scale 1");
            let s100 = fagin_cost_scale(100.0, p);
            assert!(s100 > 1.0 && s100 < 100.0, "P={p}: {s100}");
        }
        // More parties ⇒ closer to linear (exponent (P-1)/P → 1).
        assert!(fagin_cost_scale(100.0, 8) > fagin_cost_scale(100.0, 2));
        // Single party: depth is k, independent of N — exponent 0.
        assert!((fagin_cost_scale(100.0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fagin_billing_grows_sublinearly_with_scale() {
        let (x, part) = toy();
        let db: Vec<usize> = (0..8).collect();
        let mk = |scale: f64| {
            let e = FedKnn::new(
                &x,
                &part,
                &[0, 1],
                &db,
                FedKnnConfig { k: 2, mode: KnnMode::Fagin, batch: 2, cost_scale: scale },
            );
            let mut l = OpLedger::default();
            let _ = e.query(0, &mut l);
            l.enc.work
        };
        let at1 = mk(1.0);
        let at100 = mk(100.0);
        assert!(at100 > at1, "billing must grow with scale");
        assert!(
            at100 < 100 * at1,
            "fagin billing must be sublinear: {at100} vs linear {}",
            100 * at1
        );
    }

    #[test]
    fn cost_scale_multiplies_billing() {
        let (x, part) = toy();
        let db: Vec<usize> = (0..8).collect();
        let mut l1 = OpLedger::default();
        let mut l10 = OpLedger::default();
        let e1 = FedKnn::new(
            &x,
            &part,
            &[0, 1],
            &db,
            FedKnnConfig { k: 2, mode: KnnMode::Base, batch: 1, cost_scale: 1.0 },
        );
        let e10 = FedKnn::new(
            &x,
            &part,
            &[0, 1],
            &db,
            FedKnnConfig { k: 2, mode: KnnMode::Base, batch: 1, cost_scale: 10.0 },
        );
        let o1 = e1.query(0, &mut l1);
        let o10 = e10.query(0, &mut l10);
        assert_eq!(o1.topk_rows, o10.topk_rows, "scale must not change results");
        assert_eq!(l10.enc.work, 10 * l1.enc.work);
    }

    #[test]
    fn classify_votes_over_neighbors() {
        let (x, part) = toy();
        let labels = vec![0, 0, 0, 1, 1, 1, 0, 1];
        let db: Vec<usize> = (0..8).collect();
        let engine = FedKnn::new(
            &x,
            &part,
            &[0, 1],
            &db,
            FedKnnConfig { k: 3, mode: KnnMode::Fagin, batch: 2, cost_scale: 1.0 },
        );
        let mut ledger = OpLedger::default();
        assert_eq!(engine.classify(0, &labels, 2, &mut ledger), 0);
        assert_eq!(engine.classify(4, &labels, 2, &mut ledger), 1);
    }

    #[test]
    fn query_batch_matches_sequential_queries_and_billing() {
        let (x, part) = toy();
        let db: Vec<usize> = (0..8).collect();
        let queries: Vec<usize> = (0..8).collect();
        for mode in [KnnMode::Base, KnnMode::Fagin, KnnMode::Threshold, KnnMode::Nra] {
            let cfg = FedKnnConfig { k: 3, mode, batch: 2, cost_scale: 1.0 };
            let engine = FedKnn::new(&x, &part, &[0, 1], &db, cfg);

            let mut seq_ledger = OpLedger::default();
            let seq: Vec<QueryOutcome> =
                queries.iter().map(|&q| engine.query(q, &mut seq_ledger)).collect();

            for threads in [1usize, 2, 4] {
                let pool = vfps_par::Pool::with_threads(threads);
                let mut par_ledger = OpLedger::default();
                let par = engine.query_batch(&queries, &pool, &mut par_ledger);
                assert_eq!(par_ledger, seq_ledger, "{mode:?} threads={threads}");
                for (a, b) in seq.iter().zip(&par) {
                    assert_eq!(a.topk_rows, b.topk_rows, "{mode:?}");
                    assert_eq!(a.candidates, b.candidates, "{mode:?}");
                    assert_eq!(a.d_t_total.to_bits(), b.d_t_total.to_bits(), "{mode:?}");
                    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                    assert_eq!(bits(&a.d_t), bits(&b.d_t), "{mode:?}");
                }
            }
        }
    }

    #[test]
    fn memo_batch_serves_hits_free_and_computes_misses() {
        let (x, part) = toy();
        let db: Vec<usize> = (0..8).collect();
        let queries: Vec<usize> = (0..8).collect();
        let engine = FedKnn::new(
            &x,
            &part,
            &[0, 1],
            &db,
            FedKnnConfig { k: 3, mode: KnnMode::Fagin, batch: 2, cost_scale: 1.0 },
        );
        let pool = vfps_par::Pool::with_threads(2);

        let mut cold_ledger = OpLedger::default();
        let cold = engine.query_batch(&queries, &pool, &mut cold_ledger);

        // Full memo: every query served, nothing billed.
        let memo: HashMap<usize, QueryOutcome> =
            queries.iter().copied().zip(cold.iter().cloned()).collect();
        let mut warm_ledger = OpLedger::default();
        let warm = engine.query_batch_memo(&queries, &memo, &pool, &mut warm_ledger);
        assert_eq!(warm_ledger, OpLedger::default(), "full memo bills nothing");
        assert_eq!(warm, cold);

        // Partial memo: only the misses are billed, order is preserved.
        let partial: HashMap<usize, QueryOutcome> =
            [0usize, 3, 6].iter().map(|&q| (q, cold[q].clone())).collect();
        let mut mixed_ledger = OpLedger::default();
        let mixed = engine.query_batch_memo(&queries, &partial, &pool, &mut mixed_ledger);
        assert_eq!(mixed, cold);
        let mut miss_ledger = OpLedger::default();
        let _ = engine.query_batch(&[1, 2, 4, 5, 7], &pool, &mut miss_ledger);
        assert_eq!(mixed_ledger, miss_ledger, "hits must not be billed");

        // Empty memo degenerates to query_batch exactly.
        let mut empty_ledger = OpLedger::default();
        let none = engine.query_batch_memo(&queries, &HashMap::new(), &pool, &mut empty_ledger);
        assert_eq!(none, cold);
        assert_eq!(empty_ledger, cold_ledger);
    }

    #[test]
    fn query_outcome_roundtrips_through_wire() {
        use vfps_net::wire::Wire;
        let (x, part) = toy();
        let db: Vec<usize> = (0..8).collect();
        let engine = FedKnn::new(&x, &part, &[0, 1], &db, FedKnnConfig::default());
        let mut ledger = OpLedger::default();
        for q in 0..8 {
            let out = engine.query(q, &mut ledger);
            let back = QueryOutcome::from_bytes(&out.to_bytes()).unwrap();
            assert_eq!(back.topk_rows, out.topk_rows);
            assert_eq!(back.candidates, out.candidates);
            assert_eq!(back.d_t_total.to_bits(), out.d_t_total.to_bits());
            let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&back.d_t), bits(&out.d_t));
        }
    }

    #[test]
    fn resilient_batch_with_empty_schedule_is_bit_identical() {
        let (x, part) = toy();
        let db: Vec<usize> = (0..8).collect();
        let queries: Vec<usize> = (0..8).collect();
        let engine = FedKnn::new(
            &x,
            &part,
            &[0, 1],
            &db,
            FedKnnConfig { k: 3, mode: KnnMode::Fagin, batch: 2, cost_scale: 1.0 },
        );
        let pool = vfps_par::Pool::with_threads(2);
        let mut plain_ledger = OpLedger::default();
        let plain = engine.query_batch(&queries, &pool, &mut plain_ledger);
        let mut res_ledger = OpLedger::default();
        let res = engine.query_batch_resilient(&queries, &[], &pool, &mut res_ledger);
        assert_eq!(res_ledger, plain_ledger, "empty schedule must not change billing");
        assert_eq!(res.survivors, vec![0, 1]);
        assert!(res.dropouts.is_empty());
        for ((a, alive), b) in res.outcomes.iter().zip(&plain) {
            assert_eq!(alive, &vec![0, 1]);
            assert_eq!(a.topk_rows, b.topk_rows);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a.d_t), bits(&b.d_t));
        }
    }

    #[test]
    fn resilient_batch_degrades_over_survivors() {
        let (x, part) = toy();
        let db: Vec<usize> = (0..8).collect();
        let queries: Vec<usize> = (0..6).collect();
        let engine = FedKnn::new(
            &x,
            &part,
            &[0, 1],
            &db,
            FedKnnConfig { k: 2, mode: KnnMode::Fagin, batch: 2, cost_scale: 1.0 },
        );
        let pool = vfps_par::Pool::with_threads(1);
        let mut ledger = OpLedger::default();
        let res = engine.query_batch_resilient(
            &queries,
            &[Dropout { at_query: 3, slot: 0 }],
            &pool,
            &mut ledger,
        );
        assert_eq!(res.outcomes.len(), 6, "the batch completes despite the death");
        assert_eq!(res.survivors, vec![1]);
        assert_eq!(res.dropouts, vec![Dropout { at_query: 3, slot: 0 }]);
        assert_eq!(ledger.dropouts, 1);
        for (i, (o, alive)) in res.outcomes.iter().enumerate() {
            if i < 3 {
                assert_eq!(alive, &vec![0, 1], "query {i} pre-dropout");
                assert_eq!(o.d_t.len(), 2);
            } else {
                assert_eq!(alive, &vec![1], "query {i} post-dropout");
                assert_eq!(o.d_t.len(), 1, "similarity shrinks to survivors");
            }
            assert_eq!(o.topk_rows.len(), 2, "every query still answers");
        }
        // Post-dropout outcomes match a single-party engine built up front.
        let solo = FedKnn::new(
            &x,
            &part,
            &[1],
            &db,
            FedKnnConfig { k: 2, mode: KnnMode::Fagin, batch: 2, cost_scale: 1.0 },
        );
        let mut solo_ledger = OpLedger::default();
        for i in 3..6 {
            let expect = solo.query(queries[i], &mut solo_ledger);
            assert_eq!(res.outcomes[i].0.topk_rows, expect.topk_rows, "query {i}");
        }
    }

    #[test]
    fn resilient_batch_never_empties_the_consortium() {
        let (x, part) = toy();
        let db: Vec<usize> = (0..8).collect();
        let engine = FedKnn::new(
            &x,
            &part,
            &[0, 1],
            &db,
            FedKnnConfig { k: 2, mode: KnnMode::Fagin, batch: 2, cost_scale: 1.0 },
        );
        let pool = vfps_par::Pool::with_threads(1);
        let mut ledger = OpLedger::default();
        let res = engine.query_batch_resilient(
            &[0, 1, 2, 3],
            &[
                Dropout { at_query: 1, slot: 0 },
                Dropout { at_query: 2, slot: 1 }, // would leave nobody: ignored
                Dropout { at_query: 3, slot: 0 }, // already dead: ignored
            ],
            &pool,
            &mut ledger,
        );
        assert_eq!(res.outcomes.len(), 4);
        assert_eq!(res.survivors, vec![1], "the last survivor keeps answering");
        assert_eq!(res.dropouts, vec![Dropout { at_query: 1, slot: 0 }]);
        assert_eq!(ledger.dropouts, 1, "only effective deaths are billed");
    }

    #[test]
    fn single_party_consortium_works() {
        let (x, part) = toy();
        let db: Vec<usize> = (0..8).collect();
        let engine = FedKnn::new(
            &x,
            &part,
            &[1],
            &db,
            FedKnnConfig { k: 2, mode: KnnMode::Fagin, batch: 3, cost_scale: 1.0 },
        );
        let mut ledger = OpLedger::default();
        let out = engine.query(0, &mut ledger);
        assert_eq!(out.topk_rows.len(), 2);
        assert_eq!(out.d_t.len(), 1);
    }
}
