//! Property-based tests of the federated KNN protocols: the optimized
//! variants must agree with the exhaustive baseline on arbitrary data.

use proptest::prelude::*;
use std::sync::Arc;
use vfps_data::VerticalPartition;
use vfps_he::scheme::PlainHe;
use vfps_ml::knn::KnnClassifier;
use vfps_ml::linalg::Matrix;
use vfps_net::cost::OpLedger;
use vfps_vfl::fed_knn::{FedKnn, FedKnnConfig, KnnMode};
use vfps_vfl::protocol::run_threaded_knn;

/// Random dense dataset: `rows × cols` values in a bounded range.
fn data_strategy() -> impl Strategy<Value = (Vec<Vec<f64>>, usize)> {
    (6usize..20, 4usize..8).prop_flat_map(|(rows, cols)| {
        (
            proptest::collection::vec(proptest::collection::vec(-50.0f64..50.0, cols), rows),
            Just(cols),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fagin and Base return identical neighbor sets, both matching the
    /// centralized KNN oracle on the joint feature space.
    #[test]
    fn fagin_equals_base_equals_oracle(
        (rows, cols) in data_strategy(),
        parties in 2usize..4,
        k in 1usize..5,
        batch in 1usize..4,
    ) {
        prop_assume!(parties <= cols);
        let x = Matrix::from_rows(&rows);
        let n = x.rows();
        let partition = VerticalPartition::random(cols, parties, 99);
        let party_ids: Vec<usize> = (0..parties).collect();
        let db: Vec<usize> = (0..n).collect();
        let query = 0usize;

        let run = |mode: KnnMode| -> Vec<usize> {
            let engine = FedKnn::new(
                &x,
                &partition,
                &party_ids,
                &db,
                FedKnnConfig { k, mode, batch, cost_scale: 1.0 },
            );
            let mut ledger = OpLedger::default();
            let mut t = engine.query(query, &mut ledger).topk_rows;
            t.sort_unstable();
            t
        };
        let base = run(KnnMode::Base);
        let fagin = run(KnnMode::Fagin);
        let ta = run(KnnMode::Threshold);
        prop_assert_eq!(&base, &fagin);
        prop_assert_eq!(&base, &ta);

        // Centralized oracle over the joint space, excluding the query row.
        let rest: Vec<usize> = (1..n).collect();
        let oracle = KnnClassifier::fit(
            k.min(n - 1),
            x.select_rows(&rest),
            vec![0; n - 1],
            1,
        );
        let mut expect: Vec<usize> =
            oracle.nearest(x.row(query)).iter().map(|&(i, _)| i + 1).collect();
        expect.sort_unstable();
        prop_assert_eq!(base, expect);
    }

    /// The threaded protocol with a plain scheme matches the logical
    /// engine for every mode/batch combination.
    #[test]
    fn threaded_matches_logical(
        (rows, cols) in data_strategy(),
        k in 1usize..4,
        batch in 1usize..5,
        fagin in any::<bool>(),
    ) {
        let x = Matrix::from_rows(&rows);
        let n = x.rows();
        let partition = VerticalPartition::random(cols, 2, 5);
        let db: Vec<usize> = (0..n).collect();
        let queries = vec![0usize, n / 2];
        let mode = if fagin { KnnMode::Fagin } else { KnnMode::Base };
        let cfg = FedKnnConfig { k, mode, batch, cost_scale: 1.0 };

        let he = Arc::new(PlainHe::new(16));
        let run = run_threaded_knn(&he, &x, &partition, &[0, 1], &db, &queries, cfg, 31);

        let engine = FedKnn::new(&x, &partition, &[0, 1], &db, cfg);
        let mut ledger = OpLedger::default();
        for (qi, &q) in queries.iter().enumerate() {
            let mut expect = engine.query(q, &mut ledger).topk_rows;
            let mut got = run.outcomes[qi].topk_rows.clone();
            expect.sort_unstable();
            got.sort_unstable();
            prop_assert_eq!(got, expect, "query {}", qi);
        }
    }
}
