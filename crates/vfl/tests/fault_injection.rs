//! Seeded fault matrix over the threaded KNN protocol: every role killed
//! at operation indices spanning the protocol's phases (before the Fagin
//! stream, during the encrypt/aggregate phase, near the end). Every run
//! must return a typed outcome — Complete, Degraded, or Aborted — and
//! never hang; with an empty fault plan the protocol must be bit-identical
//! to the panic-free `run_threaded_knn` path.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;
use vfps_data::VerticalPartition;
use vfps_he::scheme::PlainHe;
use vfps_ml::linalg::Matrix;
use vfps_net::{Error, FaultPlan};
use vfps_vfl::fed_knn::{FedKnnConfig, KnnMode};
use vfps_vfl::{run_threaded_knn, run_threaded_knn_faulted, FaultedRun};

const WATCHDOG: Duration = Duration::from_secs(60);

/// Runs `f` on a worker thread and fails the test if it does not return in
/// time — a hang is exactly the regression this suite exists to catch.
fn with_watchdog<R: Send + 'static>(f: impl FnOnce() -> R + Send + 'static) -> R {
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        let out = f();
        let _ = tx.send(());
        out
    });
    rx.recv_timeout(WATCHDOG).expect("protocol hung: watchdog expired");
    worker.join().expect("watchdogged closure panicked")
}

fn toy() -> (Matrix, VerticalPartition) {
    let x = Matrix::from_rows(&[
        vec![0.0, 0.0, 0.0, 0.0],
        vec![0.1, 0.0, 0.1, 0.0],
        vec![0.0, 0.2, 0.0, 0.1],
        vec![5.0, 5.0, 5.0, 5.0],
        vec![5.1, 5.0, 4.9, 5.0],
        vec![5.0, 5.2, 5.0, 5.1],
        vec![2.5, 2.5, 2.5, 2.5],
        vec![9.0, 9.0, 9.0, 9.0],
    ]);
    (x, VerticalPartition::even(4, 2))
}

fn run_with(faults: FaultPlan, mode: KnnMode) -> FaultedRun {
    with_watchdog(move || {
        let (x, part) = toy();
        let db: Vec<usize> = (0..8).collect();
        let queries = vec![0usize, 3, 6];
        let cfg = FedKnnConfig { k: 3, mode, batch: 2, cost_scale: 1.0 };
        let he = Arc::new(PlainHe::new(4));
        run_threaded_knn_faulted(&he, &x, &part, &[0, 1], &db, &queries, cfg, 77, &faults)
    })
}

/// With no faults injected the fallible path must reproduce the legacy
/// panic-on-failure path bit for bit: same neighbors, same `d_t` bits,
/// same traffic ledger totals.
#[test]
fn empty_fault_plan_is_bit_identical_to_fault_free_run() {
    for mode in [KnnMode::Base, KnnMode::Fagin] {
        let (x, part) = toy();
        let db: Vec<usize> = (0..8).collect();
        let queries = vec![0usize, 3, 6];
        let cfg = FedKnnConfig { k: 3, mode, batch: 2, cost_scale: 1.0 };
        let he = Arc::new(PlainHe::new(4));
        let plain = run_threaded_knn(&he, &x, &part, &[0, 1], &db, &queries, cfg, 77);
        let faulted = run_with(FaultPlan::default(), mode);
        let FaultedRun::Complete(run) = faulted else {
            panic!("empty plan must complete, got {faulted:?}");
        };
        assert!(run.dropouts.is_empty());
        assert_eq!(run.total_bytes, plain.total_bytes, "{mode:?} byte transcript");
        assert_eq!(run.total_messages, plain.total_messages, "{mode:?} message transcript");
        for (a, b) in plain.outcomes.iter().zip(&run.outcomes) {
            assert_eq!(a.topk_rows, b.topk_rows, "{mode:?}");
            assert_eq!(a.candidates, b.candidates, "{mode:?}");
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a.d_t), bits(&b.d_t), "{mode:?}");
        }
    }
}

/// Kill each role at op indices spanning the protocol's phases. No run may
/// hang; the outcome variant is determined by the role: server or leader
/// death aborts, participant death degrades (or completes, when the kill
/// op lies beyond the ops that node ever executes).
#[test]
fn kill_matrix_returns_typed_outcomes_for_every_role_and_phase() {
    // Op indices chosen to land before the stream starts, inside the
    // stream/encrypt phase, and in the late aggregate/d_t phase.
    let phases = [0u64, 4, 12, 40];
    for mode in [KnnMode::Base, KnnMode::Fagin] {
        for node in [0usize, 1, 2] {
            for &op in &phases {
                let outcome = run_with(FaultPlan::new().kill_at(node, op), mode);
                match (node, &outcome) {
                    // The aggregation server or the leader dying is fatal.
                    (0 | 1, FaultedRun::Aborted { error, .. }) => {
                        assert!(
                            matches!(
                                error,
                                Error::Killed { .. } | Error::Hangup { .. } | Error::Timeout { .. }
                            ),
                            "{mode:?} node {node} op {op}: unexpected error {error:?}"
                        );
                    }
                    // A kill op beyond the node's lifetime never fires.
                    (0 | 1, FaultedRun::Complete(run)) => {
                        assert!(
                            run.dropouts.is_empty(),
                            "{mode:?} node {node} op {op}: complete run with dropouts"
                        );
                    }
                    // A plain participant dying degrades but never aborts.
                    (2, FaultedRun::Degraded(run)) => {
                        assert_eq!(run.dropouts, vec![2], "{mode:?} op {op}: dropout bookkeeping");
                        assert_eq!(run.outcomes.len(), 3, "{mode:?} op {op}: batch completes");
                        for o in &run.outcomes {
                            assert_eq!(o.d_t.len(), 2, "full p-width is preserved");
                        }
                    }
                    (2, FaultedRun::Complete(run)) => {
                        assert!(run.dropouts.is_empty(), "{mode:?} op {op}");
                    }
                    (n, o) => panic!("{mode:?} node {n} op {op}: unexpected outcome {o:?}"),
                }
            }
        }
    }
}

/// A participant dying mid-batch: the leader finishes the remaining
/// queries over the survivors, dead slots carry `d_t = 0.0`, and the
/// surviving slots still produce usable neighbor sets.
#[test]
fn participant_death_zero_fills_its_d_t_share() {
    let outcome = run_with(FaultPlan::new().kill_at(2, 6), KnnMode::Fagin);
    let FaultedRun::Degraded(run) = outcome else {
        panic!("expected degraded run, got {outcome:?}");
    };
    assert_eq!(run.dropouts, vec![2]);
    assert_eq!(run.outcomes.len(), 3);
    // After the death every outcome's slot-1 share is zero-filled (node 2
    // holds slot 1); the leader's own share stays live.
    let last = run.outcomes.last().unwrap();
    assert_eq!(last.d_t[1], 0.0, "dead slot is zero-filled");
    assert!(!last.topk_rows.is_empty(), "the query still answers");
}

/// Seeded chaos plans at the protocol level: any seed must yield a typed
/// outcome, and the same seed twice must yield the same variant and the
/// same dropout set — the replayability that makes a failing matrix entry
/// debuggable.
#[test]
fn seeded_chaos_runs_are_typed_and_replayable() {
    let classify = |o: &FaultedRun| -> (u8, Vec<usize>) {
        match o {
            FaultedRun::Complete(r) => (0, r.dropouts.clone()),
            FaultedRun::Degraded(r) => (1, r.dropouts.clone()),
            FaultedRun::Aborted { dropouts, .. } => (2, dropouts.clone()),
        }
    };
    for seed in 0..6u64 {
        let a = classify(&run_with(FaultPlan::chaos(seed, 3, 1, 20), KnnMode::Fagin));
        let b = classify(&run_with(FaultPlan::chaos(seed, 3, 1, 20), KnnMode::Fagin));
        assert_eq!(a, b, "seed {seed} must replay identically");
    }
}

/// Dropped messages alone must not wedge the protocol: the lock-step
/// server loop uses `recv_from` against live peers, so a dropped frame
/// surfaces as a hangup/timeout abort or a degraded run, never a hang.
#[test]
fn dropped_link_messages_do_not_hang() {
    // Drop the first frame each direction between server and node 2.
    let plan = FaultPlan::new().drop_nth(2, 0, 0).kill_at(2, 8);
    let outcome = run_with(plan, KnnMode::Fagin);
    assert!(
        matches!(outcome, FaultedRun::Degraded(_) | FaultedRun::Aborted { .. }),
        "lost frames must produce a typed outcome, got {outcome:?}"
    );
}
