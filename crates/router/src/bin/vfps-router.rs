//! `vfps-router` — the consistent-hash routing tier over N `vfps-serve`
//! daemons.
//!
//! ```text
//! vfps-router --addr 127.0.0.1:7900 \
//!     --backend b0=127.0.0.1:7878 --backend b1=127.0.0.1:7879
//! ```
//!
//! Clients then point `vfps submit` (or any protocol client) at the
//! router's address unchanged; `vfps route status|drain` controls the
//! ring at runtime.

use std::process::ExitCode;
use std::time::Duration;

use vfps_router::{Router, RouterConfig};

fn parse_args(args: &[String]) -> Result<RouterConfig, String> {
    let mut cfg = RouterConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--backend" => {
                let spec = value("--backend")?;
                let (name, addr) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--backend wants name=host:port, got {spec:?}"))?;
                if name.is_empty() || addr.is_empty() {
                    return Err(format!("--backend wants name=host:port, got {spec:?}"));
                }
                cfg.backends.push((name.to_owned(), addr.to_owned()));
            }
            "--ring-seed" => {
                let v = value("--ring-seed")?;
                cfg.ring_seed = v.parse().map_err(|e| format!("bad --ring-seed {v:?}: {e}"))?;
            }
            "--vnodes" => {
                let v = value("--vnodes")?;
                cfg.vnodes = v.parse().map_err(|e| format!("bad --vnodes {v:?}: {e}"))?;
            }
            "--health-interval-ms" => {
                let v = value("--health-interval-ms")?;
                cfg.health_interval = Duration::from_millis(
                    v.parse().map_err(|e| format!("bad --health-interval-ms {v:?}: {e}"))?,
                );
            }
            "--health-timeout-ms" => {
                let v = value("--health-timeout-ms")?;
                cfg.health_timeout = Duration::from_millis(
                    v.parse().map_err(|e| format!("bad --health-timeout-ms {v:?}: {e}"))?,
                );
            }
            "--trace-out" => cfg.trace_out = Some(value("--trace-out")?.into()),
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(cfg)
}

fn print_help() {
    println!(
        "vfps-router — consistent-hash routing tier over N vfps-serve daemons\n\n\
         USAGE:\n  vfps-router --addr <host:port> --backend <name=host:port> [--backend ...]\n\n\
         \x20 --addr <host:port>            address to bind (default 127.0.0.1:0)\n\
         \x20 --backend <name=host:port>    a backend daemon; repeatable, at least one.\n\
         \x20                               The name is the ring identity — keep it\n\
         \x20                               stable across restarts to keep tenant\n\
         \x20                               placement stable\n\
         \x20 --ring-seed <u64>             consistent-hash seed (default pinned)\n\
         \x20 --vnodes <n>                  virtual nodes per backend (default 64)\n\
         \x20 --health-interval-ms <ms>     ping cadence (default 500)\n\
         \x20 --health-timeout-ms <ms>      per-probe deadline (default 250)\n\
         \x20 --trace-out <path>            write a structured trace on drain\n\n\
         Control a running router with `vfps route status|drain --addr <router>`.\n\
         A client `Shutdown` through the router drains every backend and merges\n\
         their final accounting."
    );
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&argv) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("error: {msg}\nrun vfps-router --help for usage");
            return ExitCode::FAILURE;
        }
    };
    let router = match Router::bind(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match router.run() {
        Ok(_report) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
