//! Per-backend health: a small deterministic state machine driven by
//! ping outcomes and drain commands (DESIGN.md §13).
//!
//! ```text
//!             failure              failure
//!   Healthy ──────────▶ Suspect ──────────▶ Down
//!      ▲                   │                  │
//!      └─────── success ───┴───── success ────┘
//!
//!   drain (from any state) ──▶ Drained   (absorbing)
//! ```
//!
//! `Suspect` exists so one dropped ping (a GC pause, a TCP retransmit)
//! does not evict a backend's tenants from their home: a suspect backend
//! is still **routable**, only a second consecutive failure takes it out
//! of rotation. Any success fully restores `Healthy`. `Drained` is the
//! operator's absorbing state — health checks stop and no transition
//! leaves it, so a drained backend can be retired at leisure.

/// A backend's health, `repr(u8)`-aligned with the wire encoding in
/// [`vfps_serve::proto::BackendStatus::state`] (see
/// [`vfps_serve::health_state_name`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum HealthState {
    /// Ping succeeding; in rotation.
    Healthy = 0,
    /// One consecutive ping failure; still in rotation.
    Suspect = 1,
    /// Two or more consecutive ping failures; out of rotation until a
    /// ping succeeds.
    Down = 2,
    /// Operator-drained; out of rotation forever (absorbing).
    Drained = 3,
}

impl HealthState {
    /// The wire byte for this state.
    #[must_use]
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// The state for a wire byte (`None` for unknown bytes).
    #[must_use]
    pub fn from_u8(b: u8) -> Option<HealthState> {
        match b {
            0 => Some(HealthState::Healthy),
            1 => Some(HealthState::Suspect),
            2 => Some(HealthState::Down),
            3 => Some(HealthState::Drained),
            _ => None,
        }
    }

    /// Whether new requests may be routed to a backend in this state.
    #[must_use]
    pub fn routable(self) -> bool {
        matches!(self, HealthState::Healthy | HealthState::Suspect)
    }
}

/// Drives one backend's [`HealthState`] from observed ping outcomes.
#[derive(Clone, Copy, Debug)]
pub struct HealthMachine {
    state: HealthState,
}

impl Default for HealthMachine {
    fn default() -> Self {
        HealthMachine::new()
    }
}

impl HealthMachine {
    /// A new machine; backends start `Healthy` (they were configured by
    /// an operator who presumably just started them — the first failed
    /// ping demotes within one health interval).
    #[must_use]
    pub fn new() -> HealthMachine {
        HealthMachine { state: HealthState::Healthy }
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Whether new requests may be routed here.
    #[must_use]
    pub fn routable(&self) -> bool {
        self.state.routable()
    }

    /// Records a successful ping. Returns the previous state if this
    /// transitioned (for logging), `None` if nothing changed.
    pub fn record_success(&mut self) -> Option<HealthState> {
        match self.state {
            HealthState::Drained | HealthState::Healthy => None,
            prev @ (HealthState::Suspect | HealthState::Down) => {
                self.state = HealthState::Healthy;
                Some(prev)
            }
        }
    }

    /// Records a failed ping. Returns the previous state if this
    /// transitioned, `None` if nothing changed.
    pub fn record_failure(&mut self) -> Option<HealthState> {
        match self.state {
            HealthState::Drained | HealthState::Down => None,
            HealthState::Healthy => {
                self.state = HealthState::Suspect;
                Some(HealthState::Healthy)
            }
            HealthState::Suspect => {
                self.state = HealthState::Down;
                Some(HealthState::Suspect)
            }
        }
    }

    /// Drains the backend (absorbing). Returns the previous state if
    /// this transitioned, `None` if it was already drained.
    pub fn drain(&mut self) -> Option<HealthState> {
        if self.state == HealthState::Drained {
            return None;
        }
        let prev = self.state;
        self.state = HealthState::Drained;
        Some(prev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failures_walk_healthy_suspect_down() {
        let mut m = HealthMachine::new();
        assert_eq!(m.state(), HealthState::Healthy);
        assert!(m.routable());
        assert_eq!(m.record_failure(), Some(HealthState::Healthy));
        assert_eq!(m.state(), HealthState::Suspect);
        assert!(m.routable(), "one dropped ping must not take a backend out of rotation");
        assert_eq!(m.record_failure(), Some(HealthState::Suspect));
        assert_eq!(m.state(), HealthState::Down);
        assert!(!m.routable());
        assert_eq!(m.record_failure(), None, "Down is stable under further failures");
    }

    #[test]
    fn any_success_restores_healthy() {
        let mut m = HealthMachine::new();
        m.record_failure();
        assert_eq!(m.record_success(), Some(HealthState::Suspect));
        assert_eq!(m.state(), HealthState::Healthy);
        m.record_failure();
        m.record_failure();
        assert_eq!(m.record_success(), Some(HealthState::Down));
        assert_eq!(m.state(), HealthState::Healthy);
    }

    #[test]
    fn drained_absorbs_everything() {
        let mut m = HealthMachine::new();
        assert_eq!(m.drain(), Some(HealthState::Healthy));
        assert_eq!(m.state(), HealthState::Drained);
        assert!(!m.routable());
        assert_eq!(m.record_success(), None);
        assert_eq!(m.record_failure(), None);
        assert_eq!(m.drain(), None);
        assert_eq!(m.state(), HealthState::Drained);
    }

    #[test]
    fn wire_bytes_roundtrip_and_match_the_proto_names() {
        for (state, name) in [
            (HealthState::Healthy, "healthy"),
            (HealthState::Suspect, "suspect"),
            (HealthState::Down, "down"),
            (HealthState::Drained, "drained"),
        ] {
            assert_eq!(HealthState::from_u8(state.as_u8()), Some(state));
            assert_eq!(vfps_serve::health_state_name(state.as_u8()), name);
        }
        assert_eq!(HealthState::from_u8(9), None);
    }
}
