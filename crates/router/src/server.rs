//! The routing tier: accept loop, tenant-affine relay, health checking,
//! backend drain, and fan-out/merge for the broadcast verbs
//! (DESIGN.md §13).
//!
//! Threading model mirrors the daemon's: one acceptor spawns a detached
//! handler per client connection; each handler relays one request at a
//! time over its *own* backend connections (cached per backend, so a
//! client session keeps one TCP stream per backend it actually talks
//! to); one detached health thread pings every non-drained backend on a
//! fixed cadence and drives the [`HealthMachine`]s.
//!
//! Relay contract: the router decodes each frame and re-encodes it
//! unchanged — the codec is canonical (every value has exactly one
//! encoding, pinned by the proto roundtrip tests), so a relayed reply is
//! bit-identical to the daemon's. Failover happens at **connect** time
//! only: once a request frame has been written to a backend, a transport
//! failure comes back to the client as a typed `Rejected` carrying the
//! [`TransportFailure`] taxonomy — never a silent retry, which could
//! execute a selection twice and lose the one-request-one-response
//! accounting.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::{Duration, Instant};

use vfps_net::{read_frame, write_frame, TransportFailure};
use vfps_serve::{
    health_state_name, BackendStatus, DrainReport, Request, Response, RouterStatusReply,
    TenantStatus, PROTOCOL_VERSION,
};

use crate::health::{HealthMachine, HealthState};
use crate::ring::{Ring, DEFAULT_RING_SEED, DEFAULT_VNODES};

/// Router configuration.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Address to bind, e.g. `127.0.0.1:0` (0 picks a free port).
    pub addr: String,
    /// `(name, addr)` per backend daemon. Names are the ring identity:
    /// stable names keep vnode positions (and thus tenant placement)
    /// stable across router restarts.
    pub backends: Vec<(String, String)>,
    /// Seed the ring's point positions hash from.
    pub ring_seed: u64,
    /// Virtual nodes per backend.
    pub vnodes: u64,
    /// Cadence of the background ping loop.
    pub health_interval: Duration,
    /// Connect/read deadline for one health probe.
    pub health_timeout: Duration,
    /// Write a structured trace (span forest + metrics) here on drain.
    pub trace_out: Option<PathBuf>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            backends: Vec::new(),
            ring_seed: DEFAULT_RING_SEED,
            vnodes: DEFAULT_VNODES,
            health_interval: Duration::from_millis(500),
            health_timeout: Duration::from_millis(250),
            trace_out: None,
        }
    }
}

/// One configured backend: address, health, and lifetime accounting.
struct Backend {
    name: String,
    addr: String,
    health: Mutex<HealthMachine>,
    routed: AtomicU64,
    relay_errors: AtomicU64,
}

impl Backend {
    fn state(&self) -> HealthState {
        self.health.lock().unwrap_or_else(PoisonError::into_inner).state()
    }

    fn routable(&self) -> bool {
        self.state().routable()
    }
}

/// The mutable routing membership: the ring and its index-aligned
/// backend list. Joins only *append* (drain keeps the slot, zeroing its
/// vnodes), so a backend's index is stable for the router's lifetime —
/// the invariant the per-connection [`ConnCache`] relies on.
struct Topology {
    ring: Ring,
    backends: Vec<Arc<Backend>>,
}

/// Everything shared between the acceptor, handlers, and the health
/// thread.
struct Shared {
    topology: RwLock<Topology>,
    shutdown: AtomicBool,
    health_interval: Duration,
    health_timeout: Duration,
    /// The merged backend accounting, filled in by the handler that
    /// served the `Shutdown`.
    final_report: Mutex<Option<DrainReport>>,
}

impl Shared {
    /// A cheap membership snapshot: the `Arc`s, in index order. Handlers
    /// work on snapshots so a concurrent join never invalidates a relay
    /// already in flight.
    fn snapshot(&self) -> Vec<Arc<Backend>> {
        self.topology.read().unwrap_or_else(PoisonError::into_inner).backends.clone()
    }

    fn backend_entry(&self, name: &str) -> Option<(usize, Arc<Backend>)> {
        let topo = self.topology.read().unwrap_or_else(PoisonError::into_inner);
        topo.backends.iter().position(|b| b.name == name).map(|i| (i, topo.backends[i].clone()))
    }

    /// The ring owner for a tenant key among currently routable
    /// backends, plus the failover order behind it.
    fn candidates(&self, key: &str) -> Vec<(usize, Arc<Backend>)> {
        let topo = self.topology.read().unwrap_or_else(PoisonError::into_inner);
        topo.ring
            .walk(key)
            .filter_map(|name| topo.backends.iter().position(|b| b.name == name))
            .map(|i| (i, topo.backends[i].clone()))
            .filter(|(_, b)| b.routable())
            .collect()
    }

    fn status(&self) -> RouterStatusReply {
        let topo = self.topology.read().unwrap_or_else(PoisonError::into_inner);
        RouterStatusReply {
            ring_seed: topo.ring.seed(),
            vnodes_per_backend: topo.ring.vnodes_per_backend(),
            backends: topo
                .backends
                .iter()
                .map(|b| {
                    let state = b.state();
                    BackendStatus {
                        name: b.name.clone(),
                        addr: b.addr.clone(),
                        state: state.as_u8(),
                        // A drained backend has left the ring; down ones
                        // keep their points (they re-enter on recovery).
                        vnodes: if state == HealthState::Drained {
                            0
                        } else {
                            topo.ring.vnodes_per_backend()
                        },
                        routed: b.routed.load(Ordering::Acquire),
                        relay_errors: b.relay_errors.load(Ordering::Acquire),
                    }
                })
                .collect(),
        }
    }

    fn set_state_gauge(&self, b: &Backend, state: HealthState) {
        vfps_obs::gauge_set_labelled(
            "router.backend_state",
            "backend",
            &b.name,
            f64::from(state.as_u8()),
        );
    }
}

/// Errors surfaced by [`Router::bind`] / [`Router::run`] themselves
/// (per-request failures are typed wire replies, not `Err`s).
#[derive(Debug)]
pub enum RouterError {
    /// Configuration problem (no backends, duplicate names...).
    Config(String),
    /// Bind / accept failure.
    Io(std::io::Error),
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::Config(m) => write!(f, "config error: {m}"),
            RouterError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for RouterError {}

impl From<std::io::Error> for RouterError {
    fn from(e: std::io::Error) -> Self {
        RouterError::Io(e)
    }
}

/// The routing tier. Construct with [`Router::bind`], then
/// [`Router::run`].
pub struct Router {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    trace_out: Option<PathBuf>,
}

impl Router {
    /// Validates the backend set, builds the ring, binds the listener,
    /// and prints the `listening on <addr>` line clients and tests
    /// parse. Backends start `Healthy`; the first health sweep corrects
    /// that within one interval if they are not.
    pub fn bind(cfg: &RouterConfig) -> Result<Router, RouterError> {
        if cfg.backends.is_empty() {
            return Err(RouterError::Config("at least one --backend is required".into()));
        }
        let mut ring = Ring::new(cfg.ring_seed, cfg.vnodes);
        let mut backends = Vec::with_capacity(cfg.backends.len());
        for (name, addr) in &cfg.backends {
            if name.is_empty() {
                return Err(RouterError::Config("backend names must be non-empty".into()));
            }
            if ring.backends().iter().any(|b| b == name) {
                return Err(RouterError::Config(format!("duplicate backend name {name}")));
            }
            ring.add(name);
            backends.push(Arc::new(Backend {
                name: name.clone(),
                addr: addr.clone(),
                health: Mutex::new(HealthMachine::new()),
                routed: AtomicU64::new(0),
                relay_errors: AtomicU64::new(0),
            }));
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        if cfg.trace_out.is_some() {
            vfps_obs::start_capture();
        }
        let shared = Arc::new(Shared {
            topology: RwLock::new(Topology { ring, backends }),
            shutdown: AtomicBool::new(false),
            health_interval: cfg.health_interval,
            health_timeout: cfg.health_timeout,
            final_report: Mutex::new(None),
        });
        println!("vfps-router listening on {local_addr}");
        let _ = std::io::stdout().flush();
        Ok(Router { listener, local_addr, shared, trace_out: cfg.trace_out.clone() })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Runs the accept loop (plus the background health thread) until a
    /// `Shutdown` request relays through to every backend and drains the
    /// tier. Returns the merged backend accounting; after a clean drain
    /// `in_flight == 0` and `accepted == completed + failed` hold for
    /// the merged report exactly as for each daemon's own.
    pub fn run(self) -> Result<DrainReport, RouterError> {
        {
            let shared = self.shared.clone();
            std::thread::Builder::new()
                .name("vfps-router-health".into())
                .spawn(move || health_loop(&shared))
                .expect("spawn health thread");
        }
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            };
            let shared = self.shared.clone();
            let addr = self.local_addr;
            std::thread::spawn(move || handle_connection(&shared, stream, addr));
        }
        let report = self
            .shared
            .final_report
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .unwrap_or_default();
        if let Some(path) = &self.trace_out {
            if let Some(trace) = vfps_obs::finish_capture() {
                if let Err(e) = std::fs::write(path, trace.to_json()) {
                    eprintln!("warning: cannot write trace to {}: {e}", path.display());
                }
            }
        }
        let backends = self.shared.snapshot();
        let routed: u64 = backends.iter().map(|b| b.routed.load(Ordering::Acquire)).sum();
        let relay_errors: u64 =
            backends.iter().map(|b| b.relay_errors.load(Ordering::Acquire)).sum();
        println!(
            "router drain clean: accepted {} completed {} failed {} rejected {} in-flight {} \
             cache-hits {} routed {} relay-errors {}",
            report.accepted,
            report.completed,
            report.failed,
            report.rejected,
            report.in_flight,
            report.cache_hits,
            routed,
            relay_errors
        );
        Ok(report)
    }
}

/// Wakes the acceptor after `shutdown` is set (same trick as the
/// daemon's): `TcpListener::incoming` only notices the flag on its next
/// connection, so the drain initiator pokes it with a throwaway connect.
fn wake_acceptor(addr: SocketAddr) {
    let _ = TcpStream::connect(addr);
}

/// One ping probe against a backend, bounded by `timeout` at connect,
/// read, and write.
fn probe(addr: &str, timeout: Duration) -> Result<(), TransportFailure> {
    let started = Instant::now();
    let sock = addr
        .to_socket_addrs()
        .map_err(|e| TransportFailure::classify_io(&e, started.elapsed()))?
        .next()
        .ok_or_else(|| TransportFailure::Protocol { detail: format!("unresolvable {addr}") })?;
    let stream = TcpStream::connect_timeout(&sock, timeout)
        .map_err(|e| TransportFailure::classify_io(&e, started.elapsed()))?;
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)))
        .map_err(|e| TransportFailure::classify_io(&e, started.elapsed()))?;
    let mut stream = stream;
    write_frame(&mut stream, &Request::Ping)
        .map_err(|e| TransportFailure::classify_io(&e, started.elapsed()))?;
    match read_frame::<_, Response>(&mut stream) {
        Ok(Some(Response::Pong { .. })) => Ok(()),
        Ok(Some(other)) => {
            Err(TransportFailure::Protocol { detail: format!("expected Pong, got {other:?}") })
        }
        Ok(None) => Err(TransportFailure::Hangup),
        Err(e) => Err(TransportFailure::classify_frame(&e, started.elapsed())),
    }
}

/// The background health loop: pings every non-drained backend each
/// interval and logs state transitions. Sleeps in small slices so a
/// drain is noticed promptly.
fn health_loop(shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::Acquire) {
        // Fresh snapshot per sweep: a backend joined mid-run is probed
        // from the next sweep on.
        for b in &shared.snapshot() {
            if b.state() == HealthState::Drained {
                continue;
            }
            let outcome = probe(&b.addr, shared.health_timeout);
            let mut health = b.health.lock().unwrap_or_else(PoisonError::into_inner);
            let transition = match &outcome {
                Ok(()) => health.record_success(),
                // Only liveness failures demote: a protocol-level
                // surprise (e.g. a misconfigured non-vfps peer) is an
                // operator error, and flapping the ring on it would
                // churn tenants for nothing.
                Err(tf) if tf.is_liveness_failure() => health.record_failure(),
                Err(_) => None,
            };
            let state = health.state();
            drop(health);
            if let Some(prev) = transition {
                vfps_obs::counter_add_labelled("router.health_transitions", "backend", &b.name, 1);
                shared.set_state_gauge(b, state);
                eprintln!(
                    "router: backend {} {} -> {}{}",
                    b.name,
                    health_state_name(prev.as_u8()),
                    health_state_name(state.as_u8()),
                    match &outcome {
                        Ok(()) => String::new(),
                        Err(tf) => format!(" ({tf})"),
                    }
                );
            }
        }
        let mut slept = Duration::ZERO;
        while slept < shared.health_interval && !shared.shutdown.load(Ordering::Acquire) {
            let slice = shared.health_interval.saturating_sub(slept).min(Duration::from_millis(25));
            std::thread::sleep(slice);
            slept += slice;
        }
    }
}

/// Per-connection cache of backend streams: index-aligned with the
/// topology's backend list (indices are stable — joins only append). A
/// client session talking to one tenant keeps one warm TCP stream to
/// that tenant's backend. Grows lazily via [`conn_slot`] when a backend
/// joined after the connection opened.
type ConnCache = Vec<Option<TcpStream>>;

/// The cache slot for backend `idx`, growing the cache if a live join
/// appended backends this connection has not seen yet.
fn conn_slot(conns: &mut ConnCache, idx: usize) -> &mut Option<TcpStream> {
    if conns.len() <= idx {
        conns.resize_with(idx + 1, || None);
    }
    &mut conns[idx]
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream, addr: SocketAddr) {
    let mut conns: ConnCache = (0..shared.snapshot().len()).map(|_| None).collect();
    loop {
        let req = match read_frame::<_, Request>(&mut stream) {
            Ok(Some(r)) => r,
            Ok(None) => return,                         // clean EOF: client done
            Err(vfps_net::FrameError::Io(_)) => return, // peer reset mid-frame
            Err(e) => {
                let _ = write_frame(
                    &mut stream,
                    &Response::Rejected { request_id: 0, reason: format!("bad frame: {e}") },
                );
                return;
            }
        };
        match req {
            Request::Ping => {
                if write_frame(&mut stream, &Response::Pong { version: PROTOCOL_VERSION }).is_err()
                {
                    return;
                }
            }
            Request::RouterStatus => {
                if write_frame(&mut stream, &Response::RouterStatus(shared.status())).is_err() {
                    return;
                }
            }
            Request::DrainBackend(name) => {
                let resp = drain_backend(shared, &name);
                if write_frame(&mut stream, &resp).is_err() {
                    return;
                }
            }
            Request::AddBackend { name, addr: backend_addr } => {
                let resp = add_backend(shared, &name, &backend_addr);
                if write_frame(&mut stream, &resp).is_err() {
                    return;
                }
            }
            Request::ListDatasets => {
                let resp = merged_datasets(shared, &mut conns);
                if write_frame(&mut stream, &resp).is_err() {
                    return;
                }
            }
            Request::Shutdown => {
                let report = relay_shutdown(shared);
                shared.shutdown.store(true, Ordering::Release);
                *shared.final_report.lock().unwrap_or_else(PoisonError::into_inner) = Some(report);
                let _ = write_frame(&mut stream, &Response::Draining(report));
                wake_acceptor(addr);
                return;
            }
            Request::Select(sel) => {
                let resp = route_select(shared, &mut conns, sel);
                if write_frame(&mut stream, &resp).is_err() {
                    return;
                }
            }
        }
    }
}

/// Relays one request over a (possibly cached) backend stream and reads
/// its single reply. Any failure invalidates the cached stream — but is
/// *returned*, never retried: the frame may already be executing.
fn relay(
    conns: &mut ConnCache,
    backend: &Backend,
    idx: usize,
    req: &Request,
) -> Result<Response, TransportFailure> {
    let started = Instant::now();
    if conn_slot(conns, idx).is_none() {
        let s = TcpStream::connect(&backend.addr)
            .map_err(|e| TransportFailure::classify_io(&e, started.elapsed()))?;
        let _ = s.set_nodelay(true);
        conns[idx] = Some(s);
    }
    let stream = conns[idx].as_mut().expect("just ensured");
    if let Err(e) = write_frame(stream, req) {
        conns[idx] = None;
        return Err(TransportFailure::classify_io(&e, started.elapsed()));
    }
    match read_frame::<_, Response>(stream) {
        Ok(Some(resp)) => Ok(resp),
        Ok(None) => {
            conns[idx] = None;
            Err(TransportFailure::Hangup)
        }
        Err(e) => {
            conns[idx] = None;
            Err(TransportFailure::classify_frame(&e, started.elapsed()))
        }
    }
}

/// Routes one selection to its tenant's ring owner. Failover walks the
/// ring only while *connects* fail; once a backend accepted the frame,
/// its outcome (or a typed rejection carrying the transport taxonomy)
/// is the client's answer.
fn route_select(
    shared: &Arc<Shared>,
    conns: &mut ConnCache,
    sel: vfps_serve::SelectRequest,
) -> Response {
    let request_id = sel.request_id;
    let key = sel.dataset.clone();
    let candidates = shared.candidates(&key);
    let req = Request::Select(sel);
    for (idx, backend) in &candidates {
        let idx = *idx;
        // Connect stage: a refused/unreachable backend is skipped (and
        // billed a relay error — the health loop will demote it soon).
        if conn_slot(conns, idx).is_none() {
            let started = Instant::now();
            match TcpStream::connect(&backend.addr) {
                Ok(s) => {
                    let _ = s.set_nodelay(true);
                    conns[idx] = Some(s);
                }
                Err(e) => {
                    let tf = TransportFailure::classify_io(&e, started.elapsed());
                    backend.relay_errors.fetch_add(1, Ordering::AcqRel);
                    vfps_obs::counter_add_labelled(
                        "router.relay_errors",
                        "backend",
                        &backend.name,
                        1,
                    );
                    eprintln!("router: connect to backend {} failed: {tf}", backend.name);
                    continue;
                }
            }
        }
        let started = Instant::now();
        match relay(conns, backend, idx, &req) {
            Ok(resp) => {
                backend.routed.fetch_add(1, Ordering::AcqRel);
                vfps_obs::counter_add_labelled("router.routed", "backend", &backend.name, 1);
                vfps_obs::histogram_record_labelled(
                    "router.relay_us",
                    "backend",
                    &backend.name,
                    started.elapsed().as_micros() as f64,
                );
                return resp;
            }
            Err(tf) => {
                backend.relay_errors.fetch_add(1, Ordering::AcqRel);
                vfps_obs::counter_add_labelled("router.relay_errors", "backend", &backend.name, 1);
                return Response::Rejected {
                    request_id,
                    reason: format!("relay to backend {} failed: {tf}", backend.name),
                };
            }
        }
    }
    Response::Rejected { request_id, reason: format!("no routable backend for tenant {key:?}") }
}

/// Drains a backend out of the ring: new requests route around it,
/// in-flight relays (already past the connect stage in some handler)
/// run to completion on their existing streams.
fn drain_backend(shared: &Arc<Shared>, name: &str) -> Response {
    let Some((_, backend)) = shared.backend_entry(name) else {
        return Response::Rejected {
            request_id: 0,
            reason: format!(
                "unknown backend {name:?} (configured: {})",
                shared.snapshot().iter().map(|b| b.name.as_str()).collect::<Vec<_>>().join(", ")
            ),
        };
    };
    let backend = &backend;
    let prev = {
        let mut health = backend.health.lock().unwrap_or_else(PoisonError::into_inner);
        health.drain()
    };
    if let Some(prev) = prev {
        shared.set_state_gauge(backend, HealthState::Drained);
        vfps_obs::counter_add_labelled("router.drained", "backend", name, 1);
        println!(
            "router: backend {name} drained out of the ring ({} -> drained)",
            health_state_name(prev.as_u8())
        );
        let _ = std::io::stdout().flush();
    }
    Response::RouterStatus(shared.status())
}

/// Joins a backend to the ring live. Consistent hashing means only the
/// keys whose ring walk now meets the newcomer's vnodes first re-home
/// (~1/N of the keyspace); every other tenant keeps its backend and its
/// warm cache shard. The newcomer starts `Healthy` and is probed from
/// the health loop's next sweep; a flaky join therefore demotes within
/// one interval, exactly like a configured backend going bad.
fn add_backend(shared: &Arc<Shared>, name: &str, addr: &str) -> Response {
    if name.is_empty() {
        return Response::Rejected {
            request_id: 0,
            reason: "backend names must be non-empty".into(),
        };
    }
    if addr.is_empty() {
        return Response::Rejected {
            request_id: 0,
            reason: "backend address must be non-empty".into(),
        };
    }
    {
        let mut topo = shared.topology.write().unwrap_or_else(PoisonError::into_inner);
        if topo.backends.iter().any(|b| b.name == name) {
            return Response::Rejected {
                request_id: 0,
                reason: format!("duplicate backend name {name}"),
            };
        }
        topo.ring.add(name);
        topo.backends.push(Arc::new(Backend {
            name: name.to_owned(),
            addr: addr.to_owned(),
            health: Mutex::new(HealthMachine::new()),
            routed: AtomicU64::new(0),
            relay_errors: AtomicU64::new(0),
        }));
    }
    vfps_obs::counter_add_labelled("router.added", "backend", name, 1);
    println!("router: backend {name} joined the ring at {addr}");
    let _ = std::io::stdout().flush();
    Response::RouterStatus(shared.status())
}

/// Fans `ListDatasets` out to every routable backend and merges the
/// ledgers: tenants are keyed by dataset name in first-seen (backend
/// config, then per-backend first-seen) order, counters sum, residency
/// ORs, and `max_resident` sums (it is a capacity, and capacities add
/// across daemons).
fn merged_datasets(shared: &Arc<Shared>, conns: &mut ConnCache) -> Response {
    let mut default_dataset: Option<String> = None;
    let mut max_resident = 0u64;
    let mut order: Vec<String> = Vec::new();
    let mut merged: Vec<TenantStatus> = Vec::new();
    let mut reached = 0usize;
    for (idx, backend) in shared.snapshot().iter().enumerate() {
        if !backend.routable() {
            continue;
        }
        let reply = match relay(conns, backend, idx, &Request::ListDatasets) {
            Ok(Response::Datasets { default_dataset: dd, max_resident: mr, tenants }) => {
                reached += 1;
                (dd, mr, tenants)
            }
            Ok(_) | Err(_) => {
                backend.relay_errors.fetch_add(1, Ordering::AcqRel);
                vfps_obs::counter_add_labelled("router.relay_errors", "backend", &backend.name, 1);
                continue;
            }
        };
        let (dd, mr, tenants) = reply;
        if default_dataset.is_none() {
            default_dataset = Some(dd);
        }
        max_resident += mr;
        for t in tenants {
            match order.iter().position(|d| *d == t.dataset) {
                Some(i) => {
                    let m = &mut merged[i];
                    m.resident |= t.resident;
                    m.accepted += t.accepted;
                    m.completed += t.completed;
                    m.failed += t.failed;
                    m.rejected += t.rejected;
                    m.in_flight += t.in_flight;
                    m.cache_hits += t.cache_hits;
                }
                None => {
                    order.push(t.dataset.clone());
                    merged.push(t);
                }
            }
        }
    }
    if reached == 0 {
        return Response::Rejected { request_id: 0, reason: "no routable backend".into() };
    }
    Response::Datasets {
        default_dataset: default_dataset.unwrap_or_default(),
        max_resident,
        tenants: merged,
    }
}

/// Relays `Shutdown` to **every** backend — drained and down ones
/// included (a drained daemon still holds accepted work and accounting;
/// a down one gets a best-effort attempt) — and sums the reports.
fn relay_shutdown(shared: &Arc<Shared>) -> DrainReport {
    let mut total = DrainReport::default();
    let backends = shared.snapshot();
    for (idx, backend) in backends.iter().enumerate() {
        // Fresh connection: cached handler streams belong to other
        // connections, and this one must work even for backends this
        // handler never routed to.
        let mut conns: ConnCache = (0..backends.len()).map(|_| None).collect();
        match relay(&mut conns, backend, idx, &Request::Shutdown) {
            Ok(Response::Draining(report)) => {
                total.accepted += report.accepted;
                total.completed += report.completed;
                total.failed += report.failed;
                total.rejected += report.rejected;
                total.in_flight += report.in_flight;
                total.cache_hits += report.cache_hits;
            }
            Ok(other) => {
                eprintln!(
                    "router: backend {} answered shutdown with {other:?}; skipping its accounting",
                    backend.name
                );
            }
            Err(tf) => {
                eprintln!(
                    "router: backend {} unreachable during shutdown ({tf}); skipping its \
                     accounting",
                    backend.name
                );
            }
        }
    }
    total
}
