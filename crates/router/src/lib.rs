//! # vfps-router — horizontal scale-out for the selection service
//!
//! One `vfps-serve` daemon multiplexes many tenants; this crate
//! multiplexes many *daemons*: a thin TCP routing tier that speaks the
//! same wire protocol ([`vfps_net::wire`] frames, `vfps_serve::proto`
//! messages) on both sides, so existing clients point at the router
//! unchanged and every reply through the tier is bit-identical to the
//! daemon's own.
//!
//! * **tenant affinity** — a seeded consistent-hash [`Ring`] keyed on
//!   the request's `dataset` tag sends each tenant to the same backend
//!   every time, keeping that daemon's tenant-LRU world and
//!   artifact-cache shard warm (the whole point of routing on the
//!   tenant key rather than round-robin);
//! * **health** — a background ping loop drives each backend's
//!   [`HealthMachine`] through `Healthy -> Suspect -> Down` with
//!   deterministic transitions; suspect backends stay in rotation, down
//!   ones are walked around on the ring;
//! * **drain** — `vfps route drain <backend>` flips a backend to the
//!   absorbing `Drained` state: new requests remap to the survivors
//!   (≈ `1/n` of tenant keys move, the rest stay put) while in-flight
//!   relays complete on their existing streams — no response is lost or
//!   duplicated;
//! * **broadcast verbs** — `ListDatasets` fans out to every routable
//!   backend and merges the tenant ledgers; `Shutdown` relays to every
//!   backend and answers with the summed [`vfps_serve::DrainReport`].
//!
//! ```no_run
//! use vfps_router::{Router, RouterConfig};
//!
//! let cfg = RouterConfig {
//!     addr: "127.0.0.1:0".into(),
//!     backends: vec![
//!         ("b0".into(), "127.0.0.1:7878".into()),
//!         ("b1".into(), "127.0.0.1:7879".into()),
//!     ],
//!     ..RouterConfig::default()
//! };
//! let router = Router::bind(&cfg).unwrap();
//! let addr = router.local_addr();
//! std::thread::spawn(move || router.run().unwrap());
//! // Clients now connect to `addr` exactly as they would to a daemon.
//! # let _ = addr;
//! ```

#![warn(missing_docs)]

pub mod health;
pub mod ring;
pub mod server;

pub use health::{HealthMachine, HealthState};
pub use ring::{Ring, DEFAULT_RING_SEED, DEFAULT_VNODES};
pub use server::{Router, RouterConfig, RouterError};
