//! The consistent-hash ring (DESIGN.md §13).
//!
//! Every backend owns `vnodes_per_backend` points on a 64-bit ring; a
//! tenant key hashes to a point and walks clockwise to the first
//! routable backend. The properties that make this the right structure
//! for a tenant-affine routing tier:
//!
//! * **determinism** — every point hashes from
//!   `(seed, backend name, vnode index)` with FNV-1a and the point list
//!   is kept sorted, so two routers built from the same configuration
//!   route identically, across processes and regardless of the order
//!   backends were added (no `HashMap` iteration order anywhere);
//! * **minimal disruption** — removing one of `n` backends deletes only
//!   that backend's points, so only keys whose clockwise-first point
//!   belonged to it remap (≈ `1/n` of keys in expectation), and every
//!   remapped key lands on a surviving backend; all other keys keep
//!   their backend, which keeps the daemons' tenant-LRU and
//!   artifact-cache shards hot through membership changes;
//! * **graceful degradation** — [`Ring::walk`] yields *all* distinct
//!   backends in clockwise order, so a caller that finds the owner
//!   unhealthy can fail over to the next arc without re-hashing.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Default virtual nodes per backend: enough that ownership is balanced
/// within a few ten percent across a handful of backends, small enough
/// that the sorted point list stays cache-resident.
pub const DEFAULT_VNODES: u64 = 64;

/// Default ring seed. Chosen (and pinned by a test) so the two bench
/// tenants — `""` (the default dataset) and `"Rice"` — land on
/// *different* backends of a two-backend ring named `b0`/`b1`.
pub const DEFAULT_RING_SEED: u64 = 0x5646_5053_2d52_4e47; // "VFPS-RNG"

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// SplitMix64's avalanche finalizer. Raw FNV-1a of short, similar
/// strings (`tenant-0007` vs `tenant-0008`, `b0` vs `b1`) leaves the
/// high bits nearly constant, which would cluster every key into one
/// thin arc of the ring; finalizing spreads single-bit input changes
/// across all 64 output bits, so ring positions are uniform even for
/// adversarially similar names.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A seeded consistent-hash ring over named backends.
#[derive(Clone, Debug)]
pub struct Ring {
    seed: u64,
    vnodes_per_backend: u64,
    /// Backends in first-add order (stable indices for `points`).
    backends: Vec<String>,
    /// `(point hash, backend index)` sorted by hash then backend *name*
    /// — the name tie-break keeps the order independent of add order
    /// even on (astronomically unlikely) 64-bit collisions.
    points: Vec<(u64, u32)>,
}

impl Ring {
    /// An empty ring. `vnodes_per_backend == 0` is coerced to 1 — a
    /// backend with no points would silently never be routed to.
    #[must_use]
    pub fn new(seed: u64, vnodes_per_backend: u64) -> Ring {
        Ring {
            seed,
            vnodes_per_backend: vnodes_per_backend.max(1),
            backends: Vec::new(),
            points: Vec::new(),
        }
    }

    /// The seed points and keys hash from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Virtual nodes each backend owns.
    #[must_use]
    pub fn vnodes_per_backend(&self) -> u64 {
        self.vnodes_per_backend
    }

    /// Backend names in first-add order. A removed backend leaves an
    /// empty-string tombstone in its slot (so surviving indices — and
    /// therefore surviving keys' owners — never shift); callers that
    /// enumerate members should skip empty names.
    #[must_use]
    pub fn backends(&self) -> &[String] {
        &self.backends
    }

    /// Where a point for `(backend, vnode index)` lands.
    fn point_hash(&self, name: &str, vnode: u64) -> u64 {
        let h = fnv1a(FNV_OFFSET, &self.seed.to_le_bytes());
        let h = fnv1a(h, name.as_bytes());
        // A separator byte keeps ("ab", 1) and ("a", ...) streams from
        // colliding by concatenation.
        let h = fnv1a(h, &[0xff]);
        mix(fnv1a(h, &vnode.to_le_bytes()))
    }

    /// Where a tenant key lands.
    #[must_use]
    pub fn key_hash(&self, key: &str) -> u64 {
        let h = fnv1a(FNV_OFFSET, &self.seed.to_le_bytes());
        mix(fnv1a(h, key.as_bytes()))
    }

    /// Adds a backend (its vnodes join the ring). Adding a name twice is
    /// a no-op: vnode positions depend only on the name, so a duplicate
    /// would double the backend's points without changing ownership
    /// boundaries, only the accounting.
    pub fn add(&mut self, name: &str) {
        if self.backends.iter().any(|b| b == name) {
            return;
        }
        let idx = u32::try_from(self.backends.len()).expect("fewer than 2^32 backends");
        self.backends.push(name.to_owned());
        for v in 0..self.vnodes_per_backend {
            self.points.push((self.point_hash(name, v), idx));
        }
        self.sort_points();
    }

    /// Removes a backend and all its points. Returns whether it was
    /// present. Indices of the remaining backends are preserved, so
    /// lookups for unaffected keys return identical names.
    pub fn remove(&mut self, name: &str) -> bool {
        let Some(idx) = self.backends.iter().position(|b| b == name) else {
            return false;
        };
        let idx = u32::try_from(idx).expect("fewer than 2^32 backends");
        // Keep the slot (and thus every other backend's index) stable;
        // an emptied name can never match a future `add` of a live name.
        self.backends[idx as usize].clear();
        self.points.retain(|&(_, i)| i != idx);
        true
    }

    fn sort_points(&mut self) {
        let backends = std::mem::take(&mut self.backends);
        self.points.sort_by(|&(ha, ia), &(hb, ib)| {
            ha.cmp(&hb).then_with(|| backends[ia as usize].cmp(&backends[ib as usize]))
        });
        self.backends = backends;
    }

    /// The clockwise walk from `key`: every *distinct* backend in the
    /// order its first point appears at or after the key's hash
    /// (wrapping). The first yielded backend is the key's owner; the
    /// rest are its failover order.
    pub fn walk<'a>(&'a self, key: &str) -> impl Iterator<Item = &'a str> + 'a {
        let h = self.key_hash(key);
        let start = self.points.partition_point(|&(p, _)| p < h);
        let n = self.points.len();
        let mut seen = vec![false; self.backends.len()];
        (0..n).filter_map(move |off| {
            let (_, idx) = self.points[(start + off) % n];
            if std::mem::replace(&mut seen[idx as usize], true) {
                None
            } else {
                Some(self.backends[idx as usize].as_str())
            }
        })
    }

    /// The key's owning backend: the first backend on the clockwise walk
    /// that passes `routable`. `None` when no backend passes.
    #[must_use]
    pub fn lookup<'a>(
        &'a self,
        key: &str,
        mut routable: impl FnMut(&str) -> bool,
    ) -> Option<&'a str> {
        self.walk(key).find(|b| routable(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_deterministic_and_order_invariant() {
        let mut a = Ring::new(7, 64);
        a.add("b0");
        a.add("b1");
        a.add("b2");
        let mut b = Ring::new(7, 64);
        b.add("b2");
        b.add("b0");
        b.add("b1");
        for i in 0..500 {
            let key = format!("tenant-{i}");
            assert_eq!(a.lookup(&key, |_| true), b.lookup(&key, |_| true), "key {key}");
        }
    }

    #[test]
    fn removal_only_remaps_the_removed_backends_keys() {
        let mut ring = Ring::new(3, 64);
        for name in ["b0", "b1", "b2", "b3"] {
            ring.add(name);
        }
        let before: Vec<(String, String)> = (0..800)
            .map(|i| {
                let key = format!("tenant-{i}");
                let owner = ring.lookup(&key, |_| true).unwrap().to_owned();
                (key, owner)
            })
            .collect();
        assert!(ring.remove("b2"));
        for (key, owner) in &before {
            let now = ring.lookup(key, |_| true).unwrap();
            if owner != "b2" {
                assert_eq!(now, owner, "key {key} moved although its owner survived");
            } else {
                assert_ne!(now, "b2", "key {key} still maps to the removed backend");
            }
        }
    }

    #[test]
    fn walk_yields_each_backend_once() {
        let mut ring = Ring::new(11, 16);
        for name in ["x", "y", "z"] {
            ring.add(name);
        }
        let order: Vec<&str> = ring.walk("some-tenant").collect();
        assert_eq!(order.len(), 3);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }

    #[test]
    fn default_seed_splits_the_bench_tenants_across_two_backends() {
        // bench-serve --router runs tenants "" (default dataset) and
        // "Rice" against backends named b0/b1; the per-backend routed
        // counts must both be nonzero, so the defaults must split them.
        let mut ring = Ring::new(DEFAULT_RING_SEED, DEFAULT_VNODES);
        ring.add("b0");
        ring.add("b1");
        let default_owner = ring.lookup("", |_| true).unwrap().to_owned();
        let rice_owner = ring.lookup("Rice", |_| true).unwrap().to_owned();
        assert_ne!(default_owner, rice_owner, "bench tenants share a backend under the defaults");
    }

    #[test]
    fn zero_vnodes_is_coerced_to_one() {
        let mut ring = Ring::new(1, 0);
        ring.add("only");
        assert_eq!(ring.lookup("k", |_| true), Some("only"));
    }

    #[test]
    fn duplicate_add_is_a_noop() {
        let mut ring = Ring::new(1, 8);
        ring.add("a");
        let points_before = ring.points.len();
        ring.add("a");
        assert_eq!(ring.points.len(), points_before);
    }
}
